"""Concurrency-safe model server with dynamic micro-batching.

One :class:`Server` owns one compiled
:class:`~repro.runtime.session.InferenceSession` per model (LoWino's
offline/online split at deployment granularity: prepare once, serve
many).  Clients call :meth:`Server.submit` / :meth:`Server.infer` from
any number of threads; requests flow through a bounded
:class:`~repro.serve.batching.RequestQueue`, worker threads coalesce
them into micro-batches (up to ``max_batch`` images or ``max_delay_ms``
of waiting), execute one ``session.run`` per batch, and split the
output rows back to the originating futures.

Guarantees:

* **Correctness under concurrency** -- sessions are thread-safe
  (leased scratch, locked plan cache), so ``workers > 1`` per model is
  sound; results are the session's outputs for the coalesced batch,
  row-sliced per request.
* **Bit-identity** -- for calibrated quantized models the integer
  pipeline is exact under any batch composition, so a served result is
  bitwise the serial eager result for the same request
  (``repro serve-bench`` gates this hard).
* **Backpressure** -- a full queue rejects with
  :class:`~repro.serve.batching.ServerOverloaded` instead of queueing
  unboundedly; per-request latency and queue depth are exported by
  :meth:`Server.stats`.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import Layer
from ..obs.export import prometheus_text
from ..obs.metrics import MetricsRegistry, Sample
from ..runtime.session import InferenceSession
from .batching import (
    InferenceFuture,
    Request,
    RequestQueue,
    ServerClosed,
    ServerOverloaded,
)
from .stats import ModelStats

__all__ = ["Server", "ServedModel"]


class ServedModel:
    """One deployed model: session + queue + micro-batching workers."""

    def __init__(
        self,
        name: str,
        session: InferenceSession,
        max_batch: int,
        max_delay_s: float,
        queue_size: int,
        workers: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.name = name
        self.session = session
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue = RequestQueue(max_requests=queue_size)
        registry = registry if registry is not None else MetricsRegistry()
        self.stats = ModelStats(registry=registry, model=name)
        # Live views: queue depth reads the queue itself at export time,
        # and the session's cache / run counters come in via a collector
        # (they live under the session's own locks).
        registry.gauge(
            "repro_queue_depth",
            help="requests waiting in the model queue",
            fn=lambda: self.queue.depth,
            model=name,
        )
        registry.register_collector(self._collect)
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{name}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch(self.max_batch, self.max_delay_s)
            if batch is None:
                return
            if not batch:  # defensive: never execute an empty batch
                continue
            self._execute(batch)

    def _execute(self, batch: List[Request]) -> None:
        try:
            if len(batch) == 1:
                x = batch[0].images
            else:
                x = np.concatenate([r.images for r in batch], axis=0)
            y = self.session.run(x)
        except BaseException as exc:
            for req in batch:
                req.future.set_exception(exc)
            self.stats.record_error(len(batch))
            return
        self.stats.record_batch(int(x.shape[0]))
        offset = 0
        done = time.perf_counter()
        for req in batch:
            rows = y[offset : offset + req.n_images]
            if len(batch) > 1:
                # Each future must own its rows: a view of the shared
                # coalesced output exposes batch-mates' results through
                # ``.base`` (ascontiguousarray would return the view
                # unchanged, since row slices are already contiguous).
                rows = rows.copy()
            req.future.set_result(rows)
            offset += req.n_images
            self.stats.latency.record(done - req.enqueued_at)

    def close(self, drain: bool = True, join_timeout: float = 10.0) -> None:
        """Stop accepting requests; fail whatever cannot be drained.

        ``drain=True`` lets workers finish the queued backlog before
        they exit; ``drain=False`` rejects the backlog immediately.  A
        worker that is still alive ``join_timeout`` seconds after the
        queue closed is a broken drain promise: it is *reported* (a
        ``RuntimeWarning`` plus the ``leaked_workers`` count in
        :meth:`snapshot` / ``repro_workers_leaked``) rather than
        silently abandoned, so operators can tell "drained clean" from
        "wedged worker still holds requests".
        """
        self.queue.close()
        if not drain:
            for req in self.queue.drain_rejected():
                req.future.set_exception(ServerClosed(f"model {self.name!r} closed"))
        leaked = 0
        for t in self._threads:
            t.join(timeout=join_timeout)
            if t.is_alive():
                leaked += 1
        if leaked:
            self.stats.record_leaked_workers(leaked)
            warnings.warn(
                f"model {self.name!r}: {leaked} worker(s) still running "
                f"{join_timeout:.1f}s after close(drain={drain}); their "
                f"in-flight requests were not drained",
                RuntimeWarning,
                stacklevel=2,
            )
        # Anything still pending after the join (e.g. drain=True racing
        # an already-exited worker) must not leave callers hanging.
        for req in self.queue.drain_rejected():
            req.future.set_exception(ServerClosed(f"model {self.name!r} closed"))

    def snapshot(self) -> Dict[str, object]:
        doc = self.stats.snapshot()
        doc["queue_depth"] = self.queue.depth
        doc["max_batch"] = self.max_batch
        doc["max_delay_ms"] = self.max_delay_s * 1e3
        doc["workers"] = len(self._threads)
        doc["session"] = {
            "runs": self.session.runs,
            "images_seen": self.session.images_seen,
            "cache": self.session.cache_stats(),
        }
        return doc

    def _collect(self):
        """Registry collector: session run/image and plan-cache counters
        for this model, labeled so multi-model exports stay distinct."""
        labels = {"model": self.name}
        yield Sample(
            "repro_session_runs_total",
            self.session.runs,
            dict(labels),
            "counter",
            "run() calls on the model session",
        )
        yield Sample(
            "repro_session_images_total",
            self.session.images_seen,
            dict(labels),
            "counter",
            "images executed by the model session",
        )
        cache = self.session.cache_stats()
        for key in ("hits", "misses", "evictions"):
            yield Sample(
                f"repro_plan_cache_{key}_total",
                cache[key],
                dict(labels),
                "counter",
                f"Plan cache {key}",
            )
        yield Sample("repro_plan_cache_bytes", cache["bytes"], dict(labels))
        yield Sample("repro_plan_cache_entries", cache["entries"], dict(labels))


class Server:
    """Multi-model inference server over compiled sessions.

    Typical use::

        server = Server(max_batch=16, max_delay_ms=2.0)
        server.add_model("resnet", model, input_shape=(8, 3, 32, 32))
        y = server.infer("resnet", images)          # synchronous
        fut = server.submit("resnet", images)       # async handle
        ...
        server.close()

    ``Server`` is itself thread-safe: ``submit`` / ``infer`` may be
    called concurrently with each other and with ``add_model``.
    """

    def __init__(
        self,
        max_batch: int = 16,
        max_delay_ms: float = 2.0,
        queue_size: int = 64,
        workers_per_model: int = 1,
        registry: Optional[MetricsRegistry] = None,
        wisdom: Optional[object] = None,
        tuner_interval_s: float = 0.02,
        background_tuner: bool = True,
    ) -> None:
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.queue_size = queue_size
        self.workers_per_model = workers_per_model
        #: All serving telemetry (per-model counters, latency reservoirs,
        #: live queue depths, session collectors) lands here; export with
        #: :meth:`metrics_text` / :meth:`metrics`.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._models: Dict[str, ServedModel] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: Wisdom-driven planning: with ``wisdom`` (a path or
        #: :class:`~repro.tuning.wisdom.WisdomFile`) every session this
        #: server compiles consults the shared file at lowering time,
        #: and a :class:`~repro.serve.tuner.BackgroundTuner` measures
        #: un-tuned geometries whenever the request queues are idle
        #: (``background_tuner=False`` keeps the selector without the
        #: thread).  N workers pointing at one file converge on the
        #: first persisted choice per geometry.
        self.selector = None
        self.tuner = None
        if wisdom is not None:
            from ..tuning.selector import AlgorithmSelector
            from .tuner import BackgroundTuner

            self.selector = AlgorithmSelector(wisdom=wisdom)
            if background_tuner:
                self.tuner = BackgroundTuner(
                    self, self.selector, interval_s=tuner_interval_s
                )

    # -- deployment -----------------------------------------------------
    def add_model(
        self,
        name: str,
        model: Optional[Layer] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        session: Optional[InferenceSession] = None,
        workers: Optional[int] = None,
    ) -> InferenceSession:
        """Deploy a model under ``name``; returns its compiled session.

        Pass either a prebuilt ``session`` or a ``model`` +
        ``input_shape`` to compile here.  The model must already be
        quantized/calibrated if quantization is wanted -- deployment
        never mutates it.
        """
        if session is None:
            if model is None or input_shape is None:
                raise ValueError("add_model needs a session, or a model + input_shape")
            # Serving sessions keep hot plans under pressure (LFU fed by
            # the per-plan hit counters) and, when the server has a
            # wisdom file, apply its known algorithm choices at
            # lowering time.
            session = InferenceSession(
                model, input_shape, selector=self.selector, cache_eviction="lfu"
            )
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if name in self._models:
                raise ValueError(f"model {name!r} is already deployed")
            self._models[name] = ServedModel(
                name,
                session,
                max_batch=self.max_batch,
                max_delay_s=self.max_delay_ms / 1e3,
                queue_size=self.queue_size,
                workers=workers if workers is not None else self.workers_per_model,
                registry=self.registry,
            )
        return session

    def _entry(self, name: str) -> ServedModel:
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            try:
                return self._models[name]
            except KeyError:
                raise KeyError(
                    f"unknown model {name!r}; deployed: {sorted(self._models)}"
                ) from None

    @property
    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def session(self, name: str) -> InferenceSession:
        """The compiled session serving ``name`` (e.g. for its
        ``input_shape``); raises ``KeyError`` for unknown models."""
        return self._entry(name).session

    # -- request path ---------------------------------------------------
    def submit(
        self, name: str, images: np.ndarray, timeout: Optional[float] = 0.0
    ) -> InferenceFuture:
        """Enqueue one NCHW batch; returns a completion future.

        ``timeout`` bounds how long a full queue may block the caller
        (0 = reject immediately, None = wait indefinitely).  Raises
        :class:`~repro.serve.batching.ServerOverloaded` on rejection.
        """
        entry = self._entry(name)
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ValueError(f"expected NCHW images, got shape {images.shape}")
        request = Request(images=images)
        try:
            entry.queue.put(request, timeout=timeout)
        except ServerOverloaded:
            # Only true backpressure counts as a shed.  A closed queue
            # (shutdown racing a submit) raises ServerClosed instead --
            # recording that as a rejection would inflate the shed rate
            # ``check_load_gate`` gates against the committed baseline.
            entry.stats.record_rejection()
            raise
        entry.stats.record_request(request.n_images)
        return request.future

    def infer(
        self,
        name: str,
        images: np.ndarray,
        timeout: Optional[float] = None,
        submit_timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous request: submit, wait, return the output rows.

        ``submit_timeout`` defaults to ``timeout`` (block on a full
        queue as long as we would wait for the answer)."""
        future = self.submit(
            name, images, timeout=timeout if submit_timeout is None else submit_timeout
        )
        return future.result(timeout=timeout)

    # -- observability / lifecycle --------------------------------------
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-model serving statistics (counters, latency, queue depth)."""
        with self._lock:
            entries = dict(self._models)
        return {name: entry.snapshot() for name, entry in entries.items()}

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """JSON snapshot of the server's metrics registry."""
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """All serving telemetry in the Prometheus text format."""
        return prometheus_text(self.registry)

    def close(self, drain: bool = True, join_timeout: float = 10.0) -> None:
        """Shut down all model workers (and the tuner); idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._models.values())
        if self.tuner is not None:
            self.tuner.stop()
        for entry in entries:
            entry.close(drain=drain, join_timeout=join_timeout)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
