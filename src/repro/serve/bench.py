"""Serving throughput benchmark (``repro serve-bench``).

Measures what the serving layer buys: N client threads hammer one
:class:`~repro.serve.server.Server` (one compiled, calibrated session),
and for each thread count the benchmark records wall-clock throughput,
per-request latency, and the coalescing statistics of the micro-batcher.
The headline number is ``throughput(T threads) / throughput(1 thread)``:
with one client every request runs alone (batch = the request), with
many clients the batcher merges them into wide whole-tensor calls the
vectorized runtime turns around far more efficiently.

Correctness is gated *hard*: every served result is compared bitwise
against serial eager execution of the same request
(``model(request_images)``).  This holds because the default model is a
fully calibrated quantized network -- its integer GEMMs are exact under
any batch composition -- and the FP32 classifier head computes row-wise
(each sample's logits never depend on which other samples were
coalesced into the micro-batch).

Like ``repro bench``, absolute wall-clock is reported but never gated;
the throughput ratio and the bit-identity flag are host-independent.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.bench import ModelCase, build_case_model
from ..runtime.session import InferenceSession
from .server import Server

__all__ = [
    "DEFAULT_BENCH_PATH",
    "DEFAULT_PROC_BENCH_PATH",
    "ProcBenchConfig",
    "ServeBenchConfig",
    "run_serve_bench",
    "run_proc_bench",
    "check_serve_gate",
    "check_proc_gate",
    "format_serve_bench",
    "format_proc_bench",
    "load_json",
    "write_json",
]

#: Default persistence target: the closed-loop serve perf trajectory
#: lives next to the runtime baselines in ``benchmarks/``.
DEFAULT_BENCH_PATH = "benchmarks/BENCH_serve_threads.json"

#: Default persistence target for the multi-process sweep.
DEFAULT_PROC_BENCH_PATH = "benchmarks/BENCH_serve_procs.json"

#: JSON document version; bump on breaking schema changes.
SCHEMA_VERSION = 1

SEED = 2021


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serving benchmark configuration.

    ``threads`` is the sweep of concurrent client counts; each client
    synchronously sends ``requests_per_thread`` requests of
    ``request_batch`` images.  The model/algorithm knobs mirror
    :class:`~repro.runtime.bench.ModelCase`.
    """

    model: str = "vgg"
    algorithm: str = "lowino"
    width: int = 16
    hw: int = 16
    m: int = 4
    request_batch: int = 2
    requests_per_thread: int = 8
    threads: Tuple[int, ...] = (1, 2, 8)
    max_batch: int = 16
    max_delay_ms: float = 5.0
    queue_size: int = 256
    workers: int = 1
    #: Fused-stage kernel backend the served session executes on
    #: (:func:`repro.runtime.backends.available_backends`).
    backend: str = "numpy"
    seed: int = SEED
    #: Optional wisdom-file path: the served session applies its
    #: per-geometry algorithm choices at lowering time (``repro tune``
    #: writes it; engine swaps keep eager == served bit-identical, so
    #: the identity gate still holds).
    wisdom: Optional[str] = None


def _build_session(cfg: ServeBenchConfig):
    """Build + quantize + compile the benchmark model once (offline)."""
    from ..nn.quantize import quantize_model

    case = ModelCase(cfg.model, cfg.algorithm, hw=cfg.hw, width=cfg.width, m=cfg.m)
    model = build_case_model(case)
    rng = np.random.default_rng(cfg.seed)
    calib = rng.standard_normal((max(2, cfg.request_batch), 3, cfg.hw, cfg.hw))
    if cfg.algorithm != "fp32":
        quantize_model(model, cfg.algorithm, m=cfg.m, calibration_batches=[calib])
    input_shape = (cfg.request_batch, 3, cfg.hw, cfg.hw)
    session = InferenceSession(
        model, input_shape, collect_timings=False, backend=cfg.backend,
        wisdom=cfg.wisdom,
    )
    return model, session


def _client_inputs(cfg: ServeBenchConfig, threads: int) -> List[List[np.ndarray]]:
    """Deterministic per-(thread, request) activation tensors."""
    rng = np.random.default_rng(cfg.seed + 1)
    return [
        [
            rng.standard_normal((cfg.request_batch, 3, cfg.hw, cfg.hw))
            for _ in range(cfg.requests_per_thread)
        ]
        for _ in range(threads)
    ]


def _measure(
    server: Server, name: str, inputs: List[List[np.ndarray]]
) -> Tuple[float, List[List[np.ndarray]]]:
    """Fire all clients against the server; returns (wall_s, outputs)."""
    threads = len(inputs)
    outputs: List[List[Optional[np.ndarray]]] = [
        [None] * len(reqs) for reqs in inputs
    ]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def client(tid: int) -> None:
        barrier.wait()
        try:
            for i, x in enumerate(inputs[tid]):
                outputs[tid][i] = server.infer(name, x, timeout=60.0)
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    workers = [
        threading.Thread(target=client, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for w in workers:
        w.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, outputs  # type: ignore[return-value]


def run_serve_bench(cfg: ServeBenchConfig = ServeBenchConfig()) -> dict:
    """Run the sweep and return the serve-bench JSON document."""
    model, session = _build_session(cfg)
    max_threads = max(cfg.threads)
    inputs = _client_inputs(cfg, max_threads)
    # Serial eager reference, computed once per distinct request.
    expected = [[model(x) for x in reqs] for reqs in inputs]

    entries: List[dict] = []
    for threads in cfg.threads:
        server = Server(
            max_batch=cfg.max_batch,
            max_delay_ms=cfg.max_delay_ms,
            queue_size=cfg.queue_size,
            workers_per_model=cfg.workers,
        )
        server.add_model("bench", session=session)
        # Warm the per-request geometry (coalesced sizes build their own
        # cheap tile grids on first contact during the measurement).
        server.infer("bench", inputs[0][0], timeout=60.0)
        wall, outputs = _measure(server, "bench", inputs[:threads])
        stats = server.stats()["bench"]
        server.close()
        exact = all(
            np.array_equal(outputs[tid][i], expected[tid][i])
            for tid in range(threads)
            for i in range(cfg.requests_per_thread)
        )
        images = threads * cfg.requests_per_thread * cfg.request_batch
        entries.append(
            {
                "threads": threads,
                "requests": threads * cfg.requests_per_thread,
                "images": images,
                "wall_s": wall,
                "throughput_ips": images / wall,
                "exact": exact,
                "mean_batch_images": stats["mean_batch_images"],
                "max_batch_images": stats["max_batch_images"],
                "batches": stats["batches"],
                "rejected": stats["rejected"],
                "latency": stats["latency"],
            }
        )

    by_threads = {e["threads"]: e for e in entries}
    summary: Dict[str, object] = {
        "exact": all(e["exact"] for e in entries),
    }
    if 1 in by_threads and max_threads > 1:
        summary["throughput_speedup"] = (
            by_threads[max_threads]["throughput_ips"]
            / by_threads[1]["throughput_ips"]
        )
        summary["speedup_threads"] = max_threads
    return {
        "schema": SCHEMA_VERSION,
        "config": asdict(cfg),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": entries,
        "summary": summary,
    }


def check_serve_gate(doc: dict, min_speedup: float = 1.5) -> List[str]:
    """Hard gates: bit-identity always; throughput ratio when measured.

    Returns human-readable violations; empty means PASS.  The identity
    gate compares served outputs against serial eager execution and is
    host-independent; the throughput gate fires only when the sweep
    includes 1 thread and a multi-thread point.
    """
    violations: List[str] = []
    for entry in doc["results"]:
        if not entry["exact"]:
            violations.append(
                f"{entry['threads']} client thread(s): served outputs are not "
                f"bit-identical to serial eager execution"
            )
    speedup = doc["summary"].get("throughput_speedup")
    if speedup is not None and speedup < min_speedup:
        violations.append(
            f"throughput at {doc['summary']['speedup_threads']} client threads is "
            f"{speedup:.2f}x the 1-thread throughput (gate: >= {min_speedup:.2f}x)"
        )
    return violations


def format_serve_bench(doc: dict) -> str:
    """Human-readable table for one serve-bench document."""
    cfg = doc["config"]
    lines = [
        f"Serving benchmark -- model={cfg['model']}/{cfg['algorithm']} "
        f"hw={cfg['hw']} width={cfg['width']} request_batch={cfg['request_batch']} "
        f"requests/thread={cfg['requests_per_thread']} "
        f"max_batch={cfg['max_batch']} max_delay={cfg['max_delay_ms']}ms "
        f"workers={cfg['workers']}",
        f"{'clients':>7s} {'images':>6s} {'wall':>9s} {'imgs/s':>8s} "
        f"{'batch~':>6s} {'p50':>8s} {'p95':>8s} {'exact':>6s}",
    ]
    for e in doc["results"]:
        lat = e["latency"]
        lines.append(
            f"{e['threads']:7d} {e['images']:6d} {e['wall_s'] * 1e3:7.1f}ms "
            f"{e['throughput_ips']:8.1f} {e['mean_batch_images']:6.1f} "
            f"{lat['p50_ms']:6.1f}ms {lat['p95_ms']:6.1f}ms "
            f"{'yes' if e['exact'] else 'NO':>6s}"
        )
    speedup = doc["summary"].get("throughput_speedup")
    if speedup is not None:
        lines.append(
            f"throughput speedup at {doc['summary']['speedup_threads']} clients "
            f"vs 1: {speedup:.2f}x"
        )
    lines.append(f"bit-identity vs serial eager: {'yes' if doc['summary']['exact'] else 'NO'}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# multi-process sweep (``repro serve-bench --procs``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcBenchConfig:
    """One multi-process serving benchmark configuration.

    ``procs`` is the sweep of worker-process counts; a fixed pool of
    ``client_threads`` closed-loop clients hammers each configuration,
    so the headline ratio ``throughput(N procs) / throughput(1 proc)``
    isolates what process sharding buys past the GIL ceiling.

    The default algorithm is ``int8_upcast`` (the spatial-threshold
    family): its calibration carries across algorithm swaps, so
    wisdom-driven selection actually *applies* in the workers and the
    cross-process convergence check is non-vacuous.
    """

    model: str = "vgg"
    algorithm: str = "int8_upcast"
    width: int = 16
    hw: int = 16
    m: int = 4
    request_batch: int = 2
    requests_per_thread: int = 8
    client_threads: int = 8
    procs: Tuple[int, ...] = (1, 2, 4)
    max_batch: int = 16
    max_delay_ms: float = 5.0
    queue_size: int = 256
    backend: str = "numpy"
    #: Tensor transport: "auto" (shared-memory slabs when available),
    #: "shm", or "pipe".
    transport: str = "auto"
    #: Tune inside the workers against one shared wisdom file and gate
    #: that every worker converges to identical algorithm selections.
    wisdom: bool = True
    seed: int = SEED


def _build_proc_model(cfg: ProcBenchConfig):
    """Build + quantize the benchmark model (workers compile their own
    sessions from a pickle of this object)."""
    from ..nn.quantize import quantize_model

    case = ModelCase(cfg.model, cfg.algorithm, hw=cfg.hw, width=cfg.width, m=cfg.m)
    model = build_case_model(case)
    rng = np.random.default_rng(cfg.seed)
    calib = rng.standard_normal((max(2, cfg.request_batch), 3, cfg.hw, cfg.hw))
    if cfg.algorithm != "fp32":
        quantize_model(model, cfg.algorithm, m=cfg.m, calibration_batches=[calib])
    return model, (cfg.request_batch, 3, cfg.hw, cfg.hw)


def _proc_inputs(cfg: ProcBenchConfig) -> List[List[np.ndarray]]:
    rng = np.random.default_rng(cfg.seed + 1)
    return [
        [
            rng.standard_normal((cfg.request_batch, 3, cfg.hw, cfg.hw))
            for _ in range(cfg.requests_per_thread)
        ]
        for _ in range(cfg.client_threads)
    ]


def run_proc_bench(cfg: ProcBenchConfig = ProcBenchConfig()) -> dict:
    """Run the worker-count sweep and return the JSON document.

    Bit-identity is gated against serial eager execution *with the same
    wisdom applied*: workers unpickle private model copies and apply the
    shared wisdom file's algorithm choices at compile time, so the
    parent applies the same choices to its reference copy (first deploy
    persists them; every later consult is a wisdom hit).  The integer
    pipeline is exact under any batch composition, so which worker (or
    the reference) executed a request is unobservable in the bytes.
    """
    import tempfile

    from .router import ProcServer

    model, input_shape = _build_proc_model(cfg)
    inputs = _proc_inputs(cfg)

    with tempfile.TemporaryDirectory(prefix="repro-proc-bench-") as tmp:
        wisdom_path = str(Path(tmp) / "wisdom.json") if cfg.wisdom else None
        entries: List[dict] = []
        expected: Optional[List[List[np.ndarray]]] = None
        for procs in cfg.procs:
            server = ProcServer(
                procs=procs,
                max_batch=cfg.max_batch,
                max_delay_ms=cfg.max_delay_ms,
                queue_size=cfg.queue_size,
                backend=cfg.backend,
                wisdom=wisdom_path,
                tune_workers=cfg.wisdom,
                transport=cfg.transport,
            )
            try:
                server.add_model("bench", model, input_shape=input_shape)
                if expected is None:
                    # First deploy persisted the workers' wisdom; apply
                    # the same choices to the parent's reference copy
                    # (a wisdom hit -- no measurement) before computing
                    # the serial eager baseline.
                    if wisdom_path is not None:
                        InferenceSession(
                            model, input_shape, collect_timings=False,
                            backend=cfg.backend, wisdom=wisdom_path,
                        )
                    expected = [[model(x) for x in reqs] for reqs in inputs]
                server.infer("bench", inputs[0][0], timeout=60.0)
                wall, outputs = _measure(server, "bench", inputs)
                stats = server.stats()["bench"]
                pool = server.pool_stats()
                selections = (
                    server.selection("bench") if cfg.wisdom else {}
                )
            finally:
                server.close()
            exact = all(
                np.array_equal(outputs[tid][i], expected[tid][i])
                for tid in range(cfg.client_threads)
                for i in range(cfg.requests_per_thread)
            )
            distinct = {
                tuple(sorted(sel.items())) for sel in selections.values()
            }
            images = cfg.client_threads * cfg.requests_per_thread * cfg.request_batch
            entries.append(
                {
                    "procs": procs,
                    "clients": cfg.client_threads,
                    "images": images,
                    "wall_s": wall,
                    "throughput_ips": images / wall,
                    "exact": exact,
                    "restarts": pool["restarts"],
                    "transports": sorted(
                        {w["transport"] for w in pool["workers"].values()}
                    ),
                    "selection_workers": len(selections),
                    "selection_converged": len(distinct) <= 1,
                    "selection": (
                        dict(sorted(next(iter(selections.values())).items()))
                        if selections
                        else {}
                    ),
                    "mean_batch_images": stats["mean_batch_images"],
                    "batches": stats["batches"],
                    "rejected": stats["rejected"],
                    "latency": stats["latency"],
                }
            )

    by_procs = {e["procs"]: e for e in entries}
    max_procs = max(cfg.procs)
    summary: Dict[str, object] = {
        "exact": all(e["exact"] for e in entries),
        "selection_converged": all(e["selection_converged"] for e in entries),
    }
    if 1 in by_procs and max_procs > 1:
        summary["proc_speedup"] = (
            by_procs[max_procs]["throughput_ips"] / by_procs[1]["throughput_ips"]
        )
        summary["speedup_procs"] = max_procs
    return {
        "schema": SCHEMA_VERSION,
        "config": asdict(cfg),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": entries,
        "summary": summary,
    }


#: Baseline-comparison keys that must match for a ratio gate to be
#: meaningful (same model, geometry, and sweep).
_PROC_CONFIG_KEYS = (
    "model", "algorithm", "width", "hw", "m", "request_batch",
    "requests_per_thread", "client_threads", "procs", "backend", "wisdom",
)


def check_proc_gate(
    doc: dict,
    baseline: Optional[dict] = None,
    min_speedup: float = 0.0,
    speedup_tolerance: float = 0.5,
) -> List[str]:
    """Gates for one proc-bench document; empty list means PASS.

    Hard, host-independent gates: every worker count serves bit-identical
    bytes, and (when wisdom is on) all workers of every configuration
    converge to identical algorithm selections.

    Host-dependent gates are opt-in: ``min_speedup > 0`` requires
    ``throughput(max procs) >= min_speedup * throughput(1 proc)``
    (meaningless on single-core runners, hence off by default), and a
    ``baseline`` document adds a *ratio* gate -- the measured speedup
    may not collapse below ``speedup_tolerance`` times the committed
    baseline's speedup (ratios drift far less across hosts than
    absolute image rates).
    """
    violations: List[str] = []
    for entry in doc["results"]:
        if not entry["exact"]:
            violations.append(
                f"{entry['procs']} worker proc(s): served outputs are not "
                f"bit-identical to serial eager execution"
            )
        if doc["config"].get("wisdom") and not entry["selection_converged"]:
            violations.append(
                f"{entry['procs']} worker proc(s): workers disagree on "
                f"algorithm selections despite sharing one wisdom file"
            )
    speedup = doc["summary"].get("proc_speedup")
    if min_speedup > 0 and speedup is not None and speedup < min_speedup:
        violations.append(
            f"throughput at {doc['summary']['speedup_procs']} procs is "
            f"{speedup:.2f}x the 1-proc throughput (gate: >= {min_speedup:.2f}x)"
        )
    if baseline is not None:
        for key in _PROC_CONFIG_KEYS:
            ours, theirs = doc["config"].get(key), baseline["config"].get(key)
            if isinstance(ours, list) or isinstance(theirs, list):
                ours, theirs = list(ours or ()), list(theirs or ())
            if ours != theirs:
                violations.append(
                    f"config mismatch vs baseline: {key} = {ours!r} "
                    f"(baseline {theirs!r}); ratio gate not comparable"
                )
                return violations
        base_speedup = baseline["summary"].get("proc_speedup")
        if speedup is not None and base_speedup:
            floor = base_speedup * speedup_tolerance
            if speedup < floor:
                violations.append(
                    f"proc speedup regressed: {speedup:.2f}x vs baseline "
                    f"{base_speedup:.2f}x (floor: {floor:.2f}x)"
                )
    return violations


def format_proc_bench(doc: dict) -> str:
    """Human-readable table for one proc-bench document."""
    cfg = doc["config"]
    lines = [
        f"Multi-process serving benchmark -- model={cfg['model']}/"
        f"{cfg['algorithm']} hw={cfg['hw']} width={cfg['width']} "
        f"clients={cfg['client_threads']} request_batch={cfg['request_batch']} "
        f"transport={cfg['transport']} wisdom={'on' if cfg['wisdom'] else 'off'}",
        f"{'procs':>5s} {'images':>6s} {'wall':>9s} {'imgs/s':>8s} "
        f"{'batch~':>6s} {'p95':>8s} {'exact':>6s} {'conv':>5s}",
    ]
    for e in doc["results"]:
        lines.append(
            f"{e['procs']:5d} {e['images']:6d} {e['wall_s'] * 1e3:7.1f}ms "
            f"{e['throughput_ips']:8.1f} {e['mean_batch_images']:6.1f} "
            f"{e['latency']['p95_ms']:6.1f}ms "
            f"{'yes' if e['exact'] else 'NO':>6s} "
            f"{('yes' if e['selection_converged'] else 'NO') if cfg['wisdom'] else '-':>5s}"
        )
    speedup = doc["summary"].get("proc_speedup")
    if speedup is not None:
        lines.append(
            f"throughput speedup at {doc['summary']['speedup_procs']} procs "
            f"vs 1: {speedup:.2f}x"
        )
    lines.append(
        f"bit-identity vs serial eager: {'yes' if doc['summary']['exact'] else 'NO'}"
    )
    if cfg["wisdom"]:
        lines.append(
            "cross-process selection convergence: "
            f"{'yes' if doc['summary']['selection_converged'] else 'NO'}"
        )
    return "\n".join(lines)


def write_json(doc: dict, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_json(path) -> dict:
    return json.loads(Path(path).read_text())
