"""Serving throughput benchmark (``repro serve-bench``).

Measures what the serving layer buys: N client threads hammer one
:class:`~repro.serve.server.Server` (one compiled, calibrated session),
and for each thread count the benchmark records wall-clock throughput,
per-request latency, and the coalescing statistics of the micro-batcher.
The headline number is ``throughput(T threads) / throughput(1 thread)``:
with one client every request runs alone (batch = the request), with
many clients the batcher merges them into wide whole-tensor calls the
vectorized runtime turns around far more efficiently.

Correctness is gated *hard*: every served result is compared bitwise
against serial eager execution of the same request
(``model(request_images)``).  This holds because the default model is a
fully calibrated quantized network -- its integer GEMMs are exact under
any batch composition -- and the FP32 classifier head computes row-wise
(each sample's logits never depend on which other samples were
coalesced into the micro-batch).

Like ``repro bench``, absolute wall-clock is reported but never gated;
the throughput ratio and the bit-identity flag are host-independent.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.bench import ModelCase, build_case_model
from ..runtime.session import InferenceSession
from .server import Server

__all__ = [
    "DEFAULT_BENCH_PATH",
    "ServeBenchConfig",
    "run_serve_bench",
    "check_serve_gate",
    "format_serve_bench",
    "load_json",
    "write_json",
]

#: Default persistence target: the closed-loop serve perf trajectory
#: lives next to the runtime baselines in ``benchmarks/``.
DEFAULT_BENCH_PATH = "benchmarks/BENCH_serve_threads.json"

#: JSON document version; bump on breaking schema changes.
SCHEMA_VERSION = 1

SEED = 2021


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serving benchmark configuration.

    ``threads`` is the sweep of concurrent client counts; each client
    synchronously sends ``requests_per_thread`` requests of
    ``request_batch`` images.  The model/algorithm knobs mirror
    :class:`~repro.runtime.bench.ModelCase`.
    """

    model: str = "vgg"
    algorithm: str = "lowino"
    width: int = 16
    hw: int = 16
    m: int = 4
    request_batch: int = 2
    requests_per_thread: int = 8
    threads: Tuple[int, ...] = (1, 2, 8)
    max_batch: int = 16
    max_delay_ms: float = 5.0
    queue_size: int = 256
    workers: int = 1
    #: Fused-stage kernel backend the served session executes on
    #: (:func:`repro.runtime.backends.available_backends`).
    backend: str = "numpy"
    seed: int = SEED
    #: Optional wisdom-file path: the served session applies its
    #: per-geometry algorithm choices at lowering time (``repro tune``
    #: writes it; engine swaps keep eager == served bit-identical, so
    #: the identity gate still holds).
    wisdom: Optional[str] = None


def _build_session(cfg: ServeBenchConfig):
    """Build + quantize + compile the benchmark model once (offline)."""
    from ..nn.quantize import quantize_model

    case = ModelCase(cfg.model, cfg.algorithm, hw=cfg.hw, width=cfg.width, m=cfg.m)
    model = build_case_model(case)
    rng = np.random.default_rng(cfg.seed)
    calib = rng.standard_normal((max(2, cfg.request_batch), 3, cfg.hw, cfg.hw))
    if cfg.algorithm != "fp32":
        quantize_model(model, cfg.algorithm, m=cfg.m, calibration_batches=[calib])
    input_shape = (cfg.request_batch, 3, cfg.hw, cfg.hw)
    session = InferenceSession(
        model, input_shape, collect_timings=False, backend=cfg.backend,
        wisdom=cfg.wisdom,
    )
    return model, session


def _client_inputs(cfg: ServeBenchConfig, threads: int) -> List[List[np.ndarray]]:
    """Deterministic per-(thread, request) activation tensors."""
    rng = np.random.default_rng(cfg.seed + 1)
    return [
        [
            rng.standard_normal((cfg.request_batch, 3, cfg.hw, cfg.hw))
            for _ in range(cfg.requests_per_thread)
        ]
        for _ in range(threads)
    ]


def _measure(
    server: Server, name: str, inputs: List[List[np.ndarray]]
) -> Tuple[float, List[List[np.ndarray]]]:
    """Fire all clients against the server; returns (wall_s, outputs)."""
    threads = len(inputs)
    outputs: List[List[Optional[np.ndarray]]] = [
        [None] * len(reqs) for reqs in inputs
    ]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def client(tid: int) -> None:
        barrier.wait()
        try:
            for i, x in enumerate(inputs[tid]):
                outputs[tid][i] = server.infer(name, x, timeout=60.0)
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    workers = [
        threading.Thread(target=client, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for w in workers:
        w.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, outputs  # type: ignore[return-value]


def run_serve_bench(cfg: ServeBenchConfig = ServeBenchConfig()) -> dict:
    """Run the sweep and return the serve-bench JSON document."""
    model, session = _build_session(cfg)
    max_threads = max(cfg.threads)
    inputs = _client_inputs(cfg, max_threads)
    # Serial eager reference, computed once per distinct request.
    expected = [[model(x) for x in reqs] for reqs in inputs]

    entries: List[dict] = []
    for threads in cfg.threads:
        server = Server(
            max_batch=cfg.max_batch,
            max_delay_ms=cfg.max_delay_ms,
            queue_size=cfg.queue_size,
            workers_per_model=cfg.workers,
        )
        server.add_model("bench", session=session)
        # Warm the per-request geometry (coalesced sizes build their own
        # cheap tile grids on first contact during the measurement).
        server.infer("bench", inputs[0][0], timeout=60.0)
        wall, outputs = _measure(server, "bench", inputs[:threads])
        stats = server.stats()["bench"]
        server.close()
        exact = all(
            np.array_equal(outputs[tid][i], expected[tid][i])
            for tid in range(threads)
            for i in range(cfg.requests_per_thread)
        )
        images = threads * cfg.requests_per_thread * cfg.request_batch
        entries.append(
            {
                "threads": threads,
                "requests": threads * cfg.requests_per_thread,
                "images": images,
                "wall_s": wall,
                "throughput_ips": images / wall,
                "exact": exact,
                "mean_batch_images": stats["mean_batch_images"],
                "max_batch_images": stats["max_batch_images"],
                "batches": stats["batches"],
                "rejected": stats["rejected"],
                "latency": stats["latency"],
            }
        )

    by_threads = {e["threads"]: e for e in entries}
    summary: Dict[str, object] = {
        "exact": all(e["exact"] for e in entries),
    }
    if 1 in by_threads and max_threads > 1:
        summary["throughput_speedup"] = (
            by_threads[max_threads]["throughput_ips"]
            / by_threads[1]["throughput_ips"]
        )
        summary["speedup_threads"] = max_threads
    return {
        "schema": SCHEMA_VERSION,
        "config": asdict(cfg),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": entries,
        "summary": summary,
    }


def check_serve_gate(doc: dict, min_speedup: float = 1.5) -> List[str]:
    """Hard gates: bit-identity always; throughput ratio when measured.

    Returns human-readable violations; empty means PASS.  The identity
    gate compares served outputs against serial eager execution and is
    host-independent; the throughput gate fires only when the sweep
    includes 1 thread and a multi-thread point.
    """
    violations: List[str] = []
    for entry in doc["results"]:
        if not entry["exact"]:
            violations.append(
                f"{entry['threads']} client thread(s): served outputs are not "
                f"bit-identical to serial eager execution"
            )
    speedup = doc["summary"].get("throughput_speedup")
    if speedup is not None and speedup < min_speedup:
        violations.append(
            f"throughput at {doc['summary']['speedup_threads']} client threads is "
            f"{speedup:.2f}x the 1-thread throughput (gate: >= {min_speedup:.2f}x)"
        )
    return violations


def format_serve_bench(doc: dict) -> str:
    """Human-readable table for one serve-bench document."""
    cfg = doc["config"]
    lines = [
        f"Serving benchmark -- model={cfg['model']}/{cfg['algorithm']} "
        f"hw={cfg['hw']} width={cfg['width']} request_batch={cfg['request_batch']} "
        f"requests/thread={cfg['requests_per_thread']} "
        f"max_batch={cfg['max_batch']} max_delay={cfg['max_delay_ms']}ms "
        f"workers={cfg['workers']}",
        f"{'clients':>7s} {'images':>6s} {'wall':>9s} {'imgs/s':>8s} "
        f"{'batch~':>6s} {'p50':>8s} {'p95':>8s} {'exact':>6s}",
    ]
    for e in doc["results"]:
        lat = e["latency"]
        lines.append(
            f"{e['threads']:7d} {e['images']:6d} {e['wall_s'] * 1e3:7.1f}ms "
            f"{e['throughput_ips']:8.1f} {e['mean_batch_images']:6.1f} "
            f"{lat['p50_ms']:6.1f}ms {lat['p95_ms']:6.1f}ms "
            f"{'yes' if e['exact'] else 'NO':>6s}"
        )
    speedup = doc["summary"].get("throughput_speedup")
    if speedup is not None:
        lines.append(
            f"throughput speedup at {doc['summary']['speedup_threads']} clients "
            f"vs 1: {speedup:.2f}x"
        )
    lines.append(f"bit-identity vs serial eager: {'yes' if doc['summary']['exact'] else 'NO'}")
    return "\n".join(lines)


def write_json(doc: dict, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_json(path) -> dict:
    return json.loads(Path(path).read_text())
