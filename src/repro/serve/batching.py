"""Bounded request queue with dynamic micro-batching.

The queue is the heart of the serving layer: clients push
single-request activations, worker threads pull *coalesced batches* --
up to ``max_batch`` images merged along the batch axis, waiting at most
``max_delay`` seconds for stragglers after the first request arrives
(the classic dynamic-batching trade: a little latency for a lot of
whole-tensor efficiency; cf. LANCE's GPU serving shape in PAPERS.md).

Only requests with identical per-image shape ``(C, H, W)`` coalesce --
a batch is one NCHW tensor -- and coalescing takes a contiguous FIFO
prefix, so ordering between compatible requests is preserved and a
shape change simply closes the batch.

Backpressure is the queue bound: ``put`` on a full queue blocks up to
its timeout and then raises :class:`ServerOverloaded`, so a saturated
server sheds load at the edge instead of growing an unbounded backlog.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = [
    "ServerClosed",
    "ServerOverloaded",
    "InferenceFuture",
    "Request",
    "RequestQueue",
]


class ServerClosed(RuntimeError):
    """The server (or one of its model queues) has been shut down."""


class ServerOverloaded(RuntimeError):
    """Backpressure: the bounded request queue stayed full past the
    submission timeout."""


class InferenceFuture:
    """Completion handle for one submitted request."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError("inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result


@dataclass
class Request:
    """One queued inference request (an NCHW activation batch)."""

    images: np.ndarray
    future: InferenceFuture = field(default_factory=InferenceFuture)
    enqueued_at: float = field(default_factory=time.perf_counter)

    @property
    def n_images(self) -> int:
        return int(self.images.shape[0])

    @property
    def item_shape(self) -> Tuple[int, ...]:
        return tuple(self.images.shape[1:])


class RequestQueue:
    """Bounded FIFO of :class:`Request` with batch-coalescing pops."""

    def __init__(self, max_requests: int = 64) -> None:
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.max_requests = max_requests
        self._cond = threading.Condition()
        self._items: Deque[Request] = deque()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def depth(self) -> int:
        return len(self)

    def put(self, request: Request, timeout: Optional[float] = None) -> None:
        """Enqueue; blocks while full, raising :class:`ServerOverloaded`
        once ``timeout`` (None = wait forever) elapses."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise ServerClosed("request queue is closed")
                if len(self._items) < self.max_requests:
                    self._items.append(request)
                    self._cond.notify_all()
                    return
                remaining = (
                    None if deadline is None else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    raise ServerOverloaded(
                        f"request queue full ({self.max_requests} requests) "
                        f"for {timeout:.3f}s"
                    )
                self._cond.wait(remaining)

    def next_batch(
        self, max_batch: int, max_delay: float
    ) -> Optional[List[Request]]:
        """Pop the next coalesced batch (None once closed and drained).

        Blocks for the first request; then keeps collecting compatible
        requests until ``max_batch`` images are assembled or
        ``max_delay`` seconds have passed since the batch's first
        request *arrived*.  A request larger than ``max_batch`` on its
        own is served as its own batch rather than rejected.
        """
        with self._cond:
            while True:
                while not self._items:
                    if self._closed:
                        return None
                    self._cond.wait()
                # Anchor the coalescing deadline to the first request's
                # enqueue time, not to when this consumer woke up: a
                # request that already waited in the queue has spent its
                # delay budget, so its latency is bounded by queue-wait
                # plus *one* ``max_delay`` -- a stale head-of-queue
                # request is served immediately rather than paying the
                # full coalescing window again.
                deadline = self._items[0].enqueued_at + max_delay
                while True:
                    batch, images = self._peek_batch(max_batch)
                    if images >= max_batch or self._closed:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch, _ = self._peek_batch(max_batch)
                if not batch:
                    # Another consumer popped the prefix (or a close
                    # drained the queue) while we waited; go back to
                    # blocking for fresh work rather than returning [].
                    continue
                for _ in batch:
                    self._items.popleft()
                self._cond.notify_all()  # wake producers blocked on the bound
                return batch

    def _peek_batch(self, max_batch: int) -> Tuple[List[Request], int]:
        """The maximal coalescible FIFO prefix and its image count."""
        batch: List[Request] = []
        images = 0
        shape: Optional[Tuple[int, ...]] = None
        for req in self._items:
            if shape is None:
                shape = req.item_shape
            elif req.item_shape != shape:
                break
            if batch and images + req.n_images > max_batch:
                break
            batch.append(req)
            images += req.n_images
        return batch, images

    def close(self) -> None:
        """Refuse new requests; pending ones may still be drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_rejected(self) -> List[Request]:
        """Pop every pending request (used at shutdown to fail them)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return items
