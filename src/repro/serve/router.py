"""Process-sharded serving: the thread tier's front-end over a worker pool.

:class:`ProcServer` keeps everything the thread-based
:class:`~repro.serve.server.Server` already does well -- per-model
bounded :class:`~repro.serve.batching.RequestQueue` backpressure,
dynamic micro-batching, per-model stats and metrics export -- and swaps
the execution layer: instead of a shared in-process
:class:`~repro.runtime.session.InferenceSession`, each coalesced batch
is shipped to one of N worker *processes*
(:class:`~repro.serve.procs.WorkerPool`), sidestepping the GIL ceiling
that caps the thread tier no matter how fast one fused step is.

The seam is :class:`RemoteSession`: it duck-types the session surface
the batching machinery consumes (``run`` / ``runs`` / ``images_seen`` /
``cache_stats`` / ``input_shape``), so ``ServedModel`` and all of its
telemetry work unchanged -- dispatcher threads block in
``pool.run(...)`` where they used to block in ``session.run(...)``, and
the GIL releases around the pipe/shared-memory wait, so N dispatchers
keep N worker processes busy concurrently.

Admission control layers on the queue bound: when *zero* workers are
live (crash storm mid-restart), submits shed immediately with
:class:`~repro.serve.batching.ServerOverloaded` instead of queueing
work nobody can execute -- the queue bound alone would accept
``queue_size`` doomed requests first.

Bit-identity survives sharding: each worker compiles the same pickled
model for the same geometry and the integer pipeline is exact, so
which worker served a batch is unobservable in the output bytes.
Cross-process tuner coordination is inherited from the wisdom layer --
pass ``wisdom=`` and every worker session consults one flocked
:class:`~repro.tuning.wisdom.WisdomFile`, converging on the first
persisted algorithm choice per geometry.
"""

from __future__ import annotations

import pickle
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.layers import Layer
from ..obs.metrics import MetricsRegistry
from .batching import ServerOverloaded
from .procs import WorkerPool
from .server import Server

__all__ = ["ProcServer", "RemoteSession"]


class RemoteSession:
    """Session facade whose ``run`` executes on a pool worker.

    Implements exactly the surface ``ServedModel`` consumes from a
    compiled session.  Counters are parent-side (every ``run`` through
    this facade), while ``cache_stats`` aggregates the plan-cache
    counters the workers piggyback on their replies -- the parent holds
    no plans of its own.
    """

    def __init__(
        self, name: str, pool: WorkerPool, input_shape: Tuple[int, ...]
    ) -> None:
        self.name = name
        self.input_shape = tuple(input_shape)
        self._pool = pool
        self._lock = threading.Lock()
        self._runs = 0
        self._images = 0

    def run(self, images: np.ndarray) -> np.ndarray:
        y = self._pool.run(self.name, images)
        with self._lock:
            self._runs += 1
            self._images += int(images.shape[0])
        return y

    @property
    def runs(self) -> int:
        with self._lock:
            return self._runs

    @property
    def images_seen(self) -> int:
        with self._lock:
            return self._images

    def cache_stats(self) -> Dict[str, int]:
        return self._pool.aggregate_cache_stats()


class ProcServer(Server):
    """Multi-process model server: router in the parent, sessions in workers.

    Typical use::

        server = ProcServer(procs=4, wisdom="wisdom.json")
        server.add_model("resnet", model, input_shape=(8, 3, 32, 32))
        y = server.infer("resnet", images)   # bytewise == eager model(x)
        ...
        server.close()

    Differences from :class:`~repro.serve.server.Server`:

    * ``add_model`` requires ``model`` + ``input_shape`` (the model is
      pickled once and each worker compiles its own session; a prebuilt
      local session cannot be sharded).
    * ``workers_per_model`` defaults to ``procs`` so enough dispatcher
      threads exist to keep every worker process busy.
    * ``wisdom`` / ``tune_workers`` configure the *worker* sessions; the
      parent runs no tuner thread (measurement happens where execution
      happens, coordinated through the shared wisdom file).
    * ``close`` additionally stops the worker pool.
    """

    def __init__(
        self,
        procs: int = 2,
        max_batch: int = 16,
        max_delay_ms: float = 2.0,
        queue_size: int = 64,
        workers_per_model: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        mp_context: str = "spawn",
        backend: Optional[str] = None,
        wisdom: Optional[object] = None,
        tune_workers: bool = False,
        transport: str = "auto",
        run_timeout_s: float = 60.0,
    ) -> None:
        super().__init__(
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            queue_size=queue_size,
            workers_per_model=(
                workers_per_model if workers_per_model is not None else procs
            ),
            registry=registry,
            wisdom=None,  # worker sessions own tuning; no parent-side tuner
            background_tuner=False,
        )
        self.procs = procs
        self._pool = WorkerPool(
            procs,
            mp_context=mp_context,
            backend=backend,
            wisdom=wisdom,
            tune=tune_workers,
            transport=transport,
            run_timeout_s=run_timeout_s,
            registry=self.registry,
        )

    # -- deployment -----------------------------------------------------
    def add_model(
        self,
        name: str,
        model: Optional[Layer] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        session=None,
        workers: Optional[int] = None,
    ):
        """Deploy ``model`` to every worker process under ``name``.

        The model is pickled once here (weights + quantization
        parameters travel; compiled plans do not) and each worker
        compiles its own session -- LoWino's prepare-once applied per
        process.  Returns the parent-side :class:`RemoteSession`.
        """
        if session is not None:
            raise ValueError(
                "ProcServer compiles sessions inside its workers; pass "
                "model + input_shape, not a prebuilt session"
            )
        if model is None or input_shape is None:
            raise ValueError("add_model needs a model + input_shape")
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool.deploy(name, payload, tuple(input_shape))
        remote = RemoteSession(name, self._pool, tuple(input_shape))
        return super().add_model(name, session=remote, workers=workers)

    # -- request path ---------------------------------------------------
    def submit(self, name, images, timeout=0.0):
        """As :meth:`Server.submit`, plus pool-level admission control:
        with zero live workers the request is shed immediately (counted
        as a rejection) rather than queued for nobody."""
        entry = self._entry(name)
        if self._pool.live_count() == 0:
            entry.stats.record_rejection()
            raise ServerOverloaded(
                f"model {name!r}: no live worker processes "
                f"(pool restarts: {self._pool.restarts})"
            )
        return super().submit(name, images, timeout=timeout)

    # -- introspection ---------------------------------------------------
    def selection(self, name: str) -> Dict[int, Dict[str, str]]:
        """Per-worker applied algorithm selections for ``name`` -- the
        cross-process wisdom-convergence gate asserts these are
        identical across workers."""
        self._entry(name)  # raise KeyError for unknown models
        return self._pool.selection(name)

    def pool_stats(self) -> Dict[str, object]:
        """Worker-pool snapshot: liveness, restarts, per-worker counters."""
        return self._pool.stats()

    # -- lifecycle -------------------------------------------------------
    def close(self, drain: bool = True, join_timeout: float = 10.0) -> None:
        """Drain the queues, stop dispatchers, then stop the pool."""
        super().close(drain=drain, join_timeout=join_timeout)
        self._pool.stop()
