"""Concurrency-safe serving layer over compiled inference sessions.

The runtime's offline/online split (prepare plans once, execute many
times) pays off at deployment when one prepared session serves many
concurrent callers.  This package provides that deployment shape:

* :class:`~repro.serve.server.Server` -- one compiled
  :class:`~repro.runtime.session.InferenceSession` per model, worker
  threads, synchronous (:meth:`~repro.serve.server.Server.infer`) and
  asynchronous (:meth:`~repro.serve.server.Server.submit`) request
  paths;
* :mod:`~repro.serve.batching` -- the bounded request queue with
  dynamic micro-batching (coalesce up to ``max_batch`` images or
  ``max_delay_ms``, split results back per request) and the
  backpressure / closed-server error types;
* :mod:`~repro.serve.stats` -- per-model latency distributions, queue
  depth, and batch-coalescing counters;
* :mod:`~repro.serve.bench` -- ``repro serve-bench``: throughput vs
  client-thread count with a hard bit-identity gate against serial
  eager execution.

Quick use::

    from repro.serve import Server
    server = Server(max_batch=16, max_delay_ms=2.0)
    server.add_model("resnet", quantized_model, input_shape=(8, 3, 32, 32))
    logits = server.infer("resnet", images)
    server.stats()["resnet"]["latency"]
    server.close()
"""

from .batching import InferenceFuture, Request, RequestQueue, ServerClosed, ServerOverloaded
from .server import ServedModel, Server
from .stats import LatencyStats, ModelStats

__all__ = [
    "InferenceFuture",
    "LatencyStats",
    "ModelStats",
    "Request",
    "RequestQueue",
    "ServedModel",
    "Server",
    "ServerClosed",
    "ServerOverloaded",
]
