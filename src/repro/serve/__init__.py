"""Concurrency-safe serving layer over compiled inference sessions.

The runtime's offline/online split (prepare plans once, execute many
times) pays off at deployment when one prepared session serves many
concurrent callers.  This package provides that deployment shape:

* :class:`~repro.serve.server.Server` -- one compiled
  :class:`~repro.runtime.session.InferenceSession` per model, worker
  threads, synchronous (:meth:`~repro.serve.server.Server.infer`) and
  asynchronous (:meth:`~repro.serve.server.Server.submit`) request
  paths;
* :mod:`~repro.serve.batching` -- the bounded request queue with
  dynamic micro-batching (coalesce up to ``max_batch`` images or
  ``max_delay_ms``, split results back per request) and the
  backpressure / closed-server error types;
* :mod:`~repro.serve.stats` -- per-model latency distributions, queue
  depth, and batch-coalescing counters;
* :mod:`~repro.serve.bench` -- ``repro serve-bench``: throughput vs
  client-thread count with a hard bit-identity gate against serial
  eager execution;
* :mod:`~repro.serve.workload` -- seeded open-loop traffic traces:
  Poisson / bursty (MMPP) arrivals, heavy-tailed request-size mixes,
  multi-model tenancy, with schedule digests proving determinism;
* :mod:`~repro.serve.loadgen` -- ``repro load-bench``: replays traces
  open-loop (virtual clock for tests, real-time for benchmarking) and
  reports SLO-style p50/p95/p99, goodput vs offered load, and shed
  rate from the obs registry's reservoir histograms;
* :mod:`~repro.serve.procs` / :mod:`~repro.serve.router` -- the
  process tier: :class:`~repro.serve.router.ProcServer` shards
  execution across N worker processes (each compiling its own session
  from one pickled model), with shared-memory tensor transport,
  restart-on-crash health checks, and cross-process tuner coordination
  through one shared wisdom file.  ``repro serve-bench --procs``
  sweeps worker counts past the single-process GIL ceiling.

Quick use::

    from repro.serve import Server
    server = Server(max_batch=16, max_delay_ms=2.0)
    server.add_model("resnet", quantized_model, input_shape=(8, 3, 32, 32))
    logits = server.infer("resnet", images)
    server.stats()["resnet"]["latency"]
    server.close()
"""

from .batching import InferenceFuture, Request, RequestQueue, ServerClosed, ServerOverloaded
from .loadgen import LoadBenchConfig, ReplayResult, replay, run_load_bench
from .procs import RemoteExecutionError, SlabRing, WorkerError, WorkerPool
from .router import ProcServer, RemoteSession
from .server import ServedModel, Server
from .stats import LatencyStats, ModelStats
from .workload import (
    BurstyArrivals,
    FixedSizes,
    LognormalSizes,
    ModelWorkload,
    PoissonArrivals,
    Trace,
    TraceEvent,
    UniformArrivals,
    ZipfSizes,
    build_trace,
)

__all__ = [
    "BurstyArrivals",
    "FixedSizes",
    "InferenceFuture",
    "LatencyStats",
    "LoadBenchConfig",
    "LognormalSizes",
    "ModelStats",
    "ModelWorkload",
    "PoissonArrivals",
    "ProcServer",
    "RemoteExecutionError",
    "RemoteSession",
    "ReplayResult",
    "Request",
    "RequestQueue",
    "ServedModel",
    "Server",
    "ServerClosed",
    "ServerOverloaded",
    "SlabRing",
    "Trace",
    "TraceEvent",
    "UniformArrivals",
    "WorkerError",
    "WorkerPool",
    "ZipfSizes",
    "build_trace",
    "replay",
    "run_load_bench",
]
