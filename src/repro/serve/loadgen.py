"""Open-loop trace replay and the ``repro load-bench`` harness.

:mod:`repro.serve.workload` turns a seeded spec into a deterministic
:class:`~repro.serve.workload.Trace`; this module *replays* a trace
against a live :class:`~repro.serve.server.Server` and reports SLO-style
results -- p50/p95/p99 latency (from the obs registry's reservoir
histograms, not ad-hoc timing lists), goodput vs offered load, the shed
rate from :class:`~repro.serve.batching.ServerOverloaded` backpressure,
and the micro-batcher's coalescing width.  Shed counts mean exactly
that: ``Server.submit`` records a rejection only when the bounded queue
refused the request with ``ServerOverloaded`` -- a ``ServerClosed`` or
an unexpected error propagates uncounted, so the shed rates gated by
:func:`check_load_gate` are not inflated by shutdown races.

Two replay modes:

* **virtual** (``mode="virtual"``) -- wall-clock-free: events are
  submitted in schedule order as fast as the queue admits them.  The
  schedule still fixes *what* is served (tenants, sizes, ordering,
  payload bytes), so tests get full determinism without sleeping
  through the trace horizon.  With ``submit_timeout=None`` the
  generator blocks on a full queue (no sheds -- the bit-identity
  configuration); with ``submit_timeout=0.0`` it sheds instantly (the
  overload configuration).
* **real-time** (``mode="realtime"``) -- each event is submitted at its
  scheduled wall-clock instant (optionally compressed by ``speed``),
  *without* waiting for earlier responses.  This is the open-loop
  discipline: offered load does not adapt to the server, so queueing
  tails and shed rates mean what they would in production.

``repro load-bench`` wraps three scenarios (Poisson, bursty
multi-model, overload) into a schema-versioned JSON document persisted
as ``benchmarks/BENCH_serve_quick.json`` -- the serve perf trajectory
-- with ``--baseline`` / ``--update-baseline`` gating like
``repro bench``:

* **hard gates** (host-independent): every checked scenario bitwise
  matches serial eager execution; paced scenarios shed nothing; the
  overload scenario sheds *and* still completes work; repeated replays
  of the same seed produce identical schedules and bitwise-identical
  outputs.
* **baseline gates**: schedule digests must equal the baseline's
  (seeded RNG, stable across hosts), the overload shed rate must stay
  within an absolute tolerance, and each scenario's p95 may not exceed
  ``p95_factor`` times the baseline p95 (generous by design -- a smoke
  gate against order-of-magnitude tail regressions, not a wall-clock
  comparison).  Output digests are recorded but *not* gated across
  hosts: the FP32 classifier head's float reductions may differ across
  BLAS builds, so cross-run output identity is asserted within one
  process instead.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import Histogram, nearest_rank
from ..runtime.bench import ModelCase, build_case_model
from ..runtime.session import InferenceSession
from .batching import ServerOverloaded
from .server import Server
from .workload import (
    BurstyArrivals,
    FixedSizes,
    ModelWorkload,
    PoissonArrivals,
    Trace,
    TraceEvent,
    ZipfSizes,
    build_trace,
)

__all__ = [
    "DEFAULT_BENCH_PATH",
    "LoadBenchConfig",
    "ReplayResult",
    "check_load_gate",
    "event_payload",
    "format_load_bench",
    "load_json",
    "output_digest",
    "replay",
    "run_load_bench",
    "slo_report",
    "write_json",
]

#: JSON document version; bump on breaking schema changes.
SCHEMA_VERSION = 1

SEED = 2021

#: Quantiles reported per model and aggregate (milliseconds).
SLO_QUANTILES = (50.0, 90.0, 95.0, 99.0)

#: The serving layer's latency reservoir (one per model label).
LATENCY_METRIC = "repro_request_latency_seconds"

#: Where ``repro load-bench`` persists the serve perf trajectory.
DEFAULT_BENCH_PATH = "benchmarks/BENCH_serve_quick.json"


# ---------------------------------------------------------------------------
# payloads and replay
# ---------------------------------------------------------------------------


def event_payload(
    trace: Trace, event: TraceEvent, item_shape: Tuple[int, ...]
) -> np.ndarray:
    """The deterministic activation tensor for one trace event.

    Derived from ``(trace.seed, event.payload_seed)`` alone, so the
    serial eager reference and any number of replays materialize the
    same bytes without shipping tensors around.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([trace.seed, 0x10AD, event.payload_seed])
    )
    return rng.standard_normal((event.n_images, *item_shape))


@dataclass
class ReplayResult:
    """Outcome of one trace replay against a server."""

    mode: str
    wall_s: float
    #: request_id -> served output rows (completed requests only).
    outputs: Dict[int, np.ndarray]
    #: request_ids rejected by backpressure at submit time.
    shed_ids: List[int]

    @property
    def completed(self) -> int:
        return len(self.outputs)

    @property
    def shed(self) -> int:
        return len(self.shed_ids)


def replay(
    server: Server,
    trace: Trace,
    mode: str = "virtual",
    submit_timeout: Optional[float] = None,
    result_timeout: float = 120.0,
    speed: float = 1.0,
) -> ReplayResult:
    """Drive ``server`` with ``trace``, open-loop; returns the outcomes.

    ``submit_timeout`` is the queue-full behavior: ``None`` blocks (no
    sheds), ``0.0`` sheds instantly, a positive value bounds the wait.
    ``speed`` compresses the real-time schedule (2.0 = twice as fast);
    it is ignored in virtual mode.
    """
    if mode not in ("virtual", "realtime"):
        raise ValueError(f"mode must be 'virtual' or 'realtime', got {mode!r}")
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    shapes = {name: tuple(server.session(name).input_shape[1:]) for name in trace.models}
    pending: List[Tuple[TraceEvent, object]] = []
    shed_ids: List[int] = []
    t0 = time.perf_counter()
    for event in trace.events:
        if mode == "realtime":
            target = t0 + event.t / speed
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        x = event_payload(trace, event, shapes[event.model])
        try:
            future = server.submit(event.model, x, timeout=submit_timeout)
        except ServerOverloaded:
            shed_ids.append(event.request_id)
            continue
        pending.append((event, future))
    outputs: Dict[int, np.ndarray] = {}
    for event, future in pending:
        outputs[event.request_id] = future.result(timeout=result_timeout)
    wall = time.perf_counter() - t0
    return ReplayResult(mode=mode, wall_s=wall, outputs=outputs, shed_ids=shed_ids)


def output_digest(outputs: Dict[int, np.ndarray]) -> str:
    """SHA-256 over (request_id, output bytes) in request order."""
    h = hashlib.sha256()
    for rid in sorted(outputs):
        h.update(int(rid).to_bytes(8, "little"))
        h.update(np.ascontiguousarray(outputs[rid]).tobytes())
    return h.hexdigest()


def eager_outputs(
    models: Dict[str, object], trace: Trace, shapes: Dict[str, Tuple[int, ...]]
) -> Dict[int, np.ndarray]:
    """Serial eager reference for every event (the bit-identity oracle)."""
    out: Dict[int, np.ndarray] = {}
    for event in trace.events:
        x = event_payload(trace, event, shapes[event.model])
        out[event.request_id] = models[event.model](x)
    return out


# ---------------------------------------------------------------------------
# SLO reporting (sourced from the obs registry's reservoir histograms)
# ---------------------------------------------------------------------------


def _latency_doc(hist: Optional[Histogram]) -> Dict[str, float]:
    """Quantiles/mean/max in milliseconds from one reservoir histogram."""
    if hist is None or hist.count == 0:
        doc = {f"p{q:g}_ms": 0.0 for q in SLO_QUANTILES}
        doc.update(count=0, mean_ms=0.0, max_ms=0.0)
        return doc
    doc = {
        f"{key}_ms": value * 1e3 for key, value in hist.quantiles(SLO_QUANTILES).items()
    }
    doc["count"] = hist.count
    doc["mean_ms"] = hist.total / hist.count * 1e3
    doc["max_ms"] = hist.max * 1e3
    return doc


def slo_report(server: Server, trace: Trace, result: ReplayResult) -> Dict[str, object]:
    """SLO-style summary of one replay: latency tails, goodput, sheds.

    Latency quantiles are read from the server registry's seeded
    Algorithm-R reservoirs (``repro_request_latency_seconds{model=...}``)
    -- the same metrics the Prometheus export serves -- so the numbers
    gated here are the numbers operators would alert on.
    """
    offered = trace.per_model()
    stats = server.stats()
    shed_by_model: Dict[str, int] = {name: 0 for name in trace.models}
    events_by_id = {e.request_id: e for e in trace.events}
    for rid in result.shed_ids:
        shed_by_model[events_by_id[rid].model] += 1
    completed_images = 0
    completed_by_model: Dict[str, Dict[str, int]] = {
        name: {"requests": 0, "images": 0} for name in trace.models
    }
    for rid in result.outputs:
        event = events_by_id[rid]
        entry = completed_by_model[event.model]
        entry["requests"] += 1
        entry["images"] += event.n_images
        completed_images += event.n_images
    per_model: Dict[str, Dict[str, object]] = {}
    merged_samples: List[float] = []
    for name in trace.models:
        hist = server.registry.find(LATENCY_METRIC, model=name)
        if isinstance(hist, Histogram):
            merged_samples.extend(hist.samples())
        model_stats = stats.get(name, {})
        shed = shed_by_model[name]
        n_offered = int(offered[name]["requests"])
        per_model[name] = {
            "offered_requests": n_offered,
            "offered_images": int(offered[name]["images"]),
            "completed_requests": completed_by_model[name]["requests"],
            "completed_images": completed_by_model[name]["images"],
            "shed_requests": shed,
            "shed_rate": shed / n_offered if n_offered else 0.0,
            "latency": _latency_doc(hist if isinstance(hist, Histogram) else None),
            "mean_batch_images": model_stats.get("mean_batch_images", 0.0),
            "max_batch_images": model_stats.get("max_batch_images", 0),
            "batches": model_stats.get("batches", 0),
        }
    merged_samples.sort()
    aggregate_latency = {
        f"p{q:g}_ms": nearest_rank(merged_samples, q) * 1e3 for q in SLO_QUANTILES
    }
    n_events = len(trace.events)
    shed = result.shed
    batches = sum(int(per_model[m]["batches"]) for m in per_model)
    return {
        "offered_requests": n_events,
        "offered_images": trace.total_images,
        "offered_rps": trace.offered_rps(),
        "wall_s": result.wall_s,
        "completed_requests": result.completed,
        "completed_images": completed_images,
        "goodput_rps": result.completed / result.wall_s if result.wall_s else 0.0,
        "goodput_ips": completed_images / result.wall_s if result.wall_s else 0.0,
        "shed_requests": shed,
        "shed_rate": shed / n_events if n_events else 0.0,
        "mean_batch_images": (completed_images / batches) if batches else 0.0,
        "latency_ms": aggregate_latency,
        "per_model": per_model,
    }


# ---------------------------------------------------------------------------
# the load-bench document
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadBenchConfig:
    """One ``repro load-bench`` run: tenants, rates, replay knobs.

    ``tenants`` are ``(name, model_family, algorithm)`` triples sharing
    one geometry (``width`` / ``hw`` / ``m``); the first tenant carries
    the bursty and overload scenarios.  Rates are requests/second
    against the *virtual* trace horizon -- in virtual mode they shape
    the schedule's burst structure, not wall time.
    """

    tenants: Tuple[Tuple[str, str, str], ...] = (
        ("vgg", "vgg", "lowino"),
        ("resnet", "resnet", "int8_upcast"),
    )
    width: int = 8
    hw: int = 8
    m: int = 2
    horizon_s: float = 2.0
    base_rate: float = 30.0
    burst_rate: float = 120.0
    idle_rate: float = 8.0
    mean_burst_s: float = 0.25
    mean_idle_s: float = 0.5
    zipf_alpha: float = 1.3
    max_request_images: int = 6
    overload_rate: float = 600.0
    overload_queue: int = 16
    max_batch: int = 16
    max_delay_ms: float = 2.0
    queue_size: int = 256
    workers: int = 1
    mode: str = "virtual"
    speed: float = 1.0
    seed: int = SEED


@dataclass(frozen=True)
class _Scenario:
    name: str
    workloads: Tuple[ModelWorkload, ...]
    blocking: bool  # True: submit_timeout=None (no sheds); False: shed at 0s
    queue_size: Optional[int] = None
    repeats: int = 1


def _scenarios(cfg: LoadBenchConfig) -> List[_Scenario]:
    first = cfg.tenants[0][0]
    sizes = ZipfSizes(alpha=cfg.zipf_alpha, max_images=cfg.max_request_images)
    scenarios = [
        _Scenario(
            name="poisson",
            workloads=(ModelWorkload(first, PoissonArrivals(cfg.base_rate), sizes),),
            blocking=True,
            repeats=2,  # proves same-seed replays are bitwise identical
        )
    ]
    if len(cfg.tenants) > 1:
        bursty = BurstyArrivals(
            burst_rate=cfg.burst_rate,
            idle_rate=cfg.idle_rate,
            mean_burst_s=cfg.mean_burst_s,
            mean_idle_s=cfg.mean_idle_s,
        )
        workloads = [ModelWorkload(first, bursty, sizes)]
        for name, _, _ in cfg.tenants[1:]:
            workloads.append(
                ModelWorkload(name, PoissonArrivals(max(cfg.base_rate / 2, 1.0)), sizes)
            )
        scenarios.append(
            _Scenario(name="bursty-multi", workloads=tuple(workloads), blocking=True)
        )
    scenarios.append(
        _Scenario(
            name="overload",
            workloads=(
                ModelWorkload(first, PoissonArrivals(cfg.overload_rate), FixedSizes(2)),
            ),
            blocking=False,
            queue_size=cfg.overload_queue,
        )
    )
    return scenarios


def _build_tenants(cfg: LoadBenchConfig, wisdom=None):
    """Compile + calibrate one (model, session) per tenant (offline)."""
    from ..nn.quantize import quantize_model

    tenants: Dict[str, Tuple[object, InferenceSession]] = {}
    for name, family, algorithm in cfg.tenants:
        case = ModelCase(family, algorithm, hw=cfg.hw, width=cfg.width, m=cfg.m)
        model = build_case_model(case)
        rng = np.random.default_rng(cfg.seed)
        calib = rng.standard_normal((2, 3, cfg.hw, cfg.hw))
        if algorithm != "fp32":
            quantize_model(model, algorithm, m=cfg.m, calibration_batches=[calib])
        session = InferenceSession(
            model, (2, 3, cfg.hw, cfg.hw), collect_timings=False, wisdom=wisdom
        )
        # Warm the small-batch geometries here (plan/tile-grid builds),
        # so scenario replays measure steady-state serving, and the
        # per-scenario metrics registries never see warm-up samples.
        session.run(np.zeros((1, 3, cfg.hw, cfg.hw)))
        session.run(np.zeros((2, 3, cfg.hw, cfg.hw)))
        tenants[name] = (model, session)
    return tenants


def _run_scenario(
    cfg: LoadBenchConfig, scenario: _Scenario, tenants
) -> Dict[str, object]:
    trace = build_trace(scenario.workloads, cfg.horizon_s, cfg.seed)
    shapes = {name: (3, cfg.hw, cfg.hw) for name in trace.models}
    expected = eager_outputs(
        {name: tenants[name][0] for name in trace.models}, trace, shapes
    )
    submit_timeout = None if scenario.blocking else 0.0
    digests: List[str] = []
    entry: Dict[str, object] = {}
    for _ in range(max(1, scenario.repeats)):
        server = Server(
            max_batch=cfg.max_batch,
            max_delay_ms=cfg.max_delay_ms,
            queue_size=scenario.queue_size or cfg.queue_size,
            workers_per_model=cfg.workers,
        )
        for name in trace.models:
            server.add_model(name, session=tenants[name][1])
        result = replay(
            server,
            trace,
            mode=cfg.mode,
            submit_timeout=submit_timeout,
            speed=cfg.speed,
        )
        report = slo_report(server, trace, result)
        server.close()
        exact = all(
            np.array_equal(result.outputs[rid], expected[rid])
            for rid in result.outputs
        )
        digests.append(output_digest(result.outputs))
        entry = {
            "name": scenario.name,
            "mode": cfg.mode,
            "blocking_submit": scenario.blocking,
            "arrivals": " + ".join(
                type(w.arrivals).__name__ for w in scenario.workloads
            ),
            "models": trace.models,
            "schedule_digest": trace.digest(),
            "output_digest": digests[-1],
            "exact": exact,
            **report,
        }
    entry["deterministic_outputs"] = len(set(digests)) == 1
    entry["replays"] = len(digests)
    return entry


def run_load_bench(cfg: LoadBenchConfig = LoadBenchConfig(), wisdom=None) -> dict:
    """Run the scenario sweep and return the load-bench JSON document.

    ``wisdom`` (a path or :class:`~repro.tuning.wisdom.WisdomFile`) makes
    every tenant session apply tuned algorithm choices at lowering time.
    It is deliberately *not* part of :class:`LoadBenchConfig`: selection
    swaps engines, not semantics (bit-identity and schedule digests are
    unchanged), so a wisdom-warmed run stays comparable to -- and
    gateable against -- a baseline recorded without one.  The document
    records it top-level, outside the config-compat comparison.
    """
    tenants = _build_tenants(cfg, wisdom=wisdom)
    entries = [_run_scenario(cfg, s, tenants) for s in _scenarios(cfg)]
    combined = hashlib.sha256(
        "".join(e["schedule_digest"] for e in entries).encode()
    ).hexdigest()
    by_name = {e["name"]: e for e in entries}
    overload = by_name.get("overload")
    summary: Dict[str, object] = {
        "exact": all(e["exact"] for e in entries),
        "deterministic_outputs": all(e["deterministic_outputs"] for e in entries),
        "schedule_digest": combined,
        "paced_shed_requests": sum(
            e["shed_requests"] for e in entries if e["blocking_submit"]
        ),
        "p95_ms": {e["name"]: e["latency_ms"]["p95_ms"] for e in entries},
        "shed_rate": {e["name"]: e["shed_rate"] for e in entries},
        "goodput_ips": {e["name"]: e["goodput_ips"] for e in entries},
    }
    if overload is not None:
        summary["overload_sheds"] = overload["shed_requests"] > 0
        summary["overload_completed"] = overload["completed_requests"]
    return {
        "schema": SCHEMA_VERSION,
        "config": asdict(cfg),
        "wisdom": wisdom is not None,
        "numpy": np.__version__,
        "machine": platform.machine(),
        "scenarios": entries,
        "summary": summary,
    }


# ---------------------------------------------------------------------------
# gating, formatting, persistence
# ---------------------------------------------------------------------------


def _jsonify(value):
    """Normalize tuples/np scalars the way a JSON round-trip would."""
    return json.loads(json.dumps(value, default=float))


def check_load_gate(
    doc: dict,
    baseline: Optional[dict] = None,
    p95_factor: float = 4.0,
    shed_tolerance: float = 0.2,
) -> List[str]:
    """Gate one load-bench document, optionally against a baseline.

    Hard (host-independent) gates: bit-identity vs serial eager on
    every scenario, zero sheds on paced scenarios, sheds *plus*
    completed work on the overload scenario, and bitwise-identical
    outputs across same-seed replays.  Baseline gates: identical
    schedule digests, overload shed rate within ``shed_tolerance``
    (absolute), and per-scenario p95 below ``p95_factor`` times the
    baseline (``p95_factor <= 0`` disables the latency gate).
    Returns human-readable violations; empty means PASS.
    """
    violations: List[str] = []
    for entry in doc["scenarios"]:
        name = entry["name"]
        if not entry["exact"]:
            violations.append(
                f"{name}: served outputs are not bit-identical to serial eager "
                f"execution"
            )
        if not entry["deterministic_outputs"]:
            violations.append(
                f"{name}: same-seed replays produced different output digests"
            )
        if entry["blocking_submit"] and entry["shed_requests"]:
            violations.append(
                f"{name}: {entry['shed_requests']} requests shed on a paced "
                f"(blocking-submit) scenario"
            )
        if not entry["blocking_submit"]:
            if entry["shed_requests"] == 0:
                violations.append(
                    f"{name}: offered load above capacity shed nothing -- "
                    f"backpressure is not engaging"
                )
            if entry["completed_requests"] == 0:
                violations.append(
                    f"{name}: goodput collapsed to zero under overload"
                )
    if baseline is None:
        return violations
    if _jsonify(doc.get("config")) != _jsonify(baseline.get("config")):
        return violations + [
            "baseline incompatible with this run (config differs); regenerate "
            "it with --update-baseline"
        ]
    base_by_name = {e["name"]: e for e in baseline.get("scenarios", [])}
    for entry in doc["scenarios"]:
        base = base_by_name.get(entry["name"])
        if base is None:
            continue
        name = entry["name"]
        if entry["schedule_digest"] != base["schedule_digest"]:
            violations.append(
                f"{name}: schedule digest {entry['schedule_digest'][:12]}... differs "
                f"from baseline {base['schedule_digest'][:12]}... (same seed must "
                f"yield an identical schedule)"
            )
        if not entry["blocking_submit"]:
            drift = abs(entry["shed_rate"] - base["shed_rate"])
            if drift > shed_tolerance:
                violations.append(
                    f"{name}: shed rate {entry['shed_rate']:.2f} drifted "
                    f"{drift:.2f} from baseline {base['shed_rate']:.2f} "
                    f"(tolerance {shed_tolerance:.2f})"
                )
        if p95_factor > 0:
            cur_p95 = entry["latency_ms"]["p95_ms"]
            base_p95 = base["latency_ms"]["p95_ms"]
            if base_p95 > 0 and cur_p95 > base_p95 * p95_factor:
                violations.append(
                    f"{name}: p95 {cur_p95:.2f}ms > {p95_factor:.1f}x baseline "
                    f"{base_p95:.2f}ms"
                )
    return violations


def format_load_bench(doc: dict) -> str:
    """Human-readable table for one load-bench document."""
    cfg = doc["config"]
    tenants = ", ".join(f"{n}={f}/{a}" for n, f, a in cfg["tenants"])
    lines = [
        f"Load benchmark -- mode={cfg['mode']} seed={cfg['seed']} "
        f"horizon={cfg['horizon_s']}s tenants[{tenants}] "
        f"hw={cfg['hw']} width={cfg['width']} m={cfg['m']} "
        f"max_batch={cfg['max_batch']} max_delay={cfg['max_delay_ms']}ms",
        f"{'scenario':>13s} {'req':>5s} {'offered':>8s} {'goodput':>8s} "
        f"{'shed%':>6s} {'batch~':>6s} {'p50':>8s} {'p95':>8s} {'p99':>8s} "
        f"{'exact':>6s}",
    ]
    for e in doc["scenarios"]:
        lat = e["latency_ms"]
        exact = "yes" if e["exact"] else "NO"
        lines.append(
            f"{e['name']:>13s} {e['offered_requests']:5d} "
            f"{e['offered_rps']:6.1f}/s {e['goodput_ips']:6.1f}/s "
            f"{e['shed_rate'] * 100:5.1f}% {e['mean_batch_images']:6.1f} "
            f"{lat['p50_ms']:6.2f}ms {lat['p95_ms']:6.2f}ms {lat['p99_ms']:6.2f}ms "
            f"{exact:>6s}"
        )
    s = doc["summary"]
    lines.append(
        f"bit-identity vs serial eager: {'yes' if s['exact'] else 'NO'}; "
        f"same-seed replay outputs identical: "
        f"{'yes' if s['deterministic_outputs'] else 'NO'}"
    )
    lines.append(f"schedule digest: {s['schedule_digest'][:16]}...")
    return "\n".join(lines)


def write_json(doc: dict, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_json(path) -> dict:
    return json.loads(Path(path).read_text())
