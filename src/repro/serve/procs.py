"""Worker processes and pickle-free tensor transport for the proc tier.

The thread-based :class:`~repro.serve.server.Server` caps out at the
GIL: however fast one fused step is, one Python process executes one
interpreter instruction stream.  This module supplies the pieces the
process tier (:class:`~repro.serve.router.ProcServer`) is built from:

* :class:`SlabRing` -- a ring of fixed-size ``multiprocessing.shared_memory``
  slabs.  Request and response tensors travel as raw NCHW bytes plus a
  tiny header (slot index, shape, dtype) over the control pipe -- no
  pickling of array payloads on the hot path.  Tensors that do not fit
  a slab (or hosts without ``shared_memory``) fall back transparently
  to plain-pipe byte transport.
* :class:`WorkerProcess` -- the parent-side handle of one worker: a
  spawned process owning its *own* compiled
  :class:`~repro.runtime.session.InferenceSession` per deployed model
  (LoWino's offline/online split at process granularity: prepare once
  per worker, serve many), a duplex control pipe, and a private slab
  ring.
* :class:`WorkerPool` -- N workers behind a free-list, with health
  checks and restart-on-crash: a dead or wedged worker is terminated,
  respawned, and re-deployed with every model; its in-flight batch
  fails over to another live worker (the request bytes still live in
  the parent, so failover is a retry, not a loss).

Bit-identity is preserved by construction: every worker compiles the
same pickled model for the same input geometry, and the runtime's
integer pipeline is exact, so a batch served by *any* worker is
bytewise the serial eager result.

Cross-process tuner coordination comes for free from the wisdom layer:
every worker session points at one shared
:class:`~repro.tuning.wisdom.WisdomFile` path, and the flock +
disk-wins merge makes whoever persists a geometry's choice first
decide it for the whole flock -- N processes converge on identical
algorithm selections without any extra protocol.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # Python >= 3.8 everywhere we run; guarded for exotic platforms.
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - non-standard build
    _shm = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_SLOT_BYTES",
    "RemoteExecutionError",
    "SlabRing",
    "WorkerError",
    "WorkerPool",
    "WorkerProcess",
]

#: Default slab size: comfortably holds a coalesced float64 batch of
#: ``16 x 3 x 64 x 64`` images (~1.5 MiB) with headroom.
DEFAULT_SLOT_BYTES = 4 << 20

#: Control-channel timeouts (seconds).  Deploys compile (and possibly
#: tune) whole models inside the worker, so they get a generous bound.
DEFAULT_RUN_TIMEOUT_S = 60.0
DEFAULT_DEPLOY_TIMEOUT_S = 300.0


class WorkerError(RuntimeError):
    """The worker process itself failed (died, hung, or lost its pipe).

    Distinct from :class:`RemoteExecutionError`: a ``WorkerError`` means
    the worker must be restarted; the request may be retried elsewhere.
    """


class RemoteExecutionError(RuntimeError):
    """The deployed session raised inside a healthy worker.

    The worker stays up; the error belongs to the request that caused
    it (bad channel count, non-finite input, ...), mirroring how the
    thread tier propagates session exceptions to the future."""


def _attach_segment(name: str):
    """Attach an existing shared-memory segment without registering it
    with the resource tracker (the parent owns the unlink).

    On Python < 3.13 there is no ``track=False``, and spawn children
    share the parent's tracker process -- an attach-then-unregister
    would *remove the parent's registration* (the tracker cache is a
    set), making the parent's eventual ``unlink`` complain about an
    unknown name.  Suppressing registration during the attach keeps the
    tracker's books balanced: exactly one register (parent create) and
    one unregister (parent unlink) per segment."""
    try:
        return _shm.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name_, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name_, rtype)

        resource_tracker.register = _skip_shm
        try:
            return _shm.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class SlabRing:
    """Ring of fixed-size shared-memory slabs (NCHW byte transport).

    The parent *creates* a ring (``SlabRing(slots, slot_bytes)``) and
    manages the free list; a worker *attaches* to the same segments by
    name (:meth:`attach`) and never allocates -- it reuses the request's
    slot for the response, so one slot round-trips one request.
    """

    def __init__(
        self,
        slots: int = 0,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if _shm is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.slot_bytes = int(slot_bytes)
        self._owner = names is None
        if names is None:
            if slots < 1:
                raise ValueError(f"slots must be >= 1, got {slots}")
            self._segments = [
                _shm.SharedMemory(create=True, size=self.slot_bytes)
                for _ in range(slots)
            ]
        else:
            self._segments = [_attach_segment(n) for n in names]
        self.names: Tuple[str, ...] = tuple(seg.name for seg in self._segments)
        self._cond = threading.Condition()
        self._free: List[int] = list(range(len(self._segments)))

    @classmethod
    def attach(cls, names: Sequence[str], slot_bytes: int) -> "SlabRing":
        return cls(slot_bytes=slot_bytes, names=names)

    def acquire(self, timeout: Optional[float] = None) -> Optional[int]:
        """A free slot index, or None once ``timeout`` elapses."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while not self._free:
                remaining = (
                    None if deadline is None else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._free.pop()

    def release(self, slot: int) -> None:
        with self._cond:
            self._free.append(slot)
            self._cond.notify()

    def write(self, slot: int, data: bytes) -> None:
        self._segments[slot].buf[: len(data)] = data

    def read(self, slot: int, nbytes: int) -> memoryview:
        return self._segments[slot].buf[:nbytes]

    def close(self) -> None:
        """Detach (and, for the owning parent, unlink) every segment."""
        for seg in self._segments:
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover - teardown race
                pass
            if self._owner:
                try:
                    seg.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
        self._segments = []


def encode_array(
    x: np.ndarray, ring: Optional[SlabRing], slot: Optional[int]
) -> Dict[str, object]:
    """Serialize ``x`` into a transport header (+ slab bytes).

    Shared-memory when a slot is provided and the tensor fits its slab;
    otherwise the raw bytes ride the control pipe (the documented
    fallback -- still a single copy, just not zero-ish)."""
    x = np.ascontiguousarray(x)
    if ring is not None and slot is not None and x.nbytes <= ring.slot_bytes:
        ring.write(slot, x.tobytes())
        return {
            "via": "shm",
            "slot": slot,
            "shape": tuple(int(s) for s in x.shape),
            "dtype": str(x.dtype),
        }
    return {
        "via": "pipe",
        "shape": tuple(int(s) for s in x.shape),
        "dtype": str(x.dtype),
        "data": x.tobytes(),
    }


def decode_array(header: Dict[str, object], ring: Optional[SlabRing]) -> np.ndarray:
    """Materialize (a private copy of) the tensor behind a header."""
    shape = tuple(header["shape"])  # type: ignore[arg-type]
    dtype = np.dtype(str(header["dtype"]))
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if header["via"] == "shm":
        if ring is None:
            raise WorkerError("shared-memory header but no attached slab ring")
        buf = ring.read(int(header["slot"]), count * dtype.itemsize)
        return np.frombuffer(buf, dtype=dtype).reshape(shape).copy()
    return np.frombuffer(header["data"], dtype=dtype).reshape(shape).copy()


# ---------------------------------------------------------------------------
# worker-side main loop
# ---------------------------------------------------------------------------


def _session_counters(sessions: Dict[str, object]) -> Dict[str, object]:
    """Cumulative per-worker counters piggybacked on every reply."""
    cache = {"hits": 0, "misses": 0, "evictions": 0, "bytes": 0, "entries": 0}
    runs = images = 0
    for session in sessions.values():
        runs += int(getattr(session, "runs", 0))
        images += int(getattr(session, "images_seen", 0))
        try:
            for key, value in session.cache_stats().items():
                if key in cache:
                    cache[key] += int(value)
        except Exception:  # pragma: no cover - duck-typed sessions
            pass
    return {"runs": runs, "images": images, "cache": cache}


def _worker_main(conn, worker_id: int, options: Dict[str, object]) -> None:
    """One worker process: deploy models, serve run/stats/selection.

    Top-level so it is importable under the ``spawn`` start method.
    The loop exits on ``stop``, EOF (parent died), or a broken pipe;
    everything raised while handling a command is reported as an
    ``("err", ...)`` reply instead of killing the worker.
    """
    from ..runtime.session import InferenceSession

    ring: Optional[SlabRing] = None
    names = options.get("slab_names") or ()
    if names and _shm is not None:
        try:
            ring = SlabRing.attach(names, int(options.get("slot_bytes", 0)))
        except (OSError, RuntimeError):  # pragma: no cover - attach race
            ring = None
    sessions: Dict[str, InferenceSession] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        try:
            if cmd == "deploy":
                _, name, payload, input_shape, kw = msg
                model = pickle.loads(payload)
                sessions[name] = InferenceSession(
                    model,
                    tuple(input_shape),
                    collect_timings=False,
                    backend=options.get("backend"),
                    wisdom=options.get("wisdom"),
                    tune=bool(kw.get("tune", options.get("tune", False))),
                    cache_eviction="lfu",
                )
                reply = ("ok", None)
            elif cmd == "run":
                _, name, header = msg
                x = decode_array(header, ring)
                y = sessions[name].run(x)
                slot = header["slot"] if header["via"] == "shm" else None
                out = encode_array(y, ring, slot)
                reply = ("ok", out, _session_counters(sessions))
            elif cmd == "selection":
                _, name = msg
                reply = ("ok", dict(sessions[name].selection))
            elif cmd == "refresh_selection":
                _, name = msg
                reply = ("ok", [str(p) for p in sessions[name].refresh_selection()])
            elif cmd == "stats":
                reply = ("ok", _session_counters(sessions))
            elif cmd == "stop":
                try:
                    conn.send(("ok", None))
                finally:
                    break
            else:
                reply = ("err", f"unknown command {cmd!r}")
        except BaseException as exc:
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # parent went away
            break
    if ring is not None:
        ring.close()
    conn.close()


# ---------------------------------------------------------------------------
# parent-side handles
# ---------------------------------------------------------------------------


class WorkerProcess:
    """Parent-side handle of one worker: pipe, slab ring, liveness."""

    def __init__(
        self,
        worker_id: int,
        ctx,
        options: Dict[str, object],
        slab_slots: int,
        slot_bytes: int,
        transport: str = "auto",
    ) -> None:
        self.worker_id = worker_id
        self.ring: Optional[SlabRing] = None
        if transport not in ("auto", "shm", "pipe"):
            raise ValueError(f"transport must be auto/shm/pipe, got {transport!r}")
        if transport != "pipe":
            if _shm is not None:
                self.ring = SlabRing(slab_slots, slot_bytes)
            elif transport == "shm":  # pragma: no cover - non-standard build
                raise RuntimeError("shared-memory transport unavailable on this host")
        opts = dict(options)
        opts["slab_names"] = self.ring.names if self.ring is not None else ()
        opts["slot_bytes"] = slot_bytes
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._lock = threading.Lock()
        #: Last counters doc the worker piggybacked on a reply.
        self.last_stats: Dict[str, object] = {}
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, opts),
            daemon=True,
            name=f"repro-proc-worker-{worker_id}",
        )
        self.proc.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.proc.is_alive()

    def call(self, msg: tuple, timeout: Optional[float]):
        """One request/reply over the control pipe (serialized per worker).

        Raises :class:`RemoteExecutionError` for in-worker exceptions
        and :class:`WorkerError` when the worker is gone or wedged --
        after a timeout the pipe is desynchronized (a late reply could
        answer the *next* command), so the caller must retire this
        worker rather than reuse it."""
        with self._lock:
            try:
                self._conn.send(msg)
                if not self._conn.poll(timeout):
                    raise WorkerError(
                        f"worker {self.worker_id} timed out after {timeout}s "
                        f"on {msg[0]!r}"
                    )
                reply = self._conn.recv()
            except WorkerError:
                raise
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise WorkerError(
                    f"worker {self.worker_id} connection lost: {exc}"
                ) from exc
        if reply[0] == "err":
            raise RemoteExecutionError(f"worker {self.worker_id}: {reply[1]}")
        return reply[1] if len(reply) == 2 else reply[1:]

    def run(self, name: str, x: np.ndarray, timeout: Optional[float]) -> np.ndarray:
        """Execute one coalesced batch remotely; returns the output rows."""
        slot = None
        if self.ring is not None and x.nbytes <= self.ring.slot_bytes:
            # Bounded wait: with one batch in flight per worker a slot is
            # almost always free; contention means fall back to the pipe.
            slot = self.ring.acquire(timeout=1.0)
        try:
            header = encode_array(x, self.ring, slot)
            out_header, counters = self.call(("run", name, header), timeout)
            self.last_stats = counters
            return decode_array(out_header, self.ring)
        finally:
            if slot is not None:
                self.ring.release(slot)

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop, escalating to terminate/kill; frees the ring."""
        if self.proc.is_alive():
            try:
                self.call(("stop",), timeout=timeout)
            except (WorkerError, RemoteExecutionError):
                pass
        self.proc.join(timeout=timeout)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=timeout)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.ring is not None:
            self.ring.close()
            self.ring = None

    def kill(self) -> None:
        """Immediate termination (health loop / failover path)."""
        if self.proc.is_alive():
            self.proc.terminate()


class WorkerPool:
    """N worker processes behind depth-weighted checkout, with
    restart-on-crash.

    ``run`` checks out the live worker with the fewest *outstanding*
    runs (ties broken by lowest id), ships the batch, and checks it back
    in.  Weighting by outstanding depth -- rather than FIFO free-list
    order -- means a slow worker accumulates depth and naturally absorbs
    fewer new batches, while a just-respawned worker (depth 0) picks up
    load immediately; per-worker dispatch counts are exported in
    :meth:`stats` and ``repro_worker_dispatched_total``.  A worker that
    dies or wedges mid-batch is retired (terminated, never reselected)
    and the batch fails over to the next live worker.  A background
    health thread respawns retired or crashed workers and re-deploys
    every model, so capacity recovers without operator action;
    ``restarts`` counts how often.
    """

    def __init__(
        self,
        procs: int,
        mp_context: str = "spawn",
        backend: Optional[str] = None,
        wisdom: Optional[object] = None,
        tune: bool = False,
        transport: str = "auto",
        slab_slots: int = 2,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        run_timeout_s: float = DEFAULT_RUN_TIMEOUT_S,
        deploy_timeout_s: float = DEFAULT_DEPLOY_TIMEOUT_S,
        health_interval_s: float = 0.5,
        registry=None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.procs = procs
        self.run_timeout_s = run_timeout_s
        self.deploy_timeout_s = deploy_timeout_s
        self.health_interval_s = health_interval_s
        self._ctx = multiprocessing.get_context(mp_context)
        self._options = {
            "backend": backend,
            "wisdom": str(wisdom) if wisdom is not None else None,
            "tune": tune,
        }
        self._spawn_args = (slab_slots, slot_bytes, transport)
        self._lock = threading.Lock()
        self._workers: List[WorkerProcess] = [
            WorkerProcess(i, self._ctx, self._options, *self._spawn_args)
            for i in range(procs)
        ]
        self._retired: set = set()  # worker ids awaiting respawn
        self._deployed: Dict[str, Tuple[bytes, Tuple[int, ...], Dict[str, object]]] = {}
        #: Signalled when checkout candidates may have changed (checkin,
        #: respawn, stop); shares ``_lock`` so depth reads are consistent.
        self._cond = threading.Condition(self._lock)
        #: Outstanding (checked-out, not yet checked-in) runs per worker.
        self._depth: List[int] = [0] * procs
        #: Cumulative batches dispatched per worker slot.
        self._dispatched: List[int] = [0] * procs
        self.restarts = 0
        self._closed = threading.Event()
        self._health = threading.Thread(
            target=self._health_loop, name="repro-proc-health", daemon=True
        )
        self._health.start()
        if registry is not None:
            registry.register_collector(self._collect)

    # -- deployment -----------------------------------------------------
    def deploy(self, name: str, payload: bytes, input_shape: Tuple[int, ...], **kw) -> None:
        """Ship one pickled model to every worker (each compiles its own
        session); remembered for re-deploys after a restart."""
        with self._lock:
            self._deployed[name] = (payload, tuple(input_shape), dict(kw))
            workers = list(self._workers)
        errors = []
        for worker in workers:
            try:
                worker.call(
                    ("deploy", name, payload, tuple(input_shape), dict(kw)),
                    self.deploy_timeout_s,
                )
            except (WorkerError, RemoteExecutionError) as exc:
                errors.append(exc)
        if len(errors) == len(workers):
            raise errors[0]
        if errors:  # partial deploy: health loop will heal the dead ones
            warnings.warn(
                f"model {name!r} deployed to {len(workers) - len(errors)}/"
                f"{len(workers)} workers ({errors[0]}); the health loop will "
                f"restart and re-deploy the rest",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- request path ---------------------------------------------------
    def run(self, name: str, x: np.ndarray) -> np.ndarray:
        """Run one batch on the next free live worker, with failover."""
        attempts = self.procs
        for _ in range(attempts):
            worker = self._checkout()
            try:
                y = worker.run(name, x, self.run_timeout_s)
            except WorkerError:
                self._retire(worker)
                continue
            except RemoteExecutionError:
                self._checkin(worker)
                raise
            self._checkin(worker)
            return y
        raise WorkerError(
            f"no live worker completed the batch after {attempts} attempt(s)"
        )

    def _checkout(self) -> WorkerProcess:
        """The live worker with the fewest outstanding runs.

        Never blocks while any worker is live (runs on one worker
        serialize on its pipe lock, so stacking depth is safe); blocks
        only when *zero* workers are live, waiting for the health loop
        to respawn one within the run deadline.
        """
        deadline = time.perf_counter() + self.run_timeout_s
        with self._cond:
            while True:
                candidates = [
                    w
                    for w in self._workers
                    if w.worker_id not in self._retired and w.alive()
                ]
                if candidates:
                    worker = min(
                        candidates,
                        key=lambda w: (self._depth[w.worker_id], w.worker_id),
                    )
                    self._depth[worker.worker_id] += 1
                    self._dispatched[worker.worker_id] += 1
                    return worker
                if self._closed.is_set():
                    raise WorkerError("worker pool is stopped")
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise WorkerError("no live worker became available in time")
                self._cond.wait(timeout=min(remaining, 0.25))

    def _checkin(self, worker: WorkerProcess) -> None:
        with self._cond:
            # Only the still-installed object's depth is live state: a
            # respawn resets the slot's depth, so a late checkin from
            # before the restart must not go negative.
            if self._workers[worker.worker_id] is worker:
                self._depth[worker.worker_id] = max(
                    0, self._depth[worker.worker_id] - 1
                )
            self._cond.notify_all()

    def _retire(self, worker: WorkerProcess) -> None:
        """Take a broken worker out of rotation; the health loop
        respawns it (the dead process cannot serve, but its slot and
        deployments are rebuilt from the parent's records)."""
        with self._lock:
            if worker.worker_id in self._retired:
                return
            self._retired.add(worker.worker_id)
        worker.kill()

    # -- health / restart ----------------------------------------------
    def _health_loop(self) -> None:
        while not self._closed.wait(self.health_interval_s):
            self._heal()

    def _heal(self) -> None:
        with self._lock:
            dead = [
                w.worker_id
                for w in self._workers
                if w.worker_id in self._retired or not w.alive()
            ]
        for worker_id in dead:
            if self._closed.is_set():
                return
            try:
                self._respawn(worker_id)
            except Exception as exc:  # pragma: no cover - spawn failure
                warnings.warn(
                    f"worker {worker_id} respawn failed: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _respawn(self, worker_id: int) -> None:
        with self._lock:
            old = self._workers[worker_id]
            deployed = dict(self._deployed)
        old.stop(timeout=1.0)
        replacement = WorkerProcess(
            worker_id, self._ctx, self._options, *self._spawn_args
        )
        for name, (payload, input_shape, kw) in deployed.items():
            replacement.call(
                ("deploy", name, payload, input_shape, kw), self.deploy_timeout_s
            )
        with self._cond:
            self._workers[worker_id] = replacement
            self._retired.discard(worker_id)
            self._depth[worker_id] = 0  # fresh worker starts unloaded
            self.restarts += 1
            self._cond.notify_all()

    # -- introspection --------------------------------------------------
    def live_count(self) -> int:
        with self._lock:
            return sum(
                1
                for w in self._workers
                if w.worker_id not in self._retired and w.alive()
            )

    def selection(self, name: str) -> Dict[int, Dict[str, str]]:
        """Per-worker applied algorithm selections for one model (the
        cross-process wisdom-convergence gate reads this)."""
        out: Dict[int, Dict[str, str]] = {}
        with self._lock:
            workers = [
                w
                for w in self._workers
                if w.worker_id not in self._retired and w.alive()
            ]
        for worker in workers:
            out[worker.worker_id] = worker.call(
                ("selection", name), self.run_timeout_s
            )
        return out

    def stats(self) -> Dict[str, object]:
        """Pool-level snapshot: liveness, restarts, per-worker counters."""
        with self._lock:
            workers = list(self._workers)
            retired = set(self._retired)
            restarts = self.restarts
            depth = list(self._depth)
            dispatched = list(self._dispatched)
        return {
            "procs": self.procs,
            "live": sum(
                1 for w in workers if w.worker_id not in retired and w.alive()
            ),
            "restarts": restarts,
            "workers": {
                w.worker_id: {
                    "alive": w.alive() and w.worker_id not in retired,
                    "transport": "shm" if w.ring is not None else "pipe",
                    "depth": depth[w.worker_id],
                    "dispatched": dispatched[w.worker_id],
                    **(w.last_stats or {"runs": 0, "images": 0}),
                }
                for w in workers
            },
        }

    def aggregate_cache_stats(self) -> Dict[str, int]:
        """Summed plan-cache counters across workers (last-seen docs)."""
        total = {"hits": 0, "misses": 0, "evictions": 0, "bytes": 0, "entries": 0}
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            cache = (worker.last_stats or {}).get("cache", {})
            for key in total:
                total[key] += int(cache.get(key, 0))
        return total

    def _collect(self):
        """Registry collector: per-worker labeled liveness and counters,
        aggregated in the parent's metrics export."""
        from ..obs.metrics import Sample

        with self._lock:
            workers = list(self._workers)
            retired = set(self._retired)
            restarts = self.restarts
            depth = list(self._depth)
            dispatched = list(self._dispatched)
        yield Sample(
            "repro_pool_restarts_total",
            restarts,
            {},
            "counter",
            "worker process restarts (crash + wedge recoveries)",
        )
        for worker in workers:
            labels = {"worker": str(worker.worker_id)}
            stats = worker.last_stats or {}
            yield Sample(
                "repro_worker_up",
                1.0 if (worker.alive() and worker.worker_id not in retired) else 0.0,
                dict(labels),
                "gauge",
                "worker process liveness",
            )
            yield Sample(
                "repro_worker_runs_total",
                int(stats.get("runs", 0)),
                dict(labels),
                "counter",
                "session.run calls executed by this worker",
            )
            yield Sample(
                "repro_worker_images_total",
                int(stats.get("images", 0)),
                dict(labels),
                "counter",
                "images executed by this worker",
            )
            yield Sample(
                "repro_worker_outstanding",
                depth[worker.worker_id],
                dict(labels),
                "gauge",
                "batches checked out to this worker and not yet returned",
            )
            yield Sample(
                "repro_worker_dispatched_total",
                dispatched[worker.worker_id],
                dict(labels),
                "counter",
                "batches dispatched to this worker slot by the router",
            )

    # -- lifecycle ------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Stop the health loop and every worker; idempotent."""
        if self._closed.is_set():
            return
        self._closed.set()
        with self._cond:
            self._cond.notify_all()  # wake checkout waiters to fail fast
        self._health.join(timeout=timeout)
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            worker.stop(timeout=timeout)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
