"""Trace-driven serving workloads: seeded arrivals, sizes, tenancy.

``repro serve-bench`` drives uniform *closed-loop* clients: every
thread waits for its previous answer before sending the next request,
so the offered load adapts to the server and the measured latency can
never exhibit the queueing tails real traffic produces.  Production
arrivals are **open-loop** -- requests show up on their own schedule
whether or not the server is keeping up -- and they are neither uniform
in time (diurnal bursts, retry storms) nor in size (heavy-tailed batch
mixes) nor in tenant (many models share one box).

This module builds that schedule *ahead of time* as a deterministic,
seeded **trace**: a time-sorted sequence of :class:`TraceEvent`\\ s,
each naming the target model, the request's image count, and the seed
its activation tensor is derived from.  Because the trace is data (not
live RNG draws interleaved with serving), the same seed yields a
bit-identical schedule on every host -- ``Trace.digest()`` hashes the
exact event tuples so two runs can *prove* they replayed the same
workload -- and the eager reference outputs for the bit-identity gate
can be computed serially from the trace alone.

Arrival processes (all per-model, merged by :func:`build_trace`):

* :class:`PoissonArrivals` -- memoryless arrivals at ``rate`` req/s
  (exponential inter-arrivals), the classic open-loop baseline.
* :class:`BurstyArrivals` -- a two-state Markov-modulated Poisson
  process (MMPP): exponentially-dwelling *burst* and *idle* states,
  each with its own Poisson rate.  Its inter-arrival CV^2 > 1 is what
  stresses tail latency and the micro-batcher's coalescing window in a
  way no uniform client sweep can.
* :class:`UniformArrivals` -- fixed-spacing arrivals (the closed-loop
  sweep's character, kept for A/B comparisons against the above).

Request-size mixes:

* :class:`FixedSizes` -- every request carries the same image count.
* :class:`ZipfSizes` -- bounded Zipf over ``1..max_images`` (mass
  ``1/k**alpha``), sampled by inverse CDF so the draw is reproducible
  and bounded (NumPy's ``Generator.zipf`` is unbounded).
* :class:`LognormalSizes` -- rounded, clipped lognormal -- the
  "mostly small, occasionally huge" mix that exercises the
  ``max_batch`` splitting path.

Everything is seeded through :func:`numpy.random.default_rng` with
per-(workload, stream) :class:`numpy.random.SeedSequence` keys, so
adding a tenant to a spec never perturbs another tenant's schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "FixedSizes",
    "LognormalSizes",
    "ModelWorkload",
    "PoissonArrivals",
    "SizeSampler",
    "Trace",
    "TraceEvent",
    "UniformArrivals",
    "ZipfSizes",
    "build_trace",
]


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate`` requests/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def times(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival instants in ``[0, horizon_s)``, strictly sorted."""
        out: List[np.ndarray] = []
        t = 0.0
        # Draw in chunks sized to the expectation; loop until past the
        # horizon so the tail is never truncated mid-chunk.
        chunk = max(16, int(self.rate * horizon_s * 1.2) + 4)
        while t < horizon_s:
            gaps = rng.exponential(1.0 / self.rate, size=chunk)
            times = t + np.cumsum(gaps)
            out.append(times)
            t = float(times[-1])
        times = np.concatenate(out)
        return times[times < horizon_s]


@dataclass(frozen=True)
class UniformArrivals:
    """Evenly spaced arrivals at ``rate`` requests/second (CV^2 = 0)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def times(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        n = int(np.floor(self.rate * horizon_s))
        return (np.arange(n) + 0.5) / self.rate


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state MMPP: Poisson bursts separated by quiet periods.

    The process alternates between a *burst* state (arrivals at
    ``burst_rate``) and an *idle* state (``idle_rate``); state dwell
    times are exponential with means ``mean_burst_s`` / ``mean_idle_s``.
    ``duty_cycle`` is the long-run fraction of time spent bursting, so
    the mean offered rate is ``duty_cycle * burst_rate +
    (1 - duty_cycle) * idle_rate``.
    """

    burst_rate: float
    idle_rate: float
    mean_burst_s: float
    mean_idle_s: float

    def __post_init__(self) -> None:
        if self.burst_rate <= 0:
            raise ValueError(f"burst_rate must be > 0, got {self.burst_rate}")
        if self.idle_rate < 0:
            raise ValueError(f"idle_rate must be >= 0, got {self.idle_rate}")
        if self.mean_burst_s <= 0 or self.mean_idle_s <= 0:
            raise ValueError("state dwell means must be > 0")

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time in the burst state."""
        return self.mean_burst_s / (self.mean_burst_s + self.mean_idle_s)

    @property
    def mean_rate(self) -> float:
        """Long-run offered rate in requests/second."""
        d = self.duty_cycle
        return d * self.burst_rate + (1.0 - d) * self.idle_rate

    def times(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        out: List[float] = []
        t = 0.0
        bursting = True  # deterministic convention: start in a burst
        while t < horizon_s:
            mean_dwell = self.mean_burst_s if bursting else self.mean_idle_s
            dwell = float(rng.exponential(mean_dwell))
            end = min(t + dwell, horizon_s)
            rate = self.burst_rate if bursting else self.idle_rate
            if rate > 0:
                u = t + float(rng.exponential(1.0 / rate))
                while u < end:
                    out.append(u)
                    u += float(rng.exponential(1.0 / rate))
            t += dwell
            bursting = not bursting
        return np.asarray(out, dtype=np.float64)


#: Anything with ``times(horizon_s, rng) -> ndarray`` of sorted instants.
ArrivalProcess = object


# ---------------------------------------------------------------------------
# request-size mixes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedSizes:
    """Every request carries exactly ``images`` images."""

    images: int = 1

    def __post_init__(self) -> None:
        if self.images < 1:
            raise ValueError(f"images must be >= 1, got {self.images}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.images, dtype=np.int64)


@dataclass(frozen=True)
class ZipfSizes:
    """Bounded Zipf over ``1..max_images``: P(k) proportional to 1/k^alpha.

    Sampled by inverse CDF on ``rng.random()`` so draws are bounded and
    reproducible (``Generator.zipf`` has unbounded support).
    """

    alpha: float = 1.5
    max_images: int = 8

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")
        if self.max_images < 1:
            raise ValueError(f"max_images must be >= 1, got {self.max_images}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        k = np.arange(1, self.max_images + 1, dtype=np.float64)
        cdf = np.cumsum(k**-self.alpha)
        cdf /= cdf[-1]
        return np.searchsorted(cdf, rng.random(n), side="right") + 1


@dataclass(frozen=True)
class LognormalSizes:
    """Rounded lognormal sizes clipped to ``1..max_images``.

    ``median_images`` is the distribution's median (``exp(mu)``);
    ``sigma`` controls the tail weight.
    """

    median_images: float = 2.0
    sigma: float = 0.75
    max_images: int = 16

    def __post_init__(self) -> None:
        if self.median_images < 1:
            raise ValueError(f"median_images must be >= 1, got {self.median_images}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if self.max_images < 1:
            raise ValueError(f"max_images must be >= 1, got {self.max_images}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raw = rng.lognormal(mean=np.log(self.median_images), sigma=self.sigma, size=n)
        return np.clip(np.rint(raw).astype(np.int64), 1, self.max_images)


#: Anything with ``sample(n, rng) -> ndarray`` of positive ints.
SizeSampler = object


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelWorkload:
    """One tenant's offered load: which model, when, and how much."""

    model: str
    arrivals: ArrivalProcess
    sizes: SizeSampler = field(default_factory=FixedSizes)


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled request.

    ``t`` is seconds from trace start; ``payload_seed`` deterministically
    derives the request's activation tensor (see
    :func:`repro.serve.loadgen.event_payload`), so a trace fully
    determines both the schedule *and* the bytes served.
    """

    t: float
    model: str
    n_images: int
    request_id: int
    payload_seed: int

    def key(self) -> Tuple[bytes, str, int, int, int]:
        """Canonical tuple for hashing/equality (exact float bytes)."""
        return (
            np.float64(self.t).tobytes(),
            self.model,
            self.n_images,
            self.request_id,
            self.payload_seed,
        )


@dataclass(frozen=True)
class Trace:
    """A complete, replayable open-loop schedule."""

    seed: int
    horizon_s: float
    events: Tuple[TraceEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    @property
    def models(self) -> List[str]:
        return sorted({e.model for e in self.events})

    @property
    def total_images(self) -> int:
        return sum(e.n_images for e in self.events)

    def offered_rps(self) -> float:
        """Offered request rate over the trace horizon."""
        return len(self.events) / self.horizon_s if self.horizon_s > 0 else 0.0

    def per_model(self) -> Dict[str, Dict[str, float]]:
        """Offered requests/images per tenant."""
        out: Dict[str, Dict[str, float]] = {}
        for event in self.events:
            entry = out.setdefault(event.model, {"requests": 0, "images": 0})
            entry["requests"] += 1
            entry["images"] += event.n_images
        return out

    def digest(self) -> str:
        """SHA-256 over the exact event tuples (schedule identity proof)."""
        h = hashlib.sha256()
        h.update(np.float64(self.horizon_s).tobytes())
        for event in self.events:
            t_bytes, model, n, rid, pseed = event.key()
            h.update(t_bytes)
            h.update(model.encode())
            h.update(f":{n}:{rid}:{pseed};".encode())
        return h.hexdigest()


def build_trace(
    workloads: Sequence[ModelWorkload], horizon_s: float, seed: int
) -> Trace:
    """Merge per-tenant schedules into one time-sorted trace.

    Each workload draws from its own :class:`~numpy.random.SeedSequence`
    streams (``[seed, index, 0]`` for arrivals, ``[seed, index, 1]`` for
    sizes), so tenants are statistically independent and a spec edit to
    one tenant leaves the others' schedules bit-identical.  Ties in
    arrival time break by (model, per-model order), which is
    deterministic; ``request_id`` numbers the merged order.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    if not workloads:
        raise ValueError("build_trace needs at least one ModelWorkload")
    names = [w.model for w in workloads]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate model names in workloads: {names}")
    rows: List[Tuple[float, int, int, str, int]] = []
    for index, workload in enumerate(sorted(workloads, key=lambda w: w.model)):
        arrival_rng = np.random.default_rng(np.random.SeedSequence([seed, index, 0]))
        size_rng = np.random.default_rng(np.random.SeedSequence([seed, index, 1]))
        times = np.asarray(workload.arrivals.times(horizon_s, arrival_rng))
        sizes = np.asarray(workload.sizes.sample(len(times), size_rng))
        if len(sizes) != len(times):
            raise ValueError(
                f"size sampler returned {len(sizes)} sizes for {len(times)} arrivals"
            )
        for order, (t, n) in enumerate(zip(times, sizes)):
            rows.append((float(t), index, order, workload.model, int(n)))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    payload_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFEED]))
    payload_seeds = payload_rng.integers(0, 2**31 - 1, size=len(rows))
    events = tuple(
        TraceEvent(
            t=t,
            model=model,
            n_images=n,
            request_id=rid,
            payload_seed=int(payload_seeds[rid]),
        )
        for rid, (t, _, _, model, n) in enumerate(rows)
    )
    return Trace(seed=seed, horizon_s=float(horizon_s), events=events)
