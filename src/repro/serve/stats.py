"""Serving telemetry: latency distributions and per-model counters.

Everything here is thread-safe and cheap enough to record per request:
the serving layer's value claim is *measured* (throughput, latency,
queue depth, batch coalescing), so the stats are first-class citizens,
not an afterthought.  ``repro serve-bench`` and ``Server.stats()`` both
read these structures.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

__all__ = ["LatencyStats", "ModelStats"]


class LatencyStats:
    """Streaming latency accumulator with bounded sample retention.

    Keeps exact count / sum / max plus a bounded sample buffer for
    percentiles (the first ``max_samples`` observations are retained;
    serving benchmarks stay well under the cap, long-lived servers
    degrade to count/mean/max which never lose precision).
    """

    def __init__(self, max_samples: int = 65536) -> None:
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds
            if len(self._samples) < self._max_samples:
                self._samples.append(seconds)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if none)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, int(round(q / 100.0 * (len(samples) - 1)))))
        return samples[rank]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total, mx = self.count, self.total, self.max
        return {
            "count": count,
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "max_ms": mx * 1e3,
        }


class ModelStats:
    """Counters for one served model (all mutations under one lock)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0  #: requests accepted into the queue
        self.images = 0  #: images across accepted requests
        self.batches = 0  #: session.run calls issued by workers
        self.batched_images = 0  #: images across those calls
        self.max_batch_images = 0  #: largest coalesced batch observed
        self.rejected = 0  #: requests refused by backpressure
        self.errors = 0  #: requests completed with an exception
        self.latency = LatencyStats()

    def record_request(self, images: int) -> None:
        with self._lock:
            self.requests += 1
            self.images += images

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, images: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_images += images
            if images > self.max_batch_images:
                self.max_batch_images = images

    def record_error(self, requests: int = 1) -> None:
        with self._lock:
            self.errors += requests

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            batches = self.batches
            doc = {
                "requests": self.requests,
                "images": self.images,
                "batches": batches,
                "mean_batch_images": (self.batched_images / batches) if batches else 0.0,
                "max_batch_images": self.max_batch_images,
                "rejected": self.rejected,
                "errors": self.errors,
            }
        doc["latency"] = self.latency.snapshot()
        return doc
