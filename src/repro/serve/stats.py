"""Serving telemetry: latency distributions and per-model counters.

Everything here is thread-safe and cheap enough to record per request:
the serving layer's value claim is *measured* (throughput, latency,
queue depth, batch coalescing), so the stats are first-class citizens,
not an afterthought.  ``repro serve-bench`` and ``Server.stats()`` both
read these structures.

Since the unified observability layer (:mod:`repro.obs`) landed, these
classes are thin shapes over registry-owned metrics: every number in a
``snapshot()`` is also exported by the server's
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus text via
``Server.metrics_text()``), labeled per model.  Two correctness fixes
rode along with the move: latency percentiles now come from a seeded
Algorithm-R reservoir (an unbiased sample of the whole stream, not the
first 65536 observations) and use true nearest-rank selection
(``ceil(q/100 * n) - 1``, matching ``np.percentile(...,
method="inverted_cdf")``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs.metrics import RESERVOIR_SEED, Histogram, MetricsRegistry

__all__ = ["LatencyStats", "ModelStats"]


class LatencyStats:
    """Streaming latency accumulator with bounded sample retention.

    Exact count / sum / max are kept for the whole stream; percentiles
    come from a seeded Algorithm-R reservoir
    (:class:`~repro.obs.metrics.Histogram`), so a long-lived server's
    p95 keeps tracking the live distribution after the buffer fills.
    """

    def __init__(
        self,
        max_samples: int = 65536,
        registry: Optional[MetricsRegistry] = None,
        name: str = "repro_request_latency_seconds",
        seed: int = RESERVOIR_SEED,
        **labels: str,
    ) -> None:
        if registry is not None:
            self._hist = registry.histogram(
                name,
                help="End-to-end request latency",
                max_samples=max_samples,
                seed=seed,
                **labels,
            )
        else:
            self._hist = Histogram(
                name, labels=dict(labels), max_samples=max_samples, seed=seed
            )

    def record(self, seconds: float) -> None:
        self._hist.observe(seconds)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def total(self) -> float:
        return self._hist.total

    @property
    def max(self) -> float:
        return self._hist.max

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if none)."""
        return self._hist.percentile(q)

    def snapshot(self) -> Dict[str, float]:
        snap = self._hist.snapshot()
        return {
            "count": snap["count"],
            "mean_ms": snap["mean"] * 1e3,
            "p50_ms": snap["p50"] * 1e3,
            "p95_ms": snap["p95"] * 1e3,
            "p99_ms": snap["p99"] * 1e3,
            "max_ms": snap["max"] * 1e3,
        }

    def reset(self) -> None:
        self._hist.reset()


class ModelStats:
    """Counters for one served model, owned by a metrics registry.

    Every mutation lands on a registry metric (counters are exact under
    concurrent callers), so ``snapshot()`` and the Prometheus export
    read the *same* state -- there is no second bookkeeping path to
    drift.  With no ``registry`` argument a private registry is used,
    which keeps the class drop-in for direct construction in tests.
    """

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, model: str = ""
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"model": model} if model else {}
        reg = self.registry
        self._requests = reg.counter(
            "repro_requests_total", help="requests accepted into the queue", **labels
        )
        self._images = reg.counter(
            "repro_request_images_total", help="images across accepted requests", **labels
        )
        self._batches = reg.counter(
            "repro_batches_total", help="session.run calls issued by workers", **labels
        )
        self._batched_images = reg.counter(
            "repro_batched_images_total", help="images across executed batches", **labels
        )
        self._rejected = reg.counter(
            "repro_rejected_total", help="requests refused by backpressure", **labels
        )
        self._errors = reg.counter(
            "repro_errors_total", help="requests completed with an exception", **labels
        )
        self._max_batch = reg.gauge(
            "repro_max_batch_images", help="largest coalesced batch observed", **labels
        )
        self._leaked_workers = reg.gauge(
            "repro_workers_leaked",
            help="workers still running after a drain close timed out",
            **labels,
        )
        self.latency = LatencyStats(registry=reg, **labels)

    # -- recorded counters, exposed with the historical attribute names --
    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def images(self) -> int:
        return self._images.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched_images(self) -> int:
        return self._batched_images.value

    @property
    def max_batch_images(self) -> int:
        return int(self._max_batch.value)

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def leaked_workers(self) -> int:
        return int(self._leaked_workers.value)

    # -- recording -------------------------------------------------------
    def record_request(self, images: int) -> None:
        self._requests.inc()
        self._images.inc(images)

    def record_rejection(self) -> None:
        self._rejected.inc()

    def record_batch(self, images: int) -> None:
        self._batches.inc()
        self._batched_images.inc(images)
        self._max_batch.set_max(images)

    def record_error(self, requests: int = 1) -> None:
        self._errors.inc(requests)

    def record_leaked_workers(self, count: int) -> None:
        self._leaked_workers.set(count)

    def snapshot(self) -> Dict[str, Any]:
        batches = self.batches
        return {
            "requests": self.requests,
            "images": self.images,
            "batches": batches,
            "mean_batch_images": (self.batched_images / batches) if batches else 0.0,
            "max_batch_images": self.max_batch_images,
            "rejected": self.rejected,
            "errors": self.errors,
            "leaked_workers": self.leaked_workers,
            "latency": self.latency.snapshot(),
        }
