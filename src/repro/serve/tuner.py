"""Background tuner: idle-time algorithm measurement for a live server.

A :class:`BackgroundTuner` is a daemon thread owned by a
:class:`~repro.serve.server.Server`.  Each tick it reads every model's
live queue depth from the obs registry's ``repro_queue_depth`` gauge
(the same number ``/metrics`` exports) and only when the server is
**idle** -- all depths at or below ``idle_depth`` -- does it pick one
un-tuned conv geometry from the deployed sessions, run the
:class:`~repro.tuning.selector.AlgorithmSelector`'s seeded measurement,
and persist the choice to the shared wisdom file.  Idleness is
re-probed between candidate measurements (the selector's ``abort``
hook), so a request arriving mid-measurement stops the tuning step
before the next candidate runs and nothing half-measured is persisted.

Once a choice lands, the tuner (still under the idle gate) calls each
session's :meth:`~repro.runtime.session.InferenceSession
.refresh_selection` so the running programs re-lower the affected convs
-- the paper's "saved into a wisdom file and used in inference" loop,
closed at serving time.  Every measurement appends an event recording
the queue depths observed at its start; the serve test asserts they are
all idle.
"""

from __future__ import annotations

import logging
import threading
import traceback
from typing import Dict, List, Optional

__all__ = ["BackgroundTuner"]

logger = logging.getLogger(__name__)


class BackgroundTuner:
    """Measure un-tuned geometries while the request queues are idle."""

    def __init__(
        self,
        server,
        selector,
        interval_s: float = 0.02,
        idle_depth: int = 0,
        apply: bool = True,
        start: bool = True,
    ) -> None:
        self.server = server
        self.selector = selector
        self.interval_s = float(interval_s)
        self.idle_depth = int(idle_depth)
        self.apply = apply
        #: One dict per persisted measurement: geometry key, the queue
        #: depths observed when it started, and the selected label.
        self.events: List[dict] = []
        self._events_lock = threading.Lock()
        self._stop = threading.Event()
        registry = server.registry
        self._measured = registry.counter(
            "repro_tuner_measurements_total",
            help="geometries measured and persisted by the background tuner",
        )
        self._busy_skips = registry.counter(
            "repro_tuner_busy_skips_total",
            help="tuner ticks skipped because a request queue was non-idle",
        )
        self._aborts = registry.counter(
            "repro_tuner_aborts_total",
            help="measurements aborted mid-flight by arriving traffic",
        )
        self._errors = registry.counter(
            "repro_tuner_errors_total",
            help="tuner ticks that raised (tuning kept running; see logs)",
        )
        self._warned = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-tuner", daemon=True
        )
        if start:
            self._thread.start()

    # -- idleness (the obs queue-depth gauge is the source of truth) ----
    def queue_depths(self) -> Dict[str, float]:
        """Live per-model queue depth, read from the registry gauges."""
        depths: Dict[str, float] = {}
        for name in self.server.models:
            gauge = self.server.registry.find("repro_queue_depth", model=name)
            if gauge is not None:
                depths[name] = float(gauge.value)
        return depths

    def is_idle(self) -> bool:
        return all(d <= self.idle_depth for d in self.queue_depths().values())

    # -- work selection -------------------------------------------------
    def _next_untuned(self):
        """First ``(geometry, family)`` whose wisdom has no entry yet.

        Every deployed conv is a tuning target in its own family:
        quantized convs under their plain backend key, full-precision
        convs (``engine is None`` or an fp32 engine) under the
        family-qualified fp32 key.
        """
        from ..tuning.selector import ConvGeometry, conv_family

        wisdom = self.selector.wisdom
        for name in self.server.models:
            try:
                session = self.server.session(name)
            except KeyError:  # racing a close/remove
                continue
            graph = session.program.graph
            for step in session.program.steps:
                if step.kind != "conv":
                    continue
                family = conv_family(step.node.layer)
                geom = ConvGeometry.of_conv(
                    step.node.layer, graph.in_shape(step.node)
                )
                key = geom.key(self.selector.backend_name, family=family)
                if wisdom is None or wisdom.lookup_algorithm(key) is None:
                    return geom, family
        return None

    # -- loop -----------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._tick()
            except Exception:
                # Tuning must never take the serving path down -- but a
                # selector that crashes every tick must not look idle
                # either: count every failure and log the first
                # traceback (warn-once; the counter keeps the rest
                # visible in /metrics).
                self._errors.inc()
                if not self._warned:
                    self._warned = True
                    logger.warning(
                        "background tuner tick raised (suppressed; "
                        "counted in repro_tuner_errors_total):\n%s",
                        traceback.format_exc(),
                    )

    def _tick(self) -> None:
        if not self.server.models:
            return
        depths = self.queue_depths()
        if any(d > self.idle_depth for d in depths.values()):
            self._busy_skips.inc()
            return
        if self.selector.wisdom is not None:
            self.selector.wisdom.refresh()
        untuned = self._next_untuned()
        if untuned is None:
            # Everything known; keep live sessions converged on wisdom
            # (cheap: refresh_selection is stat + dict lookups when
            # nothing changed).
            if self.apply:
                self._apply_all()
            return
        geom, family = untuned
        result = self.selector.select(
            geom, abort=lambda: not self.is_idle(), family=family
        )
        if result is None:
            self._aborts.inc()
            return
        self._measured.inc()
        with self._events_lock:
            self.events.append(
                {
                    "key": geom.key(self.selector.backend_name, family=family),
                    "family": family,
                    "selected": result.label,
                    "source": result.source,
                    "queue_depths": depths,
                }
            )
        if self.apply:
            self._apply_all()

    def _apply_all(self) -> None:
        for name in self.server.models:
            try:
                session = self.server.session(name)
            except KeyError:
                continue
            session.refresh_selection()

    # -- lifecycle ------------------------------------------------------
    @property
    def measurements(self) -> int:
        return int(self._measured.value)

    def events_snapshot(self) -> List[dict]:
        with self._events_lock:
            return [dict(e) for e in self.events]

    def tuned_all(self) -> bool:
        """True when every deployed geometry has a wisdom entry."""
        return self._next_untuned() is None

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)
