"""Instruction-set substrate: bit-exact VNNI semantics + register model."""

from .registers import (
    ZMM_BYTES,
    ZMM_COUNT,
    InstructionTrace,
    RegisterFile,
    RegisterPressureError,
    ZmmRegister,
)
from .vnni import (
    VNNI_LANES,
    VNNI_PAIRS,
    saturate_cast,
    vpdpbusd,
    vpdpbusd_array,
    vpmaddubsw,
    vpmaddubsw_array,
    vpmaddwd,
    vpmaddwd_array,
)

__all__ = [
    "ZMM_BYTES",
    "ZMM_COUNT",
    "InstructionTrace",
    "RegisterFile",
    "RegisterPressureError",
    "ZmmRegister",
    "VNNI_LANES",
    "VNNI_PAIRS",
    "saturate_cast",
    "vpdpbusd",
    "vpdpbusd_array",
    "vpmaddubsw",
    "vpmaddubsw_array",
    "vpmaddwd",
    "vpmaddwd_array",
]
