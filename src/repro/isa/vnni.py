"""Bit-exact semantics of the AVX-512 VNNI instructions (paper Fig. 1).

These functions define the integer arithmetic contract every kernel in
the reproduction is held to.  The scalar-ish reference implementations
mirror the instruction definitions lane by lane; the ``*_array`` helpers
are the vectorized forms the hot paths use, and the test suite proves
them equivalent to the lane-wise reference and to a plain int32 dot
product.

Instructions modeled
--------------------
``vpdpbusd``   u8 x s8 -> s32, 4-element dot product per 32-bit lane,
               accumulated into the destination (the 512-bit form has 16
               lanes of 4 byte-pairs).
``vpmaddwd``   s16 x s16 -> s32, 2-element dot product per lane -- the
               multiply the *up-casting* baseline is forced onto.
``saturate_*`` saturating down-conversions (``vpmovs*``-style).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "VNNI_LANES",
    "VNNI_PAIRS",
    "vpdpbusd",
    "vpdpbusd_array",
    "vpmaddwd",
    "vpmaddwd_array",
    "vpmaddubsw",
    "vpmaddubsw_array",
    "saturate_cast",
]

#: 512-bit register = 16 x 32-bit lanes.
VNNI_LANES = 16
#: Each 32-bit lane of the byte operands holds 4 x 8-bit values.
VNNI_PAIRS = 4

_INT_BOUNDS = {
    np.dtype(np.int8): (-128, 127),
    np.dtype(np.uint8): (0, 255),
    np.dtype(np.int16): (-32768, 32767),
    np.dtype(np.int32): (-(2**31), 2**31 - 1),
}


def saturate_cast(x: np.ndarray, dtype) -> np.ndarray:
    """Saturating conversion to an integer dtype (``vpmovs*`` semantics).

    Accepts integer or float input; floats are rounded half-to-even first
    (matching ``cvtps2dq``).
    """
    dtype = np.dtype(dtype)
    if dtype not in _INT_BOUNDS:
        raise ValueError(f"unsupported saturation target {dtype}")
    lo, hi = _INT_BOUNDS[dtype]
    x = np.asarray(x)
    if x.dtype.kind == "f":
        x = np.rint(x)
    return np.clip(x, lo, hi).astype(dtype)


def vpdpbusd(src1_u8: np.ndarray, src2_s8: np.ndarray, acc_i32: np.ndarray) -> np.ndarray:
    """One 512-bit ``vpdpbusd``: 16 lanes of (4 x u8) . (4 x s8) + i32.

    Parameters
    ----------
    src1_u8:
        ``(16, 4)`` uint8 -- the activation operand (unsigned by ISA
        requirement; hence LoWino's +128 compensation).
    src2_s8:
        ``(16, 4)`` int8 -- the weight operand.
    acc_i32:
        ``(16,)`` int32 accumulator.

    Returns
    -------
    ``(16,)`` int32: ``acc + sum_j src1[:, j] * src2[:, j]``.  The real
    instruction's intermediate dot product is at most
    ``4 * 255 * 128 = 130560`` in magnitude, well inside int32, and the
    final add wraps modulo 2^32 exactly like the hardware.
    """
    s1 = np.asarray(src1_u8)
    s2 = np.asarray(src2_s8)
    acc = np.asarray(acc_i32)
    if s1.shape != (VNNI_LANES, VNNI_PAIRS) or s1.dtype != np.uint8:
        raise ValueError(f"src1 must be uint8 (16, 4), got {s1.dtype} {s1.shape}")
    if s2.shape != (VNNI_LANES, VNNI_PAIRS) or s2.dtype != np.int8:
        raise ValueError(f"src2 must be int8 (16, 4), got {s2.dtype} {s2.shape}")
    if acc.shape != (VNNI_LANES,) or acc.dtype != np.int32:
        raise ValueError(f"acc must be int32 (16,), got {acc.dtype} {acc.shape}")
    dot = (s1.astype(np.int32) * s2.astype(np.int32)).sum(axis=1, dtype=np.int64)
    with np.errstate(over="ignore"):
        return (acc.astype(np.int64) + dot).astype(np.int32)  # wraparound add


def vpdpbusd_array(a_u8: np.ndarray, b_s8: np.ndarray) -> np.ndarray:
    """Vectorized u8 x s8 contraction over the trailing axis.

    ``a_u8`` ``(..., 4k)`` uint8 and ``b_s8`` ``(..., 4k)`` int8 are
    contracted to int32 over the last axis -- the array-level equivalent
    of a chain of ``vpdpbusd`` accumulations (exact as long as the true
    sum fits int32, which holds for every shape in this reproduction:
    ``C_max * 255 * 128 < 2^31`` up to C ~ 65k).
    """
    if a_u8.dtype != np.uint8 or b_s8.dtype != np.int8:
        raise ValueError(f"expected uint8 x int8, got {a_u8.dtype} x {b_s8.dtype}")
    return np.sum(a_u8.astype(np.int32) * b_s8.astype(np.int32), axis=-1, dtype=np.int32)


def vpmaddwd(src1_s16: np.ndarray, src2_s16: np.ndarray) -> np.ndarray:
    """One 512-bit ``vpmaddwd``: 16 lanes of (2 x s16) . (2 x s16) -> s32."""
    s1 = np.asarray(src1_s16)
    s2 = np.asarray(src2_s16)
    if s1.shape != (VNNI_LANES, 2) or s1.dtype != np.int16:
        raise ValueError(f"src1 must be int16 (16, 2), got {s1.dtype} {s1.shape}")
    if s2.shape != (VNNI_LANES, 2) or s2.dtype != np.int16:
        raise ValueError(f"src2 must be int16 (16, 2), got {s2.dtype} {s2.shape}")
    prod = s1.astype(np.int64) * s2.astype(np.int64)
    with np.errstate(over="ignore"):
        return prod.sum(axis=1).astype(np.int32)


def vpmaddwd_array(a_s16: np.ndarray, b_s16: np.ndarray) -> np.ndarray:
    """Vectorized s16 x s16 contraction over the trailing axis -> int32."""
    if a_s16.dtype != np.int16 or b_s16.dtype != np.int16:
        raise ValueError(f"expected int16 x int16, got {a_s16.dtype} x {b_s16.dtype}")
    return np.sum(a_s16.astype(np.int64) * b_s16.astype(np.int64), axis=-1).astype(np.int32)


def vpmaddubsw(src1_u8: np.ndarray, src2_s8: np.ndarray) -> np.ndarray:
    """One 512-bit ``vpmaddubsw``: 32 lanes of (2 x u8) . (2 x s8) -> s16,
    with *saturation*.

    This is the multiply the pre-VNNI INT8 kernels (oneDNN's INT8
    Winograd among them) are built on.  Its trap: the pairwise sum can
    reach ``2 * 255 * 128 = 65280``, which does not fit INT16, so the
    instruction saturates -- pre-VNNI kernels must constrain operand
    ranges (e.g. keep activations in [0, 127]) or accept wrong results.
    The reproduction exposes the semantics so tests can demonstrate
    exactly that hazard.
    """
    s1 = np.asarray(src1_u8)
    s2 = np.asarray(src2_s8)
    if s1.shape != (32, 2) or s1.dtype != np.uint8:
        raise ValueError(f"src1 must be uint8 (32, 2), got {s1.dtype} {s1.shape}")
    if s2.shape != (32, 2) or s2.dtype != np.int8:
        raise ValueError(f"src2 must be int8 (32, 2), got {s2.dtype} {s2.shape}")
    wide = (s1.astype(np.int32) * s2.astype(np.int32)).sum(axis=1)
    return np.clip(wide, -32768, 32767).astype(np.int16)


def vpmaddubsw_array(a_u8: np.ndarray, b_s8: np.ndarray) -> np.ndarray:
    """Vectorized ``vpmaddubsw``: pairwise u8 x s8 -> saturating s16.

    The trailing axis (even length) is reduced in adjacent pairs; output
    trailing axis is half the input's.
    """
    if a_u8.dtype != np.uint8 or b_s8.dtype != np.int8:
        raise ValueError(f"expected uint8 x int8, got {a_u8.dtype} x {b_s8.dtype}")
    if a_u8.shape != b_s8.shape or a_u8.shape[-1] % 2:
        raise ValueError("operands must share a shape with an even trailing axis")
    pairs = a_u8.shape[-1] // 2
    wide = (
        a_u8.astype(np.int32).reshape(a_u8.shape[:-1] + (pairs, 2))
        * b_s8.astype(np.int32).reshape(b_s8.shape[:-1] + (pairs, 2))
    ).sum(axis=-1)
    return np.clip(wide, -32768, 32767).astype(np.int16)
