"""512-bit register-file model and instruction trace recorder.

The register model exists to make the paper's register-budget constraint
checkable in code: Section 4.3.4 limits the microkernel to
``row_blk * col_blk + col_blk < 31`` because x86 has 32 ZMM registers and
one is reserved for the broadcast operand.  The microkernel in
:mod:`repro.gemm.microkernel` allocates through :class:`RegisterFile`, so
a blocking choice that would spill raises instead of silently producing a
kernel real hardware could not hold.

:class:`InstructionTrace` counts instruction events by category; the
performance model uses these counts, which keeps the "modeled" numbers
anchored to the actual kernels rather than to analytic guesses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ZMM_COUNT", "ZMM_BYTES", "RegisterFile", "InstructionTrace"]

#: AVX-512: 32 architectural 512-bit vector registers, 64 bytes each.
ZMM_COUNT = 32
ZMM_BYTES = 64


@dataclass
class ZmmRegister:
    """One 512-bit register holding a typed NumPy view of <= 64 bytes."""

    index: int
    value: np.ndarray | None = None

    def write(self, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.nbytes > ZMM_BYTES:
            raise ValueError(
                f"zmm{self.index}: payload of {value.nbytes} bytes exceeds {ZMM_BYTES}"
            )
        self.value = value

    def read(self) -> np.ndarray:
        if self.value is None:
            raise RuntimeError(f"zmm{self.index} read before write")
        return self.value


class RegisterFile:
    """Explicit allocator over the 32 ZMM registers.

    ``alloc`` hands out registers until the architectural limit; ``free``
    returns them.  Exceeding the limit raises ``RegisterPressureError`` --
    the failure mode the auto-tuner's constraint exists to prevent.
    """

    def __init__(self, count: int = ZMM_COUNT) -> None:
        if not 1 <= count <= ZMM_COUNT:
            raise ValueError(f"register count must be in [1, {ZMM_COUNT}], got {count}")
        self._free = list(range(count - 1, -1, -1))
        self._live: dict[int, ZmmRegister] = {}
        self.capacity = count
        self.high_water = 0

    def alloc(self) -> ZmmRegister:
        if not self._free:
            raise RegisterPressureError(
                f"out of ZMM registers (capacity {self.capacity}); "
                "blocking parameters violate the register budget"
            )
        idx = self._free.pop()
        reg = ZmmRegister(index=idx)
        self._live[idx] = reg
        self.high_water = max(self.high_water, len(self._live))
        return reg

    def alloc_many(self, n: int) -> list[ZmmRegister]:
        return [self.alloc() for _ in range(n)]

    def free(self, reg: ZmmRegister) -> None:
        if reg.index not in self._live:
            raise RuntimeError(f"double free of zmm{reg.index}")
        del self._live[reg.index]
        self._free.append(reg.index)

    @property
    def live_count(self) -> int:
        return len(self._live)


class RegisterPressureError(RuntimeError):
    """Raised when a kernel would need more ZMM registers than exist."""


@dataclass
class InstructionTrace:
    """Counts instruction events by category.

    Categories used by the kernels: ``vpdpbusd``, ``vpmaddwd``, ``fma``,
    ``broadcast``, ``load``, ``store``, ``store_nt`` (non-temporal),
    ``prefetch``, ``convert``.
    """

    counts: Counter = field(default_factory=Counter)

    def emit(self, category: str, n: int = 1) -> None:
        self.counts[category] += n

    def total(self) -> int:
        return sum(self.counts.values())

    def merged_with(self, other: "InstructionTrace") -> "InstructionTrace":
        merged = Counter(self.counts)
        merged.update(other.counts)
        return InstructionTrace(counts=merged)

    def __getitem__(self, category: str) -> int:
        return self.counts.get(category, 0)
