"""LoWino reproduction: efficient low-precision Winograd convolutions.

Reproduction of *LoWino: Towards Efficient Low-Precision Winograd
Convolutions on Modern CPUs* (Li, Jia, Feng, Wang -- ICPP 2021).

Quick start::

    import numpy as np
    from repro import LoWinoConv2d, direct_conv2d_fp32

    x = np.random.rand(1, 64, 32, 32)           # NCHW activations
    w = np.random.randn(64, 64, 3, 3) * 0.05    # filters
    layer = LoWinoConv2d(w, m=4, padding=1)     # F(4x4, 3x3)
    layer.calibrate([x])                        # KL calibration (Eq. 7)
    y = layer(x)                                # INT8 Winograd convolution
    ref = direct_conv2d_fp32(x, w, padding=1)   # FP32 ground truth

Subpackages: ``winograd`` (Cook-Toom transforms), ``quant``
(calibration), ``isa`` (VNNI semantics), ``layout`` (Table 1 blocked
layouts), ``gemm`` (batched INT8 GEMM), ``conv`` (baselines), ``core``
(LoWino), ``codelets``, ``perf`` (cost model), ``parallel``, ``tuning``,
``nn``, ``workloads``, ``experiments``.
"""

from .conv import (
    DownscaleWinogradConv2d,
    Int8DirectConv2d,
    UpcastWinogradConv2d,
    conv2d,
    direct_conv2d_fp32,
    make_layer,
    select_algorithm,
)
from .core import LoWinoConv2d, LoWinoConvNd
from .gemm import BlockingParams, default_blocking
from .quant import EntropyCalibrator, QuantParams, dequantize, quantize
from .winograd import WinogradAlgorithm, cook_toom, winograd_algorithm, winograd_conv2d_fp32

__version__ = "1.0.0"

__all__ = [
    "DownscaleWinogradConv2d",
    "Int8DirectConv2d",
    "UpcastWinogradConv2d",
    "conv2d",
    "direct_conv2d_fp32",
    "make_layer",
    "select_algorithm",
    "LoWinoConv2d",
    "LoWinoConvNd",
    "BlockingParams",
    "default_blocking",
    "EntropyCalibrator",
    "QuantParams",
    "dequantize",
    "quantize",
    "WinogradAlgorithm",
    "cook_toom",
    "winograd_algorithm",
    "winograd_conv2d_fp32",
    "__version__",
]
