"""Wall-clock benchmarking of the vectorized runtime (``repro bench``).

Times the steady-state (plan-cached) online path of every algorithm on
the Table 2 workloads, scaled to the pure-NumPy substrate (batch capped
at 1, spatial and channel extents capped per profile -- the full
batch-64 layers are ASIC-scale work a single interpreter thread cannot
turn around in benchmark time).  Three families of numbers come out:

* per-layer, per-algorithm wall-clock (best-of-``repeats``),
* speedup of each algorithm vs the vectorized ``fp32_direct`` path on
  the same layer (the paper's baseline normalization, Figure 8), and
* the vectorized-engine vs loop-reference ratio for the Winograd INT8
  family (``reference_forward`` + :func:`repro.gemm.batched_gemm_reference`)
  -- the number that justifies the runtime's existence.

"Speedup" here is a *relative* claim about two implementations run in
the same process on the same arrays; absolute wall-clock depends on the
host and is never gated.  :func:`check_regression` compares only the
ratio metrics against a checked-in baseline and fails on a >25% drop.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..workloads import BREAKDOWN_LAYERS, TABLE2_LAYERS, LayerConfig, layer_by_name
from .cache import PlanCache
from .engine import ExecutionEngine
from .plan import ALGORITHMS

__all__ = [
    "BenchProfile",
    "ModelCase",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "PROFILES",
    "REFERENCE_ALGORITHMS",
    "build_case_model",
    "scale_layer",
    "run_bench",
    "run_model_bench",
    "check_regression",
    "format_bench",
    "load_json",
    "write_json",
]

#: JSON document version; bump on breaking schema changes.
SCHEMA_VERSION = 1

#: Default seed for the synthetic activation / filter tensors.
SEED = 2021

#: Algorithms whose layers expose a ``reference_forward`` loop path.
REFERENCE_ALGORITHMS = ("lowino", "int8_upcast", "int8_downscale")


@dataclass(frozen=True)
class ModelCase:
    """One whole-model compiled-vs-eager measurement.

    ``model`` names a builder from :mod:`repro.nn.models` /
    :mod:`repro.nn.unet`; ``algorithm`` is a ``quantize_model`` choice
    (``'auto'`` = the per-layer planner) or ``'fp32'`` for the
    unquantized network.  The eager path runs ``model(x)`` layer by
    layer; the compiled path runs the same prepared engines through an
    :class:`~repro.runtime.session.InferenceSession`, so the ratio
    isolates exactly what whole-model lowering buys.
    """

    model: str
    algorithm: str
    batch: int = 4
    hw: int = 32
    width: int = 32
    m: int = 4

    @property
    def case_name(self) -> str:
        return f"{self.model}/{self.algorithm}"


@dataclass(frozen=True)
class BenchProfile:
    """One named measurement configuration.

    ``hw_cap`` / ``chan_cap`` / ``batch_cap`` shrink each Table 2 layer
    to a tractable size while keeping its *shape character* (the layer
    set still spans hw 7..32 and the full channel spread up to the cap).
    The caps are part of the emitted metadata: a baseline only gates a
    run with identical scaling.  ``model_cases`` adds whole-network
    compiled-vs-eager measurements on the scaled Table 2 model families.
    """

    name: str
    layers: tuple
    batch_cap: int = 1
    hw_cap: int = 32
    chan_cap: int = 128
    repeats: int = 3
    m: int = 4
    reference: bool = True
    reference_repeats: int = 2
    model_cases: tuple = ()
    model_repeats: int = 3


#: The scaled Table 2 network mix for the full profile: per-layer 'auto'
#: selection on all four families plus single-algorithm VGG cases, so
#: both the planner path and the pure lowino / direct paths are gated.
_FULL_MODEL_CASES = (
    ModelCase("vgg", "auto"),
    ModelCase("resnet", "auto"),
    ModelCase("alexnet", "auto"),
    ModelCase("unet", "auto", batch=2, width=16),
    ModelCase("vgg", "lowino"),
    ModelCase("vgg", "int8_direct"),
)

_QUICK_MODEL_CASES = (
    ModelCase("resnet", "auto", batch=2, hw=16, width=16),
    ModelCase("vgg", "lowino", batch=2, hw=16, width=16),
)

FULL_PROFILE = BenchProfile(
    "full",
    tuple(layer.name for layer in TABLE2_LAYERS),
    model_cases=_FULL_MODEL_CASES,
)
QUICK_PROFILE = BenchProfile(
    "quick",
    tuple(BREAKDOWN_LAYERS),
    hw_cap=16,
    repeats=2,
    model_cases=_QUICK_MODEL_CASES,
    model_repeats=2,
)
PROFILES: Dict[str, BenchProfile] = {"full": FULL_PROFILE, "quick": QUICK_PROFILE}


def scale_layer(layer: LayerConfig, profile: BenchProfile) -> LayerConfig:
    """Cap a Table 2 layer's batch / spatial / channel extents."""
    return replace(
        layer,
        batch=min(layer.batch, profile.batch_cap),
        hw=min(layer.hw, profile.hw_cap),
        c=min(layer.c, profile.chan_cap),
        k=min(layer.k, profile.chan_cap),
    )


def _best_of(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(values: Iterable[float]) -> Optional[float]:
    vals = [v for v in values if v is not None and v > 0]
    if not vals:
        return None
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def build_case_model(case: ModelCase):
    """Instantiate the (FP32) network for a model case."""
    from ..nn.models import build_alexnet_small, build_resnet_small, build_vgg_small
    from ..nn.unet import build_unet_small

    builders = {
        "vgg": build_vgg_small,
        "resnet": build_resnet_small,
        "alexnet": build_alexnet_small,
        "unet": build_unet_small,
    }
    try:
        builder = builders[case.model]
    except KeyError:
        raise ValueError(
            f"unknown model {case.model!r}; known: {sorted(builders)}"
        ) from None
    return builder(width=case.width)


def run_model_bench(
    profile: BenchProfile = FULL_PROFILE,
    seed: int = SEED,
    backend: Optional[str] = None,
    wisdom=None,
) -> List[dict]:
    """Whole-model compiled-vs-eager measurements (``model_cases``).

    For each case: build the network, quantize it (streaming calibration
    on the bench input), and time ``model(x)`` (eager, layer-by-layer)
    against ``InferenceSession.run(x)`` (compiled, plan-cached, fused
    epilogues) -- the *same prepared engine objects* either way, so the
    ratio is pure execution-architecture.  Each entry also records
    bitwise equality of the two outputs (``exact``) and the session's
    plan-cache counters.

    ``wisdom`` (path / :class:`~repro.tuning.wisdom.WisdomFile`) applies
    tuned per-geometry algorithm choices at lowering time; selection
    swaps the shared engine objects, so the eager reference swaps with
    it and ``exact`` still gates bit-identity.
    """
    from ..nn.quantize import quantize_model
    from .session import InferenceSession

    rng = np.random.default_rng(seed)
    entries: List[dict] = []
    for case in profile.model_cases:
        model = build_case_model(case)
        x = rng.standard_normal((case.batch, 3, case.hw, case.hw))
        if case.algorithm != "fp32":
            quantize_model(model, case.algorithm, m=case.m, calibration_batches=[x])
        session = InferenceSession(
            model, x.shape, collect_timings=False, backend=backend, wisdom=wisdom
        )
        y_compiled = session.run(x)  # warm: builds plans + geometry scratch
        y_eager = model(x)  # warm eager (engines already prepared)
        eager_s = _best_of(lambda: model(x), profile.model_repeats)
        compiled_s = _best_of(lambda: session.run(x), profile.model_repeats)
        entries.append(
            {
                "name": case.case_name,
                "model": case.model,
                "algorithm": case.algorithm,
                "batch": case.batch,
                "hw": case.hw,
                "width": case.width,
                "m": case.m,
                "eager_s": eager_s,
                "compiled_s": compiled_s,
                "compiled_speedup": eager_s / compiled_s,
                "exact": bool(np.array_equal(y_eager, y_compiled)),
                "cache_stats": session.cache_stats(),
            }
        )
    return entries


def run_bench(
    profile: BenchProfile = FULL_PROFILE,
    algorithms: Sequence[str] = ALGORITHMS,
    seed: int = SEED,
    engine: Optional[ExecutionEngine] = None,
    models: bool = True,
    backend: Optional[str] = None,
    wisdom=None,
) -> dict:
    """Run the benchmark and return the ``BENCH_runtime.json`` document.

    A private plan cache is used by default so the emitted
    ``cache_stats`` describe exactly this run (per-layer plan misses,
    per-call geometry-scratch hits).  It is sized to hold every plan
    and geometry arena of the full profile at once -- a model's working
    set is resident in steady state, and benchmarking the eviction path
    would just add noise.

    ``backend`` names the fused-stage kernel backend (``"numpy"`` /
    ``"threaded"``; ``None`` = process default).  It is recorded in the
    emitted document but deliberately *not* part of the baseline
    compatibility key -- both backends are bitwise identical, so a
    baseline gates any backend's ratios.
    """
    if engine is None:
        engine = ExecutionEngine(cache=PlanCache(capacity=1024), backend=backend)
    elif backend is not None:
        from .backends import resolve_backend

        engine.backend = resolve_backend(backend)
    rng = np.random.default_rng(seed)
    layer_entries: List[dict] = []
    for name in profile.layers:
        layer_cfg = scale_layer(layer_by_name(name), profile)
        x = layer_cfg.input_tensor(rng, dtype=np.float64)
        w = layer_cfg.filter_tensor(rng, dtype=np.float64)
        walls: Dict[str, float] = {}
        runtime_layers = {}
        for algo in algorithms:
            layer = engine.layer(w, algo, m=profile.m, padding=layer_cfg.padding)
            layer(x)  # warm call: builds plan state and geometry scratch
            walls[algo] = _best_of(lambda layer=layer: layer(x), profile.repeats)
            runtime_layers[algo] = layer
        base = walls.get("fp32_direct")
        algo_entries = {
            algo: {
                "wall_s": walls[algo],
                "speedup_vs_fp32_direct": (base / walls[algo]) if base else None,
            }
            for algo in algorithms
        }
        ref_entries: Dict[str, dict] = {}
        if profile.reference:
            for algo in REFERENCE_ALGORITHMS:
                if algo not in runtime_layers:
                    continue
                ref = runtime_layers[algo].reference
                wall_ref = _best_of(
                    lambda ref=ref: ref.reference_forward(x), profile.reference_repeats
                )
                ref_entries[algo] = {
                    "wall_s": wall_ref,
                    "vectorized_speedup": wall_ref / walls[algo],
                }
        layer_entries.append(
            {
                "name": layer_cfg.name,
                "batch": layer_cfg.batch,
                "c": layer_cfg.c,
                "k": layer_cfg.k,
                "hw": layer_cfg.hw,
                "algorithms": algo_entries,
                "reference": ref_entries,
            }
        )
    model_entries = (
        run_model_bench(profile, seed=seed, backend=backend, wisdom=wisdom)
        if models
        else []
    )
    return {
        "schema": SCHEMA_VERSION,
        "profile": asdict(profile),
        "backend": engine.backend.name,
        "wisdom": wisdom is not None,
        "seed": seed,
        "numpy": np.__version__,
        "machine": platform.machine(),
        "layers": layer_entries,
        "models": model_entries,
        "summary": _summarize(layer_entries, algorithms, model_entries),
        "cache_stats": engine.cache.stats_dict(),
    }


def _summarize(
    layer_entries: List[dict],
    algorithms: Sequence[str],
    model_entries: Sequence[dict] = (),
) -> dict:
    speedups = {
        algo: _geomean(
            e["algorithms"][algo]["speedup_vs_fp32_direct"] for e in layer_entries
        )
        for algo in algorithms
    }
    reference = {}
    for algo in REFERENCE_ALGORITHMS:
        ratios = [
            e["reference"][algo]["vectorized_speedup"]
            for e in layer_entries
            if algo in e.get("reference", {})
        ]
        if ratios:
            reference[algo] = {
                "geomean": _geomean(ratios),
                "min": min(ratios),
                "max": max(ratios),
            }
    summary = {"speedup_vs_fp32_direct": speedups, "reference_speedup": reference}
    ratios = [e["compiled_speedup"] for e in model_entries]
    if ratios:
        summary["model_compiled_vs_eager"] = {
            "geomean": _geomean(ratios),
            "min": min(ratios),
            "max": max(ratios),
        }
    return summary


#: Keys of ``profile`` that must match for a baseline comparison to be valid.
_COMPAT_KEYS = ("name", "layers", "batch_cap", "hw_cap", "chan_cap", "m", "model_cases")


def check_regression(current: dict, baseline: dict, gate: float = 0.25) -> List[str]:
    """Ratio-metric regression gate: current vs checked-in baseline.

    Only *relative* metrics are compared (speedup-vs-fp32_direct
    geomeans, loop-reference ratios) -- never absolute wall-clock, which
    varies across hosts.  A metric regresses when it drops more than
    ``gate`` (fraction) below the baseline value.  Returns a list of
    human-readable violations; empty means PASS.
    """
    violations: List[str] = []
    cur_prof, base_prof = current.get("profile", {}), baseline.get("profile", {})
    mismatched = [
        k
        for k in _COMPAT_KEYS
        if _norm(cur_prof.get(k)) != _norm(base_prof.get(k))
    ]
    if mismatched:
        return [
            "baseline incompatible with this run (profile fields differ: "
            + ", ".join(
                f"{k}: {base_prof.get(k)!r} -> {cur_prof.get(k)!r}" for k in mismatched
            )
            + "); regenerate it with --update-baseline"
        ]
    floor = 1.0 - gate
    cur_sum, base_sum = current["summary"], baseline["summary"]
    for algo, base_val in base_sum.get("speedup_vs_fp32_direct", {}).items():
        cur_val = cur_sum.get("speedup_vs_fp32_direct", {}).get(algo)
        if base_val and cur_val is not None and cur_val < base_val * floor:
            violations.append(
                f"summary speedup_vs_fp32_direct[{algo}]: "
                f"{cur_val:.2f}x < {floor:.2f} * baseline {base_val:.2f}x"
            )
    for algo, base_entry in base_sum.get("reference_speedup", {}).items():
        cur_entry = cur_sum.get("reference_speedup", {}).get(algo)
        if cur_entry and base_entry.get("geomean"):
            if cur_entry["geomean"] < base_entry["geomean"] * floor:
                violations.append(
                    f"summary reference_speedup[{algo}].geomean: "
                    f"{cur_entry['geomean']:.2f}x < {floor:.2f} * "
                    f"baseline {base_entry['geomean']:.2f}x"
                )
    base_layers = {e["name"]: e for e in baseline.get("layers", [])}
    for entry in current.get("layers", []):
        base_entry = base_layers.get(entry["name"])
        if base_entry is None:
            continue
        base_ref = base_entry.get("reference", {}).get("lowino")
        cur_ref = entry.get("reference", {}).get("lowino")
        if base_ref and cur_ref:
            if cur_ref["vectorized_speedup"] < base_ref["vectorized_speedup"] * floor:
                violations.append(
                    f"{entry['name']}: lowino vectorized_speedup "
                    f"{cur_ref['vectorized_speedup']:.2f}x < {floor:.2f} * "
                    f"baseline {base_ref['vectorized_speedup']:.2f}x"
                )
    # Model-level gates: the compiled-vs-eager ratio (host-independent,
    # both paths timed in the same process) and the bitwise-equality
    # invariant, which must never break regardless of host.
    base_model = base_sum.get("model_compiled_vs_eager")
    cur_model = cur_sum.get("model_compiled_vs_eager")
    if base_model and cur_model and base_model.get("geomean"):
        if cur_model["geomean"] < base_model["geomean"] * floor:
            violations.append(
                f"summary model_compiled_vs_eager.geomean: "
                f"{cur_model['geomean']:.2f}x < {floor:.2f} * "
                f"baseline {base_model['geomean']:.2f}x"
            )
    base_cases = {e["name"]: e for e in baseline.get("models", [])}
    for entry in current.get("models", []):
        if not entry["exact"]:
            violations.append(
                f"model {entry['name']}: compiled output is not bit-identical "
                f"to the eager model"
            )
        base_entry = base_cases.get(entry["name"])
        if base_entry is None:
            continue
        if entry["compiled_speedup"] < base_entry["compiled_speedup"] * floor:
            violations.append(
                f"model {entry['name']}: compiled_speedup "
                f"{entry['compiled_speedup']:.2f}x < {floor:.2f} * "
                f"baseline {base_entry['compiled_speedup']:.2f}x"
            )
    return violations


def _norm(value):
    # JSON round-trips tuples as lists; compare them structurally.
    return list(value) if isinstance(value, (list, tuple)) else value


def format_bench(doc: dict) -> str:
    """Human-readable table for one benchmark document."""
    algorithms = list(doc["summary"]["speedup_vs_fp32_direct"])
    lines = []
    prof = doc["profile"]
    lines.append(
        f"Runtime benchmark -- profile={prof['name']} m={prof['m']} "
        f"caps(batch={prof['batch_cap']}, hw={prof['hw_cap']}, chan={prof['chan_cap']}) "
        f"repeats={prof['repeats']}"
    )
    header = f"{'layer':14s} {'b':>2s} {'c':>4s} {'k':>4s} {'hw':>3s}"
    for algo in algorithms:
        header += f" {algo[:12]:>13s}"
    header += f" {'lowino ref':>11s}"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in doc["layers"]:
        row = (
            f"{entry['name']:14s} {entry['batch']:2d} {entry['c']:4d} "
            f"{entry['k']:4d} {entry['hw']:3d}"
        )
        for algo in algorithms:
            cell = entry["algorithms"][algo]
            row += f" {cell['wall_s'] * 1e3:8.2f}ms"
            sp = cell["speedup_vs_fp32_direct"]
            row += f"/{sp:4.1f}" if sp is not None else "/  --"
        ref = entry.get("reference", {}).get("lowino")
        row += f" {ref['vectorized_speedup']:10.1f}x" if ref else f" {'--':>11s}"
        lines.append(row)
    lines.append("")
    lines.append("geomean speedup vs fp32_direct: " + "  ".join(
        f"{algo}={sp:.2f}x" if sp is not None else f"{algo}=--"
        for algo, sp in doc["summary"]["speedup_vs_fp32_direct"].items()
    ))
    for algo, entry in doc["summary"].get("reference_speedup", {}).items():
        lines.append(
            f"vectorized vs loop reference [{algo}]: geomean {entry['geomean']:.1f}x "
            f"(min {entry['min']:.1f}x, max {entry['max']:.1f}x)"
        )
    if doc.get("models"):
        lines.append("")
        lines.append(
            f"{'model case':22s} {'b':>2s} {'hw':>3s} {'w':>3s} "
            f"{'eager':>10s} {'compiled':>10s} {'speedup':>8s} {'exact':>6s}"
        )
        for entry in doc["models"]:
            lines.append(
                f"{entry['name']:22s} {entry['batch']:2d} {entry['hw']:3d} "
                f"{entry['width']:3d} {entry['eager_s'] * 1e3:8.2f}ms "
                f"{entry['compiled_s'] * 1e3:8.2f}ms "
                f"{entry['compiled_speedup']:7.2f}x {'yes' if entry['exact'] else 'NO':>6s}"
            )
        model_sum = doc["summary"].get("model_compiled_vs_eager")
        if model_sum:
            lines.append(
                f"model compiled vs eager: geomean {model_sum['geomean']:.2f}x "
                f"(min {model_sum['min']:.2f}x, max {model_sum['max']:.2f}x)"
            )
    return "\n".join(lines)


def write_json(doc: dict, path) -> None:
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_json(path) -> dict:
    return json.loads(Path(path).read_text())
