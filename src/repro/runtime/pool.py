"""Persistent worker pool for statically scheduled stages.

The seed executed every parallel stage as a fork-join: a fresh
``ThreadPoolExecutor`` per :func:`repro.parallel.run_partitioned` call,
torn down when the stage finished.  On the paper's hardware the thread
team lives for the whole inference run (Section 4.4: tasks are assigned
to threads at plan-construction time), so per-stage thread creation is
pure overhead the model never charges.  :class:`WorkerPool` keeps the
threads alive across calls: work arrives as the contiguous
:class:`~repro.parallel.scheduler.Partition` ranges of a
:class:`~repro.parallel.scheduler.StaticSchedule`, each worker executes
its range, and a latch releases the caller -- same decomposition and
execution order as the fork-join path, without the spawn cost.

Concurrency contract
--------------------
``run_partitioned`` may be called from any number of threads at once;
in-flight stages are tracked so :meth:`WorkerPool.shutdown` can *drain*
(wait for active stages to join) before closing.  A call made from
inside one of the pool's own worker threads runs its stage inline --
nested dispatch would wait on a latch only the already-occupied workers
could release, i.e. deadlock.

A process-wide default pool is created lazily by :func:`get_pool` and
grown on demand; growth swaps in a larger pool and retires the old one
only after its in-flight stages drain, so callers mid-stage are never
flipped to serial execution.  :func:`shutdown_pool` tears the default
pool down (tests use this to assert clean start-up).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Callable, List, Optional, Set

from ..parallel.scheduler import StaticSchedule

__all__ = ["WorkerPool", "get_pool", "shutdown_pool"]


class _Latch:
    """Countdown latch: releases :meth:`wait` after ``n`` calls to
    :meth:`count_down`; collects the first raised exception."""

    def __init__(self, n: int) -> None:
        self._remaining = n
        self._cond = threading.Condition()
        self.error: Optional[BaseException] = None

    def count_down(self, error: Optional[BaseException] = None) -> None:
        with self._cond:
            if error is not None and self.error is None:
                self.error = error
            self._remaining -= 1
            if self._remaining <= 0:
                self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until released; with ``timeout``, return False when it
        elapses first (so callers can re-check pool liveness)."""
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._remaining > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        if self.error is not None:
            # Re-raise the worker's exception object: its __traceback__
            # still points at the partition frame that raised, so the
            # caller sees the original failure site, not just the latch.
            raise self.error
        return True


class WorkerPool:
    """Long-lived threads executing contiguous partition ranges.

    ``run_partitioned(fn, tasks, omega)`` has the exact semantics of
    :func:`repro.parallel.run_partitioned` -- ``fn(start, stop)`` once
    per partition of the static schedule, disjoint and in thread order --
    but reuses the same worker threads call after call.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._cond = threading.Condition()
        self._closed = False
        self._active = 0  #: run_partitioned calls currently dispatched
        self._worker_ids: Set[int] = set()
        self.dispatched_ranges = 0  #: partitions executed (observability)
        self.stages_run = 0  #: run_partitioned calls served
        for i in range(workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-runtime-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    @property
    def workers(self) -> int:
        return len(self._threads)

    def _worker_loop(self) -> None:
        with self._cond:
            self._worker_ids.add(threading.get_ident())
        while True:
            item = self._queue.get()
            if item is None:  # shutdown sentinel
                return
            fn, start, stop, latch = item
            try:
                fn(start, stop)
            except BaseException as exc:  # propagate to the caller
                latch.count_down(exc)
            else:
                latch.count_down()

    def _in_worker_thread(self) -> bool:
        return threading.get_ident() in self._worker_ids

    def run_partitioned(
        self, fn: Callable[[int, int], object], tasks: int, omega: int
    ) -> None:
        """Execute ``fn`` over the static schedule's partitions and join.

        Serial (``omega == 1`` or a closed pool) runs inline on the
        caller's thread, like the fork-join path did.  Calls from inside
        one of the pool's own workers also run inline: nested dispatch
        would wait on workers that are, by definition, busy.
        """
        schedule = StaticSchedule.for_tasks(tasks, omega)
        schedule.validate()
        nonempty = [p for p in schedule.partitions if p.size > 0]
        inline = omega == 1 or len(nonempty) <= 1 or self._in_worker_thread()
        if not inline:
            # Register as active *before* re-checking closed, so a
            # concurrent drain-shutdown either sees us and waits, or
            # closed first and we fall back to inline execution.
            with self._cond:
                if self._closed:
                    inline = True
                else:
                    self._active += 1
                    self.stages_run += 1
                    self.dispatched_ranges += len(nonempty)
        if inline:
            for p in schedule.partitions:
                fn(p.start, p.stop)
            return
        latch = _Latch(len(nonempty))
        try:
            for p in nonempty:
                self._queue.put((fn, p.start, p.stop, latch))
            # Bounded waits so a non-draining shutdown racing this
            # dispatch (workers exiting on sentinels queued before our
            # items) surfaces as an error instead of a permanent hang.
            while not latch.wait(timeout=0.5):
                with self._cond:
                    closed = self._closed
                if closed and not latch.wait(timeout=0.5):
                    raise RuntimeError(
                        "WorkerPool was shut down (drain=False) while this "
                        "stage was in flight; some partitions may not have "
                        "executed"
                    )
        finally:
            with self._cond:
                self._active -= 1
                if self._active == 0:
                    self._cond.notify_all()

    def shutdown(self, drain: bool = True) -> None:
        """Stop all workers; subsequent calls execute serially.

        ``drain`` (the default) first waits for in-flight
        ``run_partitioned`` calls to complete, so a pool can be retired
        from under concurrent callers without corrupting their stages.
        A non-draining shutdown is only safe when no other thread can be
        mid-stage.
        """
        with self._cond:
            if drain:
                while self._active > 0:
                    self._cond.wait()
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=5.0)
        # A non-draining shutdown can leave stage items queued behind the
        # sentinels; fail them so blocked callers wake instead of hanging.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            _, _, _, latch = item
            latch.count_down(
                RuntimeError(
                    "WorkerPool shut down before executing a queued partition"
                )
            )


_default_pool: Optional[WorkerPool] = None
_default_lock = threading.Lock()


def get_pool(workers: Optional[int] = None) -> WorkerPool:
    """The process-wide persistent pool, created lazily.

    ``workers`` grows (never shrinks) the default pool when it exceeds
    the current size; ``None`` sizes it to the CPU count on first use.
    An explicit non-positive ``workers`` is an error (it used to fall
    through to the CPU count silently).  Growth swaps a larger pool in
    and drains the old one in the background, so threads mid-stage on
    the old pool finish normally.
    """
    global _default_pool
    if workers is not None and workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    with _default_lock:
        want = workers if workers is not None else (os.cpu_count() or 1)
        old = None
        if _default_pool is None or _default_pool._closed:
            _default_pool = WorkerPool(want)
        elif workers is not None and workers > _default_pool.workers:
            old = _default_pool
            _default_pool = WorkerPool(workers)
        pool = _default_pool
    if old is not None:
        threading.Thread(
            target=old.shutdown, kwargs={"drain": True}, daemon=True
        ).start()
    return pool


def shutdown_pool() -> None:
    """Tear down the default pool (it will be re-created on next use)."""
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None:
        pool.shutdown(drain=True)
