"""Vectorized execution runtime: plans, cache, engine, worker pool.

This package is the online half of the paper's offline/online split
(Section 4): :mod:`~repro.runtime.plan` prepares everything a layer
needs ahead of time, :mod:`~repro.runtime.cache` keeps prepared plans
(and per-geometry scratch) in a bounded LRU, :mod:`~repro.runtime.engine`
executes plans as whole-tensor NumPy pipelines with no Python-level
tile or task loops, and :mod:`~repro.runtime.pool` provides the
persistent worker threads the blocked GEMM's static schedule runs on.
:mod:`~repro.runtime.bench` measures it all against the loop-based
``*_reference`` paths and gates regressions.

Quick use::

    from repro import runtime
    y = runtime.conv2d(images, filters, algorithm="lowino", m=4, padding=1)
    runtime.cache_stats()   # {'hits': ..., 'misses': ..., 'bytes': ...}
"""

from .backends import (
    KernelBackend,
    NumpyKernelBackend,
    ThreadedBlasBackend,
    available_backends,
    default_backend,
    resolve_backend,
)
from .cache import CacheStats, PlanCache, cache_stats, clear_cache, default_cache
from .compiler import CompiledProgram, compile_model, lower
from .engine import ExecutionEngine, RuntimeLayer, default_engine
from .plan import (
    ALGORITHMS,
    ConvPlan,
    LeaseStats,
    ScratchArena,
    ScratchPool,
    build_plan,
    filters_digest,
    get_plan,
    plan_key,
)
from .pool import WorkerPool, get_pool, shutdown_pool
from .session import InferenceSession

__all__ = [
    "ALGORITHMS",
    "CacheStats",
    "CompiledProgram",
    "ConvPlan",
    "ExecutionEngine",
    "InferenceSession",
    "KernelBackend",
    "LeaseStats",
    "NumpyKernelBackend",
    "PlanCache",
    "RuntimeLayer",
    "ScratchArena",
    "ScratchPool",
    "ThreadedBlasBackend",
    "WorkerPool",
    "available_backends",
    "build_plan",
    "cache_stats",
    "clear_cache",
    "compile_model",
    "conv2d",
    "default_backend",
    "default_cache",
    "default_engine",
    "filters_digest",
    "get_plan",
    "get_pool",
    "lower",
    "make_layer",
    "plan_key",
    "resolve_backend",
    "shutdown_pool",
]


def conv2d(images, filters, algorithm: str = "lowino", m: int = 2, padding: int = 0, **kwargs):
    """One-shot convolution through the default engine (plan-cached)."""
    return default_engine().conv2d(images, filters, algorithm=algorithm, m=m, padding=padding, **kwargs)


def make_layer(filters, algorithm: str, m: int = 2, padding: int = 0, **kwargs) -> RuntimeLayer:
    """A persistent vectorized layer bound to the default engine."""
    return default_engine().layer(filters, algorithm, m=m, padding=padding, **kwargs)
