"""InferenceSession: the compiled front door for whole-model execution.

A session owns the full compile-then-execute pipeline for one model:
trace to the graph IR, lower every convolution onto the vectorized
runtime (:mod:`repro.runtime.compiler`), and serve ``run(batch)`` with a
private :class:`~repro.runtime.cache.PlanCache` shared by all layers, so
per-geometry scratch and prepared plans persist across batches.

Sessions are observable: every run accumulates per-layer wall-clock into
:attr:`timings` (keyed by the stable layer paths from
:func:`repro.nn.model.named_convs`), and :meth:`cache_stats` reports the
aggregated plan-cache hit/miss/eviction counters -- the numbers
``repro bench --cache-stats`` surfaces for model runs.

A session is callable (``session(batch)``), so it drops into any API
written against an eager model, e.g.
:func:`repro.nn.metrics.evaluate_model`.

Sessions are thread-safe: one prepared session can serve ``run`` from
any number of threads (the LoWino deployment shape -- prepare once,
serve many).  Execution shares only immutable plans, the internally
locked :class:`~repro.runtime.cache.PlanCache`, and per-geometry
:class:`~repro.runtime.plan.ScratchPool` leases; the cumulative
statistics are merged under a private lock.  :mod:`repro.serve` builds
a batching server on top of this guarantee.

Typical flow (see README quickstart)::

    model = build_resnet_small()
    quantize_model(model, "auto", calibration_batches=batches)
    session = InferenceSession(model, input_shape=(8, 3, 32, 32))
    logits = session.run(images)          # bit-identical to model(images)

The wrapped model must not be re-quantized after the session is built
(plans capture the prepared engine objects); build a new session
instead -- tracing and lowering cost microseconds next to one batch.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..nn.layers import Layer
from ..obs.metrics import MetricsRegistry, Sample
from ..obs.tracer import StageTracer
from .cache import PlanCache
from .compiler import CompiledProgram, compile_model, relower_conv
from .engine import ExecutionEngine
from .plan import aggregate_lease_stats

__all__ = ["InferenceSession"]


class InferenceSession:
    """Compiled, cache-backed execution of one model."""

    def __init__(
        self,
        model: Layer,
        input_shape: Tuple[int, ...],
        cache: Optional[PlanCache] = None,
        engine: Optional[ExecutionEngine] = None,
        collect_timings: bool = True,
        tracer: Optional[StageTracer] = None,
        registry: Optional[MetricsRegistry] = None,
        backend: Optional[object] = None,
        wisdom: Optional[object] = None,
        selector: Optional[object] = None,
        tune: bool = False,
        cache_eviction: str = "lru",
    ) -> None:
        self.model = model
        self.input_shape = tuple(int(s) for s in input_shape)
        if cache is None:
            # Room for every conv's plan + per-geometry scratch entries
            # without evicting within a run.
            n_convs = sum(1 for _ in _convs(model))
            cache = PlanCache(
                capacity=max(64, 8 * max(1, n_convs)), eviction=cache_eviction
            )
        self.cache = cache
        #: Session-wide telemetry hub.  Private by default so two
        #: sessions never alias counters; pass a shared registry to
        #: aggregate (the serving layer labels per model instead).
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        if engine is None:
            # ``backend`` selects the fused-stage kernel backend
            # ("numpy" / "threaded" / an instance); None = process default.
            engine = ExecutionEngine(cache=cache, tracer=tracer, backend=backend)
        else:
            if tracer is not None:
                engine.tracer = tracer
            if backend is not None:
                from .backends import resolve_backend

                engine.backend = resolve_backend(backend)
        self.engine = engine
        if tracer is not None:
            self.registry.register_collector(tracer.collect)
        #: Algorithm selector (wisdom-driven planning).  ``wisdom`` is a
        #: convenience: a path / WisdomFile builds a selector matching
        #: this session's kernel backend.  Lazy import keeps plain
        #: sessions free of the tuning layer.
        if selector is None and wisdom is not None:
            from ..tuning.selector import AlgorithmSelector

            selector = AlgorithmSelector(wisdom=wisdom, backend=self.engine.backend)
        self.selector = selector
        #: Bumped by :meth:`refresh_selection` whenever a conv was
        #: re-lowered to a newly landed wisdom choice.
        self.selection_epoch = 0
        self._relower_lock = threading.Lock()
        self.program: CompiledProgram = compile_model(
            model, self.input_shape, cache=self.cache, engine=self.engine,
            selector=selector, tune=tune,
        )
        if self.program.selection:
            # Warm the wisdom-known plans (and their geometry scratch)
            # before the first request hits them; program.run bypasses
            # the session counters so telemetry stays request-only.
            self.program.run(np.zeros(self.input_shape))
        self.collect_timings = collect_timings
        #: Guards the cumulative statistics below; ``run`` itself holds
        #: no lock while executing, so N threads can run concurrently.
        self._stats_lock = threading.Lock()
        #: Cumulative per-layer seconds across all runs, by layer path.
        self.timings: Dict[str, float] = {}
        #: Number of ``run`` calls since construction / ``reset_stats``.
        self._runs = self.registry.counter(
            "repro_session_runs_total", help="run() calls on this session"
        )
        #: Total images pushed through ``run``.
        self._images = self.registry.counter(
            "repro_session_images_total", help="images executed by this session"
        )
        #: Convs re-lowered by :meth:`refresh_selection`.
        self._relowered = self.registry.counter(
            "repro_session_relowered_total",
            help="convs re-lowered to a newly landed wisdom choice",
        )
        self.registry.register_collector(self._collect)

    @property
    def graph(self):
        return self.program.graph

    @property
    def selection(self) -> Dict[str, str]:
        """conv path -> applied algorithm label (wisdom-driven choices)."""
        return dict(self.program.selection)

    def refresh_selection(self) -> list:
        """Epoch-based re-lowering: adopt newly landed wisdom choices.

        Re-consults the selector (``measure=False`` -- a cheap wisdom
        refresh + lookup, never a measurement) for every conv, each
        within its own family (quantized convs among the INT8
        pipelines, full-precision convs among fp32_winograd@m /
        fp32_direct), and, where the persisted choice differs from the
        running engine, swaps ``conv.engine`` and the step's plan in
        place.
        Numerically safe by construction: a swap only applies when it
        preserves the conv's calibrated quantization
        (:func:`~repro.tuning.selector.swap_preserves_calibration`),
        and eager + compiled keep sharing the one rebuilt engine
        object.  New plans are warmed with a zero batch before the
        epoch is published.

        Returns the re-lowered conv paths (empty when nothing changed).
        The background tuner calls this during idle periods only.
        """
        if self.selector is None:
            return []
        from ..runtime.compiler import algorithm_of_engine
        from ..tuning.selector import (
            ConvGeometry,
            build_engine_for,
            conv_family,
            swap_preserves_calibration,
        )

        changed = []
        with self._relower_lock:
            graph = self.program.graph
            for step in self.program.steps:
                if step.kind != "conv":
                    continue
                conv = step.node.layer
                family = conv_family(conv)
                geom = ConvGeometry.of_conv(conv, graph.in_shape(step.node))
                result = self.selector.select(geom, measure=False, family=family)
                if result is None or result.source != "wisdom":
                    continue
                if conv.engine is None:
                    current = ("fp32_direct", 0)
                else:
                    current = (
                        algorithm_of_engine(conv.engine),
                        getattr(conv.engine, "m", 0),
                    )
                if (result.algorithm, result.m) == current:
                    self.program.selection[step.path] = result.label
                    continue
                if not swap_preserves_calibration(conv, result.algorithm, result.m):
                    continue
                conv.engine = build_engine_for(conv, result.algorithm, result.m)
                relower_conv(step, self.cache)
                self.program.selection[step.path] = result.label
                changed.append(step.path)
            if changed:
                self.program.run(np.zeros(self.input_shape))
                self.selection_epoch += 1
                self._relowered.inc(len(changed))
        return changed

    @property
    def runs(self) -> int:
        """Number of ``run`` calls since construction / ``reset_stats``."""
        return int(self._runs.value)

    @property
    def images_seen(self) -> int:
        """Total images pushed through ``run``."""
        return int(self._images.value)

    def run(self, images: np.ndarray) -> np.ndarray:
        """Execute the compiled program on one NCHW batch.

        Safe to call from any number of threads: execution itself is
        lock-free (plans are immutable, scratch is leased per call, the
        plan cache has its own lock), and per-run timings accumulate in
        a thread-local dict merged into :attr:`timings` under
        ``_stats_lock`` afterwards.
        """
        images = np.asarray(images)
        local: Optional[Dict[str, float]] = {} if self.collect_timings else None
        out = self.program.run(images, timings=local)
        if local:
            with self._stats_lock:
                for path, seconds in local.items():
                    self.timings[path] = self.timings.get(path, 0.0) + seconds
        self._runs.inc()
        self._images.inc(int(images.shape[0]))
        return out

    __call__ = run

    def run_batches(self, batches: Iterable[np.ndarray]) -> Iterable[np.ndarray]:
        """Lazily map ``run`` over a stream of batches."""
        return (self.run(b) for b in batches)

    def layer_timings(self) -> Dict[str, float]:
        """Cumulative seconds per layer path, slowest first."""
        with self._stats_lock:
            items = list(self.timings.items())
        return dict(sorted(items, key=lambda kv: -kv[1]))

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated plan-cache counters for this session's cache."""
        return self.cache.stats_dict()

    def scratch_stats(self) -> Dict[str, int]:
        """Scratch-pool lease counters summed over the cached plans."""
        return aggregate_lease_stats(self.cache.entries_snapshot())

    def stats(self) -> Dict[str, object]:
        """One JSON-ready snapshot of everything this session tracks."""
        doc: Dict[str, object] = {
            "runs": self.runs,
            "images_seen": self.images_seen,
            "timings": self.layer_timings(),
            "cache": self.cache_stats(),
            "scratch": self.scratch_stats(),
        }
        if self.selector is not None:
            doc["selection"] = self.selection
            doc["selection_epoch"] = self.selection_epoch
        if self.tracer is not None:
            doc["stages"] = self.tracer.breakdown()
        return doc

    def metrics_text(self) -> str:
        """This session's registry in Prometheus text format."""
        from ..obs.export import prometheus_text

        return prometheus_text(self.registry)

    def reset_stats(self) -> None:
        """Start a fresh statistics epoch: per-layer timings, run/image
        counters, *and* the plan-cache counters (a post-reset snapshot
        must not mix epochs).  Live plans/scratch stay resident."""
        with self._stats_lock:
            self.timings = {}
        self._runs.reset()
        self._images.reset()
        self.cache.reset_stats()
        if self.tracer is not None:
            self.tracer.reset()

    def _collect(self):
        """Registry collector: plan-cache and scratch-pool telemetry."""
        cache = self.cache.stats_dict()
        for key in ("hits", "misses", "evictions"):
            yield Sample(
                f"repro_plan_cache_{key}_total",
                cache[key],
                kind="counter",
                help=f"Plan cache {key}",
            )
        yield Sample(
            "repro_plan_cache_bytes", cache["bytes"], help="Resident plan bytes"
        )
        yield Sample(
            "repro_plan_cache_entries", cache["entries"], help="Resident plan entries"
        )
        scratch = self.scratch_stats()
        for key in ("acquires", "releases", "grows", "waits"):
            yield Sample(
                f"repro_scratch_{key}_total",
                scratch[key],
                kind="counter",
                help=f"Scratch pool {key}",
            )
        yield Sample(
            "repro_scratch_wait_seconds_total",
            scratch["wait_seconds"],
            kind="counter",
            help="Seconds spent waiting on scratch leases",
        )
        for key in ("in_use", "peak_in_use", "arenas", "nbytes"):
            yield Sample(
                f"repro_scratch_{key}", scratch[key], help=f"Scratch pool {key}"
            )

    def describe(self) -> str:
        """Human-readable program listing (graph + per-step algorithms)."""
        lines = [
            f"InferenceSession: {len(self.program.steps)} steps, "
            f"input {self.input_shape}"
        ]
        for step in self.program.steps:
            algo = step.plan.algorithm if step.plan is not None else "-"
            fused = "+relu" if step.relu else ""
            lines.append(f"  {step.kind}{fused:6s} {algo:15s} {step.path}")
        return "\n".join(lines)


def _convs(model: Layer):
    from ..nn.model import named_convs

    return (conv for _, conv in named_convs(model))
