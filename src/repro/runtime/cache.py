"""LRU plan cache with observability counters.

LoWino amortizes all preparation -- transform-matrix construction,
filter transform + quantization, Eq. 9 compensation, blocking decisions
-- offline, so the online path touches none of it (Section 4.2).  The
NumPy substrate gets the same amortization from this cache: a bounded
LRU mapping a :class:`~repro.runtime.plan.PlanKey` (algorithm, filter
fingerprint, tile size, padding, blocking, input geometry) to the
prepared :class:`~repro.runtime.plan.ConvPlan` or per-geometry scratch.

Eviction is by entry count *and* by resident bytes, whichever bound is
hit first; every entry reports its footprint via ``nbytes``.  Counters
(hits / misses / evictions / bytes) are exported by :func:`cache_stats`
and surfaced on the CLI as ``repro bench --cache-stats``.
"""

from __future__ import annotations

import numbers
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["CacheStats", "PlanCache", "default_cache", "cache_stats", "clear_cache"]


@dataclass
class CacheStats:
    """Cumulative counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Bytes currently resident (not cumulative).
    bytes: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes": self.bytes,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


def _entry_bytes(value: Any) -> int:
    """Footprint of a cached value: its ``nbytes`` if it reports one.

    Accepts any real number (NumPy integers are not ``int`` subclasses,
    so an ``isinstance(..., int)`` check would silently report 0 for
    entries whose ``nbytes`` sums ndarray footprints) -- plans and
    geometry scratch must be visible to the byte bound.
    """
    nbytes = getattr(value, "nbytes", 0)
    return int(nbytes) if isinstance(nbytes, numbers.Real) else 0


class PlanCache:
    """Thread-safe bounded cache keyed by any hashable plan key.

    ``capacity`` bounds the entry count, ``max_bytes`` the summed
    ``nbytes`` of resident values (0 disables the byte bound).

    ``eviction`` picks the victim policy: ``"lru"`` (default, least
    recently used) or ``"lfu"`` -- least *frequently* used by the
    per-key hit counters, recency breaking ties.  The serving layer
    uses ``"lfu"`` so a hot geometry's plans survive cache pressure
    from a burst of one-off shapes that would churn a pure LRU.
    """

    _EVICTION_POLICIES = ("lru", "lfu")

    def __init__(
        self,
        capacity: int = 128,
        max_bytes: int = 1 << 31,
        eviction: str = "lru",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if eviction not in self._EVICTION_POLICIES:
            raise ValueError(
                f"eviction must be one of {self._EVICTION_POLICIES}, got {eviction!r}"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.eviction = eviction
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: Per-key hit counters (fed to the LFU victim choice and
        #: exported via :meth:`hit_counts` for telemetry).
        self._hits: Dict[Hashable, int] = {}
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self._hits[key] = self._hits.get(key, 0) + 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._hits.setdefault(key, 0)
            self._evict_locked(protect=key)
            self.stats.entries = len(self._entries)
            return value

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value, building (and inserting) it on a miss.

        The builder runs outside the hit fast-path but inside the lock,
        so concurrent callers never build the same plan twice.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self._hits[key] = self._hits.get(key, 0) + 1
                return self._entries[key]
            self.stats.misses += 1
            value = builder()
            self._entries[key] = value
            self._hits.setdefault(key, 0)
            self._evict_locked(protect=key)
            self.stats.entries = len(self._entries)
            return value

    def _resident_bytes_locked(self) -> int:
        """Summed footprint of the live entries, measured *now*.

        Values can grow after insertion (a GeometryPlan's scratch pool
        allocates arenas on first lease and under contention), so byte
        accounting must re-measure rather than trust insert-time sizes.
        """
        return max(0, sum(_entry_bytes(v) for v in self._entries.values()))

    def _victim_locked(self, protect: Optional[Hashable] = None) -> Hashable:
        """Key to evict next under the configured policy.

        ``protect`` (the just-inserted key) is exempt unless it is the
        only entry left: a fresh plan always starts with 0 hits, so an
        unprotected LFU would evict every admission immediately and new
        geometries could never get cached.
        """
        candidates = [k for k in self._entries if k != protect]
        if not candidates:
            candidates = list(self._entries)
        if self.eviction == "lru":
            return candidates[0]
        # LFU: fewest hits wins; the OrderedDict iterates in recency
        # order (least recent first), so min() with a stable tie-break
        # evicts the least-recently-used among the equally-cold keys.
        return min(candidates, key=lambda k: self._hits.get(k, 0))

    def _evict_locked(self, protect: Optional[Hashable] = None) -> None:
        resident = self._resident_bytes_locked()
        while len(self._entries) > self.capacity or (
            self.max_bytes > 0
            and resident > self.max_bytes
            and len(self._entries) > 1
        ):
            key = self._victim_locked(protect)
            evicted = self._entries.pop(key)
            self._hits.pop(key, None)
            resident = max(0, resident - _entry_bytes(evicted))
            self.stats.evictions += 1
        self.stats.bytes = resident

    def stats_dict(self) -> Dict[str, Any]:
        """Counter snapshot with ``bytes``/``entries`` re-measured from
        the live entries (scratch pools grow after insertion)."""
        with self._lock:
            self.stats.bytes = self._resident_bytes_locked()
            self.stats.entries = len(self._entries)
            return self.stats.as_dict()

    def reset_stats(self) -> None:
        """Zero the cumulative counters (hits/misses/evictions) while
        preserving the live entries and their re-measured footprint --
        the epoch reset :meth:`InferenceSession.reset_stats` needs so a
        post-reset ``cache_stats()`` does not mix epochs."""
        with self._lock:
            self.stats = CacheStats(
                bytes=self._resident_bytes_locked(), entries=len(self._entries)
            )

    def entries_snapshot(self) -> list:
        """Consistent copy of the live values (telemetry aggregation:
        e.g. summing scratch-pool lease stats across geometry plans)."""
        with self._lock:
            return list(self._entries.values())

    def hit_counts(self) -> Dict[Hashable, int]:
        """Per-key hit counters for the resident entries (the numbers
        the LFU policy ranks by; exported for telemetry/tests)."""
        with self._lock:
            return {k: self._hits.get(k, 0) for k in self._entries}

    def clear(self) -> None:
        """Drop all entries; counters other than ``bytes`` are kept."""
        with self._lock:
            self._entries.clear()
            self._hits.clear()
            self.stats.bytes = 0
            self.stats.entries = 0


_default_cache = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide plan cache shared by engine and ``make_layer``."""
    return _default_cache


def cache_stats() -> Dict[str, Any]:
    """Snapshot of the default cache's hits/misses/evictions/bytes."""
    return _default_cache.stats_dict()


def clear_cache() -> None:
    """Empty the default cache (plans are rebuilt on next use)."""
    _default_cache.clear()
