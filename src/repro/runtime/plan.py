"""Execution plans: prepared, cache-resident convolution state.

A plan is everything LoWino prepares *offline* (Section 4.2): the
Cook-Toom transform matrices, the transformed + quantized + packed
filters, the Eq. 9 compensation term, the blocking decision -- plus the
engine-side float64 operand casts and, per input geometry, the tile-grid
decomposition and preallocated scratch buffers.  Building a plan is the
expensive part of a convolution call; executing one is a handful of
whole-tensor NumPy ops (:mod:`repro.runtime.engine`).

Plans are keyed by :func:`plan_key` -- ``(algorithm, filter
fingerprint, m, padding, bits, extra kwargs)`` -- and stored in the
process-wide :class:`~repro.runtime.cache.PlanCache`; per-geometry
scratch lives under a derived key that appends the input geometry.  The
prepared state embeds the corresponding *reference layer object*
(:class:`~repro.core.LoWinoConv2d` etc.), so plan construction runs the
exact same offline code path the references use -- the engine cannot
drift from the reference preparation by construction.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from .cache import PlanCache, default_cache

__all__ = [
    "ALGORITHMS",
    "ScratchArena",
    "ScratchPool",
    "LeaseStats",
    "ConvPlan",
    "plan_key",
    "filters_digest",
    "aggregate_lease_stats",
    "get_plan",
    "build_plan",
]

#: Algorithms the runtime can plan and execute.
ALGORITHMS: Tuple[str, ...] = (
    "fp32_direct",
    "fp32_winograd",
    "int8_direct",
    "int8_upcast",
    "int8_downscale",
    "lowino",
)


class ScratchArena:
    """Named, reusable scratch buffers for one engine call.

    ``buf(name, shape, dtype)`` returns the cached array when shape and
    dtype match, else (re)allocates.  Buffers are *uninitialized* between
    uses; callers fully overwrite them (``np.matmul(..., out=...)``).

    An arena belongs to exactly one caller at a time: it is handed out
    as a lease by :class:`ScratchPool` and must not be shared between
    threads.  ``aliases(array)`` tells whether ``array`` overlaps any
    buffer -- the engine uses it to copy results that would otherwise
    escape the lease.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def buf(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        arr = self._buffers.get(name)
        if arr is None or arr.shape != tuple(shape) or arr.dtype != np.dtype(dtype):
            arr = np.empty(shape, dtype=dtype)
            self._buffers[name] = arr
        return arr

    def aliases(self, array: np.ndarray) -> bool:
        """True when ``array`` may share memory with any arena buffer
        (bounds overlap -- cheap and conservative)."""
        return any(np.may_share_memory(array, buf) for buf in self._buffers.values())

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._buffers.values())


@dataclass
class LeaseStats:
    """Telemetry for one :class:`ScratchPool`.

    ``grows`` counts acquisitions that found no free arena and had to
    allocate a new one (the contention signal); ``waits`` /
    ``wait_seconds`` accumulate blocking time when a ``max_leases``
    bound forces callers to queue for a release.
    """

    acquires: int = 0
    releases: int = 0
    grows: int = 0
    waits: int = 0
    wait_seconds: float = 0.0
    in_use: int = 0
    peak_in_use: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "acquires": self.acquires,
            "releases": self.releases,
            "grows": self.grows,
            "waits": self.waits,
            "wait_seconds": self.wait_seconds,
            "in_use": self.in_use,
            "peak_in_use": self.peak_in_use,
        }


class ScratchPool:
    """Leased pool of :class:`ScratchArena` instances for one geometry.

    The engine acquires an arena for the duration of one ``execute``
    call and releases it afterwards, so any number of threads can run
    the *same* plan on the *same* geometry concurrently: each holds a
    private buffer set.  The pool grows on demand -- an acquire that
    finds every arena leased allocates a fresh one (counted in
    ``stats.grows``) -- so steady-state serving settles at one arena
    per peak-concurrent caller.

    ``max_leases`` optionally bounds the pool; callers beyond the bound
    block until a release and the wait is recorded in ``stats``.
    """

    def __init__(self, max_leases: Optional[int] = None) -> None:
        if max_leases is not None and max_leases < 1:
            raise ValueError(f"max_leases must be >= 1, got {max_leases}")
        self.max_leases = max_leases
        self._cond = threading.Condition()
        self._free: List[ScratchArena] = []
        self._arenas: List[ScratchArena] = []  #: every arena ever created
        self.stats = LeaseStats()

    def acquire(self) -> ScratchArena:
        with self._cond:
            self.stats.acquires += 1
            if not self._free and (
                self.max_leases is None or len(self._arenas) < self.max_leases
            ):
                arena = ScratchArena()
                self._arenas.append(arena)
                self._free.append(arena)
                if len(self._arenas) > 1:
                    self.stats.grows += 1
            if not self._free:
                self.stats.waits += 1
                t0 = time.perf_counter()
                while not self._free:
                    self._cond.wait()
                self.stats.wait_seconds += time.perf_counter() - t0
            arena = self._free.pop()
            self.stats.in_use += 1
            self.stats.peak_in_use = max(self.stats.peak_in_use, self.stats.in_use)
            return arena

    def release(self, arena: ScratchArena) -> None:
        with self._cond:
            self.stats.releases += 1
            self.stats.in_use -= 1
            self._free.append(arena)
            self._cond.notify()

    @contextmanager
    def lease(self):
        arena = self.acquire()
        try:
            yield arena
        finally:
            self.release(arena)

    @property
    def arenas(self) -> int:
        with self._cond:
            return len(self._arenas)

    @property
    def nbytes(self) -> int:
        with self._cond:
            return sum(a.nbytes for a in self._arenas)

    def stats_dict(self) -> Dict[str, Any]:
        """Consistent :class:`LeaseStats` snapshot plus arena footprint."""
        with self._cond:
            doc = self.stats.as_dict()
            doc["arenas"] = len(self._arenas)
            doc["nbytes"] = sum(a.nbytes for a in self._arenas)
            return doc


@dataclass
class GeometryPlan:
    """Per-input-geometry state: the tile grid and the scratch pool."""

    grid: Any  #: TileGrid for Winograd-family plans, None for direct
    scratch: ScratchPool = field(default_factory=ScratchPool)

    @property
    def nbytes(self) -> int:
        return self.scratch.nbytes


def _array_bytes(obj: Any) -> int:
    """Summed ``nbytes`` of the ndarray attributes of a layer object."""
    total = 0
    for value in vars(obj).values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


@dataclass
class ConvPlan:
    """One prepared convolution: reference layer + engine operands."""

    key: Hashable
    algorithm: str
    #: The prepared reference layer object (offline state lives here).
    layer: Any
    #: Engine-side operands (float64 casts of the quantized filters,
    #: pre-reshaped filter matrices, ...), by name.
    operands: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Plan-time analytic facts the fused kernels exploit (see
    #: :func:`_plan_meta`): integer range bounds that let the online
    #: path skip runtime overflow reductions and int round-trips.
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return _array_bytes(self.layer) + sum(a.nbytes for a in self.operands.values())

    def geometry(
        self, cache: PlanCache, images_shape: Tuple[int, ...], builder
    ) -> GeometryPlan:
        """The cached per-geometry plan for an input shape."""
        geom_key = (self.key, "geometry", tuple(images_shape))
        return cache.get_or_build(geom_key, builder)


def aggregate_lease_stats(values) -> Dict[str, Any]:
    """Sum the scratch-pool lease telemetry across cached values.

    ``values`` is typically ``cache.entries_snapshot()``; every
    :class:`GeometryPlan` contributes its pool's acquires / grows /
    waits / wait seconds plus arena count and bytes, giving the
    engine-wide contention picture one snapshot exports.
    """
    totals: Dict[str, Any] = {
        "pools": 0,
        "acquires": 0,
        "releases": 0,
        "grows": 0,
        "waits": 0,
        "wait_seconds": 0.0,
        "in_use": 0,
        "peak_in_use": 0,
        "arenas": 0,
        "nbytes": 0,
    }
    for value in values:
        if not isinstance(value, GeometryPlan):
            continue
        doc = value.scratch.stats_dict()
        totals["pools"] += 1
        for key in ("acquires", "releases", "grows", "waits", "in_use", "arenas", "nbytes"):
            totals[key] += doc[key]
        totals["wait_seconds"] += doc["wait_seconds"]
        totals["peak_in_use"] = max(totals["peak_in_use"], doc["peak_in_use"])
    return totals


def filters_digest(filters: np.ndarray) -> str:
    """Content fingerprint of a filter tensor (shape, dtype, bytes)."""
    filters = np.ascontiguousarray(filters)
    h = hashlib.sha1()
    h.update(repr((filters.shape, filters.dtype.str)).encode())
    h.update(filters.tobytes())
    return h.hexdigest()


def _freeze_kwargs(kwargs: Dict[str, Any]) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Deterministic, hashable rendering of layer kwargs.

    Returns ``None`` when a kwarg cannot be rendered reproducibly
    (e.g. an ndarray-valued calibration override) -- such layers bypass
    the cache rather than risking a collision.
    """
    items = []
    for name in sorted(kwargs):
        value = kwargs[name]
        if isinstance(value, np.ndarray) or value.__class__.__module__ not in (
            "builtins",
            "repro.gemm.blocking",
        ):
            return None
        items.append((name, repr(value)))
    return tuple(items)


def plan_key(
    algorithm: str,
    filters: np.ndarray,
    m: int,
    padding: int,
    kwargs: Dict[str, Any],
) -> Optional[Hashable]:
    """Cache key for a prepared layer, or ``None`` if uncacheable."""
    frozen = _freeze_kwargs(kwargs)
    if frozen is None:
        return None
    return (
        "plan",
        algorithm,
        int(m),
        int(padding),
        filters_digest(filters),
        frozen,
    )


def _build_layer(
    algorithm: str, filters: np.ndarray, m: int, padding: int, kwargs: Dict[str, Any]
):
    """Construct the prepared reference layer for ``algorithm``."""
    if algorithm == "int8_direct":
        from ..conv.direct import Int8DirectConv2d

        return Int8DirectConv2d(filters, padding=padding, **kwargs)
    if algorithm == "int8_upcast":
        from ..conv.upcast import UpcastWinogradConv2d

        return UpcastWinogradConv2d(filters, m=m, padding=padding, **kwargs)
    if algorithm == "int8_downscale":
        from ..conv.downscale import DownscaleWinogradConv2d

        return DownscaleWinogradConv2d(filters, m=m, padding=padding, **kwargs)
    if algorithm == "lowino":
        from ..core.lowino import LoWinoConv2d

        return LoWinoConv2d(filters, m=m, padding=padding, **kwargs)
    if algorithm == "fp32_winograd":
        from ..conv.fp32 import Fp32WinogradConv2d

        return Fp32WinogradConv2d(filters, m=m, padding=padding, **kwargs)
    if algorithm == "fp32_direct":
        from ..conv.fp32 import Fp32DirectConv2d

        return Fp32DirectConv2d(filters, padding=padding, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}")


#: Largest input-channel count for which the LoWino u8 x s8 GEMM is exact
#: in float32: every partial sum is bounded by C * 255 * 128, which must
#: stay at or below 2**24 (the largest contiguous integer range of f32).
LOWINO_F32_MAX_C = (1 << 24) // (255 * 128)


def _engine_operands(algorithm: str, layer: Any) -> Dict[str, np.ndarray]:
    """Float casts of the integer operands for the BLAS-backed GEMM.

    The vectorized engine contracts 8/16-bit operands through float
    ``np.matmul`` (BLAS) -- exact for integer values because every
    product and partial sum stays below the float's contiguous-integer
    range -- so the casts are hoisted into the plan instead of being
    paid per call.  The LoWino GEMM additionally drops to float32
    (double the SIMD width, half the memory traffic) whenever the
    channel count keeps its partial sums under 2**24; wider layers fall
    back to the float64 operands, which are exact up to 2**53.
    """
    ops: Dict[str, np.ndarray] = {}
    if algorithm == "lowino":
        if layer.filters_fp32.shape[1] <= LOWINO_F32_MAX_C:
            ops["u_f32"] = layer.u_q.astype(np.float32)
            ops["zbar_f32"] = layer.zbar.astype(np.float32)
        else:
            ops["u_f64"] = layer.u_q.astype(np.float64)
            ops["zbar_f64"] = layer.zbar.astype(np.float64)
    elif algorithm == "int8_upcast":
        ops["u_f64"] = layer.u_int16.astype(np.float64)
        ops["bt_f64"] = layer.bt_int.astype(np.float64)
    elif algorithm == "int8_downscale":
        ops["u_f64"] = layer.u_int8.astype(np.float64)
        ops["bt_f64"] = layer.bt_int.astype(np.float64)
    elif algorithm == "int8_direct":
        k = layer.filters_q.shape[0]
        ops["w_f64"] = np.ascontiguousarray(
            layer.filters_q.reshape(k, -1).astype(np.float64)
        )
    elif algorithm == "fp32_winograd":
        # Already float64 and contiguous on the layer; shared (not cast)
        # so the fused GEMM contracts the exact bytes the reference does.
        ops["u_f64"] = layer.u
    elif algorithm == "fp32_direct":
        ops["w_f64"] = layer.w_flat
    return ops


def _abs_colsum_max(matrix: np.ndarray, axis: int) -> int:
    """``max over the kept axes of sum(|matrix|)`` along ``axis`` (int64)."""
    if matrix.size == 0:
        return 0
    return int(np.abs(matrix.astype(np.int64)).sum(axis=axis).max())


def _plan_meta(algorithm: str, layer: Any) -> Dict[str, Any]:
    """Plan-time analytic integer bounds for the fused kernels.

    All quantized operands are known at plan time, so worst-case
    magnitudes of the online intermediates follow from Hölder's
    inequality (``|Av| <= max_row sum|A| * max|v|``):

    - ``v_bound``: elementwise bound on the integer input transform
      ``B^T d B`` where ``|d| <= 2**(bits-1)``.  When it stays within
      INT16 (``v16_ok``), the upcast path can skip the per-call
      ``np.abs(v).max()`` overflow reduction *and* the int16
      materialization -- the float64 values are already exact.
    - ``z_bound``: bound on any GEMM accumulator, from the max
      channel-wise absolute column sum of the quantized filter operand.
      When it stays within INT32 (``z_wrap_free``), the reference's
      wrap-on-overflow ``astype(np.int32)`` is the identity and the
      fused kernels divide the float64 accumulators directly.
    """
    meta: Dict[str, Any] = {}
    int16_max = int(np.iinfo(np.int16).max)
    int32_max = int(np.iinfo(np.int32).max)
    qabs = 1 << (getattr(layer, "bits", 8) - 1)
    if algorithm in ("int8_upcast", "int8_downscale"):
        row = _abs_colsum_max(layer.bt_int, axis=1)
        meta["v_bound"] = qabs * row * row
        if algorithm == "int8_upcast":
            meta["v16_ok"] = meta["v_bound"] <= int16_max
            # (T, C, K) int16 filters: |z[t,n,k]| <= max|v| * sum_c |u[t,c,k]|.
            # Calls that survive the INT16 guard have |v| <= int16_max.
            u_col = _abs_colsum_max(layer.u_int16, axis=1)
            meta["z_bound"] = min(meta["v_bound"], int16_max) * u_col
        else:
            # Downscaled inputs are saturated to int8: |v8| <= 2**7.
            u_col = _abs_colsum_max(layer.u_int8, axis=1)
            meta["z_bound"] = 128 * u_col
        meta["z_wrap_free"] = meta["z_bound"] <= int32_max
    elif algorithm == "int8_direct":
        k = layer.filters_q.shape[0]
        w_col = _abs_colsum_max(layer.filters_q.reshape(k, -1), axis=1)
        meta["z_bound"] = qabs * w_col
        meta["z_wrap_free"] = meta["z_bound"] <= int32_max
    elif algorithm in ("fp32_winograd", "fp32_direct"):
        # The FP32 baselines carry genuinely inexact float accumulations,
        # so no integer bound applies; what the backends need to know is
        # whether the GEMM may be *partitioned* without moving a bit.
        # The fp32_winograd GEMM is a batched (T, N, C) @ (T, C, K)
        # contraction -- splitting along T reassigns whole per-slice
        # dgemms (same operands, dims, strides per slice), so the float
        # results are partition-invariant.  The fp32_direct GEMM is one
        # 2D matmul whose row-split could change BLAS blocking, hence
        # summation order: never partitioned.
        meta["float_gemm"] = True
        meta["gemm_partition_safe"] = algorithm == "fp32_winograd"
    return meta


def build_plan(
    algorithm: str,
    filters: np.ndarray,
    m: int = 2,
    padding: int = 0,
    key: Hashable = None,
    **kwargs,
) -> ConvPlan:
    """Build an (uncached) plan: offline preparation + engine operands."""
    layer = _build_layer(algorithm, filters, m, padding, kwargs)
    return ConvPlan(
        key=key if key is not None else object(),
        algorithm=algorithm,
        layer=layer,
        operands=_engine_operands(algorithm, layer),
        meta=_plan_meta(algorithm, layer),
    )


def get_plan(
    algorithm: str,
    filters: np.ndarray,
    m: int = 2,
    padding: int = 0,
    cache: Optional[PlanCache] = None,
    **kwargs,
) -> ConvPlan:
    """Fetch (or build and insert) the plan for a layer configuration.

    Layers whose kwargs cannot be fingerprinted reproducibly are built
    fresh each time and never enter the cache.
    """
    cache = cache if cache is not None else default_cache()
    filters = np.asarray(filters)
    key = plan_key(algorithm, filters, m, padding, kwargs)
    if key is None:
        return build_plan(algorithm, filters, m=m, padding=padding, **kwargs)
    return cache.get_or_build(
        key, lambda: build_plan(algorithm, filters, m=m, padding=padding, key=key, **kwargs)
    )
