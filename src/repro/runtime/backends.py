"""Pluggable fused-stage kernel backends for the execution engine.

The paper's central engineering claim (Section 4) is that low-precision
Winograd only pays off when transform / quantize / GEMM / dequantize run
as one tight pipeline instead of four separate whole-tensor passes.
This module is that pipeline's seam: each quantized algorithm's online
path is expressed as three *fused* kernels behind the
:class:`KernelBackend` protocol --

``input_transform_quantize``
    tile extraction + ``B^T d B`` + quantization + GEMM-operand layout,
    written into leased scratch in one pass (no int8/int16 round-trips:
    the quantized values stay in the float64 working buffers, where they
    are exact integers -- see the bit-identity notes below).
``gemm_bias``
    the batched GEMM plus the zbar/+128 compensation accumulation, with
    ``out=`` into scratch.
``dequant_output_transform_epilogue``
    scale divide + ``A^T Z A`` + tile assembly + the compiled graph's
    bias/ReLU epilogue applied in place on the detached output (this is
    what removes the compiler's per-step ``y + bias`` allocation).

The FP32 baselines run through the same three entry points (the
"quantize" half of the first stage is simply empty): ``fp32_winograd``
is input transform -> float GEMM -> output transform + epilogue, and
``fp32_direct`` is pad + im2col -> float GEMM -> NHWC restore +
epilogue.  Routing them here gives the Table 2 denominators the same
scratch-backed ``out=`` pipeline, stage laps, and backend choice as the
quantized numerators.

Backends dispatch per algorithm; the engine
(:class:`~repro.runtime.engine.ExecutionEngine`) owns plan/geometry
lookup and the scratch lease and passes a :class:`FusedCall` context
through the three entry points.

Bit-identity contract
---------------------
Every backend must be bit-identical to the reference layers.  The fused
kernels get away with skipping the reference's intermediate
materializations because each skip is an exact no-op:

- *Integer values carried in float64*: the spatial/Winograd-domain
  quantized values are integers well below 2**53, so ``int8 -> f64``
  round-trips (and the int16/int64 intermediates of the upcast path)
  change no bits.  :func:`repro.runtime.plan._plan_meta` proves the
  bounds at plan time; when it cannot, the kernels fall back to the
  reference's runtime checks and wrapping casts.
- *In-place epilogue*: ``out += bias`` then ``np.maximum(out, 0.0,
  out=out)`` on a freshly detached output computes exactly
  ``np.maximum(out + bias, 0.0)``.
- *Threaded GEMM* (:class:`ThreadedBlasBackend`): only the GEMM stage is
  partitioned, over the leading tile-position/row axis, and every
  quantized GEMM is integer-exact in float -- so the partition-dependent
  BLAS summation order cannot change a single bit.  Float (non-exact)
  stages are never partitioned -- with one proven exception: the
  ``fp32_winograd`` GEMM is a *batched* ``(T, N, C) @ (T, C, K)``
  contraction, and splitting it along the leading T axis changes which
  thread issues each per-slice dgemm but not the dgemm itself (same
  operands, dims, and strides per slice), so the float results are
  bitwise partition-invariant.  The single 2D float GEMM of
  ``fp32_direct`` has no such slice structure -- row-splitting *could*
  change BLAS's blocking -- so it always runs serial (the plan records
  this as ``meta["gemm_partition_safe"]``).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

from ..conv._tileops import gemm_result_to_tiles, prepare_input_tiles, tiles_to_gemm_operand
from ..conv.im2col import conv_output_shape, im2col
from ..quant import QuantParams, spatial_params_from_tensor
from ..winograd import assemble_output

__all__ = [
    "FUSED_ALGORITHMS",
    "FusedCall",
    "KernelBackend",
    "NumpyKernelBackend",
    "ThreadedBlasBackend",
    "resolve_backend",
    "default_backend",
    "available_backends",
]

#: Algorithms executed through the fused backend entry points -- the
#: four quantized pipelines plus the two FP32 baselines (whose offline
#: state still lives on the layer objects; the fused kernels replay the
#: layers' exact op sequences against plan-cached operands).
FUSED_ALGORITHMS = (
    "lowino",
    "int8_upcast",
    "int8_downscale",
    "int8_direct",
    "fp32_winograd",
    "fp32_direct",
)

_INT8_MIN = int(np.iinfo(np.int8).min)
_INT8_MAX = int(np.iinfo(np.int8).max)
_INT16_MAX = int(np.iinfo(np.int16).max)


class FusedCall:
    """Mutable context threaded through one fused engine call.

    Owns the per-call state the three kernels hand to each other (the
    GEMM operand, the accumulator, quantization params, the tile grid)
    plus the scratch lease and tracer lap clock.  ``buf`` returns a
    leased scratch buffer -- or a fresh array when scratch is disabled --
    so kernels always have an ``out=`` target.
    """

    __slots__ = (
        "plan",
        "images",
        "bias",
        "relu",
        "tracer",
        "arena",
        "geom",
        "grid",
        "in_params",
        "operand",
        "z",
        "gemm_dtype",
        "oh",
        "ow",
        "t_lap",
    )

    def __init__(self, plan, images, bias, relu, tracer) -> None:
        self.plan = plan
        self.images = images
        self.bias = bias
        self.relu = relu
        self.tracer = tracer
        self.arena = None
        self.geom = None
        self.grid = None
        self.in_params = None
        self.operand = None
        self.z = None
        self.gemm_dtype = np.float64
        self.oh = 0
        self.ow = 0
        self.t_lap = 0.0

    def buf(self, name: str, shape, dtype) -> np.ndarray:
        if self.arena is None:
            return np.empty(tuple(shape), dtype=dtype)
        return self.arena.buf(name, tuple(shape), dtype)

    def lap(self, stage: str) -> None:
        if self.tracer is not None:
            self.t_lap = self.tracer.lap(stage, self.t_lap)


@runtime_checkable
class KernelBackend(Protocol):
    """Fused-stage kernel provider for the quantized algorithms.

    Implementations must be stateless per call (one backend instance is
    shared by every session thread) and bit-identical to the reference
    layers -- the equivalence suite asserts the latter for every
    registered backend.
    """

    name: str

    def input_transform_quantize(self, engine: Any, call: FusedCall) -> None: ...

    def gemm_bias(self, engine: Any, call: FusedCall) -> None: ...

    def dequant_output_transform_epilogue(self, engine: Any, call: FusedCall) -> np.ndarray: ...


def _spatial_in_params(layer) -> QuantParams:
    """Input quantization params of the spatial-domain algorithms."""
    if layer.input_threshold is not None:
        return QuantParams.from_threshold(layer.input_threshold, bits=layer.bits)
    return None  # caller derives from the images (needs the tensor)


class NumpyKernelBackend:
    """Default pure-NumPy backend: whole-tensor fused kernels.

    Each ``_itq_* / _gemm_* / _deq_*`` triple replaces one reference
    stage sequence (documented per method); internal tracer laps keep
    the StageTracer breakdown identical in shape to the unfused engine.
    """

    name = "numpy"

    # -- dispatch -------------------------------------------------------
    def input_transform_quantize(self, engine, call: FusedCall) -> None:
        getattr(self, f"_itq_{call.plan.algorithm}")(engine, call)

    def gemm_bias(self, engine, call: FusedCall) -> None:
        getattr(self, f"_gemm_{call.plan.algorithm}")(engine, call)

    def dequant_output_transform_epilogue(self, engine, call: FusedCall) -> np.ndarray:
        return getattr(self, f"_deq_{call.plan.algorithm}")(engine, call)

    # -- shared pieces --------------------------------------------------
    @staticmethod
    def _pad_into_scratch(call: FusedCall, images: np.ndarray, padding: int) -> np.ndarray:
        """Zero-pad into a leased buffer (replaces ``pad_images``' fresh
        allocation); returns the padded array, or ``images`` unpadded."""
        if padding == 0:
            return images
        b, c, h, w = images.shape
        p = padding
        xp = call.buf("xpad", (b, c, h + 2 * p, w + 2 * p), np.float64)
        xp[:, :, :p, :] = 0.0
        xp[:, :, h + p :, :] = 0.0
        xp[:, :, p : h + p, :p] = 0.0
        xp[:, :, p : h + p, w + p :] = 0.0
        np.copyto(xp[:, :, p : h + p, p : w + p], images)
        return xp

    @staticmethod
    def _quantize_padded(call: FusedCall, in_params: QuantParams) -> np.ndarray:
        """Fused quantize + zero-pad for the spatial-domain algorithms.

        Replaces ``quantize(images) -> int8; pad_images(int8)`` with
        ``rint(x * scale)`` clipped in place inside the padded float64
        scratch buffer.  The values are the reference's int8 codes
        exactly (integers, and quantize(0) == 0 for the border).
        """
        images = call.images
        layer = call.plan.layer
        b, c, h, w = images.shape
        p = layer.padding
        xp = call.buf("xpad", (b, c, h + 2 * p, w + 2 * p), np.float64)
        if p:
            xp[:, :, :p, :] = 0.0
            xp[:, :, h + p :, :] = 0.0
            xp[:, :, p : h + p, :p] = 0.0
            xp[:, :, p : h + p, w + p :] = 0.0
        xi = xp[:, :, p : h + p, p : w + p] if p else xp
        np.multiply(images, in_params.scale, out=xi)
        np.rint(xi, out=xi)
        np.clip(xi, in_params.qmin, in_params.qmax, out=xi)
        return xp

    @staticmethod
    def _int_input_transform(call: FusedCall, x: np.ndarray):
        """Tiles + exact integer ``B^T d B`` in float64 working buffers.

        Replaces ``prepare_input_tiles(int8) -> _transform_int_vec``
        (which materialized an f64 cast, a fresh half product and an
        int64 result): same matmuls on the same exact-integer values, so
        the float64 results equal the reference's int64 transform.
        """
        layer = call.plan.layer
        grid = call.geom.grid
        b, c = x.shape[0], x.shape[1]
        a = layer.alg.alpha
        tile_shape = (b, c, grid.tiles_h, grid.tiles_w, a, a)
        tiles, grid = prepare_input_tiles(
            layer.alg, x, out=call.buf("tiles", tile_shape, np.float64)
        )
        call.grid = grid
        bt = call.plan.operands["bt_f64"]
        half = np.matmul(tiles, bt.T, out=call.buf("half", tile_shape, np.float64))
        return np.matmul(bt, half, out=tiles), grid  # reuse the tiles buffer

    @staticmethod
    def _winograd_z_to_output(engine, call: FusedCall, z_fp: np.ndarray) -> np.ndarray:
        """Scatter + fused ``A^T Z A`` + assembly, shared by the three
        Winograd deq kernels (the divide upstream differs per scheme)."""
        layer = call.plan.layer
        grid = call.grid
        b = call.images.shape[0]
        k = layer.filters_fp32.shape[0]
        a, m = layer.alg.alpha, layer.alg.m
        th, tw = grid.tiles_h, grid.tiles_w
        acc_tiles = gemm_result_to_tiles(
            z_fp, b, grid, k, out=call.buf("acc_tiles", (b, k, th, tw, a, a), z_fp.dtype)
        )
        at = layer.alg.at
        half = np.matmul(acc_tiles, at.T, out=call.buf("ohalf", (b, k, th, tw, a, m), np.float64))
        y = np.matmul(at, half, out=call.buf("y", (b, k, th, tw, m, m), np.float64))
        return engine._detach(assemble_output(grid, y), call.arena)

    @staticmethod
    def _apply_epilogue(call: FusedCall, out: np.ndarray) -> np.ndarray:
        """Fused bias + ReLU, in place on the per-call output (bitwise
        ``np.maximum(out + bias, 0.0)``)."""
        if call.bias is None and not call.relu:
            return out
        if call.bias is not None:
            out += call.bias[None, :, None, None]
        if call.relu:
            np.maximum(out, 0.0, out=out)
        call.lap("epilogue")
        return out

    @staticmethod
    def _wrap_divide(call: FusedCall, z: np.ndarray, denom) -> np.ndarray:
        """Dequantizing divide with the reference's INT32 wrap semantics.

        When the plan proves the accumulators fit INT32 (``z_wrap_free``)
        the ``f64 -> int64 -> int32 -> f64`` round-trip is the identity
        and the divide runs in place on the accumulator.  Otherwise the
        wrap is applied through scratch-resident integer buffers.
        """
        if call.plan.meta.get("z_wrap_free", False):
            return np.divide(z, denom, out=z)
        z_i64 = call.buf("z_i64", z.shape, np.int64)
        np.copyto(z_i64, z, casting="unsafe")
        z_i32 = call.buf("z_i32", z.shape, np.int32)
        np.copyto(z_i32, z_i64, casting="unsafe")
        return np.divide(z_i32, denom, out=z)

    # -- lowino (Winograd-domain quantization, Fig. 3) ------------------
    # Stage order: input_transform -> quantize -> gemm -> output_transform.
    def _itq_lowino(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        b, c = images.shape[0], images.shape[1]
        geom = engine._geometry(
            plan, images, (images.shape[2] + 2 * layer.padding, images.shape[3] + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._pad_into_scratch(call, images, layer.padding)
        a = layer.alg.alpha
        th, tw = geom.grid.tiles_h, geom.grid.tiles_w
        tile_shape = (b, c, th, tw, a, a)
        tiles, grid = prepare_input_tiles(
            layer.alg, x, out=call.buf("tiles", tile_shape, np.float64)
        )
        call.grid = grid
        # Fused V = B^T d B: two matmuls through a leased half-product
        # buffer (transform_2d allocated the half fresh per call).
        bt = layer.alg.bt
        half = np.matmul(tiles, bt.T, out=call.buf("half", tile_shape, np.float64))
        v_tiles = np.matmul(bt, half, out=tiles)  # reuse the tiles buffer
        v = tiles_to_gemm_operand(
            v_tiles, out=call.buf("v", (a * a, b * th * tw, c), np.float64)
        )  # (T, N, C)
        call.lap("input_transform")
        if layer.input_params is not None:
            in_params = layer.input_params
        else:
            from ..quant import per_position_minmax_params

            in_params = per_position_minmax_params(v, position_axis=0, bits=layer.bits)
        call.in_params = in_params
        call.gemm_dtype = np.float32 if "u_f32" in plan.operands else np.float64
        # Fused quantize + +128 bias + GEMM-dtype cast: the reference's
        # int8 codes plus 128 are integers in [0, 255], exact in either
        # float dtype, so skipping the int8 materialization changes no
        # bits (same rint/clip on the same products).
        np.multiply(v, in_params.scale, out=v)
        np.rint(v, out=v)
        np.clip(v, in_params.qmin, in_params.qmax, out=v)
        v += 128.0
        if call.gemm_dtype == np.float64:
            call.operand = v
        else:
            vbar = call.buf("vbar", v.shape, np.float32)
            np.copyto(vbar, v, casting="unsafe")
            call.operand = vbar
        call.lap("quantize")

    def _gemm_lowino(self, engine, call: FusedCall) -> None:
        plan = call.plan
        if call.gemm_dtype == np.float32:
            u_op, zbar_op = plan.operands["u_f32"], plan.operands["zbar_f32"]
        else:
            u_op, zbar_op = plan.operands["u_f64"], plan.operands["zbar_f64"]
        t, n, _ = call.operand.shape
        k = plan.layer.filters_fp32.shape[0]
        z = np.matmul(call.operand, u_op, out=call.buf("z", (t, n, k), call.gemm_dtype))
        z += zbar_op[:, None, :]
        call.z = z
        call.lap("gemm")

    def _deq_lowino(self, engine, call: FusedCall) -> np.ndarray:
        layer = call.plan.layer
        k = layer.filters_fp32.shape[0]
        a = layer.alg.alpha
        t = a * a
        # Scatter the (still exact-integer) accumulators into tile layout
        # *before* de-quantizing: the narrow dtype halves the strided copy.
        b = call.images.shape[0]
        grid = call.grid
        th, tw = grid.tiles_h, grid.tiles_w
        acc_z = gemm_result_to_tiles(
            call.z, b, grid, k, out=call.buf("acc_z", (b, k, th, tw, a, a), call.gemm_dtype)
        )
        denom = np.broadcast_to(call.in_params.scale * layer.filter_params.scale, (t, 1, k))
        denom_tiles = denom[:, 0, :].T.reshape(k, a, a)[None, :, None, None, :, :]
        acc_tiles = np.divide(
            acc_z, denom_tiles, out=call.buf("acc_tiles", (b, k, th, tw, a, a), np.float64)
        )
        at = layer.alg.at
        m = layer.alg.m
        half = np.matmul(acc_tiles, at.T, out=call.buf("ohalf", (b, k, th, tw, a, m), np.float64))
        y = np.matmul(at, half, out=call.buf("y", (b, k, th, tw, m, m), np.float64))
        out = engine._detach(assemble_output(grid, y), call.arena)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)

    # -- int8_upcast (spatial quantization, INT16 multiply, Fig. 2a) ----
    # Stage order: quantize -> input_transform -> gemm -> output_transform.
    def _itq_int8_upcast(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        h, w = images.shape[2], images.shape[3]
        in_params = _spatial_in_params(layer)
        if in_params is None:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        call.in_params = in_params
        geom = engine._geometry(
            plan, images, (h + 2 * layer.padding, w + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._quantize_padded(call, in_params)
        call.lap("quantize")
        v, grid = self._int_input_transform(call, x)
        meta = plan.meta
        if not meta.get("v16_ok", False):
            # The plan-time bound cannot rule out INT16 overflow for this
            # transform; fall back to the reference's runtime reduction.
            max_v = int(np.abs(v).max()) if v.size else 0
            if max_v > _INT16_MAX:
                raise OverflowError(f"transformed inputs overflow INT16 (max {max_v})")
        a = layer.alg.alpha
        b, c = images.shape[0], images.shape[1]
        call.operand = tiles_to_gemm_operand(
            v, out=call.buf("v", (a * a, b * grid.tiles_h * grid.tiles_w, c), np.float64)
        )  # (T, N, C), int16-valued float64
        call.lap("input_transform")

    def _gemm_int8_upcast(self, engine, call: FusedCall) -> None:
        t, n, _ = call.operand.shape
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = np.matmul(
            call.operand, call.plan.operands["u_f64"], out=call.buf("z", (t, n, k), np.float64)
        )
        call.lap("gemm")

    def _deq_int8_upcast(self, engine, call: FusedCall) -> np.ndarray:
        layer = call.plan.layer
        k = layer.filters_fp32.shape[0]
        denom = (
            call.in_params.scale
            * layer.weight_params.scale.reshape(1, 1, k)
            * (layer.bt_lcm**2)
            * layer.filter_scale
        )
        z_fp = self._wrap_divide(call, call.z, denom)
        out = self._winograd_z_to_output(engine, call, z_fp)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)

    # -- int8_downscale (spatial quantization, INT8 multiply, Fig. 2b) --
    # Stage order: quantize -> input_transform -> gemm -> output_transform.
    def _itq_int8_downscale(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        h, w = images.shape[2], images.shape[3]
        in_params = _spatial_in_params(layer)
        if in_params is None:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        call.in_params = in_params
        geom = engine._geometry(
            plan, images, (h + 2 * layer.padding, w + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._quantize_padded(call, in_params)
        call.lap("quantize")
        v, grid = self._int_input_transform(call, x)
        # Down-scale + round, the lossy step of Figure 2b -- the same
        # rint/clip as the reference's saturate_cast(..., int8), minus
        # the int8 materialization (the codes are exact in float64).
        scale = layer.input_downscale / (layer.bt_lcm**2)
        np.multiply(v, scale, out=v)
        np.rint(v, out=v)
        np.clip(v, _INT8_MIN, _INT8_MAX, out=v)
        a = layer.alg.alpha
        b, c = images.shape[0], images.shape[1]
        call.operand = tiles_to_gemm_operand(
            v, out=call.buf("v", (a * a, b * grid.tiles_h * grid.tiles_w, c), np.float64)
        )
        call.lap("input_transform")

    def _gemm_int8_downscale(self, engine, call: FusedCall) -> None:
        t, n, _ = call.operand.shape
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = np.matmul(
            call.operand, call.plan.operands["u_f64"], out=call.buf("z", (t, n, k), np.float64)
        )
        call.lap("gemm")

    def _deq_int8_downscale(self, engine, call: FusedCall) -> np.ndarray:
        layer = call.plan.layer
        k = layer.filters_fp32.shape[0]
        denom = (
            call.in_params.scale
            * layer.input_downscale
            * layer.weight_params.scale.reshape(1, 1, k)
            * layer.filter_downscale
        )
        z_fp = self._wrap_divide(call, call.z, denom)
        out = self._winograd_z_to_output(engine, call, z_fp)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)

    # -- int8_direct (im2col lowering) ----------------------------------
    # Stage order: quantize -> input_transform (im2col) -> gemm ->
    # output_transform (dequant + NCHW restore).
    def _itq_int8_direct(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        b, c, h, w = images.shape
        r = layer.filters_fp32.shape[2]
        in_params = _spatial_in_params(layer)
        if in_params is None:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        call.in_params = in_params
        geom = engine._geometry(
            plan, images, (h + 2 * layer.padding, w + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._quantize_padded(call, in_params)
        call.lap("quantize")
        oh, ow = conv_output_shape(h, w, r, stride=layer.stride, padding=layer.padding)
        call.oh, call.ow = oh, ow
        call.operand = im2col(
            x,
            r,
            stride=layer.stride,
            out=call.buf("cols", (b * oh * ow, c * r * r), np.float64),
        )
        call.lap("input_transform")

    def _gemm_int8_direct(self, engine, call: FusedCall) -> None:
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = np.matmul(
            call.operand,
            call.plan.operands["w_f64"].T,
            out=call.buf("z", (call.operand.shape[0], k), np.float64),
        )
        call.lap("gemm")

    def _deq_int8_direct(self, engine, call: FusedCall) -> np.ndarray:
        layer = call.plan.layer
        k = layer.filters_fp32.shape[0]
        b = call.images.shape[0]
        denom = call.in_params.scale * layer.weight_params.scale.reshape(1, k)
        z_fp = self._wrap_divide(call, call.z, denom)
        # Copy out of the lease *preserving the reference's memory order*:
        # the eager layer returns an NHWC-backed transposed view, and
        # downstream reductions (pooling means) sum in layout order, so a
        # C-contiguous output here would change their rounding.  A fresh
        # NHWC array viewed as NCHW has exactly the eager strides.
        out_nhwc = np.empty((b, call.oh, call.ow, k), dtype=np.float64)
        np.copyto(out_nhwc, z_fp.reshape(b, call.oh, call.ow, k))
        out = out_nhwc.transpose(0, 3, 1, 2)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)

    # -- fp32_winograd (full-precision baseline, Eq. 1) -----------------
    # Stage order: input_transform -> gemm -> output_transform.  No
    # quantize stage; the kernels replay Fp32WinogradConv2d.__call__'s
    # exact op sequence (pad, B^T d B through a half buffer, the (T,N,C)
    # scatter, the batched float GEMM against the precomputed U, and the
    # A^T Z A assembly) with every intermediate in leased scratch --
    # ``matmul(..., out=)`` into a C-contiguous buffer issues the same
    # BLAS call as a fresh allocation, so the floats match bitwise.
    def _itq_fp32_winograd(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        b, c = images.shape[0], images.shape[1]
        geom = engine._geometry(
            plan, images, (images.shape[2] + 2 * layer.padding, images.shape[3] + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._pad_into_scratch(call, images, layer.padding)
        a = layer.alg.alpha
        th, tw = geom.grid.tiles_h, geom.grid.tiles_w
        tile_shape = (b, c, th, tw, a, a)
        tiles, grid = prepare_input_tiles(
            layer.alg, x, out=call.buf("tiles", tile_shape, np.float64)
        )
        call.grid = grid
        bt = layer.alg.bt
        half = np.matmul(tiles, bt.T, out=call.buf("half", tile_shape, np.float64))
        v_tiles = np.matmul(bt, half, out=tiles)  # reuse the tiles buffer
        call.operand = tiles_to_gemm_operand(
            v_tiles, out=call.buf("v", (a * a, b * th * tw, c), np.float64)
        )  # (T, N, C)
        call.lap("input_transform")

    def _gemm_fp32_winograd(self, engine, call: FusedCall) -> None:
        t, n, _ = call.operand.shape
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = np.matmul(
            call.operand, call.plan.operands["u_f64"], out=call.buf("z", (t, n, k), np.float64)
        )
        call.lap("gemm")

    def _deq_fp32_winograd(self, engine, call: FusedCall) -> np.ndarray:
        out = self._winograd_z_to_output(engine, call, call.z)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)

    # -- fp32_direct (full-precision im2col baseline) -------------------
    # Stage order: input_transform (pad + im2col) -> gemm -> NHWC
    # restore.  Mirrors Fp32DirectConv2d.__call__ exactly, including the
    # conv_output_shape-on-unpadded-dims / im2col-on-padded-input
    # contract and the NHWC-backed output memory order (downstream
    # layout-sensitive reductions sum in layout order).
    def _itq_fp32_direct(self, engine, call: FusedCall) -> None:
        plan = call.plan
        layer = plan.layer
        images = call.images
        b, c, h, w = images.shape
        r = layer.filters_fp32.shape[2]
        geom = engine._geometry(
            plan, images, (h + 2 * layer.padding, w + 2 * layer.padding)
        )
        engine._lease(call, geom)
        x = self._pad_into_scratch(call, images, layer.padding)
        oh, ow = conv_output_shape(h, w, r, stride=layer.stride, padding=layer.padding)
        call.oh, call.ow = oh, ow
        call.operand = im2col(
            x,
            r,
            stride=layer.stride,
            out=call.buf("cols", (b * oh * ow, c * r * r), np.float64),
        )
        call.lap("input_transform")

    def _gemm_fp32_direct(self, engine, call: FusedCall) -> None:
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = np.matmul(
            call.operand,
            call.plan.operands["w_f64"].T,
            out=call.buf("z", (call.operand.shape[0], k), np.float64),
        )
        call.lap("gemm")

    def _deq_fp32_direct(self, engine, call: FusedCall) -> np.ndarray:
        k = call.plan.layer.filters_fp32.shape[0]
        b = call.images.shape[0]
        out_nhwc = np.empty((b, call.oh, call.ow, k), dtype=np.float64)
        np.copyto(out_nhwc, call.z.reshape(b, call.oh, call.ow, k))
        out = out_nhwc.transpose(0, 3, 1, 2)
        call.lap("output_transform")
        return self._apply_epilogue(call, out)


class ThreadedBlasBackend(NumpyKernelBackend):
    """Fused kernels with the GEMM batch partitioned over the WorkerPool.

    Inherits every transform/quantize/dequantize kernel from the NumPy
    backend and overrides only the GEMM stage: the (T, N, C) batched
    matmul is split along the leading tile-position axis (the row axis
    for the im2col path) into contiguous ranges executed by the
    process-wide drain-aware :class:`~repro.runtime.pool.WorkerPool`.
    NumPy releases the GIL inside BLAS, so partitions genuinely overlap.

    Bit-identity: every partitioned GEMM contracts exact-integer float
    operands, so partial sums are exact regardless of the blocking /
    summation order the partitioning induces -- outputs are bitwise
    equal to the serial backend's (asserted by the equivalence suite).
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers

    def _pool(self):
        from .pool import get_pool

        return get_pool(self.workers)

    def _partitioned_matmul(self, a_op, b_op, out, batched: bool) -> np.ndarray:
        pool = self._pool()
        tasks = a_op.shape[0]
        omega = min(pool.workers, tasks) or 1
        if batched:

            def fn(start: int, stop: int) -> None:
                np.matmul(a_op[start:stop], b_op[start:stop], out=out[start:stop])

        else:

            def fn(start: int, stop: int) -> None:
                np.matmul(a_op[start:stop], b_op, out=out[start:stop])

        pool.run_partitioned(fn, tasks, omega)
        return out

    def _gemm_lowino(self, engine, call: FusedCall) -> None:
        plan = call.plan
        if call.gemm_dtype == np.float32:
            u_op, zbar_op = plan.operands["u_f32"], plan.operands["zbar_f32"]
        else:
            u_op, zbar_op = plan.operands["u_f64"], plan.operands["zbar_f64"]
        vbar = call.operand
        t, n, _ = vbar.shape
        k = plan.layer.filters_fp32.shape[0]
        z = call.buf("z", (t, n, k), call.gemm_dtype)
        pool = self._pool()
        omega = min(pool.workers, t) or 1

        def fn(start: int, stop: int) -> None:
            np.matmul(vbar[start:stop], u_op[start:stop], out=z[start:stop])
            z[start:stop] += zbar_op[start:stop, None, :]

        pool.run_partitioned(fn, t, omega)
        call.z = z
        call.lap("gemm")

    def _gemm_int8_upcast(self, engine, call: FusedCall) -> None:
        t, n, _ = call.operand.shape
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = self._partitioned_matmul(
            call.operand,
            call.plan.operands["u_f64"],
            call.buf("z", (t, n, k), np.float64),
            batched=True,
        )
        call.lap("gemm")

    _gemm_int8_downscale = _gemm_int8_upcast

    def _gemm_int8_direct(self, engine, call: FusedCall) -> None:
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = self._partitioned_matmul(
            call.operand,
            call.plan.operands["w_f64"].T,
            call.buf("z", (call.operand.shape[0], k), np.float64),
            batched=False,
        )
        call.lap("gemm")

    def _gemm_fp32_winograd(self, engine, call: FusedCall) -> None:
        # Float GEMM, but partition-safe: splitting the batched
        # (T, N, C) @ (T, C, K) contraction along T changes which thread
        # issues each per-slice dgemm, never the dgemm itself, so the
        # non-associative float sums are still bitwise invariant.  The
        # plan asserts this via meta["gemm_partition_safe"]; fp32_direct
        # (a single 2D float GEMM, not partition-safe) deliberately has
        # no override here and inherits the serial kernel.
        if not call.plan.meta.get("gemm_partition_safe", False):
            super()._gemm_fp32_winograd(engine, call)
            return
        t, n, _ = call.operand.shape
        k = call.plan.layer.filters_fp32.shape[0]
        call.z = self._partitioned_matmul(
            call.operand,
            call.plan.operands["u_f64"],
            call.buf("z", (t, n, k), np.float64),
            batched=True,
        )
        call.lap("gemm")


_BACKENDS = {
    "numpy": NumpyKernelBackend,
    "threaded": ThreadedBlasBackend,
}

_default_backend: Optional[NumpyKernelBackend] = None


def available_backends() -> tuple:
    """Registered backend names (CLI ``--backend`` choices)."""
    return tuple(sorted(_BACKENDS))


def default_backend() -> NumpyKernelBackend:
    """The process-wide default (pure-NumPy) backend."""
    global _default_backend
    if _default_backend is None:
        _default_backend = NumpyKernelBackend()
    return _default_backend


def resolve_backend(backend=None):
    """Resolve ``None`` / a name / an instance into a backend object."""
    if backend is None:
        return default_backend()
    if isinstance(backend, str):
        cls = _BACKENDS.get(backend)
        if cls is None:
            raise ValueError(
                f"unknown kernel backend {backend!r}; known: {available_backends()}"
            )
        return cls()
    return backend
