"""Vectorized execution of prepared convolution plans.

The online path of every algorithm is expressed as whole-tensor NumPy
ops over *all* tiles at once -- tile extraction by stride tricks, the
2D transforms as batched BLAS ``matmul`` over the trailing axes,
the batched GEMM as one broadcast ``np.matmul``, the inverse transform
and tile assembly as reshapes -- with no per-tile or per-task Python
loop anywhere.  The loop-based implementations stay available as
``*_reference`` (:meth:`repro.core.LoWinoConv2d.reference_forward`,
:func:`repro.gemm.batched_gemm_reference`) for differential testing.

All six algorithms -- the four quantized pipelines and the two FP32
baselines -- run through *fused-stage kernel backends*
(:mod:`repro.runtime.backends`): the engine resolves plan + geometry +
scratch lease and then dispatches ``input_transform_quantize`` /
``gemm_bias`` / ``dequant_output_transform_epilogue`` on the configured
:class:`~repro.runtime.backends.KernelBackend`.  The default backend is
pure NumPy; a threaded-BLAS backend partitions the GEMM batch across
the :class:`~repro.runtime.pool.WorkerPool`.  All backends are bitwise
identical to the reference layers (see the bit-identity notes in
:mod:`repro.runtime.backends`).

Exactness contract
------------------
The integer GEMMs run through float64 BLAS instead of NumPy's integer
``einsum`` loops.  This is *exact*, not approximate: both operands are
small integers, so every product (< 2**16) and every partial sum
(< 2**53 for any channel count below ~10**8) is an integer that float64
represents without rounding, regardless of BLAS's summation order.  The
engine therefore produces bit-for-bit the accumulators of the reference
integer paths, and the equivalence tests assert exactly that.  Where
the reference materializes narrow integers (int8 codes, the upcast
path's int16 operands, wrapped int32 accumulators), the fused kernels
carry the same values in float64 whenever the plan-time bounds
(:func:`repro.runtime.plan._plan_meta`) prove the round-trip is the
identity -- and fall back to the reference's runtime checks and
wrapping casts when they cannot.

All float-domain stages (quantization, dequantization, FP32 transforms)
perform the very same elementwise operations as the reference layers,
in the same order, so the float outputs match bitwise as well.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Optional

import numpy as np

from .backends import FUSED_ALGORITHMS, FusedCall, resolve_backend
from .cache import PlanCache, default_cache
from .plan import ConvPlan, GeometryPlan, get_plan

__all__ = ["ExecutionEngine", "RuntimeLayer", "default_engine"]


class ExecutionEngine:
    """Plan-cached, vectorized convolution executor.

    One engine per process is the intended usage (:func:`default_engine`);
    it shares the process-wide plan cache so repeated ``conv2d`` calls
    and ``make_layer`` objects hit the same prepared state.

    ``use_scratch`` enables preallocated intermediate buffers.  Scratch
    is held in a per-(plan, geometry) :class:`~repro.runtime.plan.ScratchPool`
    of *leased* arenas: each ``execute`` call acquires a private arena for
    its duration and releases it on return, so any number of threads may
    execute the same plan on the same geometry concurrently -- the pool
    grows to one arena per peak-concurrent caller and reports contention
    via its :class:`~repro.runtime.plan.LeaseStats`.

    ``backend`` selects the fused-stage kernel backend for every
    algorithm: ``None`` (the process default pure-NumPy backend), a
    registered name (``"numpy"``, ``"threaded"``), or a
    :class:`~repro.runtime.backends.KernelBackend` instance.

    ``tracer`` (a :class:`~repro.obs.tracer.StageTracer`) lap-times the
    fused kernels per stage -- input transform, quantize, GEMM, output
    transform, epilogue -- consecutive laps tiling each call exactly.
    With no tracer attached (or a disabled one) the hot path pays a
    single attribute check and no timing calls.
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        use_scratch: bool = True,
        tracer: Optional[Any] = None,
        backend: Optional[Any] = None,
    ):
        self.cache = cache if cache is not None else default_cache()
        self.use_scratch = use_scratch
        self.tracer = tracer
        self.backend = resolve_backend(backend)

    def _active_tracer(self):
        tracer = self.tracer
        return tracer if tracer is not None and tracer.enabled else None

    # -- plan management ------------------------------------------------
    def plan_for(
        self, filters: np.ndarray, algorithm: str, m: int = 2, padding: int = 0, **kwargs
    ) -> ConvPlan:
        return get_plan(algorithm, filters, m=m, padding=padding, cache=self.cache, **kwargs)

    def layer(
        self, filters: np.ndarray, algorithm: str, m: int = 2, padding: int = 0, **kwargs
    ) -> "RuntimeLayer":
        """A persistent layer bound to this engine's cached plan."""
        return RuntimeLayer(self, self.plan_for(filters, algorithm, m=m, padding=padding, **kwargs))

    def conv2d(
        self,
        images: np.ndarray,
        filters: np.ndarray,
        algorithm: str = "lowino",
        m: int = 2,
        padding: int = 0,
        **kwargs,
    ) -> np.ndarray:
        """One-shot convolution; preparation is amortized via the cache."""
        return self.execute(self.plan_for(filters, algorithm, m=m, padding=padding, **kwargs), images)

    # -- execution ------------------------------------------------------
    def execute(
        self,
        plan: ConvPlan,
        images: np.ndarray,
        bias: Optional[np.ndarray] = None,
        relu: bool = False,
    ) -> np.ndarray:
        """Run one plan; ``bias``/``relu`` fuse the compiled graph's
        epilogue into the kernel (in place on the fresh output, bitwise
        ``np.maximum(y + bias, 0.0)``)."""
        if plan.algorithm not in FUSED_ALGORITHMS:
            raise ValueError(f"engine cannot execute algorithm {plan.algorithm!r}")
        return self._run_fused(plan, images, bias, relu)

    def _run_fused(
        self,
        plan: ConvPlan,
        images: np.ndarray,
        bias: Optional[np.ndarray],
        relu: bool,
    ) -> np.ndarray:
        backend = self.backend
        tr = self._active_tracer()
        call = FusedCall(plan, np.asarray(images, dtype=np.float64), bias, relu, tr)
        if tr:
            call.t_lap = time.perf_counter()
        try:
            backend.input_transform_quantize(self, call)
            backend.gemm_bias(self, call)
            return backend.dequant_output_transform_epilogue(self, call)
        finally:
            if call.arena is not None:
                call.geom.scratch.release(call.arena)

    def _geometry(self, plan: ConvPlan, images: np.ndarray, padded_hw) -> GeometryPlan:
        def build() -> GeometryPlan:
            from ..winograd import tile_grid

            alg = getattr(plan.layer, "alg", None)
            grid = tile_grid(alg, *padded_hw) if alg is not None else None
            return GeometryPlan(grid=grid)

        return plan.geometry(self.cache, images.shape, build)

    def _lease(self, call: FusedCall, geom: GeometryPlan) -> None:
        """Attach the geometry and (when enabled) a leased scratch arena
        to a fused call; released by ``_run_fused``'s finally block."""
        call.geom = geom
        if self.use_scratch:
            call.arena = geom.scratch.acquire()

    @contextmanager
    def _scratch(self, geom: GeometryPlan):
        """Lease a private scratch arena for one call (None = disabled)."""
        if not self.use_scratch:
            yield None
            return
        arena = geom.scratch.acquire()
        try:
            yield arena
        finally:
            geom.scratch.release(arena)

    @staticmethod
    def _buf(arena, name: str, shape, dtype) -> Optional[np.ndarray]:
        return arena.buf(name, tuple(shape), dtype) if arena is not None else None

    @staticmethod
    def _detach(out: np.ndarray, arena) -> np.ndarray:
        """Copy ``out`` if it aliases leased scratch (edge geometries where
        ``assemble_output`` returns a view); the lease ends with the call,
        so escaping views would see the next caller's data."""
        if arena is not None and arena.aliases(out):
            return out.copy()
        return out

class RuntimeLayer:
    """A callable layer bound to an engine and a cached plan.

    Drop-in replacement for the reference layer objects: calling it runs
    the vectorized engine; ``calibrate``/attribute access delegate to the
    embedded prepared layer (shared through the plan cache).
    """

    def __init__(self, engine: ExecutionEngine, plan: ConvPlan) -> None:
        self.engine = engine
        self.plan = plan

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return self.engine.execute(self.plan, images)

    @property
    def reference(self) -> Any:
        """The embedded loop/reference layer (for differential tests)."""
        return self.plan.layer

    def calibrate(self, batches) -> "RuntimeLayer":
        self.plan.layer.calibrate(batches)
        return self

    def __getattr__(self, name: str) -> Any:
        return getattr(self.plan.layer, name)


_default_engine: Optional[ExecutionEngine] = None


def default_engine() -> ExecutionEngine:
    """The process-wide engine bound to the default plan cache."""
    global _default_engine
    if _default_engine is None:
        _default_engine = ExecutionEngine()
    return _default_engine
