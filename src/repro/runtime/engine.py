"""Vectorized execution of prepared convolution plans.

The online path of every algorithm is expressed as whole-tensor NumPy
ops over *all* tiles at once -- tile extraction by stride tricks, the
2D transforms as batched BLAS ``matmul`` over the trailing axes,
the batched GEMM as one broadcast ``np.matmul``, the inverse transform
and tile assembly as reshapes -- with no per-tile or per-task Python
loop anywhere.  The loop-based implementations stay available as
``*_reference`` (:meth:`repro.core.LoWinoConv2d.reference_forward`,
:func:`repro.gemm.batched_gemm_reference`) for differential testing.

Exactness contract
------------------
The integer GEMMs run through float64 BLAS instead of NumPy's integer
``einsum`` loops.  This is *exact*, not approximate: both operands are
small integers, so every product (< 2**16) and every partial sum
(< 2**53 for any channel count below ~10**8) is an integer that float64
represents without rounding, regardless of BLAS's summation order.  The
engine therefore produces bit-for-bit the accumulators of the reference
integer paths, and the equivalence tests assert exactly that.  (The one
documented divergence: a true INT32 *overflow* -- reachable only beyond
~66k input channels -- wraps in the reference and not here.)

All float-domain stages (quantization, dequantization, FP32 transforms)
call the very same functions as the reference layers, in the same
order, so the float outputs match bitwise as well.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Optional

import numpy as np

from ..conv._tileops import gemm_result_to_tiles, prepare_input_tiles, tiles_to_gemm_operand
from ..conv.im2col import conv_output_shape, im2col, pad_images
from ..isa import saturate_cast
from ..quant import QuantParams, quantize, spatial_params_from_tensor
from ..winograd import assemble_output, input_transform, output_transform
from .cache import PlanCache, default_cache
from .plan import ConvPlan, GeometryPlan, get_plan

__all__ = ["ExecutionEngine", "RuntimeLayer", "default_engine"]


def _wrap_int32(z_f64: np.ndarray) -> np.ndarray:
    """Cast exact-integer float64 accumulators to int32 (wrapping like
    the reference's ``astype(np.int32)`` on the rare overflow)."""
    return z_f64.astype(np.int64).astype(np.int32)


def _transform_int_vec(bt_f64: np.ndarray, tiles: np.ndarray) -> np.ndarray:
    """Exact integer 2D transform ``M t M^T`` via broadcast float64 matmul.

    Bit-identical to :func:`repro.conv.upcast._transform_int` (the int64
    einsum): all intermediates are exact integers in float64.
    """
    half = np.matmul(tiles.astype(np.float64), bt_f64.T)
    return np.matmul(bt_f64, half).astype(np.int64)


class ExecutionEngine:
    """Plan-cached, vectorized convolution executor.

    One engine per process is the intended usage (:func:`default_engine`);
    it shares the process-wide plan cache so repeated ``conv2d`` calls
    and ``make_layer`` objects hit the same prepared state.

    ``use_scratch`` enables preallocated intermediate buffers.  Scratch
    is held in a per-(plan, geometry) :class:`~repro.runtime.plan.ScratchPool`
    of *leased* arenas: each ``execute`` call acquires a private arena for
    its duration and releases it on return, so any number of threads may
    execute the same plan on the same geometry concurrently -- the pool
    grows to one arena per peak-concurrent caller and reports contention
    via its :class:`~repro.runtime.plan.LeaseStats`.

    ``tracer`` (a :class:`~repro.obs.tracer.StageTracer`) lap-times the
    algorithm bodies per stage -- input transform, quantize, GEMM,
    output transform -- consecutive laps tiling each body exactly.  With
    no tracer attached (or a disabled one) the hot path pays a single
    attribute check and no timing calls.
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        use_scratch: bool = True,
        tracer: Optional[Any] = None,
    ):
        self.cache = cache if cache is not None else default_cache()
        self.use_scratch = use_scratch
        self.tracer = tracer

    def _active_tracer(self):
        tracer = self.tracer
        return tracer if tracer is not None and tracer.enabled else None

    # -- plan management ------------------------------------------------
    def plan_for(
        self, filters: np.ndarray, algorithm: str, m: int = 2, padding: int = 0, **kwargs
    ) -> ConvPlan:
        return get_plan(algorithm, filters, m=m, padding=padding, cache=self.cache, **kwargs)

    def layer(
        self, filters: np.ndarray, algorithm: str, m: int = 2, padding: int = 0, **kwargs
    ) -> "RuntimeLayer":
        """A persistent layer bound to this engine's cached plan."""
        return RuntimeLayer(self, self.plan_for(filters, algorithm, m=m, padding=padding, **kwargs))

    def conv2d(
        self,
        images: np.ndarray,
        filters: np.ndarray,
        algorithm: str = "lowino",
        m: int = 2,
        padding: int = 0,
        **kwargs,
    ) -> np.ndarray:
        """One-shot convolution; preparation is amortized via the cache."""
        return self.execute(self.plan_for(filters, algorithm, m=m, padding=padding, **kwargs), images)

    # -- execution ------------------------------------------------------
    def execute(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        fn = getattr(self, f"_run_{plan.algorithm}", None)
        if fn is None:
            raise ValueError(f"engine cannot execute algorithm {plan.algorithm!r}")
        return fn(plan, images)

    def _geometry(self, plan: ConvPlan, images: np.ndarray, padded_hw) -> GeometryPlan:
        def build() -> GeometryPlan:
            from ..winograd import tile_grid

            alg = getattr(plan.layer, "alg", None)
            grid = tile_grid(alg, *padded_hw) if alg is not None else None
            return GeometryPlan(grid=grid)

        return plan.geometry(self.cache, images.shape, build)

    @contextmanager
    def _scratch(self, geom: GeometryPlan):
        """Lease a private scratch arena for one call (None = disabled)."""
        if not self.use_scratch:
            yield None
            return
        arena = geom.scratch.acquire()
        try:
            yield arena
        finally:
            geom.scratch.release(arena)

    @staticmethod
    def _buf(arena, name: str, shape, dtype) -> Optional[np.ndarray]:
        return arena.buf(name, tuple(shape), dtype) if arena is not None else None

    @staticmethod
    def _detach(out: np.ndarray, arena) -> np.ndarray:
        """Copy ``out`` if it aliases leased scratch (edge geometries where
        ``assemble_output`` returns a view); the lease ends with the call,
        so escaping views would see the next caller's data."""
        if arena is not None and arena.aliases(out):
            return out.copy()
        return out

    # -- algorithm bodies (each mirrors its reference layer exactly) ----
    def _run_lowino(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        tr = self._active_tracer()
        t_lap = time.perf_counter() if tr else 0.0
        layer = plan.layer
        images = np.asarray(images, dtype=np.float64)
        b = images.shape[0]
        k = layer.filters_fp32.shape[0]
        c = images.shape[1]
        x = pad_images(images, layer.padding)
        geom = self._geometry(plan, images, x.shape[2:])
        a = layer.alg.alpha
        th, tw = geom.grid.tiles_h, geom.grid.tiles_w
        tile_shape = (b, c, th, tw, a, a)
        with self._scratch(geom) as s:
            tiles, grid = prepare_input_tiles(
                layer.alg, x, out=self._buf(s, "tiles", tile_shape, x.dtype)
            )
            v_tiles = input_transform(
                layer.alg, tiles, out=self._buf(s, "v_tiles", tile_shape, np.float64)
            )
            v = tiles_to_gemm_operand(
                v_tiles, out=self._buf(s, "v", (a * a, b * th * tw, c), np.float64)
            )  # (T, N, C)
            if tr:
                t_lap = tr.lap("input_transform", t_lap)
            if layer.input_params is not None:
                in_params = layer.input_params
            else:
                from ..quant import per_position_minmax_params

                in_params = per_position_minmax_params(v, position_axis=0, bits=layer.bits)
            v_q = quantize(v, in_params)  # (T, N, C) int8
            t, n, c = v_q.shape
            if "u_f32" in plan.operands:
                # Low-precision GEMM: every partial sum of the u8 x s8
                # contraction stays under 2**24 for this channel count, so
                # float32 holds the exact int32 accumulators (plan.py).
                gemm_dtype = np.float32
                u_op, zbar_op = plan.operands["u_f32"], plan.operands["zbar_f32"]
            else:
                gemm_dtype = np.float64
                u_op, zbar_op = plan.operands["u_f64"], plan.operands["zbar_f64"]
            # +128 bias and int8->float cast fused into one whole-tensor add.
            vbar = np.add(
                v_q,
                np.asarray(128.0, dtype=gemm_dtype),
                out=self._buf(s, "vbar", (t, n, c), gemm_dtype),
            )
            if tr:
                t_lap = tr.lap("quantize", t_lap)
            z = np.matmul(vbar, u_op, out=self._buf(s, "z", (t, n, k), gemm_dtype))
            z += zbar_op[:, None, :]
            if tr:
                t_lap = tr.lap("gemm", t_lap)
            # Scatter the (still exact-integer) accumulators into tile layout
            # *before* de-quantizing: the narrow dtype halves the strided
            # copy, and the divide below hits the same elementwise operands
            # as the reference's (T, N, K)-shaped divide.
            acc_z = gemm_result_to_tiles(
                z, b, grid, k, out=self._buf(s, "acc_z", (b, k, th, tw, a, a), gemm_dtype)
            )
            # De-quantize (Eq. 6): per-(position, channel) scale rearranged
            # to broadcast over (B, K, th, tw, a, a).
            denom = np.broadcast_to(in_params.scale * layer.filter_params.scale, (t, 1, k))
            denom_tiles = denom[:, 0, :].T.reshape(k, a, a)[None, :, None, None, :, :]
            acc_tiles = np.divide(
                acc_z, denom_tiles, out=self._buf(s, "acc_tiles", (b, k, th, tw, a, a), np.float64)
            )
            m = layer.alg.m
            y = output_transform(
                layer.alg, acc_tiles, out=self._buf(s, "y", (b, k, th, tw, m, m), np.float64)
            )
            out = self._detach(assemble_output(grid, y), s)
            if tr:
                tr.lap("output_transform", t_lap)
            return out

    def _run_int8_upcast(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        tr = self._active_tracer()
        t_lap = time.perf_counter() if tr else 0.0
        layer = plan.layer
        images = np.asarray(images, dtype=np.float64)
        k = layer.filters_fp32.shape[0]
        if layer.input_threshold is not None:
            in_params = QuantParams.from_threshold(layer.input_threshold, bits=layer.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        xq = quantize(images, in_params)
        if tr:
            t_lap = tr.lap("quantize", t_lap)
        x = pad_images(xq, layer.padding)
        geom = self._geometry(plan, images, x.shape[2:])
        b, c = images.shape[0], images.shape[1]
        a = layer.alg.alpha
        th, tw = geom.grid.tiles_h, geom.grid.tiles_w
        with self._scratch(geom) as s:
            tiles, grid = prepare_input_tiles(
                layer.alg, x, out=self._buf(s, "tiles", (b, c, th, tw, a, a), x.dtype)
            )
            v = _transform_int_vec(plan.operands["bt_f64"], tiles)  # int64, * bt_lcm^2
            max_v = int(np.abs(v).max()) if v.size else 0
            if max_v > np.iinfo(np.int16).max:
                raise OverflowError(f"transformed inputs overflow INT16 (max {max_v})")
            v16 = tiles_to_gemm_operand(
                saturate_cast(v, np.int16),
                out=self._buf(s, "v16", (a * a, b * th * tw, c), np.int16),
            )  # (T, N, C)
            if tr:
                t_lap = tr.lap("input_transform", t_lap)
            t, n, c = v16.shape
            z_f64 = np.matmul(
                v16.astype(np.float64),
                plan.operands["u_f64"],
                out=self._buf(s, "z", (t, n, k), np.float64),
            )
            z = _wrap_int32(z_f64)
            if tr:
                t_lap = tr.lap("gemm", t_lap)
            denom = (
                in_params.scale
                * layer.weight_params.scale.reshape(1, 1, k)
                * (layer.bt_lcm**2)
                * layer.filter_scale
            )
            z_fp = np.divide(
                z.astype(np.float64), denom, out=self._buf(s, "z_fp", z.shape, np.float64)
            )
            acc_tiles = gemm_result_to_tiles(
                z_fp, b, grid, k, out=self._buf(s, "acc_tiles", (b, k, th, tw, a, a), np.float64)
            )
            m = layer.alg.m
            y = output_transform(
                layer.alg, acc_tiles, out=self._buf(s, "y", (b, k, th, tw, m, m), np.float64)
            )
            out = self._detach(assemble_output(grid, y), s)
            if tr:
                tr.lap("output_transform", t_lap)
            return out

    def _run_int8_downscale(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        tr = self._active_tracer()
        t_lap = time.perf_counter() if tr else 0.0
        layer = plan.layer
        images = np.asarray(images, dtype=np.float64)
        k = layer.filters_fp32.shape[0]
        if layer.input_threshold is not None:
            in_params = QuantParams.from_threshold(layer.input_threshold, bits=layer.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        xq = quantize(images, in_params)
        if tr:
            t_lap = tr.lap("quantize", t_lap)
        x = pad_images(xq, layer.padding)
        geom = self._geometry(plan, images, x.shape[2:])
        b, c = images.shape[0], images.shape[1]
        a = layer.alg.alpha
        th, tw = geom.grid.tiles_h, geom.grid.tiles_w
        with self._scratch(geom) as s:
            tiles, grid = prepare_input_tiles(
                layer.alg, x, out=self._buf(s, "tiles", (b, c, th, tw, a, a), x.dtype)
            )
            v = _transform_int_vec(plan.operands["bt_f64"], tiles)
            scale = layer.input_downscale / (layer.bt_lcm**2)
            v8 = saturate_cast(v.astype(np.float64) * scale, np.int8)
            v_op = tiles_to_gemm_operand(
                v8, out=self._buf(s, "v8", (a * a, b * th * tw, c), np.int8)
            )  # (T, N, C)
            if tr:
                t_lap = tr.lap("input_transform", t_lap)
            t, n, c = v_op.shape
            z_f64 = np.matmul(
                v_op.astype(np.float64),
                plan.operands["u_f64"],
                out=self._buf(s, "z", (t, n, k), np.float64),
            )
            z = _wrap_int32(z_f64)
            if tr:
                t_lap = tr.lap("gemm", t_lap)
            denom = (
                in_params.scale
                * layer.input_downscale
                * layer.weight_params.scale.reshape(1, 1, k)
                * layer.filter_downscale
            )
            z_fp = np.divide(
                z.astype(np.float64), denom, out=self._buf(s, "z_fp", z.shape, np.float64)
            )
            acc_tiles = gemm_result_to_tiles(
                z_fp, b, grid, k, out=self._buf(s, "acc_tiles", (b, k, th, tw, a, a), np.float64)
            )
            m = layer.alg.m
            y = output_transform(
                layer.alg, acc_tiles, out=self._buf(s, "y", (b, k, th, tw, m, m), np.float64)
            )
            out = self._detach(assemble_output(grid, y), s)
            if tr:
                tr.lap("output_transform", t_lap)
            return out

    def _run_int8_direct(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        tr = self._active_tracer()
        t_lap = time.perf_counter() if tr else 0.0
        layer = plan.layer
        images = np.asarray(images, dtype=np.float64)
        b, c, h, w = images.shape
        k, _, r, _ = layer.filters_fp32.shape
        if layer.input_threshold is not None:
            in_params = QuantParams.from_threshold(layer.input_threshold, bits=layer.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=layer.bits)
        xq = quantize(images, in_params)
        if tr:
            t_lap = tr.lap("quantize", t_lap)
        x = pad_images(xq, layer.padding)
        oh, ow = conv_output_shape(h, w, r, stride=layer.stride, padding=layer.padding)
        cols = im2col(x, r, stride=layer.stride)  # int8 (B*OH*OW, C*r*r)
        if tr:
            t_lap = tr.lap("input_transform", t_lap)
        acc_f64 = cols.astype(np.float64) @ plan.operands["w_f64"].T
        acc = _wrap_int32(acc_f64)
        if tr:
            t_lap = tr.lap("gemm", t_lap)
        w_scale = layer.weight_params.scale.reshape(1, k)
        out = acc.astype(np.float64) / (in_params.scale * w_scale)
        out = out.reshape(b, oh, ow, k).transpose(0, 3, 1, 2)
        if tr:
            tr.lap("output_transform", t_lap)
        return out

    def _run_fp32_winograd(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        # The fp32 layer object already holds the precomputed transformed
        # filters and runs the fully vectorized pipeline; execution just
        # shares the plan-cached instance.  The stage tracer sees it as
        # one undecomposed "op" (its internals live in the layer).
        tr = self._active_tracer()
        if tr:
            with tr.span("op"):
                return plan.layer(images)
        return plan.layer(images)

    def _run_fp32_direct(self, plan: ConvPlan, images: np.ndarray) -> np.ndarray:
        tr = self._active_tracer()
        if tr:
            with tr.span("op"):
                return plan.layer(images)
        return plan.layer(images)


class RuntimeLayer:
    """A callable layer bound to an engine and a cached plan.

    Drop-in replacement for the reference layer objects: calling it runs
    the vectorized engine; ``calibrate``/attribute access delegate to the
    embedded prepared layer (shared through the plan cache).
    """

    def __init__(self, engine: ExecutionEngine, plan: ConvPlan) -> None:
        self.engine = engine
        self.plan = plan

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return self.engine.execute(self.plan, images)

    @property
    def reference(self) -> Any:
        """The embedded loop/reference layer (for differential tests)."""
        return self.plan.layer

    def calibrate(self, batches) -> "RuntimeLayer":
        self.plan.layer.calibrate(batches)
        return self

    def __getattr__(self, name: str) -> Any:
        return getattr(self.plan.layer, name)


_default_engine: Optional[ExecutionEngine] = None


def default_engine() -> ExecutionEngine:
    """The process-wide engine bound to the default plan cache."""
    global _default_engine
    if _default_engine is None:
        _default_engine = ExecutionEngine()
    return _default_engine
