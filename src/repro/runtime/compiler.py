"""Lowering: graph IR -> executable program on the vectorized runtime.

:func:`lower` walks a traced :class:`~repro.nn.graph.Graph` and emits a
:class:`CompiledProgram` -- a flat step list in which

* every convolution node becomes a :class:`~repro.runtime.plan.ConvPlan`
  executed by the shared :class:`~repro.runtime.engine.ExecutionEngine`
  (one :class:`~repro.runtime.cache.PlanCache` + scratch arena for the
  whole program, so repeated geometries amortize across layers and
  batches);
* the FP32-mode bias add and a directly following single-consumer ReLU
  are fused into the convolution step's epilogue (likewise the ReLU
  after a residual add), eliminating the intermediate materialization
  the eager path pays;
* intermediates are reference-counted and dropped after their last
  consumer, so peak memory is the widest cut of the graph rather than
  the sum of all activations.

Bitwise contract: a compiled program reuses the *same prepared engine
objects* the eager layers hold (a plan wraps ``conv.engine`` instead of
rebuilding it) and replays the eager op order exactly -- engine call,
``+ bias[None, :, None, None]``, ``np.maximum(., 0.0)`` -- so outputs
are bit-identical to ``model(x)`` for every algorithm.  That identity is
what lets the eager stack remain the conformance reference while all
throughput work happens here.

Quantized engines are captured at lowering time: re-quantizing or
re-calibrating a model invalidates its compiled programs (build a new
session; plans are cheap, the cache persists).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..conv import DownscaleWinogradConv2d, Int8DirectConv2d, UpcastWinogradConv2d
from ..conv.fp32 import Fp32DirectConv2d, Fp32WinogradConv2d
from ..core import LoWinoConv2d
from ..nn.graph import Graph, Node, trace
from ..nn.layers import Conv2d, Layer
from .cache import PlanCache
from .engine import ExecutionEngine
from .plan import ConvPlan, _engine_operands, _plan_meta, get_plan

__all__ = [
    "algorithm_of_engine",
    "plan_for_conv",
    "apply_selection",
    "relower_conv",
    "Step",
    "CompiledProgram",
    "lower",
    "compile_model",
]

#: Prepared engine layer type -> runtime algorithm name.
_ENGINE_ALGORITHMS = (
    (LoWinoConv2d, "lowino"),
    (Int8DirectConv2d, "int8_direct"),
    (UpcastWinogradConv2d, "int8_upcast"),
    (DownscaleWinogradConv2d, "int8_downscale"),
    (Fp32WinogradConv2d, "fp32_winograd"),
    (Fp32DirectConv2d, "fp32_direct"),
)


def algorithm_of_engine(engine: Any) -> str:
    """Runtime algorithm name for a prepared engine object."""
    for cls, name in _ENGINE_ALGORITHMS:
        if isinstance(engine, cls):
            return name
    raise TypeError(f"cannot lower engine type {type(engine).__name__}")


def plan_for_conv(conv: Conv2d, cache: PlanCache) -> ConvPlan:
    """The :class:`ConvPlan` executing ``conv``'s current mode.

    FP32 layers (``engine is None``) lower to a cached ``fp32_direct``
    plan built from the filters.  Quantized layers wrap the *existing*
    prepared engine object -- calibration state, packed filters and the
    Eq. 9 compensation are reused, not rebuilt, which both skips the
    offline cost and guarantees the compiled output cannot drift from
    the eager engine.  The wrapping plan is keyed by engine identity;
    the plan holds the engine alive, so a cached key can never be
    re-issued to a different object.
    """
    engine = conv.engine
    if engine is None:
        return get_plan(
            "fp32_direct",
            conv.filters,
            m=0,
            padding=conv.padding,
            cache=cache,
            stride=conv.stride,
        )
    algorithm = algorithm_of_engine(engine)
    key = ("model-engine", algorithm, id(engine))
    return cache.get_or_build(
        key,
        lambda: ConvPlan(
            key=key,
            algorithm=algorithm,
            layer=engine,
            operands=_engine_operands(algorithm, engine),
            meta=_plan_meta(algorithm, engine),
        ),
    )


def apply_selection(graph: Graph, selector: Any, tune: bool = False) -> Dict[str, str]:
    """Consult an :class:`~repro.tuning.selector.AlgorithmSelector` for
    every conv in ``graph`` and rebuild engines whose wisdom-selected
    algorithm differs from the current one.

    The swap happens on ``conv.engine`` itself -- the eager model and
    the program lowered from this graph keep sharing one prepared
    engine object, so the bitwise eager == compiled contract survives
    re-selection.  Each conv is tuned *within its own family*
    (:func:`~repro.tuning.selector.conv_family`): quantized convs
    choose among the INT8 pipelines, full-precision convs (``engine is
    None`` or an fp32 engine) choose fp32_winograd@m vs fp32_direct.
    An fp32 conv selected to ``fp32_direct`` with no prepared engine is
    left as-is -- ``plan_for_conv`` already lowers ``engine is None``
    to the cached fp32_direct plan.

    With ``tune=False`` (the lowering-time default) only wisdom-known
    geometries are applied; un-tuned ones keep whatever the quantizer
    installed (``source="static"`` answers do not disturb calibrated
    engines).  ``tune=True`` measures the un-tuned geometries first --
    ``repro tune``'s in-process equivalent.

    Returns ``{conv path: selected label}`` for the applied choices.
    """
    from ..tuning.selector import (
        ConvGeometry,
        build_engine_for,
        conv_family,
        swap_preserves_calibration,
    )

    applied: Dict[str, str] = {}
    for node in graph.conv_nodes():
        conv = node.layer
        family = conv_family(conv)
        geom = ConvGeometry.of_conv(conv, graph.in_shape(node))
        result = selector.select(geom, measure=tune, family=family)
        if result is None or result.source == "static":
            continue
        if conv.engine is None:
            current = ("fp32_direct", 0)
        else:
            current = (algorithm_of_engine(conv.engine), getattr(conv.engine, "m", 0))
        if (result.algorithm, result.m) != current:
            if not swap_preserves_calibration(conv, result.algorithm, result.m):
                # The wisdom choice would lose this conv's calibrated
                # quantization (e.g. LoWino histograms cannot seed a
                # spatial threshold); keep the installed engine.
                continue
            conv.engine = build_engine_for(conv, result.algorithm, result.m)
        applied[node.path] = result.label
    return applied


def relower_conv(step: "Step", cache: PlanCache) -> None:
    """Re-lower one conv step after its ``conv.engine`` was swapped.

    The plan swap is a single attribute assignment (atomic under the
    GIL), so in-flight ``run`` calls see either the old or the new plan
    -- both bitwise-correct against the engine object each wraps.  The
    cache key includes the engine's identity, so the old plan can never
    be re-issued for the new engine.
    """
    step.plan = plan_for_conv(step.node.layer, cache)
    step.bias = step.node.layer.bias


@dataclass
class Step:
    """One executable program step (a graph node, possibly with a fused
    ReLU epilogue; conv steps also carry the plan and the bias)."""

    node: Node
    #: Value id the result is stored under (the ReLU node's id when one
    #: was fused, else ``node.id``).
    out_id: int
    plan: Optional[ConvPlan] = None
    bias: Optional[np.ndarray] = None
    relu: bool = False
    #: Dense value-slot indices assigned by :func:`lower` -- the run
    #: loop indexes flat lists instead of hashing node ids per step.
    in_slots: Tuple[int, ...] = ()
    out_slot: int = 0

    @property
    def kind(self) -> str:
        return self.node.op

    @property
    def path(self) -> str:
        return self.node.path


@dataclass
class CompiledProgram:
    """A lowered model: ordered steps over a shared engine + plan cache.

    Per-run bookkeeping is slot-based: :func:`lower` assigns every value
    id a dense index, so ``run`` materializes its liveness state as two
    flat list copies (``[None] * n`` and ``list.copy()`` of the refcount
    template -- C-level allocations) instead of rebuilding dicts keyed
    by node id on every call.  See ``benchmarks/bench_dispatch.py`` for
    the per-step dispatch cost this buys back.
    """

    graph: Graph
    steps: List[Step]
    cache: PlanCache
    engine: ExecutionEngine
    #: conv path -> selected algorithm label, for choices the
    #: :class:`AlgorithmSelector` applied at lowering time (empty when
    #: lowered without a selector).
    selection: Dict[str, str] = field(default_factory=dict)
    #: Remaining-consumer count per value *slot* (output counted once
    #: extra, so it survives the sweep); copied per run.
    _refcounts: List[int] = field(default_factory=list)
    #: value id -> dense slot index.
    _slots: Dict[int, int] = field(default_factory=dict)
    _input_slot: int = 0
    _output_slot: int = 0

    @property
    def output_id(self) -> int:
        return self.graph.output_id

    def run(
        self,
        images: np.ndarray,
        timings: Optional[Dict[str, float]] = None,
    ) -> np.ndarray:
        """Execute the program; optionally accumulate per-step seconds
        into ``timings`` keyed by the step's layer path."""
        x = np.asarray(images, dtype=np.float64)
        values: List[Optional[np.ndarray]] = [None] * len(self._refcounts)
        remaining = self._refcounts.copy()
        values[self._input_slot] = x
        engine = self.engine
        tracer = getattr(engine, "tracer", None)
        tr = tracer if tracer is not None and tracer.enabled else None
        for step in self.steps:
            args = [values[i] for i in step.in_slots]
            t0 = time.perf_counter() if timings is not None else 0.0
            if tr is not None:
                with tr.step(step.path):
                    values[step.out_slot] = _execute_step(step, args, engine, tr)
            else:
                values[step.out_slot] = _execute_step(step, args, engine)
            if timings is not None:
                timings[step.path] = timings.get(step.path, 0.0) + (
                    time.perf_counter() - t0
                )
            for i in step.in_slots:
                remaining[i] -= 1
                if remaining[i] == 0:
                    values[i] = None
        return values[self._output_slot]

    __call__ = run


def _execute_step(
    step: Step,
    args: List[np.ndarray],
    engine: ExecutionEngine,
    tracer: Optional[Any] = None,
) -> np.ndarray:
    kind = step.kind
    if kind == "conv":
        # Bias + fused ReLU run inside the engine's kernel epilogue (in
        # place on the fresh output -- bitwise ``max(y + bias, 0)``; the
        # backend laps the "epilogue" stage).
        return engine.execute(step.plan, args[0], bias=step.bias, relu=step.relu)
    t0 = time.perf_counter() if tracer is not None else 0.0
    if kind == "add":
        y = args[0] + args[1]
        if step.relu:
            y = np.maximum(y, 0.0)
    elif kind == "relu":
        y = np.maximum(args[0], 0.0)
    elif kind == "concat":
        t, skip = args
        h = min(t.shape[2], skip.shape[2])
        w = min(t.shape[3], skip.shape[3])
        y = np.concatenate([t[:, :, :h, :w], skip[:, :, :h, :w]], axis=1)
    else:
        # maxpool / global_avg_pool / flatten / linear / upsample /
        # opaque: cheap whole-tensor NumPy ops already; call the layer.
        y = step.node.layer(args[0])
    if tracer is not None:
        tracer.record("op", time.perf_counter() - t0)
    return y


def lower(graph: Graph, cache: Optional[PlanCache] = None,
          engine: Optional[ExecutionEngine] = None,
          selector: Optional[Any] = None, tune: bool = False) -> CompiledProgram:
    """Lower a traced graph onto the vectorized runtime.

    With a ``selector``, wisdom-known algorithm choices are applied to
    the quantized convs *before* plans are built (see
    :func:`apply_selection`); ``tune=True`` measures un-tuned
    geometries first.
    """
    cache = cache if cache is not None else PlanCache()
    engine = engine if engine is not None else ExecutionEngine(cache=cache)
    selection = (
        apply_selection(graph, selector, tune=tune) if selector is not None else {}
    )
    consumers = graph.consumers()

    # A ReLU directly after a conv or residual add fuses into that
    # step's epilogue when it is the producer's only consumer (fusing a
    # shared value would change what the other consumers see).
    fused: Dict[int, int] = {}  # producer node id -> fused relu node id
    for node in graph.nodes:
        if node.op != "relu":
            continue
        producer = graph.node(node.inputs[0])
        if producer.op in ("conv", "add") and consumers[producer.id] == [node.id]:
            fused[producer.id] = node.id

    steps: List[Step] = []
    for node in graph.nodes:
        if node.op == "input":
            continue
        if node.id in fused.values():
            continue  # emitted as its producer's epilogue
        relu_id = fused.get(node.id)
        step = Step(node=node, out_id=relu_id if relu_id is not None else node.id,
                    relu=relu_id is not None)
        if node.op == "conv":
            conv = node.layer
            step.plan = plan_for_conv(conv, cache)
            step.bias = conv.bias
        steps.append(step)

    # Dense slot assignment: every live value id (the input, each step's
    # output, each step's inputs) gets a flat index so the run loop's
    # per-call state is two list copies instead of dict rebuilds.
    slots: Dict[int, int] = {}

    def slot(value_id: int) -> int:
        idx = slots.get(value_id)
        if idx is None:
            idx = slots[value_id] = len(slots)
        return idx

    input_slot = slot(graph.nodes[0].id)
    for step in steps:
        step.in_slots = tuple(slot(i) for i in step.node.inputs)
        step.out_slot = slot(step.out_id)
    output_slot = slot(graph.output_id)

    refcounts: List[int] = [0] * len(slots)
    for step in steps:
        for i in step.in_slots:
            refcounts[i] += 1
    refcounts[output_slot] += 1  # the output survives the sweep

    return CompiledProgram(
        graph=graph,
        steps=steps,
        cache=cache,
        engine=engine,
        selection=selection,
        _refcounts=refcounts,
        _slots=slots,
        _input_slot=input_slot,
        _output_slot=output_slot,
    )


def compile_model(
    model: Layer,
    input_shape: Tuple[int, ...],
    cache: Optional[PlanCache] = None,
    engine: Optional[ExecutionEngine] = None,
    selector: Optional[Any] = None,
    tune: bool = False,
) -> CompiledProgram:
    """Trace + lower ``model`` for an NCHW ``input_shape``."""
    return lower(trace(model, input_shape), cache=cache, engine=engine,
                 selector=selector, tune=tune)
