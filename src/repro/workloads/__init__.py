"""Benchmark workloads: the Table 2 layer zoo and tensor generators."""

from .table2 import BREAKDOWN_LAYERS, TABLE2_LAYERS, LayerConfig, layer_by_name

__all__ = ["BREAKDOWN_LAYERS", "TABLE2_LAYERS", "LayerConfig", "layer_by_name"]
