"""The benchmarked convolutional layers of Table 2.

Twenty 3x3 layers drawn from AlexNet, VGG16, ResNet-50, GoogLeNet
(batch 64) and YOLOv3, FusionNet, U-Net (batch 1).  ``hw`` is the input
height = width; all layers use r = 3, stride 1 and (following the
Winograd benchmarking convention of Jia et al.) padding 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

__all__ = ["LayerConfig", "TABLE2_LAYERS", "layer_by_name", "BREAKDOWN_LAYERS"]


@dataclass(frozen=True)
class LayerConfig:
    """One convolutional-layer benchmark configuration."""

    name: str
    batch: int
    c: int
    k: int
    hw: int
    r: int = 3
    padding: int = 1

    @property
    def out_hw(self) -> int:
        return self.hw + 2 * self.padding - self.r + 1

    @property
    def direct_macs(self) -> int:
        """MACs of the direct algorithm."""
        return self.batch * self.k * self.c * self.out_hw**2 * self.r**2

    def tiles(self, m: int) -> int:
        """Winograd tiles per image for output tile size m (padded up)."""
        per_dim = -(-self.out_hw // m)
        return per_dim * per_dim

    def gemm_dims(self, m: int) -> tuple[int, int, int, int]:
        """(T, N, C, K) of the batched Winograd GEMM."""
        t = (m + self.r - 1) ** 2
        return t, self.batch * self.tiles(m), self.c, self.k

    def input_tensor(self, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
        """Synthetic post-ReLU activation tensor (half-normal)."""
        x = np.abs(rng.standard_normal((self.batch, self.c, self.hw, self.hw))).astype(dtype)
        return x

    def filter_tensor(self, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
        """Synthetic filters with He-style scaling."""
        std = np.sqrt(2.0 / (self.c * self.r * self.r))
        return (rng.standard_normal((self.k, self.c, self.r, self.r)) * std).astype(dtype)


TABLE2_LAYERS: List[LayerConfig] = [
    LayerConfig("AlexNet_a", 64, 384, 384, 13),
    LayerConfig("AlexNet_b", 64, 384, 256, 13),
    LayerConfig("VGG16_a", 64, 256, 256, 58),
    LayerConfig("VGG16_b", 64, 512, 512, 30),
    LayerConfig("VGG16_c", 64, 512, 512, 16),
    LayerConfig("ResNet-50_a", 64, 128, 128, 28),
    LayerConfig("ResNet-50_b", 64, 256, 256, 14),
    LayerConfig("ResNet-50_c", 64, 512, 512, 7),
    LayerConfig("GoogLeNet_a", 64, 128, 192, 28),
    LayerConfig("GoogLeNet_b", 64, 128, 256, 14),
    LayerConfig("GoogLeNet_c", 64, 192, 384, 7),
    LayerConfig("YOLOv3_a", 1, 64, 128, 64),
    LayerConfig("YOLOv3_b", 1, 128, 256, 32),
    LayerConfig("YOLOv3_c", 1, 256, 512, 16),
    LayerConfig("FusionNet_a", 1, 128, 128, 320),
    LayerConfig("FusionNet_b", 1, 256, 256, 160),
    LayerConfig("FusionNet_c", 1, 512, 512, 80),
    LayerConfig("U-Net_a", 1, 128, 128, 282),
    LayerConfig("U-Net_b", 1, 256, 256, 138),
    LayerConfig("U-Net_c", 1, 512, 512, 66),
]

#: The four layers Figure 10 breaks down.
BREAKDOWN_LAYERS = ["VGG16_b", "ResNet-50_c", "YOLOv3_c", "U-Net_b"]

_BY_NAME: Dict[str, LayerConfig] = {layer.name: layer for layer in TABLE2_LAYERS}


def layer_by_name(name: str) -> LayerConfig:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown Table 2 layer {name!r}; known: {sorted(_BY_NAME)}") from None
