"""Unified observability: metrics registry, stage tracer, exporters.

One subsystem owns every number the runtime and serving stack report:

* :mod:`repro.obs.metrics` -- thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` (seeded Algorithm-R reservoir,
  nearest-rank percentiles) in a :class:`MetricsRegistry` with
  collector callbacks for externally-locked components.
* :mod:`repro.obs.tracer` -- :class:`StageTracer`, the per-layer x
  per-stage wall-clock accumulator behind ``repro profile``.
* :mod:`repro.obs.export` -- Prometheus text exposition
  (:func:`prometheus_text`) and its strict parser.
* :mod:`repro.obs.profile` -- the ``repro profile`` driver: stage
  breakdown tables and the measured instrumentation-overhead gate.
"""

from .export import ParsedExposition, parse_prometheus_text, prometheus_text
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    format_metric_name,
    global_registry,
    nearest_rank,
)
from .tracer import STAGES, StageTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ParsedExposition",
    "STAGES",
    "Sample",
    "StageTracer",
    "format_metric_name",
    "global_registry",
    "nearest_rank",
    "parse_prometheus_text",
    "prometheus_text",
]
