"""Prometheus-style text exposition and a strict parser for it.

:func:`prometheus_text` renders everything a
:class:`~repro.obs.metrics.MetricsRegistry` knows -- owned counters,
gauges, and histograms plus every collector sample -- in the Prometheus
text exposition format (``# HELP`` / ``# TYPE`` comments, one sample
per line, labels sorted, histograms as summaries with ``quantile``
labels and ``_count`` / ``_sum`` rows).

:func:`parse_prometheus_text` is the inverse used by the tests: it
parses an exposition back into typed samples and *rejects* malformed
lines, so the round-trip test is a real format check, not a smoke
test.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .metrics import MetricsRegistry, Sample, format_metric_name

__all__ = ["prometheus_text", "parse_prometheus_text", "ParsedExposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _render_value(value: float) -> str:
    # Integers render without a trailing .0 (matches Prometheus idiom
    # for counters) while floats keep full repr precision.
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _registry_samples(registry: MetricsRegistry) -> List[Sample]:
    """Flatten a registry into exposition rows (histograms expand into
    quantile / _count / _sum samples)."""
    rows: List[Sample] = []
    for metric in registry.metrics():
        if metric.kind in ("counter", "gauge"):
            rows.append(
                Sample(metric.name, metric.value, dict(metric.labels), metric.kind, metric.help)
            )
        else:
            snap = metric.snapshot()
            for q_key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                labels = dict(metric.labels)
                labels["quantile"] = quantile
                rows.append(Sample(metric.name, snap[q_key], labels, "histogram", metric.help))
            rows.append(
                Sample(metric.name + "_count", snap["count"], dict(metric.labels), "histogram")
            )
            rows.append(
                Sample(metric.name + "_sum", snap["sum"], dict(metric.labels), "histogram")
            )
    rows.extend(registry.collect())
    return rows


#: Exposition TYPE per internal kind (histograms export as summaries:
#: pre-computed quantiles, not cumulative buckets).
_EXPOSITION_TYPE = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    rows = _registry_samples(registry)
    # Group rows under their family name (strip _count/_sum suffixes so
    # a summary's rows share one HELP/TYPE header).
    families: Dict[str, List[Sample]] = {}
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    order: List[str] = []
    for row in rows:
        family = row.name
        for suffix in ("_count", "_sum"):
            if row.kind == "histogram" and family.endswith(suffix):
                family = family[: -len(suffix)]
        if family not in families:
            families[family] = []
            order.append(family)
        families[family].append(row)
        kinds.setdefault(family, _EXPOSITION_TYPE.get(row.kind, "gauge"))
        if row.help:
            helps.setdefault(family, row.help)
    lines: List[str] = []
    for family in order:
        if not _NAME_RE.match(family):
            raise ValueError(f"invalid metric name {family!r}")
        help_text = helps.get(family, "")
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kinds[family]}")
        for row in families[family]:
            lines.append(
                f"{format_metric_name(row.name, row.labels)} {_render_value(row.value)}"
            )
    return "\n".join(lines) + "\n"


@dataclass
class ParsedExposition:
    """Parsed form of a Prometheus text exposition."""

    #: family name -> declared TYPE
    types: Dict[str, str] = field(default_factory=dict)
    #: family name -> HELP text
    helps: Dict[str, str] = field(default_factory=dict)
    #: (metric name, sorted label items) -> value
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples[key]

    def __len__(self) -> int:
        return len(self.samples)


def _unescape_label(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace("\\\\", "\\")
    )


def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    items: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if m is None:
            raise ValueError(f"malformed label block at {text[pos:]!r}")
        items.append((m.group(1), _unescape_label(m.group(2))))
        pos = m.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ValueError(f"expected ',' between labels at {text[pos:]!r}")
            pos += 1
    return tuple(sorted(items))


def parse_prometheus_text(text: str) -> ParsedExposition:
    """Parse an exposition; raises ``ValueError`` on malformed lines."""
    doc = ParsedExposition()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad HELP metric name {name!r}")
            doc.helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad TYPE metric name {name!r}")
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            doc.types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        labels = _parse_labels(m.group("labels") or "")
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {m.group('value')!r}"
            ) from None
        doc.samples[(m.group("name"), labels)] = value
    return doc
