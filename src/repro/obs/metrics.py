"""Thread-safe metrics primitives and the registry that owns them.

The paper's value claim is *measured* (Table 2/3 speedups, per-stage
cost breakdowns), so telemetry is a first-class subsystem: every
counter the runtime or serving layer exposes lives in (or is collected
by) a :class:`MetricsRegistry`, which renders one coherent snapshot --
JSON via :meth:`MetricsRegistry.snapshot`, Prometheus text via
:func:`repro.obs.export.prometheus_text`.

Three owned metric kinds:

* :class:`Counter` -- monotonically increasing (exact under any number
  of threads; one lock per counter).
* :class:`Gauge` -- a point-in-time value, settable or backed by a
  callback (e.g. live queue depth).
* :class:`Histogram` -- streaming distribution with exact count / sum /
  min / max plus a *bounded reservoir* of samples for percentiles.  The
  reservoir uses seeded Algorithm R (Vitter), so it stays an unbiased
  sample of the **whole** stream: a long-lived server's p95 tracks the
  live distribution instead of freezing on the first ``max_samples``
  observations.  Percentiles are true nearest-rank
  (``ceil(q/100 * n) - 1`` on the sorted samples), matching
  ``np.percentile(..., method="inverted_cdf")``; in particular p100 is
  the retained maximum regardless of arrival order.

Components whose counters must stay inside their own locks (the plan
cache, scratch pools) are exported through *collectors*: callables
registered with :meth:`MetricsRegistry.register_collector` that yield
:class:`Sample` rows at snapshot/export time.
"""

from __future__ import annotations

import logging
import math
import random
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

logger = logging.getLogger(__name__)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "format_metric_name",
    "global_registry",
    "nearest_rank",
]

#: Default seed for histogram reservoirs (deterministic tests/benchmarks).
RESERVOIR_SEED = 2021

#: Quantiles exported by histogram snapshots and the Prometheus text.
SNAPSHOT_QUANTILES = (50.0, 95.0, 99.0)

LabelItems = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{key="value",...}`` rendering (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def nearest_rank(sorted_samples: List[float], q: float) -> float:
    """True nearest-rank percentile over pre-sorted samples.

    ``ceil(q/100 * n) - 1`` (0-indexed), clamped to the valid range --
    the inverted-CDF definition, so p100 is always the maximum and p95
    over 100 samples reads the 95th order statistic (index 94 is the
    *95th* value), unlike the former ``round(q/100 * (n-1))`` which was
    neither nearest-rank nor interpolation.
    """
    n = len(sorted_samples)
    if n == 0:
        return 0.0
    rank = math.ceil(q / 100.0 * n) - 1
    return sorted_samples[min(n - 1, max(0, rank))]


class Counter:
    """Monotonic counter; ``inc`` is exact under concurrent callers."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (epoch reset; see ``reset_stats`` callers)."""
        with self._lock:
            self._value = 0


class Gauge:
    """Point-in-time value: set directly or backed by a callback.

    ``set_function`` turns the gauge into a live view (queue depth,
    resident bytes); ``set_max`` keeps a running maximum (largest
    coalesced batch).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._lock = threading.Lock()
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())

    def reset(self) -> None:
        with self._lock:
            if self._fn is None:
                self._value = 0.0


class Histogram:
    """Streaming distribution with a seeded Algorithm-R reservoir.

    Exact ``count`` / ``sum`` / ``min`` / ``max`` are kept for the whole
    stream; percentiles come from a bounded reservoir that remains an
    unbiased uniform sample of *everything observed so far*: the i-th
    observation replaces a random reservoir slot with probability
    ``max_samples / i`` (Vitter's Algorithm R).  A distribution shift
    after the buffer fills therefore moves the percentiles -- the
    fixed "first ``max_samples`` wins" buffer this replaces pinned them
    to the warmup distribution forever.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        max_samples: int = 4096,
        seed: int = RESERVOIR_SEED,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.max_samples = max_samples
        self._seed = seed
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.max_samples:
                    self._samples[slot] = value

    def samples(self) -> List[float]:
        """Copy of the current reservoir (unsorted arrival order)."""
        with self._lock:
            return list(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (0 if empty)."""
        with self._lock:
            ordered = sorted(self._samples)
        return nearest_rank(ordered, q)

    def quantiles(self, qs: Iterable[float]) -> Dict[str, float]:
        """Several nearest-rank percentiles from one sorted pass.

        Returns ``{"p50": ..., "p99": ...}`` keyed like
        :meth:`snapshot`; the reservoir is sorted once, so SLO
        reporters can pull a whole tail profile at the cost of a single
        percentile."""
        with self._lock:
            ordered = sorted(self._samples)
        return {f"p{q:g}": nearest_rank(ordered, q) for q in qs}

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total = self.count, self.total
            mn = self.min if count else 0.0
            mx = self.max
            ordered = sorted(self._samples)
        doc: Dict[str, float] = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": mn,
            "max": mx,
        }
        for q in SNAPSHOT_QUANTILES:
            doc[f"p{q:g}"] = nearest_rank(ordered, q)
        return doc

    def reset(self) -> None:
        with self._lock:
            self._samples = []
            self._rng = random.Random(self._seed)
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = 0.0


@dataclass
class Sample:
    """One collected metric row (from a registry *collector*)."""

    name: str
    value: float
    labels: Dict[str, str] = field(default_factory=dict)
    kind: str = "gauge"
    help: str = ""

    @property
    def full_name(self) -> str:
        return format_metric_name(self.name, self.labels)


Metric = Any  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Named, labeled metrics plus collector callbacks, one lock.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    ``(name, labels)`` pair always returns the same object, so
    components can look their metrics up idempotently.  Requesting an
    existing name with a different metric kind raises -- a registry
    renders each name with exactly one TYPE line.

    Components that keep their counters under their own locks (plan
    cache, scratch pools, sessions) register a *collector*: a callable
    returning an iterable of :class:`Sample`, pulled at snapshot and
    export time so the output always reflects live state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []
        #: Created lazily on the first collector failure, so registries
        #: with healthy collectors keep their historical snapshot shape.
        self._collector_errors: Optional[Counter] = None
        self._collector_warned = False

    # -- owned metrics --------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, Any], **kwargs):
        frozen = _freeze_labels(labels)
        with self._lock:
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {kind}, "
                    f"cannot re-register as a {cls.kind}"
                )
            metric = self._metrics.get((name, frozen))
            if metric is None:
                metric = cls(name, help=help, labels=dict(frozen), **kwargs)
                self._metrics[(name, frozen)] = metric
                self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None, **labels
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        max_samples: int = 4096,
        seed: int = RESERVOIR_SEED,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, max_samples=max_samples, seed=seed
        )

    def metrics(self) -> List[Metric]:
        """All owned metrics, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str, **labels) -> Optional[Metric]:
        """Look up an owned metric without creating it (None if absent).

        This is how SLO reporters reach the live reservoir behind e.g.
        ``repro_request_latency_seconds{model="vgg"}`` -- read-only
        access that cannot accidentally mint an empty metric under a
        typo'd label set."""
        frozen = _freeze_labels(labels)
        with self._lock:
            return self._metrics.get((name, frozen))

    # -- collectors -----------------------------------------------------
    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Add a callable yielding :class:`Sample` rows at export time."""
        with self._lock:
            self._collectors.append(fn)

    def collect(self) -> List[Sample]:
        """Run every collector; a failing collector is skipped, never
        fatal (export must not take the serving path down) -- but never
        *silently*: failures count into ``repro_collector_errors_total``
        and the first one logs its traceback, so a broken collector
        cannot quietly blank a dashboard.
        """
        with self._lock:
            collectors = list(self._collectors)
        samples: List[Sample] = []
        for fn in collectors:
            try:
                samples.extend(fn())
            except Exception:
                if self._collector_errors is None:
                    self._collector_errors = self.counter(
                        "repro_collector_errors_total",
                        help="collector callbacks that raised during "
                        "collect() (their samples were dropped)",
                    )
                self._collector_errors.inc()
                if not self._collector_warned:
                    self._collector_warned = True
                    logger.warning(
                        "metrics collector %r raised (samples dropped; "
                        "counted in repro_collector_errors_total):\n%s",
                        fn,
                        traceback.format_exc(),
                    )
                continue
        return samples

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able snapshot of every owned metric and collector row."""
        doc: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "collected": {},
        }
        for metric in self.metrics():
            full = format_metric_name(metric.name, metric.labels)
            if metric.kind == "counter":
                doc["counters"][full] = metric.value
            elif metric.kind == "gauge":
                doc["gauges"][full] = metric.value
            else:
                doc["histograms"][full] = metric.snapshot()
        for sample in self.collect():
            doc["collected"][sample.full_name] = sample.value
        return doc

    def reset(self) -> None:
        """Reset every owned metric (collectors are live views and are
        left alone)."""
        for metric in self.metrics():
            metric.reset()


_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry
