"""Lightweight per-layer, per-stage wall-clock tracing.

The paper's Figure 10 evidence is a *stage* breakdown -- input
transform, quantize, GEMM, output transform -- and that is exactly what
the runtime's instrumentation records: the engine lap-times its
algorithm bodies (:mod:`repro.runtime.engine`), the compiler records the
fused bias/ReLU epilogue and non-conv ops
(:mod:`repro.runtime.compiler`), and the compiled program sets the
current layer path around each step, so every stage sample lands under
``(layer path, stage)``.  ``repro profile`` renders the resulting
per-layer x per-stage table.

Cost model: tracing must be free when off and cheap when on.  A
disabled tracer (or none attached) costs one attribute check per engine
call -- the hot path contains no timing calls at all.  Enabled, each
conv step pays a handful of ``perf_counter`` laps and locked dict
updates, microseconds against millisecond-scale whole-tensor stages;
the ``repro profile --overhead`` gate measures (and CI enforces) that
this stays within budget.

Thread-safety: the current layer path is thread-local (concurrent
sessions attribute their stages correctly) and accumulation happens
under one lock per recorded lap.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry, Sample

__all__ = ["StageTracer", "STAGES"]

#: Canonical stage names, in pipeline order.  ``op`` covers whole-layer
#: calls that have no finer decomposition (pooling, linear, fp32 layers).
STAGES: Tuple[str, ...] = (
    "input_transform",
    "quantize",
    "gemm",
    "output_transform",
    "epilogue",
    "op",
)


class StageTracer:
    """Accumulates ``(layer path, stage) -> (seconds, calls)``.

    The engine and compiler guard every recording call with
    ``tracer.enabled``, so a constructed-but-disabled tracer is as cheap
    as no tracer.  ``registry`` (optional) registers a collector that
    exports the accumulated stage seconds/calls as Prometheus counters
    labeled ``{layer=..., stage=...}``.
    """

    def __init__(
        self, enabled: bool = True, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        #: (path, stage) -> [seconds, calls]
        self._stages: Dict[Tuple[str, str], List[float]] = {}
        self._tls = threading.local()
        if registry is not None:
            registry.register_collector(self.collect)

    # -- enable / disable ----------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- layer-path context --------------------------------------------
    @contextmanager
    def step(self, path: str) -> Iterator[None]:
        """Attribute stages recorded inside to ``path`` (re-entrant;
        the previous path is restored on exit)."""
        prev = getattr(self._tls, "path", "")
        self._tls.path = path
        try:
            yield
        finally:
            self._tls.path = prev

    @property
    def current_path(self) -> str:
        return getattr(self._tls, "path", "")

    # -- recording ------------------------------------------------------
    def record(self, stage: str, seconds: float, path: Optional[str] = None) -> None:
        if not self.enabled:
            return
        key = (path if path is not None else self.current_path, stage)
        with self._lock:
            entry = self._stages.get(key)
            if entry is None:
                self._stages[key] = [seconds, 1]
            else:
                entry[0] += seconds
                entry[1] += 1

    def lap(self, stage: str, t0: float) -> float:
        """Record ``now - t0`` under ``stage`` and return ``now`` --
        consecutive laps tile a function body exactly (no gaps), which
        is what makes the per-layer stage sums agree with the outer
        step timing."""
        t1 = time.perf_counter()
        self.record(stage, t1 - t0)
        return t1

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Record a whole ``with`` block under ``stage``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, time.perf_counter() - t0)

    # -- views ----------------------------------------------------------
    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """``{layer path: {stage: cumulative seconds}}``."""
        with self._lock:
            items = list(self._stages.items())
        doc: Dict[str, Dict[str, float]] = {}
        for (path, stage), (seconds, _) in items:
            doc.setdefault(path, {})[stage] = seconds
        return doc

    def call_counts(self) -> Dict[str, Dict[str, int]]:
        """``{layer path: {stage: recorded laps}}``."""
        with self._lock:
            items = list(self._stages.items())
        doc: Dict[str, Dict[str, int]] = {}
        for (path, stage), (_, calls) in items:
            doc.setdefault(path, {})[stage] = int(calls)
        return doc

    def stage_totals(self) -> Dict[str, float]:
        """Cumulative seconds per stage across all layers."""
        totals: Dict[str, float] = {}
        for stages in self.breakdown().values():
            for stage, seconds in stages.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def layer_totals(self) -> Dict[str, float]:
        """Cumulative seconds per layer (sum over stages)."""
        return {
            path: sum(stages.values()) for path, stages in self.breakdown().items()
        }

    def total_seconds(self) -> float:
        return sum(self.layer_totals().values())

    def reset(self) -> None:
        with self._lock:
            self._stages = {}

    # -- registry integration -------------------------------------------
    def collect(self):
        """Collector: stage seconds and call counts as counter samples."""
        with self._lock:
            items = list(self._stages.items())
        for (path, stage), (seconds, calls) in items:
            labels = {"layer": path, "stage": stage}
            yield Sample(
                "repro_stage_seconds_total",
                seconds,
                labels=labels,
                kind="counter",
                help="Cumulative wall-clock per (layer, stage)",
            )
            yield Sample(
                "repro_stage_calls_total",
                calls,
                labels=labels,
                kind="counter",
                help="Recorded laps per (layer, stage)",
            )
