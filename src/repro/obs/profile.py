"""``repro profile``: per-layer x per-stage breakdown + overhead gate.

The paper's Figure 10 argument is a *stage* cost breakdown (input
transform / quantize / GEMM / output transform); this module reproduces
that view for whole models on the vectorized runtime.  A
:class:`~repro.obs.tracer.StageTracer` is attached to an
:class:`~repro.runtime.session.InferenceSession`, a few batches run,
and the accumulated ``(layer, stage)`` wall-clock renders as a table
with percentages.

Two built-in self-checks keep the numbers honest:

* **Agreement** -- the tracer's laps tile each step's body, so the
  summed stage seconds must agree with the session's independent
  per-step timings (:func:`run_profile` reports the gap;
  ``tests/obs/test_profile.py`` gates it at 2%).
* **Overhead** -- :func:`measure_overhead` interleaves best-of timing
  over three modes (no tracer / tracer disabled / tracer enabled) on
  bitwise-identical sessions and :func:`check_overhead_gate` fails if
  enabled instrumentation costs more than 5% (CI runs this in the bench
  smoke job).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .tracer import STAGES, StageTracer

__all__ = [
    "DEFAULT_STAGE_BASELINE_PATH",
    "ProfileConfig",
    "run_profile",
    "format_profile",
    "measure_overhead",
    "check_overhead_gate",
    "format_overhead",
    "stage_shares",
    "stage_baseline_doc",
    "check_stage_gate",
    "format_stage_gate",
]

#: Default persistence target for the per-stage share baseline the CI
#: bench-smoke job gates against.
DEFAULT_STAGE_BASELINE_PATH = "benchmarks/BENCH_stages.json"

#: Matches the bench default; profiles must be reproducible.
SEED = 2021


@dataclass(frozen=True)
class ProfileConfig:
    """One profiling workload (mirrors the bench ``ModelCase`` knobs)."""

    model: str = "resnet"
    algorithm: str = "auto"
    batch: int = 2
    #: Default workload is deliberately non-tiny: per-lap tracer cost is
    #: fixed (~µs), so agreement and overhead are only meaningful when
    #: each stage does real whole-tensor work.
    hw: int = 32
    width: int = 32
    m: int = 4
    runs: int = 3
    #: Fused-stage kernel backend the profiled session executes on
    #: (:func:`repro.runtime.backends.available_backends`).
    backend: str = "numpy"
    seed: int = SEED


def _build_session(config: ProfileConfig, tracer: Optional[StageTracer], model=None):
    """A compiled session (optionally traced) + its input batch."""
    from ..nn.quantize import quantize_model
    from ..runtime.bench import ModelCase, build_case_model
    from ..runtime.session import InferenceSession

    rng = np.random.default_rng(config.seed)
    x = rng.standard_normal((config.batch, 3, config.hw, config.hw))
    if model is None:
        case = ModelCase(
            model=config.model,
            algorithm=config.algorithm,
            batch=config.batch,
            hw=config.hw,
            width=config.width,
            m=config.m,
        )
        model = build_case_model(case)
        if config.algorithm != "fp32":
            quantize_model(
                model, config.algorithm, m=config.m, calibration_batches=[x]
            )
    session = InferenceSession(model, x.shape, tracer=tracer, backend=config.backend)
    return session, x, model


def run_profile(config: ProfileConfig) -> Dict[str, Any]:
    """Profile one model: traced runs -> per-layer x per-stage seconds.

    The warmup run (plan building, scratch allocation) is excluded via
    ``reset_stats``, so the numbers describe the steady-state online
    path.  ``agreement_gap`` is the relative difference between the
    tracer's total and the session's independent per-step timing total.
    """
    tracer = StageTracer()
    session, x, _ = _build_session(config, tracer)
    session.run(x)  # warm: plans, geometry scratch, BLAS threads
    session.reset_stats()
    for _ in range(max(1, config.runs)):
        session.run(x)
    breakdown = tracer.breakdown()
    timings = session.layer_timings()
    stage_total = tracer.total_seconds()
    step_total = sum(timings.values())
    gap = abs(stage_total - step_total) / step_total if step_total else 0.0
    return {
        "schema": 1,
        "config": asdict(config),
        "breakdown": breakdown,
        "call_counts": tracer.call_counts(),
        "layer_timings": timings,
        "stage_totals": tracer.stage_totals(),
        "stage_total_s": stage_total,
        "step_total_s": step_total,
        "agreement_gap": gap,
        "cache_stats": session.cache_stats(),
    }


def _active_stages(breakdown: Dict[str, Dict[str, float]]) -> List[str]:
    seen = {stage for stages in breakdown.values() for stage in stages}
    cols = [s for s in STAGES if s in seen]
    return cols + sorted(seen - set(STAGES))  # future-proof: unknown last


def format_profile(doc: Dict[str, Any]) -> str:
    """Render the per-layer x per-stage table with percentages."""
    cfg = doc["config"]
    breakdown: Dict[str, Dict[str, float]] = doc["breakdown"]
    total = doc["stage_total_s"] or 1.0
    cols = _active_stages(breakdown)
    width = max([len("layer")] + [len(path) for path in breakdown]) + 1
    lines = [
        f"Stage profile -- model={cfg['model']} algorithm={cfg['algorithm']} "
        f"batch={cfg['batch']} hw={cfg['hw']} runs={cfg['runs']}"
    ]
    header = f"{'layer':{width}s}" + "".join(f" {c[:16]:>17s}" for c in cols)
    header += f" {'total':>12s}"
    lines.append(header)
    lines.append("-" * len(header))
    layer_rows = sorted(
        breakdown.items(), key=lambda kv: -sum(kv[1].values())
    )
    for path, stages in layer_rows:
        layer_total = sum(stages.values())
        row = f"{path:{width}s}"
        for col in cols:
            seconds = stages.get(col)
            if seconds is None:
                row += f" {'--':>17s}"
            else:
                row += f" {seconds * 1e3:9.3f}ms {seconds / total * 100:4.1f}%"
        row += f" {layer_total * 1e3:10.3f}ms"
        lines.append(row)
    lines.append("")
    totals = doc["stage_totals"]
    lines.append(
        "stage totals: "
        + "  ".join(
            f"{col}={totals[col] * 1e3:.3f}ms ({totals[col] / total * 100:.1f}%)"
            for col in cols
        )
    )
    lines.append(
        f"stage sum {doc['stage_total_s'] * 1e3:.3f}ms vs step timings "
        f"{doc['step_total_s'] * 1e3:.3f}ms "
        f"(gap {doc['agreement_gap'] * 100:.2f}%)"
    )
    return "\n".join(lines)


def measure_overhead(config: ProfileConfig, repeats: int = 5) -> Dict[str, Any]:
    """Measured instrumentation cost: none vs disabled vs enabled tracer.

    The three sessions share one prepared model (identical weights and
    engine objects), run the same input, and are timed best-of
    interleaved -- round-robin over the modes each repeat, so ambient
    host noise hits all three equally instead of biasing whichever ran
    last.  Outputs are checked bitwise identical across modes first:
    instrumentation must never change results.
    """
    import time

    tracer = StageTracer()
    plain, x, model = _build_session(config, tracer=None)
    disabled_tracer = StageTracer(enabled=False)
    disabled, _, _ = _build_session(config, disabled_tracer, model=model)
    enabled, _, _ = _build_session(config, tracer, model=model)
    sessions = {"none": plain, "disabled": disabled, "enabled": enabled}
    outs = {mode: sess.run(x) for mode, sess in sessions.items()}  # warm
    identical = bool(
        np.array_equal(outs["none"], outs["disabled"])
        and np.array_equal(outs["none"], outs["enabled"])
    )
    best = {mode: math.inf for mode in sessions}
    for _ in range(max(1, repeats)):
        for mode, sess in sessions.items():
            t0 = time.perf_counter()
            sess.run(x)
            best[mode] = min(best[mode], time.perf_counter() - t0)
    base = best["none"]
    return {
        "config": asdict(config),
        "repeats": repeats,
        "wall_s": dict(best),
        "overhead": {
            "disabled": best["disabled"] / base - 1.0,
            "enabled": best["enabled"] / base - 1.0,
        },
        "outputs_identical": identical,
    }


def check_overhead_gate(
    doc: Dict[str, Any], limit: float = 0.05, disabled_limit: Optional[float] = None
) -> List[str]:
    """Violations list (empty = PASS) for one overhead measurement.

    ``limit`` bounds the *enabled* tracer's cost (the ISSUE budget is
    5%); ``disabled_limit`` defaults to the same bound -- disabled
    instrumentation is one attribute check per call, so a breach there
    means a real hot-path regression, not noise.
    """
    if disabled_limit is None:
        disabled_limit = limit
    violations: List[str] = []
    if not doc["outputs_identical"]:
        violations.append("instrumented outputs are not bit-identical to baseline")
    checks: Tuple[Tuple[str, float], ...] = (
        ("enabled", limit),
        ("disabled", disabled_limit),
    )
    for mode, bound in checks:
        overhead = doc["overhead"][mode]
        if overhead > bound:
            violations.append(
                f"{mode} tracer overhead {overhead * 100:.2f}% exceeds "
                f"{bound * 100:.1f}% budget"
            )
    return violations


def format_overhead(doc: Dict[str, Any]) -> str:
    cfg = doc["config"]
    wall = doc["wall_s"]
    over = doc["overhead"]
    return "\n".join(
        [
            f"Instrumentation overhead -- model={cfg['model']} "
            f"algorithm={cfg['algorithm']} batch={cfg['batch']} hw={cfg['hw']} "
            f"best-of-{doc['repeats']} interleaved",
            f"  no tracer:       {wall['none'] * 1e3:8.3f}ms",
            f"  tracer disabled: {wall['disabled'] * 1e3:8.3f}ms "
            f"({over['disabled'] * 100:+.2f}%)",
            f"  tracer enabled:  {wall['enabled'] * 1e3:8.3f}ms "
            f"({over['enabled'] * 100:+.2f}%)",
            f"  outputs bit-identical: {'yes' if doc['outputs_identical'] else 'NO'}",
        ]
    )


# -- per-stage share gate (CI bench-smoke) -------------------------------

def stage_shares(doc: Dict[str, Any]) -> Dict[str, float]:
    """Each stage's fraction of the total traced stage wall-clock.

    Shares, not absolute seconds: the *shape* of the Figure 10 breakdown
    is host-independent (a faster machine shrinks every stage together),
    so share drift is the signal that one stage's implementation
    regressed relative to the others.
    """
    totals: Dict[str, float] = doc["stage_totals"]
    total = sum(totals.values())
    if total <= 0:
        return {stage: 0.0 for stage in totals}
    return {stage: seconds / total for stage, seconds in totals.items()}


def stage_baseline_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The checked-in stage baseline for one profile run
    (``benchmarks/BENCH_stages.json``)."""
    return {
        "schema": 1,
        "config": doc["config"],
        "stage_shares": stage_shares(doc),
        "stage_total_s": doc["stage_total_s"],
    }


#: ``config`` keys that must match for a stage baseline to gate a run
#: (seed/runs affect noise, not the breakdown shape; ``backend`` *is*
#: compared -- the threaded backend legitimately shifts the GEMM share).
_STAGE_COMPAT_KEYS = ("model", "algorithm", "batch", "hw", "width", "m", "backend")


def check_stage_gate(
    current: Dict[str, Any], baseline: Dict[str, Any], tolerance: float = 0.10
) -> List[str]:
    """Per-stage share regression gate: profile run vs checked-in baseline.

    A stage fails when its share of total stage time *grows* more than
    ``tolerance`` (absolute percentage points, as a fraction) above the
    baseline share -- e.g. quantize going from 12% to 25% of the run
    with the default 0.10 tolerance.  Shrinking shares never fail (the
    other stages' growth is what gets flagged).  A stage absent from the
    baseline fails if its share alone exceeds ``tolerance`` -- new
    overhead must be re-baselined deliberately.  Returns human-readable
    violations; empty means PASS.
    """
    cur_cfg = current.get("config", {})
    base_cfg = baseline.get("config", {})
    mismatched = [
        k for k in _STAGE_COMPAT_KEYS if cur_cfg.get(k) != base_cfg.get(k)
    ]
    if mismatched:
        return [
            "stage baseline incompatible with this run (config fields differ: "
            + ", ".join(
                f"{k}: {base_cfg.get(k)!r} -> {cur_cfg.get(k)!r}" for k in mismatched
            )
            + "); regenerate it with --update-stage-baseline"
        ]
    violations: List[str] = []
    cur_shares = stage_shares(current)
    base_shares: Dict[str, float] = baseline["stage_shares"]
    for stage, share in sorted(cur_shares.items()):
        base = base_shares.get(stage)
        if base is None:
            if share > tolerance:
                violations.append(
                    f"stage {stage!r}: {share * 100:.1f}% of stage time but "
                    f"absent from the baseline (tolerance "
                    f"{tolerance * 100:.0f}pp); re-baseline deliberately"
                )
        elif share > base + tolerance:
            violations.append(
                f"stage {stage!r}: share grew {base * 100:.1f}% -> "
                f"{share * 100:.1f}% of stage time "
                f"(tolerance {tolerance * 100:.0f}pp)"
            )
    return violations


def format_stage_gate(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> str:
    """Side-by-side stage shares, current vs baseline."""
    cur_shares = stage_shares(current)
    base_shares: Dict[str, float] = baseline.get("stage_shares", {})
    stages = [s for s in STAGES if s in cur_shares or s in base_shares]
    stages += sorted((set(cur_shares) | set(base_shares)) - set(stages))
    lines = [f"{'stage':18s} {'baseline':>9s} {'current':>9s} {'drift':>8s}"]
    for stage in stages:
        base = base_shares.get(stage)
        cur = cur_shares.get(stage)
        base_s = f"{base * 100:8.1f}%" if base is not None else f"{'--':>9s}"
        cur_s = f"{cur * 100:8.1f}%" if cur is not None else f"{'--':>9s}"
        drift = (
            f"{(cur - base) * 100:+7.1f}pp"
            if base is not None and cur is not None
            else f"{'--':>8s}"
        )
        lines.append(f"{stage:18s} {base_s} {cur_s} {drift}")
    return "\n".join(lines)
