"""Wall-clock measurement harness (the paper's timing methodology).

Section 5: "To reduce the interference of initialization, we warm up
the experiments and run tests 100 times, and report the average running
time."  This module reproduces that protocol for timing *this
repository's* NumPy kernels -- useful for regression tracking and for
the kernel benchmarks; NOT comparable to the paper's absolute numbers
(the substrate is NumPy, see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

__all__ = ["Measurement", "measure", "compare"]


@dataclass(frozen=True)
class Measurement:
    """Timing statistics of one measured callable."""

    name: str
    mean_s: float
    std_s: float
    min_s: float
    runs: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name}: mean {self.mean_s * 1e3:.3f} ms "
                f"(+/- {self.std_s * 1e3:.3f}), min {self.min_s * 1e3:.3f}, "
                f"n={self.runs}")


def measure(
    fn: Callable[[], object],
    name: str = "kernel",
    warmup: int = 2,
    runs: int = 100,
    max_seconds: float = 10.0,
) -> Measurement:
    """Warm up, then time ``fn`` up to ``runs`` times (paper protocol).

    ``max_seconds`` caps total measurement time so slow configurations
    degrade to fewer repetitions rather than hanging the suite; at least
    3 timed runs always execute.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    for _ in range(warmup):
        fn()
    times = []
    budget_start = time.perf_counter()
    for i in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
        if i >= 2 and time.perf_counter() - budget_start > max_seconds:
            break
    arr = np.array(times)
    return Measurement(
        name=name,
        mean_s=float(arr.mean()),
        std_s=float(arr.std()),
        min_s=float(arr.min()),
        runs=arr.size,
    )


def compare(
    candidates: Dict[str, Callable[[], object]],
    baseline: str,
    warmup: int = 2,
    runs: int = 20,
    max_seconds: float = 10.0,
) -> Dict[str, float]:
    """Measure several callables; return speedups relative to ``baseline``.

    Speedup > 1 means faster than the baseline.
    """
    if baseline not in candidates:
        raise KeyError(f"baseline {baseline!r} not among candidates {sorted(candidates)}")
    results = {
        name: measure(fn, name=name, warmup=warmup, runs=runs,
                      max_seconds=max_seconds)
        for name, fn in candidates.items()
    }
    base = results[baseline].mean_s
    return {name: base / m.mean_s for name, m in results.items()}
