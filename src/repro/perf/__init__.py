"""Performance model: machine description, execution plans, breakdowns.

The *numerics* of every algorithm in this repository are measured for
real; the *performance* experiments (Figures 8 and 10) run on this model
because the substrate is NumPy, not hand-tuned AVX-512 VNNI assembly
(see DESIGN.md, "Reproduction strategy").
"""

from .cache_sim import CacheStats, SetAssociativeCache, gemm_access_trace, simulate_gemm_cache
from .breakdown import StageBreakdown, breakdown, figure10_breakdowns
from .machine import CASCADE_LAKE_8C, MachineModel, StageCost
from .measured import Measurement, compare, measure
from .report import format_plan, layer_report
from .plans import (
    ALL_PLANS,
    ImplPlan,
    plan_fp32_direct,
    plan_fp32_wino,
    plan_int8_direct,
    plan_int8_upcast,
    plan_lowino,
    plan_onednn_wino,
    predict_layer_times,
)

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "gemm_access_trace",
    "simulate_gemm_cache",
    "StageBreakdown",
    "breakdown",
    "figure10_breakdowns",
    "CASCADE_LAKE_8C",
    "MachineModel",
    "StageCost",
    "Measurement",
    "compare",
    "measure",
    "format_plan",
    "layer_report",
    "ALL_PLANS",
    "ImplPlan",
    "plan_fp32_direct",
    "plan_fp32_wino",
    "plan_int8_direct",
    "plan_int8_upcast",
    "plan_lowino",
    "plan_onednn_wino",
    "predict_layer_times",
]
