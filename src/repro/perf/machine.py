"""Machine model of the evaluation platform.

An 8-core Intel Xeon Scalable (Cascade Lake) at 3.0 GHz -- the paper's
testbed (Section 5).  The constants below are the microarchitectural
facts the performance argument rests on:

* two 512-bit vector pipes per core; ``vpdpbusd`` retires 64 INT8 MACs
  per instruction, giving the 4x INT8-over-FP32 peak ratio of Figure 1;
* ``vpmaddwd`` (the up-cast path) retires 32 INT16 MACs -> 2x FP32;
* a shared DRAM interface; per-core L1/L2 and a shared LLC whose
  capacities gate the blocking decisions.

This module knows nothing about convolutions; execution plans in
:mod:`repro.perf.plans` translate workloads into (cycles, bytes) and ask
the machine for time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "CASCADE_LAKE_8C", "StageCost"]


@dataclass(frozen=True)
class MachineModel:
    """Roofline-style CPU description."""

    name: str = "Cascade Lake Xeon 8-core"
    cores: int = 8
    freq_ghz: float = 3.0
    #: 512-bit vector instructions issued per cycle per core (ports 0+5).
    vector_issue: float = 2.0
    #: 64-byte loads per cycle per core (ports 2+3).
    load_issue: float = 2.0
    #: 64-byte stores per cycle per core (port 4).
    store_issue: float = 1.0
    #: Shared DRAM bandwidth, bytes/second.
    dram_bw: float = 100e9
    #: Sustained per-core L2 bandwidth, bytes/cycle.
    l2_bytes_per_cycle: float = 32.0
    #: Fork-join barrier + dispatch cost per parallel stage, seconds.
    stage_overhead_s: float = 10e-6
    l1_kib: int = 32
    l2_kib: int = 1024
    llc_kib_per_core: int = 1408

    # Derived peaks (per core, per cycle).
    @property
    def int8_macs_per_cycle(self) -> float:
        """vpdpbusd: 16 lanes x 4 pairs x issue width."""
        return 16 * 4 * self.vector_issue

    @property
    def int16_macs_per_cycle(self) -> float:
        """vpmaddwd: 16 lanes x 2 pairs x issue width."""
        return 16 * 2 * self.vector_issue

    @property
    def fp32_macs_per_cycle(self) -> float:
        """FMA: 16 lanes x issue width (1 MAC per lane)."""
        return 16 * self.vector_issue

    @property
    def l2_bytes(self) -> int:
        return self.l2_kib * 1024

    def seconds(self, cycles: float, cores: int | None = None) -> float:
        """Wall time of ``cycles`` total work spread over ``cores``."""
        cores = self.cores if cores is None else cores
        return cycles / (self.freq_ghz * 1e9 * cores)

    def dram_seconds(self, dram_bytes: float) -> float:
        """Wall time of a DRAM transfer (bandwidth is shared, not
        per-core)."""
        return dram_bytes / self.dram_bw


@dataclass(frozen=True)
class StageCost:
    """One pipeline stage as (compute cycles, DRAM bytes, L2 bytes).

    ``cycles`` is the total single-thread compute work; the stage runs on
    ``cores`` threads with a load-balance factor.  Stage time is the
    roofline max of compute, DRAM and aggregate-L2 components, plus the
    fixed fork-join dispatch overhead.
    """

    name: str
    cycles: float
    dram_bytes: float
    l2_bytes: float = 0.0
    balance: float = 1.0  # >= 1; makespan/ideal from the static scheduler

    def _components(self, machine: MachineModel, cores: int | None) -> tuple[float, float, float]:
        cores = machine.cores if cores is None else cores
        compute = machine.seconds(self.cycles, cores) * self.balance
        dram = machine.dram_seconds(self.dram_bytes)
        l2 = self.l2_bytes / (cores * machine.l2_bytes_per_cycle * machine.freq_ghz * 1e9)
        return compute, dram, l2

    def time(self, machine: MachineModel, cores: int | None = None) -> float:
        return max(self._components(machine, cores)) + machine.stage_overhead_s

    def bound(self, machine: MachineModel, cores: int | None = None) -> str:
        compute, dram, l2 = self._components(machine, cores)
        return {compute: "compute", dram: "memory", l2: "l2"}[max(compute, dram, l2)]


CASCADE_LAKE_8C = MachineModel()
