"""Human-readable execution-plan reports.

Renders everything the planner decided for one layer -- algorithm
geometry, blocking, per-stage roofline components, the static schedule
-- as a text report.  Exposed on the CLI as ``python -m repro plan
<layer>``; useful both for debugging the model and as documentation of
how a layer actually executes.
"""

from __future__ import annotations

from typing import List

from ..parallel import StaticSchedule
from ..workloads import LayerConfig
from .machine import CASCADE_LAKE_8C, MachineModel
from .plans import ALL_PLANS, ImplPlan

__all__ = ["format_plan", "layer_report"]


def format_plan(plan: ImplPlan, machine: MachineModel = CASCADE_LAKE_8C,
                cores: int | None = None) -> str:
    cores = machine.cores if cores is None else cores
    lines = [f"{plan.impl} on {plan.layer}:"]
    if "gemm_dims" in plan.meta:
        t, n, c, k = plan.meta["gemm_dims"]
        lines.append(f"  batched GEMM: T={t} x ({n} x {c}) @ ({c} x {k})")
    if "blocking" in plan.meta:
        b = plan.meta["blocking"]
        lines.append(
            f"  blocking: N_blk={b.n_blk} C_blk={b.c_blk} K_blk={b.k_blk} "
            f"register tile {b.row_blk}x{b.col_blk} "
            f"({b.accumulator_registers} ZMM live)"
        )
    total = plan.total_time(machine, cores)
    for stage in plan.stages:
        time = stage.time(machine, cores)
        lines.append(
            f"  {stage.name:18s} {time * 1e3:9.3f} ms  "
            f"[{stage.bound(machine, cores)}-bound, "
            f"{time / total:5.1%} of total, balance {stage.balance:.2f}]"
        )
    lines.append(f"  {'total':18s} {total * 1e3:9.3f} ms on {cores} cores")
    return "\n".join(lines)


def layer_report(layer: LayerConfig, machine: MachineModel = CASCADE_LAKE_8C,
                 cores: int | None = None, impls: List[str] | None = None) -> str:
    """Full report: every implementation's plan plus the schedule stats."""
    cores = machine.cores if cores is None else cores
    impls = list(ALL_PLANS) if impls is None else impls
    parts = [
        f"Layer {layer.name}: B={layer.batch} C={layer.c} K={layer.k} "
        f"HxW={layer.hw} r={layer.r} pad={layer.padding} "
        f"({layer.direct_macs / 1e9:.2f} G direct MACs)",
        "",
    ]
    for name in impls:
        plan = ALL_PLANS[name](layer, machine, cores)
        parts.append(format_plan(plan, machine, cores))
        parts.append("")
    tiles = layer.batch * layer.tiles(2)
    schedule = StaticSchedule.for_tasks(tiles, cores)
    parts.append(
        f"static schedule (F(2,3) tiles): {tiles} tasks over {cores} threads, "
        f"imbalance {schedule.imbalance():.3f}"
    )
    return "\n".join(parts)
