"""Execution plans: translate a layer + implementation into stage costs.

Each plan mirrors the dataflow of the corresponding real implementation
and charges it for the instructions, DRAM traffic and L2 traffic that
implementation actually performs.  The counts come from the repository's
own artifacts: GEMM instruction counts from
:class:`~repro.gemm.batched.GemmWorkload` (the Figure 7 loop nest),
transform vector-op counts from the generated codelets, blocking
parameters from the same defaults/tuner the executable path uses.

Modeled implementations
-----------------------
``onednn_direct``   INT8 direct convolution (implicit GEMM, VNNI).
``onednn_wino``     INT8 Winograd F(2,3), down-scaling, *fused*: the
                    transformed operands stay cache-resident (no DRAM
                    traffic for intermediates) but the design is limited
                    to small cache partitions and a narrow register tile
                    (Section 5.3's analysis).
``lowino_f2/f4/f6`` LoWino: FP32 transforms (4x input traffic), streamed
                    intermediates (DRAM, non-temporal), large-block GEMM.
``fp32_direct``     FP32 direct convolution.
``fp32_wino``       FP32 Winograd F(4,3) (numerical stability is not an
                    issue in FP32, so the vendor library uses the larger
                    tile).
``int8_upcast``     ncnn-style INT16-multiply Winograd F(2,3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..codelets import transform_codelets
from ..gemm import BlockingParams, GemmWorkload, default_blocking
from ..layout import SIGMA, ceil_div
from ..winograd import winograd_algorithm
from ..workloads import LayerConfig
from .machine import CASCADE_LAKE_8C, MachineModel, StageCost

__all__ = [
    "ImplPlan",
    "plan_lowino",
    "plan_onednn_wino",
    "plan_int8_direct",
    "plan_fp32_direct",
    "plan_fp32_wino",
    "plan_int8_upcast",
    "predict_layer_times",
    "ALL_PLANS",
]

#: Fixed per-microkernel-call overhead (loop setup, pointer math), cycles.
MICROKERNEL_CALL_OVERHEAD = 40.0
#: Scattered (tile-strided) access achieves a fraction of streaming DRAM
#: bandwidth; applied to the transform stages' tile traffic.
SCATTER_DRAM_EFFICIENCY = 0.65


@dataclass
class ImplPlan:
    """A named sequence of stage costs for one implementation x layer."""

    impl: str
    layer: str
    stages: List[StageCost]
    meta: Dict[str, object] = field(default_factory=dict)

    def total_time(self, machine: MachineModel = CASCADE_LAKE_8C, cores: int | None = None) -> float:
        return sum(stage.time(machine, cores) for stage in self.stages)

    def stage_times(
        self, machine: MachineModel = CASCADE_LAKE_8C, cores: int | None = None
    ) -> Dict[str, float]:
        return {stage.name: stage.time(machine, cores) for stage in self.stages}


def _balance(tasks: int, cores: int) -> float:
    """Static-scheduling makespan factor: ceil(tasks/w) * w / tasks."""
    if tasks <= 0:
        return 1.0
    return ceil_div(tasks, cores) * cores / tasks


def _gemm_cycles(work: GemmWorkload, machine: MachineModel, macs_per_instr: int = 64) -> float:
    """Compute cycles of the blocked GEMM from Figure 7 instruction counts.

    ``macs_per_instr`` rescales for the FP32 (16) and INT16 (32) pipes:
    the same loop structure needs proportionally more multiply
    instructions to cover the same MAC count.
    """
    mult_instrs = work.vpdpbusd_count * (64 / macs_per_instr)
    alu = (mult_instrs + work.broadcast_count) / machine.vector_issue
    stores = work.nt_store_count / machine.store_issue
    p = work.params
    calls = (
        work.t
        * ceil_div(work.n_pad, p.n_blk)
        * ceil_div(work.k_pad, p.k_blk)
        * ceil_div(work.c_pad, p.c_blk)
    )
    return alu + stores + calls * MICROKERNEL_CALL_OVERHEAD


def _gemm_l2_bytes(work: GemmWorkload, v_bytes: int, u_bytes: int) -> float:
    """L2-level traffic of the blocked GEMM.

    The V panel is re-read once per K block pass, the U panel once per N
    block pass, and the z accumulator buffer spills to L2 between C block
    passes.  Large blocks amortize all three -- the compute-to-memory
    ratio argument of Section 5.3.
    """
    p = work.params
    k_passes = ceil_div(work.k_pad, p.k_blk)
    n_passes = ceil_div(work.n_pad, p.n_blk)
    c_passes = ceil_div(work.c_pad, p.c_blk)
    v_l2 = work.t * work.n_pad * work.c_pad * v_bytes * k_passes
    u_l2 = work.t * work.c_pad * work.k_pad * u_bytes * n_passes
    z_l2 = 2 * work.t * work.n_pad * work.k_pad * 4 * max(0, c_passes - 1)
    return v_l2 + u_l2 + z_l2


def _transform_cycles(
    n_tiles: int,
    channels: int,
    alpha_in: int,
    codelet_ops: int,
    elems_out: int,
    extra_ops_per_elem: float,
    machine: MachineModel,
) -> float:
    """Vector cycles of one transform stage.

    A 2D transform of one tile costs two 1D passes (column-wise then
    row-wise, Section 4.2.4): ``2 * alpha_in * codelet_ops`` vector ops
    per 16-channel group, plus ``extra_ops_per_elem`` per output element
    for fused quantize/de-quantize/compensation/packing work.
    """
    groups = n_tiles * ceil_div(channels, SIGMA)
    ops = groups * (2 * alpha_in * codelet_ops + extra_ops_per_elem * elems_out)
    return ops / machine.vector_issue


def _wino_geometry(layer: LayerConfig, m: int):
    alg = winograd_algorithm(m, layer.r)
    t, n, c, k = layer.gemm_dims(m)
    cls = transform_codelets(alg)
    return alg, t, n, c, k, cls


def _onednn_wino_blocking(t: int, n: int, c: int, k: int, machine: MachineModel) -> BlockingParams:
    """Blocking available to the *fused* design.

    oneDNN keeps the transformed inputs and accumulators of a tile
    partition cache-resident: per tile that is ``T * (C + 4K)`` bytes, so
    the partition -- and with it the GEMM's N blocking -- is capped by
    the L2 budget; the register tile is narrower (4x2) because the small
    K blocking leaves fewer columns to amortize broadcasts over.
    """
    per_tile_bytes = t * (c + 4 * k)
    n_part = max(8, machine.l2_bytes // per_tile_bytes)
    row_blk, col_blk = 4, 2
    n_blk = max(row_blk, min(int(n_part), 48, ceil_div(n, row_blk) * row_blk)
                // row_blk * row_blk)
    k_blk = col_blk * SIGMA  # 32
    c_blk = min(c, 128)
    c_blk = max(4, c_blk // 4 * 4)
    params = BlockingParams(n_blk=n_blk, c_blk=c_blk, k_blk=k_blk,
                            row_blk=row_blk, col_blk=col_blk)
    params.validate()
    return params


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

def plan_lowino(
    layer: LayerConfig, m: int, machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None, blocking: BlockingParams | None = None,
) -> ImplPlan:
    cores = machine.cores if cores is None else cores
    alg, t, n, c, k, cls = _wino_geometry(layer, m)
    params = blocking or default_blocking(n, c, k)
    work = GemmWorkload(t=t, n=n, c=c, k=k, params=params)
    out_hw = layer.out_hw

    # Input transform: FP32 reads (the 4x of Figure 10), fused quantize +
    # bias + pack, scattered non-temporal INT8 writes of V.
    in_tf = StageCost(
        name="input_transform",
        cycles=_transform_cycles(n, c, alg.alpha, cls["input"].optimized.total,
                                 t, 4.0, machine),
        dram_bytes=(layer.batch * c * layer.hw**2 * 4 + n * t * c * 1)
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    gemm = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine, macs_per_instr=64),
        dram_bytes=work.t * work.n_pad * work.c_pad * 1  # V streamed in
        + t * c * k * 1                                   # U first touch
        + work.bytes_written,                             # Z NT-stored
        l2_bytes=_gemm_l2_bytes(work, 1, 1),
        balance=_balance(t * ceil_div(n, params.n_blk) * ceil_div(k, params.k_blk), cores),
    )
    out_tf = StageCost(
        name="output_transform",
        cycles=_transform_cycles(n, k, alg.alpha, cls["output"].optimized.total,
                                 t, 3.0, machine),
        dram_bytes=(n * t * k * 4 + layer.batch * k * out_hw**2 * 4)
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    return ImplPlan(
        impl=f"lowino_f{m}", layer=layer.name, stages=[in_tf, gemm, out_tf],
        meta={"blocking": params, "gemm_dims": (t, n, c, k)},
    )


def plan_onednn_wino(
    layer: LayerConfig, m: int = 2, machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> ImplPlan:
    cores = machine.cores if cores is None else cores
    alg, t, n, c, k, cls = _wino_geometry(layer, m)
    params = _onednn_wino_blocking(t, n, c, k, machine)
    work = GemmWorkload(t=t, n=n, c=c, k=k, params=params)
    out_hw = layer.out_hw

    # Fused design: INT8 input reads, intermediates cache-resident (L2
    # traffic, no DRAM), INT8 output writes.  Extra per-element work for
    # the integer widen / down-scale / round / narrow chain.
    in_tf = StageCost(
        name="input_transform",
        cycles=_transform_cycles(n, c, alg.alpha, cls["input"].optimized.total,
                                 t, 6.0, machine),
        dram_bytes=layer.batch * c * layer.hw**2 * 1,
        l2_bytes=n * t * c * 1,  # V written into cache
        balance=_balance(n, cores),
    )
    # oneDNN's INT8 Winograd kernel predates VNNI: it multiplies with the
    # AVX512-BW vpmaddubsw + vpmaddwd sequence (32 effective MACs per
    # instruction slot, half of vpdpbusd), while oneDNN's INT8 *direct*
    # convolution does use VNNI.  This asymmetry is why a VNNI F(2,3)
    # implementation can beat the vendor Winograd at the same algorithmic
    # complexity.
    gemm = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine, macs_per_instr=32),
        dram_bytes=t * c * k * 1,  # U first touch; V/Z cached
        l2_bytes=_gemm_l2_bytes(work, 1, 1),
        balance=_balance(t * ceil_div(n, params.n_blk) * ceil_div(k, params.k_blk), cores),
    )
    out_tf = StageCost(
        name="output_transform",
        cycles=_transform_cycles(n, k, alg.alpha, cls["output"].optimized.total,
                                 t, 5.0, machine),
        dram_bytes=layer.batch * k * out_hw**2 * 1,
        l2_bytes=n * t * k * 4,  # Z consumed from cache
        balance=_balance(n, cores),
    )
    return ImplPlan(
        impl="onednn_wino", layer=layer.name, stages=[in_tf, gemm, out_tf],
        meta={"blocking": params, "gemm_dims": (t, n, c, k)},
    )


def plan_int8_upcast(
    layer: LayerConfig, m: int = 2, machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> ImplPlan:
    """ncnn-style: INT16 operands double traffic, vpmaddwd halves peak."""
    cores = machine.cores if cores is None else cores
    alg, t, n, c, k, cls = _wino_geometry(layer, m)
    params = default_blocking(n, c, k)
    work = GemmWorkload(t=t, n=n, c=c, k=k, params=params)
    out_hw = layer.out_hw
    in_tf = StageCost(
        name="input_transform",
        cycles=_transform_cycles(n, c, alg.alpha, cls["input"].optimized.total,
                                 t, 4.0, machine),
        dram_bytes=(layer.batch * c * layer.hw**2 * 1 + n * t * c * 2)
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    gemm = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine, macs_per_instr=32),
        dram_bytes=work.t * work.n_pad * work.c_pad * 2
        + t * c * k * 2
        + work.bytes_written,
        l2_bytes=_gemm_l2_bytes(work, 2, 2),
        balance=_balance(t * ceil_div(n, params.n_blk) * ceil_div(k, params.k_blk), cores),
    )
    out_tf = StageCost(
        name="output_transform",
        cycles=_transform_cycles(n, k, alg.alpha, cls["output"].optimized.total,
                                 t, 3.0, machine),
        dram_bytes=(n * t * k * 4 + layer.batch * k * out_hw**2 * 1)
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    return ImplPlan(impl="int8_upcast", layer=layer.name, stages=[in_tf, gemm, out_tf],
                    meta={"blocking": params})


def _direct_blocking(n: int, c_red: int, k: int) -> BlockingParams:
    """Blocking for direct convolution's implicit GEMM.

    Unlike the Winograd tile GEMM, direct convolution's reduction axis is
    ``C * r^2`` and the spatial axis is freely divisible, so the kernel
    suffers essentially no padding waste: pick block sizes that divide
    the problem.
    """
    row_blk, col_blk = 6, 4
    k_blk = 128 if k % 128 == 0 else 64
    c_blk = 288 if c_red % 288 == 0 else max(4, min(c_red, 256) // 4 * 4)
    n_blk = min(96, max(row_blk, ceil_div(n, row_blk) * row_blk))
    params = BlockingParams(n_blk=n_blk, c_blk=c_blk, k_blk=k_blk,
                            row_blk=row_blk, col_blk=col_blk)
    params.validate()
    return params


def _direct_plan(
    layer: LayerConfig, machine: MachineModel, cores: int | None,
    macs_per_instr: int, dtype_bytes: int, impl: str,
) -> ImplPlan:
    cores = machine.cores if cores is None else cores
    n = layer.batch * layer.out_hw**2
    c_red = layer.c * layer.r**2
    params = _direct_blocking(n, c_red, layer.k)
    work = GemmWorkload(t=1, n=n, c=c_red, k=layer.k, params=params)
    gemm = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine, macs_per_instr=macs_per_instr),
        # Direct conv streams the input once (the r^2 window reuse is
        # cache-level), reads the weights, writes the output.
        dram_bytes=(layer.batch * layer.c * layer.hw**2
                    + layer.c * layer.k * layer.r**2
                    + layer.batch * layer.k * layer.out_hw**2) * dtype_bytes,
        l2_bytes=_gemm_l2_bytes(work, dtype_bytes, dtype_bytes),
        balance=_balance(ceil_div(n, params.n_blk) * ceil_div(layer.k, params.k_blk), cores),
    )
    return ImplPlan(impl=impl, layer=layer.name, stages=[gemm],
                    meta={"blocking": params})


def plan_int8_direct(
    layer: LayerConfig, machine: MachineModel = CASCADE_LAKE_8C, cores: int | None = None,
) -> ImplPlan:
    """INT8 direct convolution as a blocked implicit GEMM (VNNI)."""
    return _direct_plan(layer, machine, cores, 64, 1, "onednn_direct")


def plan_fp32_direct(
    layer: LayerConfig, machine: MachineModel = CASCADE_LAKE_8C, cores: int | None = None,
) -> ImplPlan:
    return _direct_plan(layer, machine, cores, 16, 4, "fp32_direct")


def plan_fp32_wino(
    layer: LayerConfig, m: int = 4, machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> ImplPlan:
    cores = machine.cores if cores is None else cores
    alg, t, n, c, k, cls = _wino_geometry(layer, m)
    params = default_blocking(n, c, k)
    work = GemmWorkload(t=t, n=n, c=c, k=k, params=params)
    out_hw = layer.out_hw
    in_tf = StageCost(
        name="input_transform",
        cycles=_transform_cycles(n, c, alg.alpha, cls["input"].optimized.total,
                                 t, 1.0, machine),
        dram_bytes=(layer.batch * c * layer.hw**2 + n * t * c) * 4
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    gemm = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine, macs_per_instr=16),
        dram_bytes=(work.t * work.n_pad * work.c_pad + t * c * k) * 4
        + work.bytes_written,
        l2_bytes=_gemm_l2_bytes(work, 4, 4),
        balance=_balance(t * ceil_div(n, params.n_blk) * ceil_div(k, params.k_blk), cores),
    )
    out_tf = StageCost(
        name="output_transform",
        cycles=_transform_cycles(n, k, alg.alpha, cls["output"].optimized.total,
                                 t, 1.0, machine),
        dram_bytes=(n * t * k + layer.batch * k * out_hw**2) * 4
        / SCATTER_DRAM_EFFICIENCY,
        balance=_balance(n, cores),
    )
    return ImplPlan(impl="fp32_wino", layer=layer.name, stages=[in_tf, gemm, out_tf],
                    meta={"blocking": params})


ALL_PLANS = {
    "onednn_direct": lambda layer, machine, cores: plan_int8_direct(layer, machine, cores),
    "onednn_wino": lambda layer, machine, cores: plan_onednn_wino(layer, 2, machine, cores),
    "lowino_f2": lambda layer, machine, cores: plan_lowino(layer, 2, machine, cores),
    "lowino_f4": lambda layer, machine, cores: plan_lowino(layer, 4, machine, cores),
    "int8_upcast": lambda layer, machine, cores: plan_int8_upcast(layer, 2, machine, cores),
    "fp32_direct": lambda layer, machine, cores: plan_fp32_direct(layer, machine, cores),
    "fp32_wino": lambda layer, machine, cores: plan_fp32_wino(layer, 4, machine, cores),
}


def predict_layer_times(
    layer: LayerConfig,
    machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
    impls: List[str] | None = None,
) -> Dict[str, float]:
    """Predicted execution time (seconds) per implementation."""
    impls = list(ALL_PLANS) if impls is None else impls
    out = {}
    for name in impls:
        plan = ALL_PLANS[name](layer, machine, cores)
        out[name] = plan.total_time(machine, cores)
    return out
