"""Set-associative cache simulation of the blocked GEMM's access stream.

The paper's Section 4.3 justifies its blocking with cache arguments
("each sub-matrix can fit in L2", "fully use the data before swap it
out").  This module makes those arguments *measurable*: it generates the
cache-line access trace of the blocked GEMM's loop nest (the same order
:func:`repro.gemm.batched.batched_gemm_blocked` executes) and drives it
through an LRU set-associative cache model, reporting per-operand hit
rates.  The tests then verify the claims the cost model assumes --
the ``u`` panel stays resident while ``C_blk * K_blk`` respects the
constraint and thrashes when it does not, and tuned blocking beats a
cache-hostile one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np

from ..gemm import BlockingParams
from ..layout import CACHE_LINE_BYTES, ceil_div

__all__ = ["SetAssociativeCache", "CacheStats", "gemm_access_trace", "simulate_gemm_cache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class SetAssociativeCache:
    """LRU set-associative cache over 64-byte lines.

    Addresses are plain integers (byte addresses in a flat model
    address space); only tag/index behaviour is modeled -- no data.
    """

    def __init__(self, size_bytes: int, ways: int = 8,
                 line_bytes: int = CACHE_LINE_BYTES) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (ways * line_bytes)
        if self.sets < 1:
            raise ValueError("cache too small for the given associativity")
        # tags[s][w] = line tag; lru[s][w] = last-use stamp.
        self._tags = np.full((self.sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.sets, ways), dtype=np.int64)
        self._clock = 0

    def access_line(self, line: int) -> bool:
        """Touch one line; returns True on hit."""
        s = line % self.sets
        tag = line // self.sets
        self._clock += 1
        row = self._tags[s]
        hit = np.nonzero(row == tag)[0]
        if hit.size:
            self._lru[s, hit[0]] = self._clock
            return True
        victim = int(np.argmin(self._lru[s]))
        self._tags[s, victim] = tag
        self._lru[s, victim] = self._clock
        return False

    def access_range(self, addr: int, nbytes: int, stats: CacheStats) -> None:
        """Touch every line of ``[addr, addr + nbytes)``."""
        first = addr // self.line_bytes
        last = (addr + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            if self.access_line(line):
                stats.hits += 1
            else:
                stats.misses += 1


def gemm_access_trace(
    params: BlockingParams, t: int, n: int, c: int, k: int
) -> Iterator[Tuple[str, int, int]]:
    """Yield ``(operand, byte_address, nbytes)`` in blocked execution order.

    The address space lays out V, U and Z back to back (padded sizes,
    Table 1 layouts).  Granularity: one access per contiguous row
    segment a microkernel consumes (V row slices, U panel rows, Z block
    rows) -- fine enough to expose conflict and capacity behaviour,
    coarse enough to keep simulation fast.
    """
    n_pad = ceil_div(n, params.n_blk) * params.n_blk
    c_pad = ceil_div(c, params.c_blk) * params.c_blk
    k_pad = ceil_div(k, params.k_blk) * params.k_blk
    nb, cb, kb = n_pad // params.n_blk, c_pad // params.c_blk, k_pad // params.k_blk
    v_base = 0
    u_base = t * n_pad * c_pad  # V is 1 byte/elem
    z_base = u_base + t * c_pad * k_pad  # U is 1 byte/elem
    for ti in range(t):
        for kbi in range(kb):
            for nbi in range(nb):
                for cbi in range(cb):
                    # u panel: c_blk x k_blk bytes, row-major rows.
                    u_addr = u_base + ((ti * cb + cbi) * kb + kbi) * params.c_blk * params.k_blk
                    for r in range(params.c_blk // 4):
                        yield ("u", u_addr + r * 4 * params.k_blk, 4 * params.k_blk)
                    # v panel rows: n_blk rows of c_blk bytes.
                    for r in range(params.n_blk):
                        v_addr = v_base + (
                            (ti * nb + nbi) * params.n_blk + r
                        ) * c_pad + cbi * params.c_blk
                        yield ("v", v_addr, params.c_blk)
                    # z accumulator: touched per C pass (held in cache
                    # between passes if it fits).
                    z_addr = z_base + (
                        (ti * nb + nbi) * kb + kbi
                    ) * params.n_blk * params.k_blk * 4
                    yield ("z", z_addr, params.n_blk * params.k_blk * 4)


def simulate_gemm_cache(
    params: BlockingParams, t: int, n: int, c: int, k: int,
    cache: SetAssociativeCache | None = None,
) -> Dict[str, CacheStats]:
    """Run the GEMM trace through a cache; per-operand stats."""
    params.validate()
    cache = cache or SetAssociativeCache(1024 * 1024, ways=16)  # 1 MiB L2
    stats = {"v": CacheStats(), "u": CacheStats(), "z": CacheStats()}
    for operand, addr, nbytes in gemm_access_trace(params, t, n, c, k):
        cache.access_range(addr, nbytes, stats[operand])
    return stats
