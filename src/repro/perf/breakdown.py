"""Execution-time breakdown: transformation vs multiplication (Figure 10).

The paper groups the three transforms (input/output; filter is offline)
into a memory-bound "Transformation" share and the batched GEMM into a
compute-bound "Multiplication" share, normalized to oneDNN's total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads import LayerConfig
from .machine import CASCADE_LAKE_8C, MachineModel
from .plans import ImplPlan, plan_lowino, plan_onednn_wino

__all__ = ["StageBreakdown", "breakdown", "figure10_breakdowns"]


@dataclass(frozen=True)
class StageBreakdown:
    """Transformation/multiplication split of one implementation."""

    impl: str
    layer: str
    transformation: float
    multiplication: float

    @property
    def total(self) -> float:
        return self.transformation + self.multiplication


def breakdown(plan: ImplPlan, machine: MachineModel = CASCADE_LAKE_8C,
              cores: int | None = None) -> StageBreakdown:
    times = plan.stage_times(machine, cores)
    mult = times.get("gemm", 0.0)
    tf = sum(v for k, v in times.items() if k != "gemm")
    return StageBreakdown(impl=plan.impl, layer=plan.layer,
                          transformation=tf, multiplication=mult)


def figure10_breakdowns(
    layer: LayerConfig, m: int = 2, machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> Dict[str, StageBreakdown]:
    """oneDNN F(2,3) vs LoWino F(2,3) breakdown for one layer."""
    return {
        "onednn_wino": breakdown(plan_onednn_wino(layer, m, machine, cores), machine, cores),
        "lowino": breakdown(plan_lowino(layer, m, machine, cores), machine, cores),
    }
