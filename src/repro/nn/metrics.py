"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["top1_accuracy", "evaluate_model"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    if logits.shape[0] != labels.shape[0]:
        raise ValueError(f"{logits.shape[0]} logits vs {labels.shape[0]} labels")
    if logits.shape[0] == 0:
        return 0.0
    return float(np.mean(np.argmax(logits, axis=1) == labels))


def evaluate_model(
    model,
    images: np.ndarray,
    labels: np.ndarray,
    batch: int = 64,
    logit_center: np.ndarray | None = None,
) -> float:
    """Batched top-1 accuracy of ``model`` on an image set.

    ``logit_center`` (from the synthetic dataset) is subtracted from the
    logits before the argmax; see
    :class:`repro.nn.data.SyntheticImageDataset`.
    """
    correct = 0
    n = images.shape[0]
    for lo in range(0, n, batch):
        hi = min(n, lo + batch)
        logits = model(images[lo:hi])
        if logit_center is not None:
            logits = logits - logit_center
        correct += int(np.sum(np.argmax(logits, axis=1) == labels[lo:hi]))
    return correct / n if n else 0.0
