"""Synthetic evaluation dataset (the ImageNet stand-in).

Construction (documented in DESIGN.md):

1. draw clean inputs with natural-image-like channel statistics
   (spatially smoothed Gaussian fields -- convolutions behave very
   differently on white noise than on correlated signals);
2. label each clean input with the FP32 model's own prediction
   (teacher labeling) -- by construction the FP32 model is "right"
   on clean data;
3. evaluate every model (FP32 and quantized) on *noisy* copies.

FP32 accuracy is then < 100% (the noise flips low-margin decisions) and
quantized accuracy measures how much additional decision flipping the
quantized pipeline causes -- the exact quantity Table 3 compares.  A
broken pipeline (down-scaling F(4,3)) produces near-uniform predictions
and lands at chance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from scipy.ndimage import uniform_filter

__all__ = ["SyntheticImageDataset", "make_eval_set"]


def _smooth_images(rng: np.random.Generator, n: int, channels: int, hw: int,
                   smoothing: int = 3) -> np.ndarray:
    """Spatially correlated random images, unit-ish scale."""
    x = rng.standard_normal((n, channels, hw, hw))
    x = uniform_filter(x, size=(1, 1, smoothing, smoothing), mode="wrap")
    # Re-normalize after smoothing so activations have ~unit variance.
    x /= x.std(axis=(1, 2, 3), keepdims=True) + 1e-12
    return x


@dataclass
class SyntheticImageDataset:
    """Clean images + teacher labels + a noise process for evaluation.

    ``logit_center`` is the mean clean logit vector: a randomly
    initialized network's logits are dominated by a constant input-
    independent direction, so labels and evaluation both use *centered*
    logits (``argmax(logits - center)``), which balances the classes and
    produces realistic decision margins.
    """

    clean: np.ndarray  # (N, C, H, W)
    labels: np.ndarray  # (N,)
    logit_center: np.ndarray  # (classes,)
    noise_sigma: float
    seed: int

    @property
    def classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def noisy(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        return self.clean + rng.standard_normal(self.clean.shape) * self.noise_sigma

    def calibration_batches(self, count: int, batch: int):
        """First ``count * batch`` *noisy* images in batches (calibration
        must see the deployment distribution)."""
        noisy = self.noisy()
        for i in range(count):
            lo, hi = i * batch, (i + 1) * batch
            if lo >= noisy.shape[0]:
                return
            yield noisy[lo:hi]


def make_eval_set(
    model,
    n: int = 512,
    channels: int = 3,
    hw: int = 32,
    noise_sigma: float = 0.25,
    margin_quantile: float = 0.5,
    seed: int = 123,
    batch: int = 64,
) -> SyntheticImageDataset:
    """Build a dataset labeled by ``model``'s FP32 predictions.

    ``margin_quantile`` drops the lowest-margin fraction of candidates
    (teacher margin = top1 - top2 centered logit).  Trained classifiers
    predict most samples confidently; an argmax-labeled random teacher
    does not, so without this filter the task consists almost entirely
    of knife-edge decisions that *any* perturbation flips, which would
    measure noise, not quantization quality.
    """
    if not 0.0 <= margin_quantile < 1.0:
        raise ValueError(f"margin_quantile must be in [0, 1), got {margin_quantile}")
    rng = np.random.default_rng(seed)
    n_cand = int(np.ceil(n / (1.0 - margin_quantile)))
    clean = _smooth_images(rng, n_cand, channels, hw)
    all_logits = []
    for lo in range(0, n_cand, batch):
        all_logits.append(model(clean[lo : min(n_cand, lo + batch)]))
    raw = np.concatenate(all_logits, axis=0)
    center = raw.mean(axis=0)
    centered = raw - center
    part = np.partition(centered, -2, axis=1)
    margin = part[:, -1] - part[:, -2]
    keep = np.argsort(margin)[::-1][:n]
    keep.sort()
    clean = clean[keep]
    labels = np.argmax(centered[keep], axis=1).astype(np.int64)
    return SyntheticImageDataset(clean=clean, labels=labels, logit_center=center,
                                 noise_sigma=noise_sigma, seed=seed)
