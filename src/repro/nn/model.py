"""Model composition: sequential chains and residual blocks.

Models are shallow trees of layers.  Two traversal services support
post-training quantization: :func:`named_convs` enumerates every
convolution with a stable path name, and ``Sequential.forward_capture``
records each convolution's *input* tensor (what a calibration pass
needs).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .layers import Conv2d, Layer, ReLU

__all__ = ["Sequential", "Residual", "named_convs"]


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers: List[Layer], name: str = "seq") -> None:
        self.layers = list(layers)
        self.name = name

    def children(self) -> Iterator[Layer]:
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def forward_capture(
        self, x: np.ndarray, captures: Dict[int, List[np.ndarray]]
    ) -> np.ndarray:
        """Forward pass that appends every Conv2d's input to ``captures``
        (keyed by ``id(conv)``)."""
        for layer in self.layers:
            if isinstance(layer, Conv2d):
                captures.setdefault(id(layer), []).append(x)
                x = layer(x)
            elif isinstance(layer, (Sequential, Residual)):
                x = layer.forward_capture(x, captures)
            else:
                x = layer(x)
        return x


class Residual(Layer):
    """``relu(body(x) + shortcut(x))`` -- the ResNet basic-block skeleton.

    ``shortcut`` defaults to identity; pass a layer (e.g. a 1x1-style
    projection) when shapes change.
    """

    def __init__(self, body: Sequential, shortcut: Optional[Layer] = None,
                 name: str = "res") -> None:
        self.body = body
        self.shortcut = shortcut
        self.relu = ReLU()
        self.name = name

    def children(self) -> Iterator[Layer]:
        yield self.body
        if self.shortcut is not None:
            yield self.shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        skip = x if self.shortcut is None else self.shortcut(x)
        return self.relu(self.body(x) + skip)

    def forward_capture(
        self, x: np.ndarray, captures: Dict[int, List[np.ndarray]]
    ) -> np.ndarray:
        if isinstance(self.shortcut, Conv2d):
            captures.setdefault(id(self.shortcut), []).append(x)
        skip = x if self.shortcut is None else self.shortcut(x)
        out = self.body.forward_capture(x, captures)
        return self.relu(out + skip)


def named_convs(layer: Layer, prefix: str = "") -> Iterator[Tuple[str, Conv2d]]:
    """Depth-first enumeration of every Conv2d under ``layer``."""
    if isinstance(layer, Conv2d):
        yield prefix or layer.name, layer
        return
    for i, child in enumerate(layer.children()):
        child_name = getattr(child, "name", type(child).__name__.lower())
        yield from named_convs(child, f"{prefix}/{child_name}{i}" if prefix else f"{child_name}{i}")
