"""Model composition: sequential chains and residual blocks.

Models are shallow trees of layers.  Two traversal services support
post-training quantization: :func:`named_convs` enumerates every
convolution with a stable path name, and ``Sequential.forward_capture``
records each convolution's *input* tensor (what a calibration pass
needs).

``forward_capture`` accepts two kinds of capture target:

* a plain dict -- every conv input array is appended under ``id(conv)``
  (the legacy protocol; memory grows with the calibration set, and the
  ``id()`` key is only meaningful while the caller holds the model);
* any object with a ``record(conv, x)`` method (a *sink*, e.g.
  :class:`repro.nn.quantize.ObserverSink`) -- the input is handed over
  for streaming consumption and never stored, and the conv is passed by
  reference, so there is no ``id()``-reuse hazard.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .layers import Conv2d, Layer, ReLU

__all__ = ["Sequential", "Residual", "named_convs", "CaptureTarget"]

#: What ``forward_capture`` accepts: a legacy append-dict or a sink
#: object exposing ``record(conv, x)``.
CaptureTarget = Union[Dict[int, List[np.ndarray]], "SupportsRecord"]


class SupportsRecord:
    """Protocol stand-in: any object with ``record(conv, x)``."""

    def record(self, conv: Conv2d, x: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError


def _record(captures: CaptureTarget, conv: Conv2d, x: np.ndarray) -> None:
    record = getattr(captures, "record", None)
    if record is not None:
        record(conv, x)
    else:
        captures.setdefault(id(conv), []).append(x)


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers: List[Layer], name: str = "seq") -> None:
        self.layers = list(layers)
        self.name = name

    def children(self) -> Iterator[Layer]:
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def forward_capture(self, x: np.ndarray, captures: CaptureTarget) -> np.ndarray:
        """Forward pass that hands every Conv2d's input to ``captures``
        (a dict keyed by ``id(conv)`` or a sink with ``record``)."""
        for layer in self.layers:
            if isinstance(layer, Conv2d):
                _record(captures, layer, x)
                x = layer(x)
            elif hasattr(layer, "forward_capture"):
                x = layer.forward_capture(x, captures)
            else:
                x = layer(x)
        return x


class Residual(Layer):
    """``relu(body(x) + shortcut(x))`` -- the ResNet basic-block skeleton.

    ``shortcut`` defaults to identity; pass a layer (e.g. a 1x1-style
    projection) when shapes change.
    """

    def __init__(self, body: Sequential, shortcut: Optional[Layer] = None,
                 name: str = "res") -> None:
        self.body = body
        self.shortcut = shortcut
        self.relu = ReLU()
        self.name = name

    def children(self) -> Iterator[Layer]:
        yield self.body
        if self.shortcut is not None:
            yield self.shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        skip = x if self.shortcut is None else self.shortcut(x)
        return self.relu(self.body(x) + skip)

    def forward_capture(self, x: np.ndarray, captures: CaptureTarget) -> np.ndarray:
        if self.shortcut is None:
            skip = x
        elif isinstance(self.shortcut, Conv2d):
            _record(captures, self.shortcut, x)
            skip = self.shortcut(x)
        elif hasattr(self.shortcut, "forward_capture"):
            # Composite shortcuts (e.g. a Sequential projection) carry
            # convs of their own; the trace must reach them too.
            skip = self.shortcut.forward_capture(x, captures)
        else:
            skip = self.shortcut(x)
        out = self.body.forward_capture(x, captures)
        return self.relu(out + skip)


def named_convs(layer: Layer, prefix: str = "") -> Iterator[Tuple[str, Conv2d]]:
    """Depth-first enumeration of every Conv2d under ``layer``."""
    if isinstance(layer, Conv2d):
        yield prefix or layer.name, layer
        return
    for i, child in enumerate(layer.children()):
        child_name = getattr(child, "name", type(child).__name__.lower())
        yield from named_convs(child, f"{prefix}/{child_name}{i}" if prefix else f"{child_name}{i}")
