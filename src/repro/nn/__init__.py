"""NN substrate: layers, models, synthetic data, PTQ driver, metrics."""

from .bias_correction import bias_correct_model, channel_error_means
from .data import SyntheticImageDataset, make_eval_set
from .layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    fold_batchnorm,
)
from .graph import Graph, Node, trace
from .metrics import evaluate_model, top1_accuracy
from .model import Residual, Sequential, named_convs
from .models import build_alexnet_small, build_resnet_small, build_vgg_small
from .quantize import (
    ObserverSink,
    capture_calibration_inputs,
    dequantize_model,
    quantize_model,
)
from .serialize import load_quantized_model, save_quantized_model
from .unet import UNetSmall, Upsample2d, build_unet_small

__all__ = [
    "bias_correct_model",
    "channel_error_means",
    "SyntheticImageDataset",
    "make_eval_set",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "fold_batchnorm",
    "evaluate_model",
    "top1_accuracy",
    "Residual",
    "Sequential",
    "named_convs",
    "build_alexnet_small",
    "build_resnet_small",
    "build_vgg_small",
    "Graph",
    "Node",
    "trace",
    "ObserverSink",
    "capture_calibration_inputs",
    "dequantize_model",
    "quantize_model",
    "load_quantized_model",
    "save_quantized_model",
    "UNetSmall",
    "Upsample2d",
    "build_unet_small",
]
