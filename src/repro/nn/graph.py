"""Graph IR traced from the layer-object models.

The ``nn`` model stack executes eagerly: ``Sequential.forward`` walks a
Python list and each layer allocates its output.  Whole-model execution
on the vectorized runtime needs a *program* instead -- a flat,
topologically ordered list of nodes with explicit data dependencies --
so the compiler (:mod:`repro.runtime.compiler`) can map every
convolution onto a cached :class:`~repro.runtime.plan.ConvPlan`, fuse
bias-add and ReLU epilogues, and free intermediates as soon as their
last consumer has run.

:func:`trace` builds that program structurally from the known container
types (``Sequential``, ``Residual``, ``UNetSmall``) and the layer
library, propagating NCHW shapes as it goes (a trace is also a full
shape check of the model).  Unknown layer types degrade gracefully to an
``opaque`` node that calls the layer object directly -- such models
still compile, they just get no conv-level optimization for the opaque
part.

Node identity is positional (topological id); convolution nodes carry
the same stable path names :func:`repro.nn.model.named_convs` produces,
so per-layer artifacts keyed by name (planner choices, serialized
calibration state, timing tables) line up across the eager and compiled
worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..conv.im2col import conv_output_shape
from .layers import Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, ReLU
from .model import Residual, Sequential, named_convs
from .unet import UNetSmall, Upsample2d

__all__ = ["Node", "Graph", "trace"]


@dataclass
class Node:
    """One operation in the traced program.

    ``op`` is one of: ``input``, ``conv``, ``relu``, ``maxpool``,
    ``global_avg_pool``, ``flatten``, ``linear``, ``upsample``, ``add``,
    ``concat``, ``opaque``.  ``inputs`` are ids of producer nodes (data
    dependencies); ``layer`` is the originating layer object where one
    exists.
    """

    id: int
    op: str
    inputs: Tuple[int, ...]
    path: str
    layer: Optional[Layer] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    out_shape: Tuple[int, ...] = ()


@dataclass
class Graph:
    """A topologically ordered single-output dataflow program."""

    input_shape: Tuple[int, ...]
    nodes: List[Node] = field(default_factory=list)
    output_id: int = 0

    def add(
        self,
        op: str,
        inputs: Tuple[int, ...],
        path: str,
        layer: Optional[Layer] = None,
        attrs: Optional[Dict[str, object]] = None,
        out_shape: Tuple[int, ...] = (),
    ) -> Node:
        node = Node(
            id=len(self.nodes),
            op=op,
            inputs=inputs,
            path=path,
            layer=layer,
            attrs=attrs or {},
            out_shape=tuple(int(s) for s in out_shape),
        )
        self.nodes.append(node)
        return node

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def in_shape(self, node: Node) -> Tuple[int, ...]:
        """Output shape of a node's first producer."""
        return self.nodes[node.inputs[0]].out_shape

    def consumers(self) -> Dict[int, List[int]]:
        """Map of node id -> ids of the nodes consuming its output."""
        out: Dict[int, List[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for src in node.inputs:
                out[src].append(node.id)
        return out

    def conv_nodes(self) -> Iterator[Node]:
        return (n for n in self.nodes if n.op == "conv")

    def __len__(self) -> int:
        return len(self.nodes)

    def summary(self) -> str:
        lines = [f"graph: input {self.input_shape}, {len(self.nodes)} nodes"]
        for n in self.nodes:
            deps = ",".join(str(i) for i in n.inputs)
            lines.append(
                f"  #{n.id:<3d} {n.op:16s} ({deps:>7s}) -> {str(n.out_shape):20s} {n.path}"
            )
        return "\n".join(lines)


def trace(model: Layer, input_shape: Tuple[int, ...]) -> Graph:
    """Trace ``model`` into a :class:`Graph` for an NCHW ``input_shape``.

    The batch extent of ``input_shape`` is metadata only -- a compiled
    program runs any batch size -- but channel/spatial extents are
    checked against every layer during the trace.
    """
    input_shape = tuple(int(s) for s in input_shape)
    g = Graph(input_shape=input_shape)
    root = g.add("input", (), "input", out_shape=input_shape)
    conv_names = {id(conv): name for name, conv in named_convs(model)}
    g.output_id = _trace_layer(model, g, root.id, "", conv_names)
    return g


def _child_path(prefix: str, child: Layer, i: int) -> str:
    name = getattr(child, "name", type(child).__name__.lower())
    tag = f"{name}{i}"
    return f"{prefix}/{tag}" if prefix else tag


def _chain(
    layers: List[Layer], g: Graph, in_id: int, prefix: str, conv_names: Dict[int, str]
) -> int:
    cur = in_id
    for i, child in enumerate(layers):
        cur = _trace_layer(child, g, cur, _child_path(prefix, child, i), conv_names)
    return cur


def _trace_layer(
    layer: Layer, g: Graph, in_id: int, path: str, conv_names: Dict[int, str]
) -> int:
    in_shape = g.node(in_id).out_shape

    if isinstance(layer, Conv2d):
        b, c, h, w = in_shape
        k, c2, r, _ = layer.filters.shape
        if c != c2:
            raise ValueError(
                f"conv {path or layer.name}: input has {c} channels, filters expect {c2}"
            )
        oh, ow = conv_output_shape(h, w, r, stride=layer.stride, padding=layer.padding)
        node = g.add(
            "conv",
            (in_id,),
            conv_names.get(id(layer), path or layer.name),
            layer=layer,
            attrs={"stride": layer.stride, "padding": layer.padding},
            out_shape=(b, k, oh, ow),
        )
        return node.id

    if isinstance(layer, Sequential):
        return _chain(layer.layers, g, in_id, path, conv_names)

    if isinstance(layer, Residual):
        base = path or getattr(layer, "name", "res")
        if layer.shortcut is None:
            skip = in_id
        else:
            skip = _trace_layer(
                layer.shortcut, g, in_id, _child_path(path, layer.shortcut, 1), conv_names
            )
        body = _trace_layer(
            layer.body, g, in_id, _child_path(path, layer.body, 0), conv_names
        )
        body_shape = g.node(body).out_shape
        skip_shape = g.node(skip).out_shape
        if body_shape != skip_shape:
            raise ValueError(
                f"residual {base}: body {body_shape} vs shortcut {skip_shape}"
            )
        add = g.add("add", (body, skip), f"{base}/add", out_shape=body_shape)
        relu = g.add("relu", (add.id,), f"{base}/relu", layer=layer.relu,
                     out_shape=body_shape)
        return relu.id

    if isinstance(layer, UNetSmall):
        base = path or getattr(layer, "name", "unet")
        skip = _chain(layer.enc1, g, in_id, f"{base}/enc1", conv_names)
        t = _trace_layer(layer.pool, g, skip, f"{base}/pool", conv_names)
        t = _chain(layer.bottleneck, g, t, f"{base}/bot", conv_names)
        t = _trace_layer(layer.up, g, t, f"{base}/up", conv_names)
        bt, ct, ht, wt = g.node(t).out_shape
        bs, cs, hs, ws = g.node(skip).out_shape
        h, w = min(ht, hs), min(wt, ws)
        cat = g.add(
            "concat",
            (t, skip),
            f"{base}/concat",
            attrs={"crop_h": h, "crop_w": w},
            out_shape=(bt, ct + cs, h, w),
        )
        t = _chain(layer.dec1, g, cat.id, f"{base}/dec1", conv_names)
        return _trace_layer(layer.head, g, t, f"{base}/head", conv_names)

    if isinstance(layer, ReLU):
        return g.add("relu", (in_id,), path, layer=layer, out_shape=in_shape).id

    if isinstance(layer, MaxPool2d):
        b, c, h, w = in_shape
        s = layer.size
        out = (b, c, (h - h % s) // s, (w - w % s) // s)
        node = g.add("maxpool", (in_id,), path, layer=layer,
                     attrs={"size": s}, out_shape=out)
        return node.id

    if isinstance(layer, GlobalAvgPool):
        b, c = in_shape[:2]
        return g.add("global_avg_pool", (in_id,), path, layer=layer,
                     out_shape=(b, c, 1, 1)).id

    if isinstance(layer, Flatten):
        b = in_shape[0]
        flat = int(np.prod(in_shape[1:])) if len(in_shape) > 1 else 1
        return g.add("flatten", (in_id,), path, layer=layer, out_shape=(b, flat)).id

    if isinstance(layer, Linear):
        b, d = in_shape
        out_dim, in_dim = layer.weight.shape
        if d != in_dim:
            raise ValueError(f"linear {path}: input width {d} != weight in-dim {in_dim}")
        return g.add("linear", (in_id,), path, layer=layer, out_shape=(b, out_dim)).id

    if isinstance(layer, Upsample2d):
        b, c, h, w = in_shape
        f = layer.factor
        return g.add("upsample", (in_id,), path, layer=layer,
                     attrs={"factor": f}, out_shape=(b, c, h * f, w * f)).id

    # Unknown layer type: keep it executable as an opaque call.  The
    # output shape comes from one zero-input evaluation (the only way to
    # learn the contract of arbitrary code).
    out_shape = np.asarray(layer(np.zeros(in_shape))).shape
    return g.add("opaque", (in_id,), path, layer=layer, out_shape=out_shape).id
