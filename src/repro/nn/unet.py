"""U-Net-style encoder/decoder network (the segmentation workload).

The paper's Table 2 draws layers from U-Net and FusionNet; this module
provides a runnable miniature of that model family -- encoder 3x3 conv
stacks with pooling, a bottleneck, nearest-neighbour upsampling, skip
concatenations, and a per-pixel classification head -- so the
quantization pipeline can be evaluated on a dense-prediction task, not
only on classification.

All convolutions are 3x3 / stride 1 / pad 1 (Winograd-eligible), so
:func:`repro.nn.quantize_model` applies unchanged.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .layers import Conv2d, Layer, MaxPool2d, ReLU
from .model import CaptureTarget, _record

__all__ = ["Upsample2d", "UNetSmall", "build_unet_small"]


class Upsample2d(Layer):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    def __init__(self, factor: int = 2) -> None:
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = factor

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.repeat(self.factor, axis=2).repeat(self.factor, axis=3)


class UNetSmall(Layer):
    """Two-level U-Net: enc1 -> pool -> bottleneck -> up -> cat -> dec1.

    ``forward`` returns per-pixel class logits ``(B, classes, H, W)``.
    """

    def __init__(self, enc1: List[Layer], bottleneck: List[Layer],
                 dec1: List[Layer], head: Conv2d, name: str = "unet") -> None:
        self.enc1 = enc1
        self.pool = MaxPool2d(2)
        self.bottleneck = bottleneck
        self.up = Upsample2d(2)
        self.dec1 = dec1
        self.head = head
        self.name = name

    def children(self) -> Iterator[Layer]:
        yield from self.enc1
        yield from self.bottleneck
        yield from self.dec1
        yield self.head

    def _run(self, x: np.ndarray, captures: CaptureTarget | None) -> np.ndarray:
        def conv_step(layer: Layer, t: np.ndarray) -> np.ndarray:
            if captures is not None and isinstance(layer, Conv2d):
                _record(captures, layer, t)
            return layer(t)

        skip = x
        for layer in self.enc1:
            skip = conv_step(layer, skip)
        t = self.pool(skip)
        for layer in self.bottleneck:
            t = conv_step(layer, t)
        t = self.up(t)
        # Skip concatenation along channels (crop if odd sizes).
        h = min(t.shape[2], skip.shape[2])
        w = min(t.shape[3], skip.shape[3])
        t = np.concatenate([t[:, :, :h, :w], skip[:, :, :h, :w]], axis=1)
        for layer in self.dec1:
            t = conv_step(layer, t)
        return conv_step(self.head, t)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run(x, None)

    def forward_capture(self, x, captures):
        return self._run(x, captures)


def build_unet_small(classes: int = 4, width: int = 16, seed: int = 17) -> UNetSmall:
    """Synthetic-weight miniature U-Net; input ``(B, 3, H, W)`` with
    even ``H, W`` (e.g. 32x32)."""
    rng = np.random.default_rng(seed)

    def conv(c_in: int, c_out: int, name: str, relu: bool = True) -> List[Layer]:
        std = np.sqrt(2.0 / (c_in * 9))
        w = rng.standard_normal((c_out, c_in, 3, 3)) * std
        w *= rng.uniform(0.6, 1.6, size=c_out)[:, None, None, None]
        b = rng.standard_normal(c_out) * 0.05
        layers: List[Layer] = [Conv2d(w, b, padding=1, name=name)]
        if relu:
            layers.append(ReLU())
        return layers

    enc1 = conv(3, width, "enc1_a") + conv(width, width, "enc1_b")
    bottleneck = conv(width, 2 * width, "bot_a") + conv(2 * width, 2 * width, "bot_b")
    dec1 = conv(3 * width, width, "dec1_a") + conv(width, width, "dec1_b")
    head_w = rng.standard_normal((classes, width, 3, 3)) * np.sqrt(2.0 / (width * 9))
    head = Conv2d(head_w, padding=1, name="head")
    return UNetSmall(enc1, bottleneck, dec1, head)
