"""Post-training bias correction.

Quantization noise is not exactly zero-mean at a layer's output: the
clipping and rounding of the Winograd-domain operands leave a small
per-channel systematic offset, which deeper layers then amplify.  Bias
correction (Banner et al. / Nagel et al.-style, standard PTQ practice
from the literature the paper cites) measures that offset on the
calibration set and folds its negation into the convolution bias:

    bias_k += mean over calibration data of (y_fp32 - y_quant)[k]

It is training-free, costs one extra calibration pass, and measurably
recovers accuracy for the numerically hard F(4,3) configuration --
quantified in ``benchmarks/bench_bias_correction.py``.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Conv2d
from .model import Sequential, named_convs

__all__ = ["bias_correct_model", "channel_error_means"]


def channel_error_means(
    conv: Conv2d, inputs: List[np.ndarray]
) -> np.ndarray:
    """Per-output-channel mean of (FP32 output - quantized output).

    ``inputs`` are this layer's calibration input batches.  The layer
    must already carry a quantized engine.
    """
    if conv.engine is None:
        raise ValueError("layer is not quantized; nothing to correct")
    from ..conv import direct_conv2d_fp32

    k = conv.filters.shape[0]
    total = np.zeros(k)
    count = 0
    for x in inputs:
        ref = direct_conv2d_fp32(x, conv.filters,
                                 stride=conv.stride, padding=conv.padding)
        got = conv.engine(x)
        err = ref - got  # bias terms cancel; engines exclude bias anyway
        total += err.mean(axis=(0, 2, 3)) * (err.shape[0] * err.shape[2] * err.shape[3])
        count += err.shape[0] * err.shape[2] * err.shape[3]
    return total / max(count, 1)


def bias_correct_model(
    model: Sequential, calibration_batches: Iterable[np.ndarray]
) -> Sequential:
    """Apply bias correction to every quantized convolution in place.

    The calibration data is propagated through the *quantized* network
    (sequential correction: earlier layers are corrected before later
    layers' inputs are captured, so each correction accounts for the
    upstream fixes -- the standard ordering).
    """
    batches = [np.asarray(b, dtype=np.float64) for b in calibration_batches]
    if not batches:
        raise ValueError("bias correction needs calibration batches")
    for name, conv in named_convs(model):
        if conv.engine is None:
            continue
        # Capture this conv's inputs under the *current* (partially
        # corrected, quantized) model.
        captures: dict = {}
        for batch in batches:
            model.forward_capture(batch, captures)
        inputs = captures.get(id(conv))
        if not inputs:
            continue
        conv.bias = conv.bias + channel_error_means(conv, inputs)
    return model
