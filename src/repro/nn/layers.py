"""Minimal inference-only layer library (NCHW, NumPy).

Only what the accuracy experiments need: convolution (with swappable
low-precision engines), ReLU, pooling, residual add, linear, and
batch-norm folding.  Layers are stateless in forward (pure functions of
the input), so a model can be evaluated repeatedly and calibrated by
capturing layer inputs.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from ..conv import direct_conv2d_fp32

__all__ = [
    "Layer",
    "Conv2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Linear",
    "fold_batchnorm",
]


class Layer:
    """Base layer: ``forward`` maps an input array to an output array."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def children(self) -> Iterator["Layer"]:
        return iter(())


class Conv2d(Layer):
    """3x3-style convolution with an optional swappable INT8 engine.

    In FP32 mode (default) it runs :func:`direct_conv2d_fp32`.  Post-
    training quantization replaces ``engine`` with one of the layer
    objects from :mod:`repro.conv` / :mod:`repro.core`; the bias add
    stays in FP32 either way (standard INT8 deployment practice).
    """

    def __init__(
        self,
        filters: np.ndarray,
        bias: Optional[np.ndarray] = None,
        padding: int = 1,
        stride: int = 1,
        name: str = "conv",
    ) -> None:
        self.filters = np.asarray(filters, dtype=np.float64)
        k = self.filters.shape[0]
        self.bias = np.zeros(k) if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias.shape != (k,):
            raise ValueError(f"bias shape {self.bias.shape} != ({k},)")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.padding = padding
        self.stride = stride
        self.name = name
        self.engine: Optional[Callable[[np.ndarray], np.ndarray]] = None

    @property
    def is_quantized(self) -> bool:
        return self.engine is not None

    @property
    def winograd_eligible(self) -> bool:
        """Unit-stride square filters only; strided layers fall back to
        direct convolution when the model is quantized."""
        return self.stride == 1

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.engine is not None:
            y = self.engine(x)
        else:
            y = direct_conv2d_fp32(x, self.filters, stride=self.stride,
                                   padding=self.padding)
        return y + self.bias[None, :, None, None]


class ReLU(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class MaxPool2d(Layer):
    """Non-overlapping max pooling with window = stride = ``size``."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            x = x[:, :, : h - h % s, : w - w % s]
            b, c, h, w = x.shape
        return x.reshape(b, c, h // s, s, w // s, s).max(axis=(3, 5))


class GlobalAvgPool(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3), keepdims=True)


class Flatten(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class Linear(Layer):
    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        self.weight = np.asarray(weight, dtype=np.float64)  # (out, in)
        out = self.weight.shape[0]
        self.bias = np.zeros(out) if bias is None else np.asarray(bias, dtype=np.float64)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.weight.shape[1]:
            raise ValueError(
                f"linear input width {x.shape[1]} != weight in-dim {self.weight.shape[1]}"
            )
        # Row-wise GEMV: each sample's logits depend only on that sample,
        # never on the batch composition.  A batched ``x @ W.T`` lets BLAS
        # pick a different (correct but not bit-equal) blocking per batch
        # size, which would break the serving layer's bit-identity
        # contract when the micro-batcher coalesces requests.  Heads are
        # small, so the per-row loop costs nothing measurable.
        out = np.empty((x.shape[0], self.weight.shape[0]), dtype=np.float64)
        for i in range(x.shape[0]):
            out[i] = self.weight @ x[i]
        out += self.bias
        return out


def fold_batchnorm(
    filters: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold an inference-time batch norm into the preceding convolution.

    ``y = gamma * (conv(x) + bias - mean) / sqrt(var + eps) + beta``
    becomes a convolution with scaled filters and adjusted bias -- the
    standard transformation quantized deployments apply before
    calibration.
    """
    scale = gamma / np.sqrt(var + eps)
    folded_filters = filters * scale[:, None, None, None]
    folded_bias = (bias - mean) * scale + beta
    return folded_filters, folded_bias
