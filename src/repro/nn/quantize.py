"""Post-training quantization of a whole model.

Walks the model, streams the calibration set through the FP32 network
once while per-layer observers watch every convolution's input
distribution (the standard PTQ procedure), then swaps each ``Conv2d``'s
engine for the selected INT8 implementation:

* ``'lowino'``       -- Winograd-domain KL calibration (Eq. 7) per layer;
* ``'int8_direct'``  -- spatial per-tensor activation threshold;
* ``'int8_upcast'``  -- ncnn-style (spatial quantization, INT16 multiply);
* ``'int8_downscale'`` -- oneDNN-style (spatial quantization + down-scale).

Calibration is *streaming*: each batch updates a
:class:`~repro.quant.observer.MinMaxObserver` (spatial thresholds) and,
for LoWino layers, the Winograd-domain histogram calibrator -- nothing
retains the activation tensors, so memory stays O(model), not
O(calibration set).  The resulting thresholds are bit-identical to the
legacy store-every-tensor procedure (max and histogram merges are exact
over any batch split).

The original FP32 filters stay on the layer, so :func:`dequantize_model`
restores full precision.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..conv import DownscaleWinogradConv2d, Int8DirectConv2d, UpcastWinogradConv2d
from ..core import LoWinoConv2d
from ..quant import MinMaxObserver
from .layers import Conv2d
from .model import Sequential, named_convs

__all__ = [
    "ObserverSink",
    "capture_calibration_inputs",
    "quantize_model",
    "dequantize_model",
]


class ObserverSink:
    """``forward_capture`` sink that streams conv inputs into observers.

    Each recorded ``(conv, x)`` pair updates that conv's observer
    (default :class:`~repro.quant.observer.MinMaxObserver`) plus any
    registered per-conv hooks; the tensor itself is never retained.
    This replaces the legacy capture dict for calibration -- O(1) memory
    in the number of batches -- and, because entries hold the conv
    object itself, it is immune to the ``id()``-reuse hazard the dict
    protocol has when a model is rebuilt between capture and quantize.
    """

    def __init__(self, observer_factory: Callable[[], Any] = MinMaxObserver) -> None:
        self._factory = observer_factory
        #: id(conv) -> (conv, observer); the conv reference keeps the id
        #: stable for the sink's lifetime.
        self._entries: Dict[int, Tuple[Conv2d, Any]] = {}
        self._hooks: Dict[int, List[Callable[[np.ndarray], None]]] = {}

    def record(self, conv: Conv2d, x: np.ndarray) -> None:
        entry = self._entries.get(id(conv))
        if entry is None:
            entry = (conv, self._factory())
            self._entries[id(conv)] = entry
        entry[1].observe(x)
        for hook in self._hooks.get(id(conv), ()):
            hook(x)

    def add_hook(self, conv: Conv2d, hook: Callable[[np.ndarray], None]) -> None:
        """Also call ``hook(x)`` for every recorded input of ``conv``."""
        self._hooks.setdefault(id(conv), []).append(hook)

    def observer(self, conv: Conv2d) -> Optional[Any]:
        entry = self._entries.get(id(conv))
        return entry[1] if entry is not None else None

    def threshold(self, conv: Conv2d) -> Optional[float]:
        """``max |x|`` over everything ``conv`` saw, or ``None`` if the
        trace never reached it."""
        obs = self.observer(conv)
        if obs is None or obs.count == 0:
            return None
        return obs.threshold()

    def convs_seen(self) -> List[Conv2d]:
        return [conv for conv, _ in self._entries.values()]


def capture_calibration_inputs(
    model: Sequential, batches: Iterable[np.ndarray]
) -> Dict[int, List[np.ndarray]]:
    """Run FP32 forward passes recording each conv's input batches.

    Legacy protocol: retains every input tensor (O(calibration set)
    memory).  Prefer streaming through an :class:`ObserverSink` -- this
    remains for tooling that needs the raw activations.
    """
    captures: Dict[int, List[np.ndarray]] = {}
    for batch in batches:
        model.forward_capture(np.asarray(batch, dtype=np.float64), captures)
    return captures


def quantize_model(
    model: Sequential,
    algorithm: str,
    m: int = 2,
    calibration_batches: Iterable[np.ndarray] = (),
    calibration_method: str = "kl",
) -> Sequential:
    """Quantize every convolution of ``model`` in place; returns model.

    ``algorithm='auto'`` runs the cost-model planner
    (:func:`repro.tuning.model_planner.plan_model`) and picks, per layer,
    between INT8 direct convolution and LoWino at the predicted-best
    tile size -- the paper's future-work algorithm selector applied to a
    whole network.  Requires at least one calibration batch (it defines
    the input shape used for planning).

    ``calibration_batches`` may be any iterable, including a generator:
    batches are consumed once, streamed through the FP32 model, and
    never stored.
    """
    batches = iter(calibration_batches)
    first = next(batches, None)

    plan = None
    if algorithm == "auto":
        if first is None:
            raise ValueError("algorithm='auto' needs calibration batches "
                             "(the planner traces the input shape)")
        from ..tuning.model_planner import plan_model

        plan = plan_model(model, np.asarray(first).shape)

    # Build every engine first (offline filter preparation only), but do
    # not attach yet: the calibration pass must see the FP32 network.
    engines: Dict[int, Any] = {}
    sink = ObserverSink()
    calibrators: List[Tuple[LoWinoConv2d, Any]] = []
    for name, conv in named_convs(model):
        layer_algorithm = algorithm
        if plan is not None:
            choice = plan.choices[name]
            layer_algorithm = choice.algorithm
            m = choice.m or m
        if not conv.winograd_eligible and layer_algorithm != "int8_direct":
            # Strided layers cannot run the Winograd engines; fall back
            # to INT8 direct convolution (standard deployment behaviour).
            layer_algorithm = "int8_direct"
        if layer_algorithm == "lowino":
            engine = LoWinoConv2d(
                conv.filters, m=m, padding=conv.padding,
                calibration_method=calibration_method,
            )
            if first is not None:
                calib = engine.make_calibrator()
                calibrators.append((engine, calib))
                sink.add_hook(
                    conv,
                    lambda x, e=engine, c=calib: e.collect_calibration(c, x),
                )
        elif layer_algorithm == "int8_direct":
            engine = Int8DirectConv2d(conv.filters, stride=conv.stride,
                                      padding=conv.padding)
        elif layer_algorithm == "int8_upcast":
            engine = UpcastWinogradConv2d(conv.filters, m=m, padding=conv.padding)
        elif layer_algorithm == "int8_downscale":
            engine = DownscaleWinogradConv2d(conv.filters, m=m, padding=conv.padding)
        else:
            raise ValueError(f"unknown quantization algorithm {layer_algorithm!r}")
        engines[id(conv)] = engine

    # One streaming FP32 pass over the calibration set: min/max observers
    # for the spatial engines, Winograd-domain histograms for LoWino.
    if first is not None:
        for batch in itertools.chain([first], batches):
            model.forward_capture(np.asarray(batch, dtype=np.float64), sink)

    for engine, calib in calibrators:
        engine.apply_calibration(calib)
    for _, conv in named_convs(model):
        engine = engines[id(conv)]
        if hasattr(engine, "input_threshold"):
            engine.input_threshold = sink.threshold(conv)
        conv.engine = engine
    return model


def dequantize_model(model: Sequential) -> Sequential:
    """Restore FP32 execution on every convolution."""
    for _, conv in named_convs(model):
        conv.engine = None
    return model
