"""Post-training quantization of a whole model.

Walks the model, captures every convolution's input distribution on the
calibration set (propagated through the FP32 network, the standard PTQ
procedure), then swaps each ``Conv2d``'s engine for the selected INT8
implementation:

* ``'lowino'``       -- Winograd-domain KL calibration (Eq. 7) per layer;
* ``'int8_direct'``  -- spatial per-tensor activation threshold;
* ``'int8_upcast'``  -- ncnn-style (spatial quantization, INT16 multiply);
* ``'int8_downscale'`` -- oneDNN-style (spatial quantization + down-scale).

The original FP32 filters stay on the layer, so :func:`dequantize_model`
restores full precision.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..conv import DownscaleWinogradConv2d, Int8DirectConv2d, UpcastWinogradConv2d
from ..core import LoWinoConv2d
from .layers import Conv2d
from .model import Sequential, named_convs

__all__ = ["capture_calibration_inputs", "quantize_model", "dequantize_model"]


def capture_calibration_inputs(
    model: Sequential, batches: Iterable[np.ndarray]
) -> Dict[int, List[np.ndarray]]:
    """Run FP32 forward passes recording each conv's input batches."""
    captures: Dict[int, List[np.ndarray]] = {}
    for batch in batches:
        model.forward_capture(np.asarray(batch, dtype=np.float64), captures)
    return captures


def quantize_model(
    model: Sequential,
    algorithm: str,
    m: int = 2,
    calibration_batches: Iterable[np.ndarray] = (),
    calibration_method: str = "kl",
) -> Sequential:
    """Quantize every convolution of ``model`` in place; returns model.

    ``algorithm='auto'`` runs the cost-model planner
    (:func:`repro.tuning.model_planner.plan_model`) and picks, per layer,
    between INT8 direct convolution and LoWino at the predicted-best
    tile size -- the paper's future-work algorithm selector applied to a
    whole network.  Requires at least one calibration batch (it defines
    the input shape used for planning).
    """
    batches = list(calibration_batches)
    captures = capture_calibration_inputs(model, batches) if batches else {}

    plan = None
    if algorithm == "auto":
        if not batches:
            raise ValueError("algorithm='auto' needs calibration batches "
                             "(the planner traces the input shape)")
        from ..tuning.model_planner import plan_model

        plan = plan_model(model, batches[0].shape)

    for name, conv in named_convs(model):
        layer_algorithm = algorithm
        if plan is not None:
            choice = plan.choices[name]
            layer_algorithm = choice.algorithm
            m = choice.m or m
        inputs = captures.get(id(conv), [])
        threshold = None
        if inputs:
            threshold = max(float(np.max(np.abs(x))) for x in inputs)
        if not conv.winograd_eligible and layer_algorithm != "int8_direct":
            # Strided layers cannot run the Winograd engines; fall back
            # to INT8 direct convolution (standard deployment behaviour).
            conv.engine = Int8DirectConv2d(conv.filters, stride=conv.stride,
                                           padding=conv.padding,
                                           input_threshold=threshold)
            continue
        if layer_algorithm == "lowino":
            engine = LoWinoConv2d(
                conv.filters, m=m, padding=conv.padding,
                calibration_method=calibration_method,
            )
            if inputs:
                engine.calibrate(inputs)
        elif layer_algorithm == "int8_direct":
            engine = Int8DirectConv2d(conv.filters, stride=conv.stride,
                                      padding=conv.padding,
                                      input_threshold=threshold)
        elif layer_algorithm == "int8_upcast":
            engine = UpcastWinogradConv2d(conv.filters, m=m, padding=conv.padding,
                                          input_threshold=threshold)
        elif layer_algorithm == "int8_downscale":
            engine = DownscaleWinogradConv2d(conv.filters, m=m, padding=conv.padding,
                                             input_threshold=threshold)
        else:
            raise ValueError(f"unknown quantization algorithm {layer_algorithm!r}")
        conv.engine = engine
    return model


def dequantize_model(model: Sequential) -> Sequential:
    """Restore FP32 execution on every convolution."""
    for _, conv in named_convs(model):
        conv.engine = None
    return model
