"""Synthetic network builders standing in for VGG16 / ResNet-50 / AlexNet.

The paper evaluates end-to-end accuracy on pretrained ImageNet models.
Neither ImageNet nor pretrained weights are available offline, so these
builders create *structurally faithful, laptop-scale* stand-ins:
VGG-style 3x3 stacks with pooling, ResNet-style residual blocks with
folded batch norm, AlexNet-style wide shallow stacks -- all with
structured random weights (He-scaled, per-channel gain variation so
per-channel quantization matters).

The accuracy experiment (see :mod:`repro.nn.data`) labels inputs with
the FP32 model itself and evaluates on noisy copies, so "accuracy" is a
genuine measurement of how much the quantized pipeline perturbs the
decision function -- the quantity Table 3's FP32-vs-INT8 comparison is
about.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU, fold_batchnorm
from .model import Residual, Sequential

__all__ = ["build_vgg_small", "build_resnet_small", "build_alexnet_small"]


def _he_filters(rng: np.random.Generator, k: int, c: int, r: int = 3) -> np.ndarray:
    std = np.sqrt(2.0 / (c * r * r))
    w = rng.standard_normal((k, c, r, r)) * std
    # Per-channel gain spread: makes per-output-channel weight scales
    # meaningfully different, as in trained networks.
    gains = rng.uniform(0.5, 1.8, size=k)
    return w * gains[:, None, None, None]


def _conv_bn_relu(rng: np.random.Generator, c_in: int, c_out: int, name: str) -> list:
    """Conv + folded BN + ReLU (BN folded at build time, as deployed)."""
    filters = _he_filters(rng, c_out, c_in)
    bias = rng.standard_normal(c_out) * 0.05
    gamma = rng.uniform(0.8, 1.2, c_out)
    beta = rng.standard_normal(c_out) * 0.1
    mean = rng.standard_normal(c_out) * 0.05
    var = rng.uniform(0.5, 1.5, c_out)
    folded_w, folded_b = fold_batchnorm(filters, bias, gamma, beta, mean, var)
    return [Conv2d(folded_w, folded_b, padding=1, name=name), ReLU()]


def build_vgg_small(
    classes: int = 10, width: int = 32, seed: int = 7
) -> Sequential:
    """VGG16-style: stacked 3x3 convs with 2x2 pooling, widths doubling.

    Input: ``(B, 3, 32, 32)``.
    """
    rng = np.random.default_rng(seed)
    layers = []
    c_in = 3
    for stage, (c_out, convs) in enumerate([(width, 2), (width * 2, 2), (width * 4, 3)]):
        for i in range(convs):
            layers += _conv_bn_relu(rng, c_in, c_out, f"conv{stage}_{i}")
            c_in = c_out
        layers.append(MaxPool2d(2))
    layers += [GlobalAvgPool(), Flatten(),
               Linear(rng.standard_normal((classes, c_in)) / np.sqrt(c_in))]
    return Sequential(layers, name="vgg_small")


def build_resnet_small(
    classes: int = 10, width: int = 32, seed: int = 11
) -> Sequential:
    """ResNet-style: a stem conv then residual basic blocks.

    Input: ``(B, 3, 32, 32)``.
    """
    rng = np.random.default_rng(seed)
    layers = _conv_bn_relu(rng, 3, width, "stem")

    def block(c_in: int, c_out: int, idx: int) -> Residual:
        body = Sequential(
            _conv_bn_relu(rng, c_in, c_out, f"block{idx}_a")
            + [Conv2d(_he_filters(rng, c_out, c_out), padding=1, name=f"block{idx}_b")],
            name=f"body{idx}",
        )
        shortcut = None
        if c_in != c_out:
            # Projection shortcut as a 3x3 conv (keeps every conv
            # Winograd-eligible; ResNet uses 1x1 here).
            shortcut = Conv2d(_he_filters(rng, c_out, c_in) * 0.5, padding=1,
                              name=f"proj{idx}")
        return Residual(body, shortcut, name=f"res{idx}")

    layers.append(block(width, width, 0))
    layers.append(block(width, 2 * width, 1))
    layers.append(MaxPool2d(2))
    layers.append(block(2 * width, 2 * width, 2))
    layers += [GlobalAvgPool(), Flatten(),
               Linear(rng.standard_normal((classes, 2 * width)) / np.sqrt(2 * width))]
    return Sequential(layers, name="resnet_small")


def build_alexnet_small(classes: int = 10, width: int = 48, seed: int = 13) -> Sequential:
    """AlexNet-style: shallow and wide, big pooling steps.

    Input: ``(B, 3, 32, 32)``.
    """
    rng = np.random.default_rng(seed)
    layers = []
    layers += _conv_bn_relu(rng, 3, width, "conv0")
    layers.append(MaxPool2d(2))
    layers += _conv_bn_relu(rng, width, width * 2, "conv1")
    layers += _conv_bn_relu(rng, width * 2, width * 2, "conv2")
    layers.append(MaxPool2d(2))
    layers += [GlobalAvgPool(), Flatten(),
               Linear(rng.standard_normal((classes, width * 2)) / np.sqrt(width * 2))]
    return Sequential(layers, name="alexnet_small")
