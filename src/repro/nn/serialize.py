"""Serialization of calibrated, quantized models.

Calibration is an offline step (the paper runs it once over ~500 sample
images); deployments persist its outputs.  This module saves everything
needed to reconstruct a quantized model -- per-layer algorithm choice,
tile size, activation thresholds/scales, corrected biases -- into a
single ``.npz`` archive, and restores it onto a structurally identical
FP32 model.  Round-tripping is exact: the restored model produces
bit-identical outputs (tested).

Filters are not stored (they live in the FP32 model definition); only
quantization state and biases are.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from ..conv import DownscaleWinogradConv2d, Int8DirectConv2d, UpcastWinogradConv2d
from ..core import LoWinoConv2d
from ..quant import QuantParams
from .layers import Conv2d
from .model import Sequential, named_convs

__all__ = ["save_quantized_model", "load_quantized_model"]

_FORMAT_VERSION = 1


def _engine_record(conv: Conv2d) -> Dict:
    engine = conv.engine
    if engine is None:
        return {"algorithm": None}
    if isinstance(engine, LoWinoConv2d):
        return {
            "algorithm": "lowino",
            "m": engine.m,
            "calibration_method": engine.calibration_method,
            "calibrated": engine.is_calibrated,
        }
    if isinstance(engine, Int8DirectConv2d):
        return {"algorithm": "int8_direct", "threshold": engine.input_threshold,
                "stride": engine.stride}
    if isinstance(engine, UpcastWinogradConv2d):
        return {"algorithm": "int8_upcast", "m": engine.m,
                "threshold": engine.input_threshold}
    if isinstance(engine, DownscaleWinogradConv2d):
        return {"algorithm": "int8_downscale", "m": engine.m,
                "threshold": engine.input_threshold}
    raise TypeError(f"cannot serialize engine type {type(engine).__name__}")


def save_quantized_model(model: Sequential, path: str | Path) -> None:
    """Persist quantization state + biases of ``model`` to ``path``."""
    manifest: Dict[str, Dict] = {}
    arrays: Dict[str, np.ndarray] = {}
    for name, conv in named_convs(model):
        record = _engine_record(conv)
        manifest[name] = record
        arrays[f"{name}::bias"] = conv.bias
        if record.get("algorithm") == "lowino" and record["calibrated"]:
            arrays[f"{name}::input_scale"] = conv.engine.input_params.scale
    arrays["__manifest__"] = np.frombuffer(
        json.dumps({"version": _FORMAT_VERSION, "layers": manifest}).encode(),
        dtype=np.uint8,
    )
    np.savez_compressed(Path(path), **arrays)


def load_quantized_model(model: Sequential, path: str | Path) -> Sequential:
    """Restore quantization state onto a structurally matching model."""
    with np.load(Path(path)) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode())
        if manifest.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported format version {manifest.get('version')}")
        layers = manifest["layers"]
        convs = dict(named_convs(model))
        missing = set(layers) ^ set(convs)
        if missing:
            raise ValueError(f"model structure mismatch on layers: {sorted(missing)}")
        for name, conv in convs.items():
            record = layers[name]
            conv.bias = np.array(data[f"{name}::bias"])
            algo = record["algorithm"]
            if algo is None:
                conv.engine = None
            elif algo == "lowino":
                engine = LoWinoConv2d(
                    conv.filters, m=record["m"], padding=conv.padding,
                    calibration_method=record["calibration_method"],
                )
                if record["calibrated"]:
                    engine.input_params = QuantParams(
                        scale=np.array(data[f"{name}::input_scale"])
                    )
                conv.engine = engine
            elif algo == "int8_direct":
                conv.engine = Int8DirectConv2d(
                    conv.filters, stride=record.get("stride", 1),
                    padding=conv.padding, input_threshold=record["threshold"],
                )
            elif algo == "int8_upcast":
                conv.engine = UpcastWinogradConv2d(
                    conv.filters, m=record["m"], padding=conv.padding,
                    input_threshold=record["threshold"],
                )
            elif algo == "int8_downscale":
                conv.engine = DownscaleWinogradConv2d(
                    conv.filters, m=record["m"], padding=conv.padding,
                    input_threshold=record["threshold"],
                )
            else:
                raise ValueError(f"unknown algorithm {algo!r} in archive")
    return model
