"""LoWino for 1D and 3D convolutions.

The Winograd-domain quantization recipe is dimension-agnostic: transform
in FP32, quantize per tile position (now ``T = alpha^d`` positions), run
the batched u8 x s8 GEMM with the Eq. 9 compensation, de-quantize and
output-transform.  This module generalizes :class:`LoWinoConv2d` to any
spatial dimensionality -- 1D for sequence models, 3D for video --
exercising exactly the same quantization, compensation and GEMM
machinery (a genuine extension beyond the paper, which evaluates 2D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..gemm import compensation_term
from ..quant import (
    QuantParams,
    WinogradDomainCalibrator,
    per_position_minmax_params,
    quantize,
    scale_for_threshold,
)
from ..winograd import winograd_algorithm
from ..winograd.ndim import (
    NdTileGrid,
    assemble_output_nd,
    extract_tiles_nd,
    tile_grid_nd,
    transform_nd,
)

__all__ = ["LoWinoConvNd"]


@dataclass
class LoWinoConvNd:
    """INT8 Winograd convolution in ``d`` spatial dimensions.

    ``filters_fp32`` has shape ``(K, C, *(r,)*d)``; inputs are
    ``(B, C, *spatial)``.  ``padding`` pads every spatial axis
    symmetrically.  Calibration mirrors the 2D layer.
    """

    filters_fp32: np.ndarray
    m: int = 2
    padding: int = 0
    bits: int = 8
    calibration_method: str = "kl"
    input_params: Optional[QuantParams] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        if self.filters_fp32.ndim < 3:
            raise ValueError("filters must be (K, C, *spatial)")
        self.ndim = self.filters_fp32.ndim - 2
        r_shape = self.filters_fp32.shape[2:]
        if len(set(r_shape)) != 1:
            raise ValueError(f"anisotropic filters unsupported: {r_shape}")
        self.alg = winograd_algorithm(self.m, r_shape[0])
        k, c = self.filters_fp32.shape[:2]
        t = self.alg.alpha**self.ndim
        u = transform_nd(self.alg.g, self.filters_fp32, self.ndim)
        u = np.ascontiguousarray(u.reshape(k, c, t).transpose(2, 1, 0))  # (T, C, K)
        tau = np.abs(u).max(axis=1, keepdims=True)
        tau = np.where(tau > 0, tau, 1.0)
        self.filter_params = QuantParams(
            scale=scale_for_threshold(tau, bits=self.bits), bits=self.bits
        )
        self.u_q = quantize(u, self.filter_params)
        self.zbar = compensation_term(self.u_q)

    # ------------------------------------------------------------------
    def _pad(self, images: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return images
        widths = [(0, 0), (0, 0)] + [(self.padding, self.padding)] * self.ndim
        return np.pad(images, widths)

    def _operand(self, images: np.ndarray) -> tuple[np.ndarray, NdTileGrid]:
        x = self._pad(np.asarray(images, dtype=np.float64))
        grid = tile_grid_nd(self.alg, x.shape[2:])
        tiles = extract_tiles_nd(grid, x)
        v = transform_nd(self.alg.bt, tiles, self.ndim)
        b, c = x.shape[:2]
        t = self.alg.alpha**self.ndim
        v = v.reshape(b, c, grid.tiles_per_image, t)
        v = v.transpose(3, 0, 2, 1).reshape(t, b * grid.tiles_per_image, c)
        return np.ascontiguousarray(v), grid

    def calibrate(self, batches: Iterable[np.ndarray]) -> "LoWinoConvNd":
        calib = WinogradDomainCalibrator(
            positions=self.alg.alpha**self.ndim, bits=self.bits
        )
        for batch in batches:
            v, _ = self._operand(batch)
            calib.collect(v)
        self.input_params = calib.params(method=self.calibration_method)
        return self

    @property
    def is_calibrated(self) -> bool:
        return self.input_params is not None

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != self.ndim + 2:
            raise ValueError(
                f"expected {self.ndim + 2}-d input, got {images.ndim}-d"
            )
        b = images.shape[0]
        k = self.filters_fp32.shape[0]
        v, grid = self._operand(images)
        in_params = (
            self.input_params
            if self.input_params is not None
            else per_position_minmax_params(v, position_axis=0, bits=self.bits)
        )
        v_q = quantize(v, in_params)
        vbar = (v_q.astype(np.int16) + 128).astype(np.uint8)
        z = np.einsum(
            "tnc,tck->tnk", vbar.astype(np.int32), self.u_q.astype(np.int32)
        ).astype(np.int32)
        z = z + self.zbar[:, None, :]
        z_fp = z.astype(np.float64) / (in_params.scale * self.filter_params.scale)
        # (T, N, K) -> (B, K, *tiles, *(alpha,)*d)
        t = self.alg.alpha**self.ndim
        z_fp = z_fp.transpose(1, 2, 0).reshape(
            (b, grid.tiles_per_image, k) + (self.alg.alpha,) * self.ndim
        )
        z_fp = np.moveaxis(z_fp, 2, 1).reshape(
            (b, k) + grid.tiles_shape + (self.alg.alpha,) * self.ndim
        )
        y = transform_nd(self.alg.at, z_fp, self.ndim)
        return assemble_output_nd(grid, y)
