"""LoWino core: the Winograd-domain-quantized INT8 convolution."""

from .compensation import bias_to_unsigned, compensation_term, signed_via_unsigned
from .lowino import LoWinoConv2d
from .lowino_nd import LoWinoConvNd

__all__ = [
    "bias_to_unsigned",
    "compensation_term",
    "signed_via_unsigned",
    "LoWinoConv2d",
    "LoWinoConvNd",
]
