"""The +/-128 compensation identity (Eq. 9).

``vpdpbusd`` requires its first operand to be UINT8, but quantized
transformed inputs are signed.  LoWino adds 128 during the input
transform (``Vbar = V + 128``) and subtracts the precomputed correction
``Zbar = -128 * colsum_C(U)`` during the GEMM:

    V @ U  ==  (V + 128) @ U  +  (-128 * 1 1^T) @ U  ==  Vbar @ U + Zbar

The identity is exact in integer arithmetic; :func:`signed_via_unsigned`
is the executable statement of it and is property-tested against the
plain signed product.
"""

from __future__ import annotations

import numpy as np

from ..gemm import compensation_term, gemm_u8s8_reference

__all__ = ["bias_to_unsigned", "signed_via_unsigned", "compensation_term"]


def bias_to_unsigned(v_s8: np.ndarray) -> np.ndarray:
    """``V + 128`` as UINT8 (the input-transform-stage compensation)."""
    if v_s8.dtype != np.int8:
        raise ValueError(f"expected int8, got {v_s8.dtype}")
    return (v_s8.astype(np.int16) + 128).astype(np.uint8)


def signed_via_unsigned(v_s8: np.ndarray, u_s8: np.ndarray) -> np.ndarray:
    """Compute the signed product ``V @ U`` using only u8 x s8 arithmetic.

    ``v_s8``: ``(N, C)`` int8; ``u_s8``: ``(C, K)`` int8.  Returns
    ``(N, K)`` int32 equal to ``V.astype(i32) @ U.astype(i32)``.
    """
    vbar = bias_to_unsigned(v_s8)
    zbar = compensation_term(u_s8[None, :, :])[0]  # (K,)
    return gemm_u8s8_reference(vbar, u_s8) + zbar[None, :]
