"""LoWino: low-precision Winograd convolution with Winograd-domain
quantization (the paper's core contribution, Sections 3 and 4).

Pipeline per forward pass (Figure 3):

1. extract overlapping FP32 input tiles;
2. **input transform in FP32** -- ``V = B^T d B`` (this is what
   distinguishes LoWino from the baselines: the range amplification
   happens *before* quantization, so no overflow and no down-scaling);
3. quantize ``V`` per tile position with calibrated thresholds (Eq. 4),
   add the +128 bias -> UINT8 GEMM operand (Section 4.2.1);
4. batched INT8 GEMM with the ``Zbar`` filter-side compensation (Eq. 9),
   over the blocked Table 1 layouts;
5. de-quantize the INT32 accumulators (Eq. 6) and apply the FP32 output
   transform ``y = A^T Z A``;
6. assemble output tiles.

Filters are handled entirely offline: FP32 filter transform, quantization
per (tile position, output channel), and compensation-term precompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..conv._tileops import gemm_result_to_tiles, prepare_input_tiles, tiles_to_gemm_operand
from ..conv.im2col import pad_images
from ..gemm import (
    BlockingParams,
    batched_gemm_blocked,
    compensation_term,
    default_blocking,
)
from ..layout import pack_transformed_filters, pack_transformed_inputs
from ..quant import (
    QuantParams,
    WinogradDomainCalibrator,
    quantize,
    scale_for_threshold,
)
from ..winograd import (
    WinogradAlgorithm,
    assemble_output,
    filter_transform,
    input_transform,
    output_transform,
    winograd_algorithm,
)

__all__ = ["LoWinoConv2d"]


def _filter_params_per_position_channel(u: np.ndarray, bits: int) -> QuantParams:
    """Scales of shape (T, 1, K) for a (T, C, K) transformed filter."""
    tau = np.abs(u).max(axis=1, keepdims=True)  # (T, 1, K)
    tau = np.where(tau > 0, tau, 1.0)
    return QuantParams(scale=scale_for_threshold(tau, bits=bits), bits=bits)


@dataclass
class LoWinoConv2d:
    """A single LoWino convolutional layer.

    Parameters
    ----------
    filters_fp32:
        ``(K, C, r, r)`` FP32 filters from the pretrained model.
    m:
        Winograd output tile size (2 -> F(2x2,3x3), 4 -> F(4x4,3x3), ...).
    padding:
        Symmetric spatial zero padding.
    calibration_method:
        ``'kl'`` (Eq. 7, default) or ``'minmax'`` for the input-threshold
        search; only used after :meth:`calibrate`.
    use_blocked_gemm:
        If True, run the GEMM through the Table 1 blocked layouts and the
        cache-blocked executor (bit-identical, slower in NumPy); if False
        (default) use the fused vectorized contraction.
    blocking:
        Optional explicit :class:`BlockingParams` for the blocked path.

    Calibration
    -----------
    Call :meth:`calibrate` with an iterable of NCHW sample batches to fix
    per-position input thresholds offline (the paper's ~500-image
    calibration pass).  Without calibration the layer falls back to
    dynamic per-batch min/max quantization.
    """

    filters_fp32: np.ndarray
    m: int = 4
    padding: int = 0
    bits: int = 8
    calibration_method: str = "kl"
    use_blocked_gemm: bool = False
    blocking: Optional[BlockingParams] = None
    #: Threads for the blocked GEMM's fork-join execution (Section 4.4).
    omega: int = 1
    input_params: Optional[QuantParams] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        k, c, r, r2 = self.filters_fp32.shape
        if r != r2:
            raise ValueError("only square filters supported")
        self.alg: WinogradAlgorithm = winograd_algorithm(self.m, r)
        t = self.alg.tile_elements
        # --- offline filter path (Section 4.2.2) ---
        u = filter_transform(self.alg, self.filters_fp32)  # (K, C, a, a) FP32
        u = np.ascontiguousarray(u.reshape(k, c, t).transpose(2, 1, 0))  # (T, C, K)
        self.filter_params = _filter_params_per_position_channel(u, self.bits)
        self.u_q = quantize(u, self.filter_params)  # (T, C, K) int8
        self.zbar = compensation_term(self.u_q)  # (T, K) int32

    # ------------------------------------------------------------------
    # Calibration (Section 3, Eq. 7)
    # ------------------------------------------------------------------
    def make_calibrator(self) -> WinogradDomainCalibrator:
        """A fresh Winograd-domain calibrator sized for this layer.

        Part of the streaming calibration API: hold one calibrator per
        layer, feed it batch-by-batch with :meth:`collect_calibration`
        (histograms only -- O(1) memory in the number of batches), then
        fix thresholds with :meth:`apply_calibration`.
        """
        return WinogradDomainCalibrator(positions=self.alg.tile_elements, bits=self.bits)

    def collect_calibration(
        self, calib: WinogradDomainCalibrator, batch: np.ndarray
    ) -> None:
        """Fold one NCHW sample batch into ``calib``'s histograms."""
        batch = np.asarray(batch, dtype=np.float64)
        x = pad_images(batch, self.padding)
        tiles, _ = prepare_input_tiles(self.alg, x)
        calib.collect(tiles_to_gemm_operand(input_transform(self.alg, tiles)))

    def apply_calibration(self, calib: WinogradDomainCalibrator) -> "LoWinoConv2d":
        """Fix input thresholds from a fed calibrator; returns ``self``."""
        self.input_params = calib.params(method=self.calibration_method)
        return self

    def calibrate(self, batches: Iterable[np.ndarray]) -> "LoWinoConv2d":
        """Fix input quantization thresholds from sample batches.

        Each batch is an NCHW FP32 array with this layer's input shape.
        Thresholds are searched per Winograd tile position with the
        KL-divergence criterion (or min/max, per
        ``calibration_method``).  Returns ``self`` for chaining.
        """
        calib = self.make_calibrator()
        for batch in batches:
            self.collect_calibration(calib, batch)
        return self.apply_calibration(calib)

    @property
    def is_calibrated(self) -> bool:
        return self.input_params is not None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        b = images.shape[0]
        k = self.filters_fp32.shape[0]
        x = pad_images(images, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)

        # Input transform in FP32 (stage 1 of Figure 3), then quantize in
        # the Winograd domain (Eq. 3) -- the LoWino move.
        v = tiles_to_gemm_operand(input_transform(self.alg, tiles))  # (T, N, C) FP32
        if self.input_params is not None:
            in_params = self.input_params
        else:
            from ..quant import per_position_minmax_params

            in_params = per_position_minmax_params(v, position_axis=0, bits=self.bits)
        v_q = quantize(v, in_params)  # (T, N, C) int8
        vbar = (v_q.astype(np.int16) + 128).astype(np.uint8)  # +128 compensation

        z = self._gemm(vbar, v_q.shape[1], k)

        # De-quantize (Eq. 6): per-position input scale x per-(position,
        # channel) filter scale.
        denom = in_params.scale * self.filter_params.scale  # broadcasts to (T, 1, K)
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, b, grid, k)
        y = output_transform(self.alg, acc_tiles)
        return assemble_output(grid, y)

    def reference_forward(self, images: np.ndarray) -> np.ndarray:
        """Loop-based reference path for differential testing.

        Walks the Figure 3 pipeline the way a scalar implementation
        would: the input and output transforms visit one spatial tile at
        a time in Python loops, and the GEMM runs through the packed
        Table 1 layouts with the serial per-task loop
        (:func:`repro.gemm.batched_gemm_reference`).  Numerically
        identical to :meth:`__call__` (integer arithmetic is exact and
        the float stages perform the same operations); the vectorized
        runtime engine is benchmarked and equivalence-tested against
        this method.
        """
        images = np.asarray(images, dtype=np.float64)
        b = images.shape[0]
        k = self.filters_fp32.shape[0]
        x = pad_images(images, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)  # (B, C, th, tw, a, a)
        # Per-tile input transform: one channel-stack per spatial tile.
        v_tiles = np.empty_like(tiles)
        for bi in range(tiles.shape[0]):
            for ti in range(grid.tiles_h):
                for tj in range(grid.tiles_w):
                    v_tiles[bi, :, ti, tj] = input_transform(self.alg, tiles[bi, :, ti, tj])
        v = tiles_to_gemm_operand(v_tiles)  # (T, N, C)
        if self.input_params is not None:
            in_params = self.input_params
        else:
            from ..quant import per_position_minmax_params

            in_params = per_position_minmax_params(v, position_axis=0, bits=self.bits)
        v_q = quantize(v, in_params)
        vbar = (v_q.astype(np.int16) + 128).astype(np.uint8)
        t, n, c = vbar.shape
        params = self.blocking or default_blocking(n, c, k)
        v_packed = pack_transformed_inputs(vbar, params.n_blk, params.c_blk)
        u_packed = pack_transformed_filters(self.u_q, params.c_blk, params.k_blk)
        from ..gemm import batched_gemm_reference

        z = batched_gemm_reference(v_packed, u_packed, self.zbar, params, n, c, k)
        denom = in_params.scale * self.filter_params.scale
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, b, grid, k)
        # Per-tile output transform.
        y = np.empty((b, k, grid.tiles_h, grid.tiles_w, self.alg.m, self.alg.m))
        for bi in range(b):
            for ti in range(grid.tiles_h):
                for tj in range(grid.tiles_w):
                    y[bi, :, ti, tj] = output_transform(self.alg, acc_tiles[bi, :, ti, tj])
        return assemble_output(grid, y)

    def _gemm(self, vbar: np.ndarray, n: int, k: int) -> np.ndarray:
        """Stage 2 of Figure 3: the batched INT8 GEMM with compensation."""
        t, _, c = vbar.shape
        if not self.use_blocked_gemm:
            # Fused vectorized path: u8 x s8 -> s32 contraction + Zbar.
            z = np.einsum(
                "tnc,tck->tnk", vbar.astype(np.int32), self.u_q.astype(np.int32)
            ).astype(np.int32)
            return z + self.zbar[:, None, :]
        params = self.blocking or default_blocking(n, c, k)
        v_packed = pack_transformed_inputs(vbar, params.n_blk, params.c_blk)
        u_packed = pack_transformed_filters(self.u_q, params.c_blk, params.k_blk)
        return batched_gemm_blocked(v_packed, u_packed, self.zbar, params,
                                    n, c, k, omega=self.omega)

    # ------------------------------------------------------------------
    # Introspection used by experiments / perf model
    # ------------------------------------------------------------------
    def gemm_shape(self, in_h: int, in_w: int, batch: int) -> tuple[int, int, int, int]:
        """(T, N, C, K) of the batched GEMM for a given input size."""
        from ..winograd import tile_grid

        grid = tile_grid(self.alg, in_h + 2 * self.padding, in_w + 2 * self.padding)
        n = batch * grid.tiles_per_image
        k, c = self.filters_fp32.shape[:2]
        return self.alg.tile_elements, n, c, k
