"""The customized blocked data layouts of Table 1.

Symbols follow the paper: ``phi`` is the number of 8-bit elements in a
32-bit word (4), ``sigma`` the number of 32-bit lanes in a 512-bit vector
(16).  Channels are grouped into blocks of ``phi * sigma = 64`` so that a
whole cache line of one pixel's channel block can be moved with a single
aligned 512-bit access, and the transformed-operand layouts arrange the
batched GEMM so ``vpdpbusd`` reads both operands contiguously.

Every layout here is a pure pack/unpack pair with zero-padding to block
multiples; round-tripping is exact, which the property tests verify.

Table 1 layouts:

=====================  =====================================================
Variable               Layout
=====================  =====================================================
Input images           ``B x ceil(C/phi/sigma) x H x W x phi x sigma``
Transformed inputs     ``ceil(N/N_blk) x ceil(C/C_blk) x T x N_blk x C_blk``
Filters                ``C x ceil(K/phi/sigma) x r x r x phi x sigma``
Transformed filters    ``ceil(C/C_blk) x ceil(K/K_blk) x T x (C_blk/phi) x (K_blk*phi)``
Transformed outputs    ``B x ceil(K/phi/sigma) x N x T x phi x sigma``
Output images          ``B x ceil(K/phi/sigma) x H' x W' x phi x sigma``
=====================  =====================================================
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PHI",
    "SIGMA",
    "CACHE_LINE_BYTES",
    "ceil_div",
    "pad_axis",
    "pack_blocked_images",
    "unpack_blocked_images",
    "pack_transformed_inputs",
    "unpack_transformed_inputs",
    "pack_blocked_filters",
    "unpack_blocked_filters",
    "pack_transformed_filters",
    "unpack_transformed_filters",
    "pack_transformed_outputs",
    "unpack_transformed_outputs",
]

#: 8-bit elements per 32-bit word.
PHI = 4
#: 32-bit lanes per 512-bit vector register.
SIGMA = 16
#: One x86 cache line; all blocked layouts are multiples of this.
CACHE_LINE_BYTES = 64


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def pad_axis(x: np.ndarray, axis: int, multiple: int) -> np.ndarray:
    """Zero-pad ``axis`` of ``x`` up to the next multiple of ``multiple``."""
    size = x.shape[axis]
    target = ceil_div(size, multiple) * multiple
    if target == size:
        return x
    widths = [(0, 0)] * x.ndim
    widths[axis] = (0, target - size)
    return np.pad(x, widths)


# ---------------------------------------------------------------------------
# Image layouts (input and output images share the same shape rule).
# ---------------------------------------------------------------------------

def pack_blocked_images(
    images: np.ndarray, phi: int = PHI, sigma: int = SIGMA
) -> np.ndarray:
    """NCHW -> ``B x ceil(C/phi/sigma) x H x W x phi x sigma``."""
    b, c, h, w = images.shape
    blk = phi * sigma
    x = pad_axis(images, 1, blk)
    cb = x.shape[1] // blk
    x = x.reshape(b, cb, phi, sigma, h, w)
    return np.ascontiguousarray(x.transpose(0, 1, 4, 5, 2, 3))


def unpack_blocked_images(
    packed: np.ndarray, channels: int, phi: int = PHI, sigma: int = SIGMA
) -> np.ndarray:
    """Inverse of :func:`pack_blocked_images`, cropping channel padding."""
    b, cb, h, w, p, s = packed.shape
    if (p, s) != (phi, sigma):
        raise ValueError(f"packed trailing dims {(p, s)} != (phi, sigma)=({phi}, {sigma})")
    x = packed.transpose(0, 1, 4, 5, 2, 3).reshape(b, cb * phi * sigma, h, w)
    return np.ascontiguousarray(x[:, :channels])


# ---------------------------------------------------------------------------
# Transformed input layout: the V operand of the batched GEMM.
# ---------------------------------------------------------------------------

def pack_transformed_inputs(v: np.ndarray, n_blk: int, c_blk: int) -> np.ndarray:
    """``(T, N, C)`` -> ``ceil(N/N_blk) x ceil(C/C_blk) x T x N_blk x C_blk``."""
    t, n, c = v.shape
    x = pad_axis(pad_axis(v, 1, n_blk), 2, c_blk)
    nb, cb = x.shape[1] // n_blk, x.shape[2] // c_blk
    x = x.reshape(t, nb, n_blk, cb, c_blk)
    return np.ascontiguousarray(x.transpose(1, 3, 0, 2, 4))


def unpack_transformed_inputs(packed: np.ndarray, n: int, c: int) -> np.ndarray:
    """Inverse of :func:`pack_transformed_inputs` -> ``(T, N, C)``."""
    nb, cb, t, n_blk, c_blk = packed.shape
    x = packed.transpose(2, 0, 3, 1, 4).reshape(t, nb * n_blk, cb * c_blk)
    return np.ascontiguousarray(x[:, :n, :c])


# ---------------------------------------------------------------------------
# Filter layouts.
# ---------------------------------------------------------------------------

def pack_blocked_filters(
    filters: np.ndarray, phi: int = PHI, sigma: int = SIGMA
) -> np.ndarray:
    """``(K, C, r, r)`` -> ``C x ceil(K/phi/sigma) x r x r x phi x sigma``."""
    k, c, r1, r2 = filters.shape
    blk = phi * sigma
    x = pad_axis(filters, 0, blk)
    kb = x.shape[0] // blk
    x = x.reshape(kb, phi, sigma, c, r1, r2)
    return np.ascontiguousarray(x.transpose(3, 0, 4, 5, 1, 2))


def unpack_blocked_filters(
    packed: np.ndarray, out_channels: int, phi: int = PHI, sigma: int = SIGMA
) -> np.ndarray:
    """Inverse of :func:`pack_blocked_filters` -> ``(K, C, r, r)``."""
    c, kb, r1, r2, p, s = packed.shape
    x = packed.transpose(1, 4, 5, 0, 2, 3).reshape(kb * p * s, c, r1, r2)
    return np.ascontiguousarray(x[:out_channels])


def pack_transformed_filters(
    u: np.ndarray, c_blk: int, k_blk: int, phi: int = PHI
) -> np.ndarray:
    """``(T, C, K)`` -> ``ceil(C/C_blk) x ceil(K/K_blk) x T x (C_blk/phi) x (K_blk*phi)``.

    The two trailing dimensions interleave ``phi`` consecutive channels
    with each output channel -- the exact operand order ``vpdpbusd``
    consumes (Section 4.3.2: the sub-matrix ``u`` is reordered to
    ``(C_blk/4) x (K_blk*4)``).
    """
    if c_blk % phi:
        raise ValueError(f"C_blk={c_blk} must be a multiple of phi={phi}")
    t, c, k = u.shape
    x = pad_axis(pad_axis(u, 1, c_blk), 2, k_blk)
    cb, kb = x.shape[1] // c_blk, x.shape[2] // k_blk
    # Split C into (cb, C_blk/phi, phi) and K into (kb, K_blk).
    x = x.reshape(t, cb, c_blk // phi, phi, kb, k_blk)
    # -> (cb, kb, T, C_blk/phi, K_blk, phi); trailing pair flattens to K_blk*phi.
    x = x.transpose(1, 4, 0, 2, 5, 3)
    return np.ascontiguousarray(x.reshape(cb, kb, t, c_blk // phi, k_blk * phi))


def unpack_transformed_filters(
    packed: np.ndarray, c: int, k: int, phi: int = PHI
) -> np.ndarray:
    """Inverse of :func:`pack_transformed_filters` -> ``(T, C, K)``."""
    cb, kb, t, c_sub, k_phi = packed.shape
    k_blk = k_phi // phi
    x = packed.reshape(cb, kb, t, c_sub, k_blk, phi)
    x = x.transpose(2, 0, 3, 5, 1, 4).reshape(t, cb * c_sub * phi, kb * k_blk)
    return np.ascontiguousarray(x[:, :c, :k])


# ---------------------------------------------------------------------------
# Transformed output layout.
# ---------------------------------------------------------------------------

def pack_transformed_outputs(
    z: np.ndarray, batch: int, phi: int = PHI, sigma: int = SIGMA
) -> np.ndarray:
    """``(T, N, K)`` -> ``B x ceil(K/phi/sigma) x N_img x T x phi x sigma``.

    ``N`` must be ``batch * tiles_per_image``; ``N_img`` is tiles per image.
    """
    t, n, k = z.shape
    if n % batch:
        raise ValueError(f"tile count {n} not divisible by batch {batch}")
    n_img = n // batch
    blk = phi * sigma
    x = pad_axis(z, 2, blk)
    kb = x.shape[2] // blk
    x = x.reshape(t, batch, n_img, kb, phi, sigma)
    return np.ascontiguousarray(x.transpose(1, 3, 2, 0, 4, 5))


def unpack_transformed_outputs(packed: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`pack_transformed_outputs` -> ``(T, N, K)``."""
    b, kb, n_img, t, phi, sigma = packed.shape
    x = packed.transpose(3, 0, 2, 1, 4, 5).reshape(t, b * n_img, kb * phi * sigma)
    return np.ascontiguousarray(x[:, :, :k])
