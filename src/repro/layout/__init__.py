"""Blocked data layouts (Table 1)."""

from .layouts import (
    CACHE_LINE_BYTES,
    PHI,
    SIGMA,
    ceil_div,
    pack_blocked_filters,
    pack_blocked_images,
    pack_transformed_filters,
    pack_transformed_inputs,
    pack_transformed_outputs,
    pad_axis,
    unpack_blocked_filters,
    unpack_blocked_images,
    unpack_transformed_filters,
    unpack_transformed_inputs,
    unpack_transformed_outputs,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "PHI",
    "SIGMA",
    "ceil_div",
    "pad_axis",
    "pack_blocked_filters",
    "pack_blocked_images",
    "pack_transformed_filters",
    "pack_transformed_inputs",
    "pack_transformed_outputs",
    "unpack_blocked_filters",
    "unpack_blocked_images",
    "unpack_transformed_filters",
    "unpack_transformed_inputs",
    "unpack_transformed_outputs",
]
