"""Codelet generation for Winograd transforms (Figure 4)."""

from .compile import codelet_source, compile_codelet
from .expr import Add, Expr, Load, Mul, count_ops, expr_for_row
from .generator import Codelet, CodeletStep, OpCount, generate_codelet, transform_codelets

__all__ = [
    "codelet_source",
    "compile_codelet",
    "Add",
    "Expr",
    "Load",
    "Mul",
    "count_ops",
    "expr_for_row",
    "Codelet",
    "CodeletStep",
    "OpCount",
    "generate_codelet",
    "transform_codelets",
]
