"""Symbolic expression IR for transform codelets.

A transform codelet computes ``out[i] = sum_j M[i, j] * in[j]`` for one
row/column pass of a Winograd transform.  The generator builds a tiny
expression DAG over input slots, then optimization passes (zero
elimination is implicit in construction, constant folding, common-
subexpression elimination) rewrite it before emission.  Every node is
hashable by structure so CSE is a dictionary lookup.

The IR is deliberately minimal: loads, constant multiplies, and adds.
That is exactly the instruction mix of the real vectorized codelets
(Figure 4), so counting IR ops after optimization gives the numbers the
performance model charges for the transform stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple, Union

__all__ = ["Load", "Mul", "Add", "Expr", "expr_for_row", "count_ops"]


@dataclass(frozen=True)
class Load:
    """Read input slot ``index``."""

    index: int


@dataclass(frozen=True)
class Mul:
    """Multiply a subexpression by a nonzero rational constant."""

    coeff: Fraction
    operand: "Expr"


@dataclass(frozen=True)
class Add:
    """Sum of two subexpressions."""

    lhs: "Expr"
    rhs: "Expr"


Expr = Union[Load, Mul, Add]


def expr_for_row(coeffs: Tuple[Fraction, ...]) -> Expr | None:
    """Build the expression for one transform-matrix row.

    Zero coefficients are skipped (zero elimination) and unit
    coefficients emit no multiply (constant folding); returns ``None``
    for an all-zero row.  Terms associate left-to-right in slot order,
    which keeps structurally equal prefixes shared across rows and gives
    CSE something to find.
    """
    expr: Expr | None = None
    for j, c in enumerate(coeffs):
        if c == 0:
            continue
        term: Expr = Load(j)
        if c != 1:
            term = Mul(Fraction(c), term)
        expr = term if expr is None else Add(expr, term)
    return expr


def count_ops(expr: Expr, seen: Dict[Expr, bool] | None = None) -> Tuple[int, int]:
    """(multiplies, adds) in the DAG, counting shared nodes once."""
    seen = {} if seen is None else seen

    def walk(e: Expr) -> None:
        if e in seen:
            return
        seen[e] = True
        if isinstance(e, Mul):
            walk(e.operand)
        elif isinstance(e, Add):
            walk(e.lhs)
            walk(e.rhs)

    walk(expr)
    muls = sum(1 for e in seen if isinstance(e, Mul))
    adds = sum(1 for e in seen if isinstance(e, Add))
    return muls, adds
