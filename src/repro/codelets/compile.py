"""JIT-style compilation of transform codelets to Python source.

The paper JIT-generates C++ for its transforms and GEMM (Sections 4.2.4
and 4.3.4: "the code is generated and compiled as a shared library").
The Python analogue: render a codelet's optimized step list into a flat,
fully unrolled NumPy function -- every statement a straight-line vector
expression, no loops, no interpretation overhead -- and ``compile()`` it.

``compile_codelet`` returns a callable equivalent to the interpreted
:class:`~repro.codelets.generator.Codelet` (the tests prove bit-level
agreement); ``codelet_source`` exposes the generated text, which doubles
as documentation of what the optimizer did (the Figure 4 story made
inspectable).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

import numpy as np

from .generator import Codelet

__all__ = ["codelet_source", "compile_codelet"]


def _term_expr(sym, coeff: Fraction) -> str:
    base = f"x[{sym[1]}]" if sym[0] == "in" else f"t{sym[1]}"
    if coeff == 1:
        return base
    if coeff == -1:
        return f"-{base}"
    return f"{float(coeff)!r} * {base}"


def codelet_source(codelet: Codelet, name: str = "transform") -> str:
    """Render the codelet as the source of a NumPy function.

    The function signature is ``def <name>(x, out=None)`` where ``x``
    has shape ``(cols, ...)`` (trailing axes are vector lanes) and the
    result has shape ``(rows, ...)``.
    """
    lines = [
        f"def {name}(x, out=None):",
        f"    if x.shape[0] != {codelet.cols}:",
        f"        raise ValueError('expected {codelet.cols} input slots, got %d'"
        " % x.shape[0])",
        "    if out is None:",
        f"        out = np.empty(({codelet.rows},) + x.shape[1:], dtype=np.result_type(x, np.float64))",
    ]
    for step in codelet.steps:
        rhs = " + ".join(_term_expr(sym, coeff) for sym, coeff in step.terms)
        rhs = rhs.replace("+ -", "- ") if rhs else "0.0"
        if step.kind == "tmp":
            lines.append(f"    t{step.index} = {rhs}")
        else:
            if step.terms:
                lines.append(f"    out[{step.index}] = {rhs}")
            else:
                lines.append(f"    out[{step.index}] = 0.0")
    lines.append("    return out")
    return "\n".join(lines)


def compile_codelet(codelet: Codelet, name: str = "transform") -> Callable:
    """Compile the codelet into an executable function object."""
    source = codelet_source(codelet, name=name)
    namespace: dict = {"np": np}
    exec(compile(source, f"<codelet:{name}>", "exec"), namespace)  # noqa: S102
    fn = namespace[name]
    fn.__codelet_source__ = source
    return fn
