"""Transform codelet generator (paper Figure 4).

Given a transform matrix, emits a *codelet*: a straight-line program of
linear-combination steps equivalent to ``out = M @ in`` with

* zero elimination (terms with zero coefficient never appear),
* constant folding (coefficients of +/-1 emit no multiply),
* greedy pairwise common-subexpression elimination -- shared two-term
  sub-sums (up to a common scale, e.g. ``-in[2] + in[4]`` reused by two
  rows as in the paper's example) are hoisted into temporaries,
* implicit full unrolling: the program *is* the unrolled loop body; the
  executor applies each step across the ``phi x sigma`` vector lanes.

The codelet is executable (used to cross-validate against the matrix
product) and reports its operation counts before/after optimization,
which feed the performance model's transform-stage costs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Codelet", "CodeletStep", "OpCount", "generate_codelet", "transform_codelets"]

# A symbol is either an input slot ("in", j) or a temporary ("tmp", t).
Symbol = Tuple[str, int]
Terms = Dict[Symbol, Fraction]


@dataclass(frozen=True)
class OpCount:
    """Vector-op counts of a codelet."""

    muls: int
    adds: int

    @property
    def total(self) -> int:
        return self.muls + self.adds


@dataclass(frozen=True)
class CodeletStep:
    """One emitted statement: ``target = sum(coeff * symbol)``."""

    kind: str  # "tmp" or "out"
    index: int
    terms: Tuple[Tuple[Symbol, Fraction], ...]


@dataclass
class Codelet:
    """Executable straight-line transform program."""

    rows: int
    cols: int
    steps: List[CodeletStep]
    naive: OpCount
    optimized: OpCount

    def __call__(self, vec: np.ndarray) -> np.ndarray:
        """Apply to ``vec`` with shape (cols, ...); returns (rows, ...)."""
        vec = np.asarray(vec)
        if vec.shape[0] != self.cols:
            raise ValueError(f"input has {vec.shape[0]} slots, codelet expects {self.cols}")
        env: Dict[Symbol, np.ndarray] = {("in", j): vec[j] for j in range(self.cols)}
        out = np.zeros((self.rows,) + vec.shape[1:], dtype=np.result_type(vec, np.float64))
        for step in self.steps:
            acc = None
            for sym, coeff in step.terms:
                term = env[sym] * float(coeff) if coeff != 1 else env[sym]
                acc = term if acc is None else acc + term
            value = acc if acc is not None else np.zeros(vec.shape[1:])
            if step.kind == "tmp":
                env[("tmp", step.index)] = value
            else:
                out[step.index] = value
        return out

    @property
    def saving(self) -> float:
        """Fraction of vector ops removed by optimization."""
        if self.naive.total == 0:
            return 0.0
        return 1.0 - self.optimized.total / self.naive.total


def _terms_ops(terms: Terms) -> OpCount:
    nnz = len(terms)
    muls = sum(1 for c in terms.values() if abs(c) != 1)
    adds = max(0, nnz - 1)
    return OpCount(muls=muls, adds=adds)


def _pair_key(s1: Symbol, c1: Fraction, s2: Symbol, c2: Fraction):
    """Canonical form of a two-term sub-sum, modulo a common scale."""
    if (s2, ) < (s1, ):
        s1, c1, s2, c2 = s2, c2, s1, c1
    return (s1, s2, c2 / c1)


def _find_best_pair(rows: List[Terms]):
    """Most frequent shareable two-term combination (appearing >= 2x)."""
    counts: Counter = Counter()
    for terms in rows:
        syms = sorted(terms.keys())
        for i in range(len(syms)):
            for j in range(i + 1, len(syms)):
                counts[_pair_key(syms[i], terms[syms[i]], syms[j], terms[syms[j]])] += 1
    if not counts:
        return None
    key, freq = counts.most_common(1)[0]
    return (key, freq) if freq >= 2 else None


def generate_codelet(matrix_exact: Sequence[Sequence]) -> Codelet:
    """Generate an optimized codelet for ``out = M @ in``."""
    mat = [[Fraction(v) for v in row] for row in matrix_exact]
    n_rows, n_cols = len(mat), len(mat[0])
    rows: List[Terms] = [
        {("in", j): c for j, c in enumerate(row) if c != 0} for row in mat
    ]
    naive = OpCount(
        muls=sum(_terms_ops(t).muls for t in rows),
        adds=sum(_terms_ops(t).adds for t in rows),
    )

    tmp_defs: List[Tuple[int, Terms]] = []
    next_tmp = 0
    while True:
        best = _find_best_pair(rows)
        if best is None:
            break
        (s1, s2, ratio), _ = best
        tmp_sym: Symbol = ("tmp", next_tmp)
        # temp = in[s1] + ratio * in[s2]
        tmp_defs.append((next_tmp, {s1: Fraction(1), s2: ratio}))
        for terms in rows:
            if s1 in terms and s2 in terms and terms[s2] / terms[s1] == ratio:
                scale = terms[s1]
                del terms[s1]
                del terms[s2]
                terms[tmp_sym] = scale
        next_tmp += 1

    steps: List[CodeletStep] = [
        CodeletStep(kind="tmp", index=t, terms=tuple(sorted(d.items())))
        for t, d in tmp_defs
    ]
    steps += [
        CodeletStep(kind="out", index=i, terms=tuple(sorted(terms.items())))
        for i, terms in enumerate(rows)
    ]
    opt_muls = sum(_terms_ops(dict(s.terms)).muls for s in steps)
    opt_adds = sum(_terms_ops(dict(s.terms)).adds for s in steps)
    return Codelet(
        rows=n_rows,
        cols=n_cols,
        steps=steps,
        naive=naive,
        optimized=OpCount(muls=opt_muls, adds=opt_adds),
    )


def transform_codelets(alg) -> Dict[str, Codelet]:
    """Codelets for all three transforms of a WinogradAlgorithm."""
    return {
        "input": generate_codelet(alg.bt_exact),
        "filter": generate_codelet(alg.g_exact),
        "output": generate_codelet(alg.at_exact),
    }
