"""Affine (asymmetric) quantization.

The paper uses symmetric quantization plus the +128 compensation trick;
an equivalent formulation is *affine* UINT8 quantization with a zero
point of 128.  This module provides general affine quantization --
arbitrary zero point, signed or unsigned storage -- both as a library
capability (post-ReLU tensors waste half the symmetric range; affine
recovers it) and to make the equivalence explicit:

    symmetric INT8 value q  + 128  ==  affine UINT8 with z = 128

which `tests/quant/test_affine.py` proves against
:func:`repro.quant.linear.quantize_uint8_biased`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AffineQuantParams", "affine_quantize", "affine_dequantize"]


@dataclass(frozen=True)
class AffineQuantParams:
    """``q = clip(round(x * scale) + zero_point)`` on ``bits``-wide ints.

    ``unsigned=True`` stores in ``[0, 2^b - 1]`` (UINT8-style),
    otherwise in ``[-2^(b-1), 2^(b-1) - 1]``.
    """

    scale: np.ndarray
    zero_point: int
    bits: int = 8
    unsigned: bool = True

    def __post_init__(self):
        object.__setattr__(self, "scale", np.asarray(self.scale, dtype=np.float64))
        if self.bits < 2 or self.bits > 16:
            raise ValueError(f"unsupported bit width {self.bits}")
        if np.any(self.scale <= 0) or not np.all(np.isfinite(self.scale)):
            raise ValueError("scale must be finite and positive")
        if not self.qmin <= self.zero_point <= self.qmax:
            raise ValueError(
                f"zero point {self.zero_point} outside [{self.qmin}, {self.qmax}]"
            )

    @property
    def qmin(self) -> int:
        return 0 if self.unsigned else -(1 << (self.bits - 1))

    @property
    def qmax(self) -> int:
        return (1 << self.bits) - 1 if self.unsigned else (1 << (self.bits - 1)) - 1

    @property
    def dtype(self):
        if self.bits <= 8:
            return np.uint8 if self.unsigned else np.int8
        return np.uint16 if self.unsigned else np.int16

    @classmethod
    def from_min_max(cls, lo: float, hi: float, bits: int = 8,
                     unsigned: bool = True) -> "AffineQuantParams":
        """Standard asymmetric calibration: map ``[lo, hi]`` onto the
        full integer range, nudging so that FP zero is exactly
        representable (required so zero padding stays exact)."""
        lo = min(float(lo), 0.0)
        hi = max(float(hi), 0.0)
        if hi == lo:
            hi = lo + 1.0
        qmin = 0 if unsigned else -(1 << (bits - 1))
        qmax = (1 << bits) - 1 if unsigned else (1 << (bits - 1)) - 1
        scale = (qmax - qmin) / (hi - lo)
        zero_point = int(round(qmin - lo * scale))
        zero_point = int(np.clip(zero_point, qmin, qmax))
        return cls(scale=scale, zero_point=zero_point, bits=bits, unsigned=unsigned)


def affine_quantize(x: np.ndarray, params: AffineQuantParams) -> np.ndarray:
    q = np.rint(np.asarray(x, dtype=np.float64) * params.scale) + params.zero_point
    np.clip(q, params.qmin, params.qmax, out=q)
    return q.astype(params.dtype)


def affine_dequantize(q: np.ndarray, params: AffineQuantParams) -> np.ndarray:
    return (np.asarray(q, dtype=np.float64) - params.zero_point) / params.scale
