"""KL-divergence threshold calibration (paper Eq. 7).

Implements the TensorRT-style entropy calibration [Migacz 2017] LoWino
uses to pick the quantization threshold ``tau``:

    tau = argmin_tau' KL( P(X) || P(Q_tau'(X)) )

The search scans truncation points ``i`` over the magnitude histogram.
For each candidate, the reference distribution ``P`` is the histogram
clipped at ``i`` with the clipped-off mass folded into the last bin
(saturation), and ``Q`` is what an INT8 quantizer would reconstruct:
the ``i`` bins are merged into ``qlevels = 2^(b-1)`` quantization levels
and re-expanded uniformly over the nonzero source bins.  The ``i``
minimizing ``KL(P || Q)`` defines ``tau = (i + 0.5) * bin_width``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import entropy

from .observer import HistogramObserver

__all__ = ["kl_divergence_threshold", "EntropyCalibrator", "CalibrationResult"]


def _quantized_reconstruction(hist: np.ndarray, qlevels: int) -> np.ndarray:
    """Merge ``hist`` into ``qlevels`` buckets and expand back uniformly.

    The expansion distributes each bucket's mass evenly over the source
    bins that were *nonzero*, mirroring how dequantized values land only
    where data existed.  Fully vectorized (this runs hundreds of times
    per threshold search).
    """
    nbins = hist.size
    edges = np.linspace(0, nbins, qlevels + 1).astype(np.int64)
    # Bucket index of every bin, then per-bucket mass / live-bin counts.
    bucket = np.searchsorted(edges[1:], np.arange(nbins), side="right")
    starts = np.unique(edges[:-1])
    mass = np.add.reduceat(hist, starts)
    nonzero = hist > 0
    live = np.add.reduceat(nonzero.astype(np.int64), starts)
    # Map reduceat segments back to the full qlevels indexing.
    seg_of_bucket = np.searchsorted(starts, edges[:-1], side="right") - 1
    per_bucket = np.zeros(qlevels, dtype=np.float64)
    valid = live[seg_of_bucket] > 0
    per_bucket[valid] = mass[seg_of_bucket][valid] / live[seg_of_bucket][valid]
    out = np.where(nonzero, per_bucket[bucket], 0.0)
    return out


def kl_divergence_threshold(
    observer: HistogramObserver,
    bits: int = 8,
    min_bins: int | None = None,
    stride: int = 1,
) -> "CalibrationResult":
    """Scan truncation points and return the KL-optimal threshold.

    Parameters
    ----------
    observer:
        A populated :class:`HistogramObserver`.
    bits:
        Target signed bit width; the quantizer has ``2^(b-1)`` magnitude
        levels (128 for INT8).
    min_bins:
        Smallest truncation point to consider (defaults to the number of
        quantization levels, as in TensorRT).
    stride:
        Evaluate every ``stride``-th truncation point (speed knob; 1 =
        exhaustive).
    """
    if observer.count == 0:
        raise RuntimeError("cannot calibrate an empty observer")
    qlevels = 1 << (bits - 1)
    counts = observer.counts.astype(np.float64)
    nbins = counts.size
    # Zero-bin smoothing (TensorRT's `bins[0] = bins[1]`): post-ReLU
    # tensors concentrate enormous mass at zero; left as-is that spike
    # dominates the KL objective and drives the search toward absurdly
    # small truncation points that clip real signal.
    if nbins >= 2:
        counts[0] = counts[1]
    start = qlevels if min_bins is None else max(min_bins, 2)
    top = int(np.flatnonzero(counts)[-1]) + 1 if counts.any() else 0
    if top <= start:
        # Degenerate histogram: everything fits below the minimum scan
        # point; fall back to the max-abs threshold.
        tau = observer.threshold_minmax()
        return CalibrationResult(threshold=tau, kl=0.0, bin_index=top, scanned=0)

    tail = counts[::-1].cumsum()[::-1]  # tail[i] = counts[i:].sum()

    def kl_at(i: int) -> float:
        ref = counts[:i].copy()
        ref[-1] += tail[i] if i < nbins else 0.0  # saturated mass
        ref_sum = ref.sum()
        if ref_sum == 0:
            return np.inf
        cand = _quantized_reconstruction(counts[:i], qlevels)
        cand_sum = cand.sum()
        if cand_sum == 0:
            return np.inf
        # entropy() treats qk==0 where pk>0 as infinite KL, which
        # correctly penalizes reconstructions that drop populated bins.
        return float(entropy(ref / ref_sum, cand / cand_sum))

    # Coarse-to-fine search: scan at a coarse stride, then refine around
    # the best coarse point at the requested stride.  KL(i) is smooth
    # enough in practice that this matches the exhaustive scan.
    coarse = max(stride, 16)
    best_kl = np.inf
    best_i = top
    scanned = 0
    candidates = list(range(start, top + 1, coarse))
    if candidates[-1] != top:
        candidates.append(top)
    for i in candidates:
        kl = kl_at(i)
        scanned += 1
        if np.isfinite(kl) and kl < best_kl:
            best_kl, best_i = kl, i
    lo = max(start, best_i - coarse)
    hi = min(top, best_i + coarse)
    for i in range(lo, hi + 1, stride):
        kl = kl_at(i)
        scanned += 1
        if np.isfinite(kl) and kl < best_kl:
            best_kl, best_i = kl, i
    tau = (best_i + 0.5) * observer.bin_width
    return CalibrationResult(
        threshold=tau,
        kl=best_kl if np.isfinite(best_kl) else 0.0,
        bin_index=best_i,
        scanned=scanned,
    )


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a threshold search."""

    threshold: float
    kl: float
    bin_index: int
    scanned: int


class EntropyCalibrator:
    """Batch-wise calibration driver for one tensor (or tensor slice).

    Feed calibration batches with :meth:`collect`; call :meth:`threshold`
    to run the KL search.  ``method='minmax'`` bypasses the search and
    returns ``||x||_inf`` (the non-optimal baseline the paper mentions).
    """

    def __init__(self, bins: int = 2048, bits: int = 8, stride: int = 1) -> None:
        self.observer = HistogramObserver(bins=bins)
        self.bits = bits
        self.stride = stride

    def collect(self, x: np.ndarray) -> None:
        self.observer.observe(x)

    def threshold(self, method: str = "kl") -> float:
        if method == "kl":
            return kl_divergence_threshold(
                self.observer, bits=self.bits, stride=self.stride
            ).threshold
        if method == "minmax":
            return self.observer.threshold_minmax()
        raise ValueError(f"unknown calibration method {method!r}")
