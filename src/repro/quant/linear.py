"""Linear symmetric quantization with saturation (paper Eqs. 4-6).

The quantizer maps FP32 values into signed ``b``-bit integers::

    Q(x)  = saturate_int8(round(alpha * x))        alpha = (2^(b-1) - 1) / tau
    Q'(q) = q / alpha

``tau`` is the calibration threshold: values in ``[-tau, +tau]`` map onto
the full integer range, values outside saturate.  LoWino applies this in
the *Winograd domain*; the baselines apply it in the spatial domain.  The
functions are domain-agnostic -- the schemes in
:mod:`repro.quant.schemes` decide what tensor they are applied to.

Rounding is round-half-to-even (``np.rint``), matching x86 SIMD
``cvtps2dq`` default rounding, which is what a VNNI kernel would use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantParams",
    "scale_for_threshold",
    "quantize",
    "dequantize",
    "quantize_uint8_biased",
]


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor (or per-slice) symmetric quantization parameters.

    Attributes
    ----------
    scale:
        ``alpha`` of Eq. 5 -- multiply FP32 by this to reach integer space.
        May be a scalar or an ndarray broadcastable against the tensor
        (e.g. one scale per Winograd tile position).
    bits:
        Bit width of the signed integer target (8 for INT8).
    """

    scale: np.ndarray
    bits: int = 8

    def __post_init__(self):
        object.__setattr__(self, "scale", np.asarray(self.scale, dtype=np.float64))
        if self.bits < 2 or self.bits > 16:
            raise ValueError(f"unsupported bit width {self.bits}")
        if np.any(self.scale <= 0) or not np.all(np.isfinite(self.scale)):
            raise ValueError("quantization scale must be finite and positive")

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def qmin(self) -> int:
        return -self.qmax - 1

    @property
    def threshold(self) -> np.ndarray:
        """tau implied by the scale (Eq. 5 inverted)."""
        return self.qmax / self.scale

    @classmethod
    def from_threshold(cls, tau, bits: int = 8) -> "QuantParams":
        return cls(scale=scale_for_threshold(tau, bits=bits), bits=bits)


def scale_for_threshold(tau, bits: int = 8) -> np.ndarray:
    """Eq. 5: alpha = (2^(b-1) - 1) / tau.

    ``tau`` may be scalar or array; zero/negative thresholds are clamped
    to a tiny positive value so all-zero calibration slices stay usable.
    """
    tau = np.asarray(tau, dtype=np.float64)
    tau = np.maximum(tau, np.finfo(np.float64).tiny * 1e20)
    return ((1 << (bits - 1)) - 1) / tau


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Eq. 4: saturating linear quantization to signed integers.

    Returns ``int8`` for ``bits <= 8``, ``int16`` otherwise.
    """
    q = np.rint(np.asarray(x, dtype=np.float64) * params.scale)
    np.clip(q, params.qmin, params.qmax, out=q)
    return q.astype(np.int8 if params.bits <= 8 else np.int16)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Eq. 6: recover FP values, ``q / alpha``."""
    return np.asarray(q, dtype=np.float64) / params.scale


def quantize_uint8_biased(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize and add the +128 compensation bias (Section 4.2.1).

    ``vpdpbusd`` requires its first operand to be *unsigned*; LoWino
    quantizes to signed INT8 and adds 128 during the input transform so
    the stored operand is UINT8.  The filter-side correction term
    ``-128 * sum_C(U)`` removes the bias again (Eq. 9).
    """
    if params.bits != 8:
        raise ValueError("the +128 compensation trick is specific to 8-bit data")
    q = quantize(x, params).astype(np.int16)
    return (q + 128).astype(np.uint8)
