"""Output requantization: keeping activations INT8 between layers.

The paper's pipeline de-quantizes the GEMM accumulators to FP32 in the
output-transform stage (Fig. 3).  Deployed INT8 networks additionally
*re-quantize* the FP32 output (fused with ReLU) so the next layer reads
INT8 -- oneDNN's quantize/de-quantize steps that the paper's baselines
"include" in their timings.  This module provides that deployment glue:

* :func:`requantize` -- fused ReLU + saturating INT8 quantization;
* :class:`RequantizedConv` -- wraps any convolution engine of this
  repository so its outputs stay INT8, with calibration of the output
  threshold over sample batches.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .linear import QuantParams, dequantize, quantize
from .observer import HistogramObserver
from .calibration import kl_divergence_threshold

__all__ = ["requantize", "RequantizedConv"]


def requantize(
    y_fp: np.ndarray, params: QuantParams, relu: bool = False
) -> np.ndarray:
    """Quantize an FP32 layer output to INT8, optionally fusing ReLU.

    The fusion order matters and matches deployment practice: clamp at
    zero first, then quantize -- so the negative half of the INT8 range
    is never wasted encoding values ReLU would discard... except that a
    *symmetric* quantizer keeps the zero point at 0 either way; the
    saving is purely the avoided extra pass over the data.
    """
    if relu:
        y_fp = np.maximum(y_fp, 0.0)
    return quantize(y_fp, params)


class RequantizedConv:
    """INT8-in / INT8-out convolution wrapper.

    ``engine`` is any callable NCHW-FP32 -> NCHW-FP32 convolution from
    this repository (LoWinoConv2d, Int8DirectConv2d, ...).  The wrapper
    owns the *input* de-quantization and *output* re-quantization, so a
    chain of RequantizedConv layers passes INT8 tensors end to end::

        q1 = layer1(q0)        # int8 -> int8
        q2 = layer2(q1)

    Calibrate the output threshold with :meth:`calibrate_output` (KL by
    default, like the input thresholds).
    """

    def __init__(
        self,
        engine: Callable[[np.ndarray], np.ndarray],
        input_params: QuantParams,
        output_params: Optional[QuantParams] = None,
        relu: bool = False,
    ) -> None:
        self.engine = engine
        self.input_params = input_params
        self.output_params = output_params
        self.relu = relu

    def calibrate_output(
        self, sample_batches: Iterable[np.ndarray], method: str = "kl",
        bits: int = 8,
    ) -> "RequantizedConv":
        """Fix the output threshold from FP32 sample batches."""
        obs = HistogramObserver()
        for batch in sample_batches:
            y = self.engine(np.asarray(batch, dtype=np.float64))
            if self.relu:
                y = np.maximum(y, 0.0)
            obs.observe(y)
        if method == "kl":
            tau = kl_divergence_threshold(obs, bits=bits).threshold
        elif method == "minmax":
            tau = obs.threshold_minmax()
        else:
            raise ValueError(f"unknown calibration method {method!r}")
        self.output_params = QuantParams.from_threshold(tau, bits=bits)
        return self

    def __call__(self, q_in: np.ndarray) -> np.ndarray:
        """INT8 NCHW in, INT8 NCHW out."""
        if self.output_params is None:
            raise RuntimeError(
                "output threshold not calibrated; call calibrate_output()"
            )
        if q_in.dtype != np.int8:
            raise ValueError(f"expected int8 input, got {q_in.dtype}")
        x = dequantize(q_in, self.input_params)
        y = self.engine(x)
        return requantize(y, self.output_params, relu=self.relu)

    def dequantize_output(self, q_out: np.ndarray) -> np.ndarray:
        if self.output_params is None:
            raise RuntimeError("output threshold not calibrated")
        return dequantize(q_out, self.output_params)
