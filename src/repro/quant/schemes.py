"""Quantization schemes: spatial domain vs Winograd domain.

The crux of the paper (Section 3): *where* quantization happens decides
whether large-tile low-precision Winograd is viable.

* Spatial-domain scheme (baselines, Figure 2): quantize ``d`` and ``g``
  before the Winograd transforms.  The integer transforms then amplify
  the value range by up to ``(max row L1 of B^T)^2`` (4x / 100x for
  F(2,3) / F(4,3)), forcing either an up-cast to INT16 (ncnn) or a lossy
  down-scale back into INT8 (oneDNN).

* Winograd-domain scheme (LoWino, Eq. 3): transform in FP32 first, then
  quantize the transformed tiles ``V`` and ``U``.  Because each of the
  ``T = alpha^2`` tile positions is an independent GEMM, LoWino can give
  every position its own scale, which is what this module implements
  (``per_position=True`` is the default; per-tensor is available for
  ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .calibration import EntropyCalibrator
from .linear import QuantParams, scale_for_threshold

__all__ = [
    "WinogradDomainCalibrator",
    "per_position_minmax_params",
    "per_tensor_minmax_params",
    "spatial_params_from_tensor",
]


def per_tensor_minmax_params(x: np.ndarray, bits: int = 8) -> QuantParams:
    """One symmetric scale for the whole tensor from ``max |x|``."""
    tau = float(np.max(np.abs(x))) if x.size else 1.0
    return QuantParams.from_threshold(tau if tau > 0 else 1.0, bits=bits)


def per_position_minmax_params(
    x: np.ndarray, position_axis: int = 0, bits: int = 8
) -> QuantParams:
    """One scale per Winograd tile position.

    ``x`` is a transformed operand whose ``position_axis`` indexes the
    ``T = alpha^2`` tile positions (e.g. the ``(T, N, C)`` GEMM operand).
    The returned scale broadcasts against ``x``.
    """
    axes = tuple(i for i in range(x.ndim) if i != position_axis)
    tau = np.max(np.abs(x), axis=axes) if x.size else np.ones(x.shape[position_axis])
    tau = np.where(tau > 0, tau, 1.0)
    shape = [1] * x.ndim
    shape[position_axis] = x.shape[position_axis]
    return QuantParams(scale=scale_for_threshold(tau, bits=bits).reshape(shape), bits=bits)


def spatial_params_from_tensor(x: np.ndarray, bits: int = 8) -> QuantParams:
    """Spatial-domain per-tensor parameters (used by the ncnn/oneDNN
    baselines before any transform runs)."""
    return per_tensor_minmax_params(x, bits=bits)


@dataclass
class WinogradDomainCalibrator:
    """Calibrates per-position thresholds for transformed activations.

    Feed each calibration batch's transformed operand ``V`` with shape
    ``(T, N, C)`` via :meth:`collect`; :meth:`params` runs the KL search
    per position (Eq. 7) and returns :class:`QuantParams` whose scale has
    shape ``(T, 1, 1)``, broadcasting over the batched GEMM operand.
    """

    positions: int
    bits: int = 8
    bins: int = 2048
    stride: int = 4  # KL-scan stride; 4 keeps calibration fast at full fidelity

    def __post_init__(self) -> None:
        self._calibs = [
            EntropyCalibrator(bins=self.bins, bits=self.bits, stride=self.stride)
            for _ in range(self.positions)
        ]
        self._batches = 0

    def collect(self, v: np.ndarray) -> None:
        if v.shape[0] != self.positions:
            raise ValueError(
                f"operand has {v.shape[0]} positions, calibrator built for {self.positions}"
            )
        for t in range(self.positions):
            self._calibs[t].collect(v[t])
        self._batches += 1

    @property
    def batches_seen(self) -> int:
        return self._batches

    def thresholds(self, method: str = "kl") -> np.ndarray:
        if self._batches == 0:
            raise RuntimeError("no calibration batches collected")
        return np.array([c.threshold(method=method) for c in self._calibs])

    def params(self, method: str = "kl") -> QuantParams:
        tau = self.thresholds(method=method)
        scale = scale_for_threshold(tau, bits=self.bits).reshape(self.positions, 1, 1)
        return QuantParams(scale=scale, bits=self.bits)
