"""Statistics observers used by post-training calibration.

Calibration (Section 3) runs the network over a few hundred unlabeled
sample images and records the distribution of every tensor that will be
quantized.  Two observers are provided:

* :class:`MinMaxObserver` -- tracks ``max |x|``; the naive ``tau = ||x||_inf``
  threshold the paper mentions as the non-optimal baseline.
* :class:`HistogramObserver` -- maintains a fixed-bin histogram of ``|x|``
  with dynamic range growth, feeding the KL-divergence threshold search in
  :mod:`repro.quant.calibration`.

Observers accept repeated :meth:`observe` calls (one per calibration
batch) and merge statistics exactly: the histogram range grows by
power-of-two doubling, under which existing bins merge without loss of
resolution alignment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxObserver", "HistogramObserver"]


class MinMaxObserver:
    """Tracks the maximum absolute value seen across all observed batches."""

    def __init__(self) -> None:
        self.max_abs = 0.0
        self.count = 0

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if x.size == 0:
            return
        self.max_abs = max(self.max_abs, float(np.max(np.abs(x))))
        self.count += x.size

    def threshold(self) -> float:
        """tau = ||x||_inf over everything observed."""
        if self.count == 0:
            raise RuntimeError("observer has seen no data")
        return self.max_abs if self.max_abs > 0 else 1.0


class HistogramObserver:
    """Histogram of ``|x|`` over ``[0, range)`` with power-of-two growth.

    Parameters
    ----------
    bins:
        Number of histogram bins; must be a power of two so that range
        doubling merges bins exactly (2048 matches TensorRT's calibrator).
    """

    def __init__(self, bins: int = 2048) -> None:
        if bins < 2 or bins & (bins - 1):
            raise ValueError(f"bins must be a power of two >= 2, got {bins}")
        self.bins = bins
        self.counts = np.zeros(bins, dtype=np.int64)
        self.range = 0.0
        self.count = 0

    def _grow_range(self, new_max: float) -> None:
        """Double the histogram range until ``new_max`` fits, merging bins."""
        # A subnormal range underflows the bin width and np.histogram
        # cannot form ``bins`` distinct edges; floor the range so every
        # bin spans at least one normal float (denormal observations
        # then simply land in bin 0).
        new_max = max(new_max, float(np.finfo(np.float64).tiny) * self.bins)
        if self.range == 0.0:
            self.range = float(new_max)
            return
        while self.range < new_max:
            merged = self.counts.reshape(self.bins // 2, 2).sum(axis=1)
            self.counts[: self.bins // 2] = merged
            self.counts[self.bins // 2 :] = 0
            self.range *= 2.0

    def observe(self, x: np.ndarray) -> None:
        mags = np.abs(np.asarray(x, dtype=np.float64)).ravel()
        if mags.size == 0:
            return
        batch_max = float(mags.max())
        if batch_max > 0:
            # nextafter keeps the max sample strictly inside the top bin.
            self._grow_range(np.nextafter(batch_max, np.inf))
        if self.range > 0:
            hist, _ = np.histogram(mags, bins=self.bins, range=(0.0, self.range))
            self.counts += hist
        else:
            # All-zero batch before any range exists: zeros belong to
            # bin 0 whatever range is eventually established.
            self.counts[0] += mags.size
        self.count += mags.size

    @property
    def bin_width(self) -> float:
        return self.range / self.bins if self.range > 0 else 0.0

    def max_abs(self) -> float:
        """Upper edge of the highest populated bin (~ max |x|)."""
        nz = np.flatnonzero(self.counts)
        if nz.size == 0:
            return 0.0
        return (nz[-1] + 1) * self.bin_width

    def threshold_minmax(self) -> float:
        t = self.max_abs()
        return t if t > 0 else 1.0
