"""Post-training quantization substrate.

Linear symmetric quantization (Eqs. 4-6), histogram observers, TensorRT-
style KL-divergence calibration (Eq. 7), and the spatial- vs Winograd-
domain schemes that distinguish the baselines from LoWino.
"""

from .affine import AffineQuantParams, affine_dequantize, affine_quantize
from .calibration import CalibrationResult, EntropyCalibrator, kl_divergence_threshold
from .linear import (
    QuantParams,
    dequantize,
    quantize,
    quantize_uint8_biased,
    scale_for_threshold,
)
from .observer import HistogramObserver, MinMaxObserver
from .requant import RequantizedConv, requantize
from .schemes import (
    WinogradDomainCalibrator,
    per_position_minmax_params,
    per_tensor_minmax_params,
    spatial_params_from_tensor,
)

__all__ = [
    "AffineQuantParams",
    "affine_dequantize",
    "affine_quantize",
    "CalibrationResult",
    "EntropyCalibrator",
    "kl_divergence_threshold",
    "QuantParams",
    "dequantize",
    "quantize",
    "quantize_uint8_biased",
    "scale_for_threshold",
    "HistogramObserver",
    "MinMaxObserver",
    "RequantizedConv",
    "requantize",
    "WinogradDomainCalibrator",
    "per_position_minmax_params",
    "per_tensor_minmax_params",
    "spatial_params_from_tensor",
]
