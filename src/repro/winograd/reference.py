"""Reference full-precision Winograd convolution (Eq. 1).

This is the algorithmic baseline every low-precision variant is checked
against.  It runs the pipeline all other implementations share:

1. extract overlapping input tiles,
2. input transform  V = B^T d B,
3. filter transform U = G g G^T,
4. reduce the channel-wise elementwise products to ``T = alpha^2``
   batched matrix multiplications Z_t = V_t @ U_t  (Section 4.3),
5. output transform y = A^T Z A,
6. assemble output tiles.

A slow exact-rational variant is provided for the property tests: over
``Fraction`` arithmetic the Winograd identity is *exact*, which lets the
test suite distinguish algorithmic bugs from floating-point noise.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .cook_toom import WinogradAlgorithm
from .tiling import assemble_output, extract_tiles, tile_grid
from .transforms import filter_transform, input_transform, output_transform

__all__ = [
    "winograd_conv2d_fp32",
    "winograd_domain_matrices",
    "winograd_conv2d_exact",
]


def winograd_domain_matrices(
    alg: WinogradAlgorithm, images: np.ndarray
) -> tuple[np.ndarray, "object"]:
    """Transform images into the batched-GEMM operand ``V``.

    Returns ``(V, grid)`` where ``V`` has shape ``(T, N, C)`` with
    ``T = alpha^2`` and ``N = B * tiles_h * tiles_w`` (the tall, skinny
    GEMM operand of Section 4.3) and ``grid`` is the tile geometry needed
    to assemble the output.
    """
    b, c, h, w = images.shape
    grid = tile_grid(alg, h, w)
    tiles = extract_tiles(grid, images)  # (B, C, th, tw, a, a)
    v = input_transform(alg, tiles)  # (B, C, th, tw, a, a)
    n = b * grid.tiles_h * grid.tiles_w
    t = alg.tile_elements
    # (B, th, tw, C, a, a) -> (N, C, T) -> (T, N, C)
    v = v.transpose(0, 2, 3, 1, 4, 5).reshape(n, c, t).transpose(2, 0, 1)
    return np.ascontiguousarray(v), grid


def _filter_gemm_operand(alg: WinogradAlgorithm, filters: np.ndarray) -> np.ndarray:
    """Transform filters (K, C, r, r) into U with shape (T, C, K)."""
    k, c, r1, r2 = filters.shape
    if (r1, r2) != (alg.r, alg.r):
        raise ValueError(f"filter spatial shape {(r1, r2)} != r={alg.r}")
    u = filter_transform(alg, filters)  # (K, C, a, a)
    return np.ascontiguousarray(u.reshape(k, c, alg.tile_elements).transpose(2, 1, 0))


def winograd_conv2d_fp32(
    images: np.ndarray, filters: np.ndarray, alg: WinogradAlgorithm
) -> np.ndarray:
    """Full-precision F(m x m, r x r) convolution, NCHW, VALID, stride 1.

    Parameters
    ----------
    images:
        ``(B, C, H, W)`` float array (padding, if any, applied by caller).
    filters:
        ``(K, C, r, r)`` float array.
    alg:
        The Winograd algorithm to use.

    Returns
    -------
    ``(B, K, H - r + 1, W - r + 1)`` float64 array.
    """
    images = np.asarray(images, dtype=np.float64)
    filters = np.asarray(filters, dtype=np.float64)
    b = images.shape[0]
    k = filters.shape[0]
    if images.shape[1] != filters.shape[1]:
        raise ValueError(
            f"channel mismatch: images C={images.shape[1]}, filters C={filters.shape[1]}"
        )
    v, grid = winograd_domain_matrices(alg, images)  # (T, N, C)
    u = _filter_gemm_operand(alg, filters)  # (T, C, K)
    z = np.matmul(v, u)  # (T, N, K)
    n = z.shape[1]
    t = alg.tile_elements
    # (T, N, K) -> (N, K, a, a) -> (B, K, th, tw, a, a)
    z = z.transpose(1, 2, 0).reshape(b, grid.tiles_h, grid.tiles_w, k, alg.alpha, alg.alpha)
    z = z.transpose(0, 3, 1, 2, 4, 5)
    y = output_transform(alg, z)  # (B, K, th, tw, m, m)
    return assemble_output(grid, y)


def winograd_conv2d_exact(images, filters, alg: WinogradAlgorithm) -> list:
    """Exact-rational 2D Winograd convolution of a single-channel tile.

    ``images`` is an ``alpha x alpha`` nested sequence and ``filters`` an
    ``r x r`` nested sequence; entries may be ints or Fractions.  Returns
    the ``m x m`` output as nested lists of Fractions.  Used only by the
    property tests to certify the construction independent of float error.
    """
    from . import rational

    d = rational.from_rows(images)
    g = rational.from_rows(filters)
    bt = [list(row) for row in alg.bt_exact]
    gm = [list(row) for row in alg.g_exact]
    at = [list(row) for row in alg.at_exact]
    v = rational.matmul(rational.matmul(bt, d), rational.transpose(bt))
    u = rational.matmul(rational.matmul(gm, g), rational.transpose(gm))
    z = [[uv * vv for uv, vv in zip(urow, vrow)] for urow, vrow in zip(u, v)]
    y = rational.matmul(rational.matmul(at, z), rational.transpose(at))
    return y
