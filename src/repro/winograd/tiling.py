"""Tile extraction and output assembly for Winograd convolution.

Input images are decomposed into overlapping ``alpha x alpha`` tiles with
stride ``m`` (overlap ``r - 1``) -- Section 2.2.  Output tiles of size
``m x m`` are written back disjointly.  Images whose spatial extent is not
a multiple of ``m`` are zero-padded on the bottom/right; the assembly step
crops the padding away, so extract/assemble round-trips exactly.

Shapes follow the NCHW convention used throughout the reproduction:
images are ``(B, C, H, W)``; extracted tiles are ``(B, C, tiles_h,
tiles_w, alpha, alpha)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cook_toom import WinogradAlgorithm

__all__ = ["TileGrid", "tile_grid", "extract_tiles", "assemble_output"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of the tile decomposition of one convolutional layer.

    ``out_h``/``out_w`` are the true (unpadded) output sizes for a VALID
    convolution after any explicit input padding has been applied by the
    caller; ``tiles_h``/``tiles_w`` include right/bottom padding tiles.
    """

    m: int
    r: int
    in_h: int
    in_w: int

    @property
    def alpha(self) -> int:
        return self.m + self.r - 1

    @property
    def out_h(self) -> int:
        return self.in_h - self.r + 1

    @property
    def out_w(self) -> int:
        return self.in_w - self.r + 1

    @property
    def tiles_h(self) -> int:
        return -(-self.out_h // self.m)  # ceil division

    @property
    def tiles_w(self) -> int:
        return -(-self.out_w // self.m)

    @property
    def tiles_per_image(self) -> int:
        return self.tiles_h * self.tiles_w

    @property
    def padded_in_h(self) -> int:
        return (self.tiles_h - 1) * self.m + self.alpha

    @property
    def padded_in_w(self) -> int:
        return (self.tiles_w - 1) * self.m + self.alpha


def tile_grid(alg: WinogradAlgorithm, in_h: int, in_w: int) -> TileGrid:
    """Build the tile geometry for an ``in_h x in_w`` (already padded) input."""
    if in_h < alg.r or in_w < alg.r:
        raise ValueError(
            f"input {in_h}x{in_w} smaller than filter {alg.r}x{alg.r}"
        )
    return TileGrid(m=alg.m, r=alg.r, in_h=in_h, in_w=in_w)


def extract_tiles(
    grid: TileGrid, images: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Extract overlapping input tiles.

    Parameters
    ----------
    grid:
        Geometry from :func:`tile_grid`.
    images:
        ``(B, C, H, W)`` array with ``H == grid.in_h``, ``W == grid.in_w``.
    out:
        Optional preallocated destination (same shape/dtype as the
        result).  The copy out of the overlapping view lands there
        instead of a fresh allocation; values are identical either way.

    Returns
    -------
    ``(B, C, tiles_h, tiles_w, alpha, alpha)`` array.  The data is copied
    (tiles overlap), zero-padded on the bottom/right where the final tiles
    extend past the image.
    """
    b, c, h, w = images.shape
    if (h, w) != (grid.in_h, grid.in_w):
        raise ValueError(f"image spatial shape {(h, w)} != grid {(grid.in_h, grid.in_w)}")
    ph, pw = grid.padded_in_h, grid.padded_in_w
    if (ph, pw) != (h, w):
        padded = np.zeros((b, c, ph, pw), dtype=images.dtype)
        padded[:, :, :h, :w] = images
    else:
        padded = images
    # Overlapping view via stride tricks, then one contiguous copy.
    sb, sc, sh, sw = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(b, c, grid.tiles_h, grid.tiles_w, grid.alpha, grid.alpha),
        strides=(sb, sc, sh * grid.m, sw * grid.m, sh, sw),
        writeable=False,
    )
    if out is None:
        return np.ascontiguousarray(view)
    np.copyto(out, view)
    return out


def assemble_output(grid: TileGrid, tiles: np.ndarray) -> np.ndarray:
    """Assemble disjoint ``m x m`` output tiles into ``(B, K, out_h, out_w)``.

    ``tiles`` has shape ``(B, K, tiles_h, tiles_w, m, m)``; padding rows
    and columns beyond the true output size are discarded.
    """
    b, k, th, tw, m1, m2 = tiles.shape
    if (th, tw) != (grid.tiles_h, grid.tiles_w) or (m1, m2) != (grid.m, grid.m):
        raise ValueError(
            f"tile array shape {tiles.shape} inconsistent with grid "
            f"({grid.tiles_h},{grid.tiles_w}) tiles of {grid.m}x{grid.m}"
        )
    # (B, K, th, m, tw, m) -> contiguous full padded output.
    full = tiles.transpose(0, 1, 2, 4, 3, 5).reshape(b, k, th * grid.m, tw * grid.m)
    return np.ascontiguousarray(full[:, :, : grid.out_h, : grid.out_w])
