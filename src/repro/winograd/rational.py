"""Tiny exact linear-algebra kernel over :class:`fractions.Fraction`.

The Cook-Toom construction needs an exact inverse of a (generalized)
Vandermonde matrix; doing this in floating point would contaminate the
transformation matrices with rounding error before the algorithm even
runs.  NumPy has no rational dtype, so we carry the handful of exact
operations we need on plain nested lists of ``Fraction``.

These routines are only used at algorithm-construction time (matrices of
size <= ~10), never in the convolution hot path, so clarity beats speed.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

import numpy as np

__all__ = [
    "FracMatrix",
    "identity",
    "matmul",
    "transpose",
    "inverse",
    "to_float",
    "from_rows",
    "scale_row",
]

FracMatrix = List[List[Fraction]]


def from_rows(rows: Sequence[Sequence]) -> FracMatrix:
    """Build a Fraction matrix from any nested sequence of numbers."""
    return [[Fraction(v) for v in row] for row in rows]


def identity(n: int) -> FracMatrix:
    """The n-by-n identity matrix."""
    return [[Fraction(int(i == j)) for j in range(n)] for i in range(n)]


def transpose(a: FracMatrix) -> FracMatrix:
    return [list(col) for col in zip(*a)]


def matmul(a: FracMatrix, b: FracMatrix) -> FracMatrix:
    """Exact matrix product ``a @ b``."""
    if not a or not b:
        raise ValueError("empty matrix operand")
    inner_a = len(a[0])
    if inner_a != len(b):
        raise ValueError(f"shape mismatch: ({len(a)},{inner_a}) @ ({len(b)},{len(b[0])})")
    bt = transpose(b)
    return [[sum((x * y for x, y in zip(row, col)), Fraction(0)) for col in bt] for row in a]


def scale_row(a: FracMatrix, i: int, s: Fraction) -> None:
    """In-place multiply row ``i`` of ``a`` by ``s``."""
    a[i] = [v * s for v in a[i]]


def inverse(a: FracMatrix) -> FracMatrix:
    """Exact inverse via Gauss-Jordan elimination with partial pivoting.

    Raises :class:`ZeroDivisionError` if ``a`` is singular.
    """
    n = len(a)
    if any(len(row) != n for row in a):
        raise ValueError("inverse requires a square matrix")
    # Work on an augmented copy [a | I].
    aug = [list(row) + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(a)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot is None:
            raise ZeroDivisionError("matrix is singular")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = Fraction(1) / aug[col][col]
        aug[col] = [v * inv_p for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def to_float(a: FracMatrix, dtype=np.float64) -> np.ndarray:
    """Convert an exact matrix to a NumPy array."""
    return np.array([[float(v) for v in row] for row in a], dtype=dtype)
