"""Quantitative error analysis of Winograd-domain quantization.

Barabasz et al. (reference [1] of the paper) analyze rounding error in
Winograd convolution through the transform matrices' norms; the same
machinery predicts *quantization* noise.  The key observation for
LoWino-style pipelines with per-tile-position scales:

* the quantization step of position ``p`` of ``V`` tracks that
  position's dynamic range, which for Gaussian-ish inputs scales with
  ``||bt_p||_2`` (the L2 norm of row ``p`` of ``B^T``) -- likewise
  ``||g_p||_2`` for the filter operand;
* the output transform maps position-(p, q) product noise to the
  spatial domain with weight ``at[i,p] * at[j,q]``.

Summing variances gives the per-algorithm noise gain

    c_i   = sum_p at[i,p]^2 ||bt_p||^2 ||g_p||^2          (1D factor)
    gain  = sqrt( mean_{i,j} c_i c_j )                    (2D nesting)

which orders algorithms and interpolation-point sets the same way the
empirical ablations do (F(2,3) << F(4,3)-mixed < F(4,3)-Lavin <
F(6,3)), making the point-set extension checkable against theory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cook_toom import WinogradAlgorithm

__all__ = ["QuantErrorModel", "quant_error_model", "relative_noise_gain"]


@dataclass(frozen=True)
class QuantErrorModel:
    """Noise-propagation constants of one Winograd algorithm."""

    m: int
    r: int
    #: Worst-case 2D value growth of ``B^T d B`` (Section 2.2's 4x/100x).
    input_amplification: float
    #: Position-weighted output noise gain (see module docstring).
    noise_gain: float

    def snr_db(self, bits: int = 8) -> float:
        """Indicative SNR for unit-variance operands: the quantization
        step is ``~4 sigma / 2^{b-1}`` per operand (per-position max
        scaling), noise ~doubles in the product, then scales by the
        algorithm's noise gain relative to F(1,r) (== direct)."""
        rel_step = 4.0 / (1 << (bits - 1))
        per_operand = rel_step / np.sqrt(12.0)
        noise = np.sqrt(2.0) * per_operand * self.noise_gain
        return float(-20.0 * np.log10(max(noise, 1e-300)))


def relative_noise_gain(alg: WinogradAlgorithm) -> float:
    """The position-weighted quantization-noise gain of the 2D algorithm."""
    bt_sq = (alg.bt**2).sum(axis=1)  # ||bt_p||^2 per position
    g_sq = (alg.g**2).sum(axis=1)  # ||g_p||^2 per position
    c = (alg.at**2 * (bt_sq * g_sq)[None, :]).sum(axis=1)  # per output row
    return float(np.sqrt(np.mean(np.outer(c, c))))


def quant_error_model(alg: WinogradAlgorithm) -> QuantErrorModel:
    return QuantErrorModel(
        m=alg.m,
        r=alg.r,
        input_amplification=alg.input_amplification(),
        noise_gain=relative_noise_gain(alg),
    )
