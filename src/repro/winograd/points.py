"""Canonical interpolation-point sets for Cook-Toom / Winograd construction.

The numerical quality of a Winograd algorithm F(m, r) is governed almost
entirely by the interpolation points chosen for the Cook-Toom construction
(Lavin & Gray 2016; Barabasz et al. 2020).  This module provides the
standard point sequence used by wincnn and by the transformation matrices
quoted in the LoWino paper (Eq. 2):

    0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, 1/4, -1/4, ...

F(2, 3) uses the first 3 points, F(4, 3) the first 5, F(6, 3) the first 7.
The point at infinity is always appended implicitly by the construction in
:mod:`repro.winograd.cook_toom` and is not part of this sequence.

All points are exact :class:`fractions.Fraction` values so that the
generated matrices are exact rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

__all__ = ["canonical_points", "MAX_SUPPORTED_POINTS"]

#: The wincnn-style point sequence.  Entries beyond the explicitly listed
#: prefix are generated as +/- powers of two and their reciprocals, which
#: keeps the transform coefficients exactly representable in binary
#: floating point.
_BASE_SEQUENCE: List[Fraction] = [
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-2),
    Fraction(1, 2),
    Fraction(-1, 2),
    Fraction(4),
    Fraction(-4),
    Fraction(1, 4),
    Fraction(-1, 4),
    Fraction(8),
    Fraction(-8),
    Fraction(1, 8),
    Fraction(-1, 8),
]

MAX_SUPPORTED_POINTS = len(_BASE_SEQUENCE)


def canonical_points(count: int) -> List[Fraction]:
    """Return the first ``count`` canonical interpolation points.

    Parameters
    ----------
    count:
        Number of *finite* interpolation points required.  For
        ``F(m, r)`` this is ``m + r - 2`` (one slot of the
        ``m + r - 1`` evaluations is taken by the point at infinity).

    Raises
    ------
    ValueError
        If ``count`` exceeds the supported sequence length or is negative.
    """
    if count < 0:
        raise ValueError(f"point count must be non-negative, got {count}")
    if count > MAX_SUPPORTED_POINTS:
        raise ValueError(
            f"requested {count} interpolation points but only "
            f"{MAX_SUPPORTED_POINTS} canonical points are defined; "
            "pass explicit points to cook_toom instead"
        )
    return list(_BASE_SEQUENCE[:count])
