"""Winograd algorithm substrate: transform generation, tiling, reference conv.

Public surface:

* :func:`winograd_algorithm` / :func:`cook_toom` -- build F(m, r) matrices.
* :class:`WinogradAlgorithm` -- the generated algorithm object.
* :func:`input_transform` / :func:`filter_transform` / :func:`output_transform`
  -- batched 2D transforms.
* :func:`extract_tiles` / :func:`assemble_output` / :func:`tile_grid` --
  overlapping tile decomposition.
* :func:`winograd_conv2d_fp32` -- the FP32 reference convolution.
"""

from .cook_toom import WinogradAlgorithm, amplification_factor, cook_toom, winograd_algorithm
from .error_analysis import QuantErrorModel, quant_error_model, relative_noise_gain
from .ndim import (
    NdTileGrid,
    assemble_output_nd,
    direct_convnd_fp32,
    extract_tiles_nd,
    tile_grid_nd,
    transform_nd,
    winograd_convnd_fp32,
)
from .points import canonical_points
from .reference import winograd_conv2d_exact, winograd_conv2d_fp32, winograd_domain_matrices
from .tiling import TileGrid, assemble_output, extract_tiles, tile_grid
from .transforms import filter_transform, input_transform, output_transform, transform_2d

__all__ = [
    "WinogradAlgorithm",
    "QuantErrorModel",
    "quant_error_model",
    "relative_noise_gain",
    "NdTileGrid",
    "assemble_output_nd",
    "direct_convnd_fp32",
    "extract_tiles_nd",
    "tile_grid_nd",
    "transform_nd",
    "winograd_convnd_fp32",
    "amplification_factor",
    "cook_toom",
    "winograd_algorithm",
    "canonical_points",
    "winograd_conv2d_exact",
    "winograd_conv2d_fp32",
    "winograd_domain_matrices",
    "TileGrid",
    "assemble_output",
    "extract_tiles",
    "tile_grid",
    "filter_transform",
    "input_transform",
    "output_transform",
    "transform_2d",
]
