"""Batched 2D Winograd transforms.

The nested 2D algorithm (Eq. 1 of the paper) applies each 1D transform
matrix along both spatial axes of a tile:

    V = B^T d B        (input transform,  alpha x alpha <- alpha x alpha)
    U = G   g G^T      (filter transform, alpha x alpha <- r x r)
    y = A^T Z A        (output transform, m x m        <- alpha x alpha)

All functions here operate on *batches* of tiles: the two trailing axes
are the spatial tile axes, any leading axes (batch, channel, tile index)
are preserved.  This is the vectorized-NumPy idiom the hot path uses; the
per-element codelet path in :mod:`repro.codelets` exists for op counting
and cross-validation.
"""

from __future__ import annotations

import numpy as np

from .cook_toom import WinogradAlgorithm

__all__ = [
    "transform_2d",
    "input_transform",
    "filter_transform",
    "output_transform",
]


def transform_2d(mat: np.ndarray, tiles: np.ndarray) -> np.ndarray:
    """Apply ``mat @ tile @ mat.T`` over the two trailing axes of ``tiles``.

    ``mat`` has shape (out, in); ``tiles`` (..., in, in); the result has
    shape (..., out, out).
    """
    if tiles.shape[-1] != mat.shape[1] or tiles.shape[-2] != mat.shape[1]:
        raise ValueError(
            f"tile trailing shape {tiles.shape[-2:]} does not match transform "
            f"input size {mat.shape[1]}"
        )
    # (..., i, j) x (o, j) -> (..., i, o); then contract the i axis.
    half = np.einsum("...ij,oj->...io", tiles, mat)
    return np.einsum("pi,...io->...po", mat, half)


def input_transform(alg: WinogradAlgorithm, tiles: np.ndarray) -> np.ndarray:
    """V = B^T d B for a batch of (..., alpha, alpha) input tiles."""
    return transform_2d(alg.bt, tiles)


def filter_transform(alg: WinogradAlgorithm, filters: np.ndarray) -> np.ndarray:
    """U = G g G^T for a batch of (..., r, r) filters."""
    return transform_2d(alg.g, filters)


def output_transform(alg: WinogradAlgorithm, acc: np.ndarray) -> np.ndarray:
    """y = A^T Z A for a batch of (..., alpha, alpha) accumulator tiles."""
    return transform_2d(alg.at, acc)
