"""Batched 2D Winograd transforms.

The nested 2D algorithm (Eq. 1 of the paper) applies each 1D transform
matrix along both spatial axes of a tile:

    V = B^T d B        (input transform,  alpha x alpha <- alpha x alpha)
    U = G   g G^T      (filter transform, alpha x alpha <- r x r)
    y = A^T Z A        (output transform, m x m        <- alpha x alpha)

All functions here operate on *batches* of tiles: the two trailing axes
are the spatial tile axes, any leading axes (batch, channel, tile index)
are preserved.  This is the vectorized-NumPy idiom the hot path uses; the
per-element codelet path in :mod:`repro.codelets` exists for op counting
and cross-validation.
"""

from __future__ import annotations

import numpy as np

from .cook_toom import WinogradAlgorithm

__all__ = [
    "transform_2d",
    "input_transform",
    "filter_transform",
    "output_transform",
]


def transform_2d(mat: np.ndarray, tiles: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply ``mat @ tile @ mat.T`` over the two trailing axes of ``tiles``.

    ``mat`` has shape (out, in); ``tiles`` (..., in, in); the result has
    shape (..., out, out).  ``out``, if given, receives the result
    (shape/dtype must match) -- the runtime engine passes a plan-cached
    scratch buffer here so steady-state calls allocate nothing for the
    transform output.

    The contraction runs through ``np.matmul`` (BLAS), which applies the
    same 2D kernel to every stacked (alpha, alpha) slice.  Results are
    therefore bitwise identical whether tiles are transformed one at a
    time (the ``*_reference`` loop paths) or as one whole-tensor call
    (the runtime engine), and with or without ``out``.
    """
    if tiles.shape[-1] != mat.shape[1] or tiles.shape[-2] != mat.shape[1]:
        raise ValueError(
            f"tile trailing shape {tiles.shape[-2:]} does not match transform "
            f"input size {mat.shape[1]}"
        )
    # (..., i, j) x (j, o) -> (..., i, o); then contract the i axis.
    half = np.matmul(tiles, mat.T)
    if out is None:
        return np.matmul(mat, half)
    return np.matmul(mat, half, out=out)


def input_transform(
    alg: WinogradAlgorithm, tiles: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """V = B^T d B for a batch of (..., alpha, alpha) input tiles."""
    return transform_2d(alg.bt, tiles, out=out)


def filter_transform(alg: WinogradAlgorithm, filters: np.ndarray) -> np.ndarray:
    """U = G g G^T for a batch of (..., r, r) filters."""
    return transform_2d(alg.g, filters)


def output_transform(
    alg: WinogradAlgorithm, acc: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """y = A^T Z A for a batch of (..., alpha, alpha) accumulator tiles."""
    return transform_2d(alg.at, acc, out=out)
