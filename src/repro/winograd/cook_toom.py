"""Cook-Toom construction of Winograd transformation matrices.

This is the wincnn-equivalent generator the LoWino paper relies on
(Section 4.2.4 cites wincnn for the transformation matrices).  Given an
output tile size ``m`` and filter size ``r`` it produces exact rational
matrices ``A^T`` (output transform), ``G`` (filter transform) and ``B^T``
(input transform) such that for a 1D input tile ``d`` of length
``m + r - 1`` and filter ``g`` of length ``r``::

    y = A^T @ ((G @ g) * (B^T @ d))        # elementwise product

equals the *valid correlation* of ``d`` with ``g`` (``m`` outputs).  The
2D algorithm F(m x m, r x r) is obtained by nesting (Eq. 1 of the paper).

Derivation
----------
Linear convolution of polynomials of degrees ``r-1`` and ``m-1`` is
recovered from evaluations at ``n = m + r - 1`` points (``n - 1`` finite
points plus the point at infinity):

    g * v = V^{-1} [(E_r g) . (E_m v)]

with ``E_k`` the n-by-k evaluation matrix and ``V`` the n-by-n evaluation
matrix of degree-(n-1) polynomials (the infinity row selects the leading
coefficient).  Valid correlation is the transpose of the convolution-by-g
linear map, which yields

    y = E_m^T [(E_r g) . (V^{-T} d)]

so ``A^T = E_m^T``, ``G = E_r`` and ``B^T = V^{-T}``.  Following wincnn we
rebalance a diagonal scale ``f = diag(N_0, ..., N_{n-2}, 1)`` (``N_i`` the
Lagrange denominators) between ``G`` and ``B^T`` -- ``G <- f^{-1} G``,
``B^T <- f B^T`` -- which leaves the elementwise product invariant and
makes ``B^T`` integer for the canonical point sets.  This reproduces the
matrices quoted in Eq. 2 of the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import rational
from .points import canonical_points
from .rational import FracMatrix

__all__ = ["WinogradAlgorithm", "cook_toom", "winograd_algorithm", "amplification_factor"]


def _eval_matrix(points: Sequence[Fraction], width: int) -> FracMatrix:
    """Evaluation matrix E: rows are [a^0, a^1, ..., a^{width-1}] per finite
    point, plus a final infinity row selecting the leading coefficient."""
    rows: FracMatrix = [[p ** j for j in range(width)] for p in points]
    rows.append([Fraction(int(j == width - 1)) for j in range(width)])
    return rows


def _lagrange_denominators(points: Sequence[Fraction]) -> List[Fraction]:
    """N_i = prod_{j != i} (a_i - a_j)."""
    out = []
    for i, ai in enumerate(points):
        prod = Fraction(1)
        for j, aj in enumerate(points):
            if i != j:
                prod *= ai - aj
        out.append(prod)
    return out


@dataclass(frozen=True)
class WinogradAlgorithm:
    """A concrete Winograd algorithm F(m x m, r x r).

    Attributes
    ----------
    m, r:
        Output tile size and filter size (per dimension).
    alpha:
        Input tile size per dimension, ``m + r - 1``.
    at_exact, g_exact, bt_exact:
        Exact rational transformation matrices (``A^T``: m x alpha,
        ``G``: alpha x r, ``B^T``: alpha x alpha).
    points:
        The finite interpolation points used (the point at infinity is
        implicit).
    """

    m: int
    r: int
    at_exact: Tuple[Tuple[Fraction, ...], ...]
    g_exact: Tuple[Tuple[Fraction, ...], ...]
    bt_exact: Tuple[Tuple[Fraction, ...], ...]
    points: Tuple[Fraction, ...]
    _float_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def alpha(self) -> int:
        return self.m + self.r - 1

    @property
    def tile_elements(self) -> int:
        """T = alpha^2, the number of independent GEMMs in the 2D algorithm."""
        return self.alpha * self.alpha

    def _float(self, name: str, exact) -> np.ndarray:
        arr = self._float_cache.get(name)
        if arr is None:
            arr = rational.to_float([list(row) for row in exact])
            arr.setflags(write=False)
            self._float_cache[name] = arr
        return arr

    @property
    def at(self) -> np.ndarray:
        """A^T as float64, shape (m, alpha)."""
        return self._float("at", self.at_exact)

    @property
    def g(self) -> np.ndarray:
        """G as float64, shape (alpha, r)."""
        return self._float("g", self.g_exact)

    @property
    def bt(self) -> np.ndarray:
        """B^T as float64, shape (alpha, alpha)."""
        return self._float("bt", self.bt_exact)

    @property
    def complexity_reduction(self) -> float:
        """Theoretical multiplication reduction of the 2D algorithm:
        (m*r)^2 / alpha^2 (Section 2.2)."""
        return (self.m * self.r) ** 2 / float(self.alpha**2)

    def input_amplification(self) -> float:
        """Worst-case 2D value-range growth of ``B^T d B``.

        This is the (max row L1 norm of B^T) squared: 4x for F(2,3) and
        100x for F(4,3), the figures Section 2.2 quotes.
        """
        return amplification_factor(self.bt_exact) ** 2

    def filter_amplification(self) -> float:
        """Worst-case 2D value-range growth of ``G g G^T``."""
        return amplification_factor(self.g_exact) ** 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WinogradAlgorithm(F({self.m}x{self.m}, {self.r}x{self.r}))"


def amplification_factor(matrix_exact) -> float:
    """Max row L1 norm of an exact matrix (1D range-growth bound)."""
    return float(max(sum(abs(v) for v in row) for row in matrix_exact))


def cook_toom(m: int, r: int, points: Optional[Sequence] = None) -> WinogradAlgorithm:
    """Construct F(m x m, r x r) transformation matrices.

    Construction runs over exact rational arithmetic (matrix inversion
    included), so it is far more expensive than any single online call;
    results are memoized per ``(m, r, points)`` so each algorithm is
    built once per process no matter how many layers or ``conv2d`` calls
    request it.

    Parameters
    ----------
    m:
        Output tile size (>= 1).  ``m == 1`` degenerates to direct
        convolution written as a (trivial) Winograd algorithm.
    r:
        Filter size (>= 1).
    points:
        Optional explicit finite interpolation points (``m + r - 2`` of
        them, all distinct).  Defaults to the canonical wincnn sequence.
    """
    if m < 1 or r < 1:
        raise ValueError(f"F({m},{r}) requires m >= 1 and r >= 1")
    n = m + r - 1
    if points is None:
        pts = tuple(canonical_points(n - 1))
    else:
        pts = tuple(Fraction(p) for p in points)
        if len(pts) != n - 1:
            raise ValueError(f"F({m},{r}) needs exactly {n - 1} finite points, got {len(pts)}")
        if len(set(pts)) != len(pts):
            raise ValueError("interpolation points must be distinct")
    return _cook_toom_cached(m, r, pts)


@lru_cache(maxsize=None)
def _cook_toom_cached(m: int, r: int, pts: Tuple[Fraction, ...]) -> WinogradAlgorithm:
    """Memoized rational Cook-Toom construction (one per (m, r, points))."""
    n = m + r - 1
    e_m = _eval_matrix(pts, m)  # n x m
    e_r = _eval_matrix(pts, r)  # n x r
    v = _eval_matrix(pts, n)  # n x n
    at = rational.transpose(e_m)  # m x n
    bt = rational.transpose(rational.inverse(v))  # n x n = V^{-T}
    g = [list(row) for row in e_r]

    # Rebalance the Lagrange denominators from G into B^T (wincnn's `f`).
    denoms = _lagrange_denominators(pts) + [Fraction(1)]
    for i, ni in enumerate(denoms):
        g[i] = [x / ni for x in g[i]]
        rational.scale_row(bt, i, ni)

    # Sign canonicalization: make the first nonzero entry of each B^T row
    # positive, flipping the matching G row to keep the algorithm exact.
    # This reproduces the matrices of Lavin & Gray / LoWino Eq. 2.
    for i in range(n):
        lead = next((x for x in bt[i] if x != 0), Fraction(1))
        if lead < 0:
            rational.scale_row(bt, i, Fraction(-1))
            g[i] = [-x for x in g[i]]

    freeze = lambda mat: tuple(tuple(row) for row in mat)
    return WinogradAlgorithm(
        m=m,
        r=r,
        at_exact=freeze(at),
        g_exact=freeze(g),
        bt_exact=freeze(bt),
        points=tuple(pts),
    )


@lru_cache(maxsize=None)
def winograd_algorithm(m: int, r: int) -> WinogradAlgorithm:
    """Cached :func:`cook_toom` with canonical points."""
    return cook_toom(m, r)
