"""N-dimensional Winograd convolution (1D / 2D / 3D).

The 2D algorithm of Eq. 1 nests one 1D transform per spatial axis; the
same nesting extends to any dimensionality (Jia et al., PPoPP'18 --
reference [17] of the paper).  This module generalizes the transform,
tiling and reference-convolution machinery to ``d`` spatial dimensions:

    V = B^T x_1 (B^T x_2 (... d ...)) ,   elementwise product,   A^T ...

1D covers temporal/sequence convolutions, 3D covers video/volumetric
models.  The complexity reduction grows as ``((m r)^d / (m+r-1)^d)``,
and so does the range amplification -- ``(max row L1 of B^T)^d`` --
which is why low-precision 3D Winograd is even more hostile to
spatial-domain quantization than 2D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .cook_toom import WinogradAlgorithm

__all__ = [
    "transform_nd",
    "NdTileGrid",
    "tile_grid_nd",
    "extract_tiles_nd",
    "assemble_output_nd",
    "direct_convnd_fp32",
    "winograd_convnd_fp32",
]


def transform_nd(mat: np.ndarray, tiles: np.ndarray, ndim: int) -> np.ndarray:
    """Apply ``mat`` along each of the last ``ndim`` axes of ``tiles``."""
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    out = tiles
    for axis in range(ndim):
        # Move the target axis last, contract, move it back.
        moved = np.moveaxis(out, -1 - axis, -1)
        moved = np.einsum("...j,oj->...o", moved, mat)
        out = np.moveaxis(moved, -1, -1 - axis)
    return out


@dataclass(frozen=True)
class NdTileGrid:
    """Tile geometry of a d-dimensional decomposition."""

    m: int
    r: int
    in_shape: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.in_shape)

    @property
    def alpha(self) -> int:
        return self.m + self.r - 1

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return tuple(s - self.r + 1 for s in self.in_shape)

    @property
    def tiles_shape(self) -> Tuple[int, ...]:
        return tuple(-(-o // self.m) for o in self.out_shape)

    @property
    def tiles_per_image(self) -> int:
        return int(np.prod(self.tiles_shape))

    @property
    def padded_in_shape(self) -> Tuple[int, ...]:
        return tuple((t - 1) * self.m + self.alpha for t in self.tiles_shape)


def tile_grid_nd(alg: WinogradAlgorithm, in_shape: Tuple[int, ...]) -> NdTileGrid:
    if any(s < alg.r for s in in_shape):
        raise ValueError(f"input {in_shape} smaller than filter r={alg.r}")
    return NdTileGrid(m=alg.m, r=alg.r, in_shape=tuple(in_shape))


def extract_tiles_nd(grid: NdTileGrid, images: np.ndarray) -> np.ndarray:
    """``(B, C, *S)`` -> ``(B, C, *tiles, *(alpha,)*d)`` with overlap."""
    b, c = images.shape[:2]
    spatial = images.shape[2:]
    if spatial != grid.in_shape:
        raise ValueError(f"image spatial shape {spatial} != grid {grid.in_shape}")
    padded_shape = (b, c) + grid.padded_in_shape
    if padded_shape != images.shape:
        padded = np.zeros(padded_shape, dtype=images.dtype)
        padded[(slice(None), slice(None)) + tuple(slice(0, s) for s in spatial)] = images
    else:
        padded = images
    strides = padded.strides
    tile_strides = tuple(s * grid.m for s in strides[2:])
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(b, c) + grid.tiles_shape + (grid.alpha,) * grid.ndim,
        strides=strides[:2] + tile_strides + strides[2:],
        writeable=False,
    )
    return np.ascontiguousarray(view)


def assemble_output_nd(grid: NdTileGrid, tiles: np.ndarray) -> np.ndarray:
    """``(B, K, *tiles, *(m,)*d)`` -> ``(B, K, *out_shape)``."""
    b, k = tiles.shape[:2]
    d = grid.ndim
    expected = (b, k) + grid.tiles_shape + (grid.m,) * d
    if tiles.shape != expected:
        raise ValueError(f"tile array shape {tiles.shape} != {expected}")
    # Interleave (tile_i, m_i) axis pairs: (B, K, t1, m1, t2, m2, ...).
    order = [0, 1]
    for i in range(d):
        order += [2 + i, 2 + d + i]
    full = tiles.transpose(order).reshape(
        (b, k) + tuple(t * grid.m for t in grid.tiles_shape)
    )
    crop = (slice(None), slice(None)) + tuple(slice(0, o) for o in grid.out_shape)
    return np.ascontiguousarray(full[crop])


def direct_convnd_fp32(images: np.ndarray, filters: np.ndarray) -> np.ndarray:
    """Reference d-dimensional VALID correlation, NC+spatial layout.

    ``images``: ``(B, C, *S)``; ``filters``: ``(K, C, *(r,)*d)``.
    Straightforward sliding-window contraction; used as ground truth.
    """
    b, c = images.shape[:2]
    k, c2 = filters.shape[:2]
    if c != c2:
        raise ValueError(f"channel mismatch {c} vs {c2}")
    d = images.ndim - 2
    r_shape = filters.shape[2:]
    out_shape = tuple(s - r + 1 for s, r in zip(images.shape[2:], r_shape))
    if any(o < 1 for o in out_shape):
        raise ValueError("filter larger than image")
    # Window view: (B, C, *out_shape, *r_shape).
    strides = images.strides
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=(b, c) + out_shape + r_shape,
        strides=strides[:2] + strides[2:] + strides[2:],
        writeable=False,
    )
    # Contract channel + window axes against filters.
    n_win = int(np.prod(r_shape))
    n_out = int(np.prod(out_shape))
    lhs = np.ascontiguousarray(view).reshape(b, c, n_out, n_win)
    rhs = filters.reshape(k, c, n_win)
    out = np.einsum("bcnw,kcw->bkn", lhs, rhs)
    return out.reshape((b, k) + out_shape)


def winograd_convnd_fp32(
    images: np.ndarray, filters: np.ndarray, alg: WinogradAlgorithm
) -> np.ndarray:
    """FP32 d-dimensional Winograd convolution.

    Dimensionality is inferred from the inputs: ``images`` is
    ``(B, C, *S)`` with ``d = images.ndim - 2`` and ``filters`` is
    ``(K, C, *(r,)*d)``.
    """
    images = np.asarray(images, dtype=np.float64)
    filters = np.asarray(filters, dtype=np.float64)
    d = images.ndim - 2
    if filters.ndim != d + 2:
        raise ValueError(
            f"filters ndim {filters.ndim} inconsistent with {d}-d images"
        )
    if filters.shape[2:] != (alg.r,) * d:
        raise ValueError(f"filter spatial shape {filters.shape[2:]} != ({alg.r},)*{d}")
    b, c = images.shape[:2]
    k = filters.shape[0]
    grid = tile_grid_nd(alg, images.shape[2:])
    tiles = extract_tiles_nd(grid, images)  # (B, C, *tiles, *(a,)*d)
    v = transform_nd(alg.bt, tiles, d)
    u = transform_nd(alg.g, filters, d)  # (K, C, *(a,)*d)
    t = alg.alpha**d
    n = b * grid.tiles_per_image
    # -> batched GEMM (T, N, C) @ (T, C, K), exactly like the 2D path.
    v_op = v.reshape(b, c, grid.tiles_per_image, t)
    v_op = v_op.transpose(3, 0, 2, 1).reshape(t, n, c)
    u_op = u.reshape(k, c, t).transpose(2, 1, 0)
    z = np.matmul(v_op, u_op)  # (T, N, K)
    z = z.transpose(1, 2, 0).reshape((b, grid.tiles_per_image, k) + (alg.alpha,) * d)
    z = np.moveaxis(z, 2, 1).reshape((b, k) + grid.tiles_shape + (alg.alpha,) * d)
    y = transform_nd(alg.at, z, d)
    return assemble_output_nd(grid, y)
