"""Differential case execution, aggregation, and failure shrinking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .space import (
    ALL_ALGORITHMS,
    ConvConfig,
    golden_key,
    make_inputs,
    shrink_candidates,
)
from .tolerance import ToleranceModel, tolerance_for

__all__ = [
    "CaseResult",
    "KeyStats",
    "ConformanceReport",
    "run_case",
    "run_suite",
    "shrink_failure",
    "format_report",
]

_REL_EPS = 1e-30


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one (algorithm, config) differential run."""

    algorithm: str
    config: ConvConfig
    rel_rms: float
    rel_max: float
    budget: float
    passed: bool
    #: Set when the implementation raised instead of mismatching.
    error: Optional[str] = None

    @property
    def key(self) -> str:
        return golden_key(self.algorithm, self.config)


@dataclass
class KeyStats:
    """Aggregated error statistics for one (algorithm, shape-class) key."""

    cases: int = 0
    max_rel_rms: float = 0.0
    sum_rel_rms: float = 0.0
    max_rel_max: float = 0.0
    worst_config: Optional[ConvConfig] = None

    @property
    def mean_rel_rms(self) -> float:
        return self.sum_rel_rms / self.cases if self.cases else 0.0

    def absorb(self, result: CaseResult) -> None:
        self.cases += 1
        self.sum_rel_rms += result.rel_rms
        self.max_rel_max = max(self.max_rel_max, result.rel_max)
        if result.rel_rms >= self.max_rel_rms:
            self.max_rel_rms = result.rel_rms
            self.worst_config = result.config


@dataclass
class ConformanceReport:
    """Everything one conformance run learned."""

    results: List[CaseResult] = field(default_factory=list)
    per_key: Dict[str, KeyStats] = field(default_factory=dict)

    def absorb(self, result: CaseResult) -> None:
        self.results.append(result)
        self.per_key.setdefault(result.key, KeyStats()).absorb(result)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed]

    def algorithm_summary(self) -> Dict[str, KeyStats]:
        """Roll the per-key stats up to one row per algorithm."""
        out: Dict[str, KeyStats] = {}
        for r in self.results:
            out.setdefault(r.algorithm, KeyStats()).absorb(r)
        return out


def _error_stats(y: np.ndarray, ref: np.ndarray) -> tuple[float, float]:
    """(relative RMS, relative max-abs) of ``y`` against the oracle."""
    err = y.astype(np.float64) - ref
    rms_ref = float(np.sqrt(np.mean(ref**2)))
    rel_rms = float(np.sqrt(np.mean(err**2))) / (rms_ref + _REL_EPS)
    rel_max = float(np.abs(err).max()) / (float(np.abs(ref).max()) + _REL_EPS)
    return rel_rms, rel_max


def run_case(algorithm: str, config: ConvConfig) -> CaseResult:
    """Run one algorithm against the FP32 direct oracle on one config."""
    from ..conv import conv2d, direct_conv2d_fp32

    images, filters = make_inputs(config)
    ref = direct_conv2d_fp32(images, filters, padding=config.padding)
    tol: ToleranceModel = tolerance_for(algorithm, config)
    try:
        y = conv2d(images, filters, algorithm=algorithm, m=config.m, padding=config.padding)
    except Exception as exc:  # implementation crash == conformance failure
        return CaseResult(
            algorithm=algorithm,
            config=config,
            rel_rms=float("inf"),
            rel_max=float("inf"),
            budget=tol.rel_rms_budget,
            passed=False,
            error=f"{type(exc).__name__}: {exc}",
        )
    if y.shape != ref.shape:
        return CaseResult(
            algorithm=algorithm,
            config=config,
            rel_rms=float("inf"),
            rel_max=float("inf"),
            budget=tol.rel_rms_budget,
            passed=False,
            error=f"shape mismatch: got {y.shape}, oracle {ref.shape}",
        )
    rel_rms, rel_max = _error_stats(y, ref)
    finite = bool(np.all(np.isfinite(y)))
    return CaseResult(
        algorithm=algorithm,
        config=config,
        rel_rms=rel_rms,
        rel_max=rel_max,
        budget=tol.rel_rms_budget,
        passed=finite and tol.admits(rel_rms),
        error=None if finite else "non-finite output",
    )


def run_suite(
    configs: Sequence[ConvConfig],
    algorithms: Sequence[str] = ALL_ALGORITHMS,
) -> ConformanceReport:
    """Differentially test every algorithm over every config."""
    report = ConformanceReport()
    for config in configs:
        for algorithm in algorithms:
            report.absorb(run_case(algorithm, config))
    return report


def shrink_failure(
    algorithm: str,
    config: ConvConfig,
    max_steps: int = 64,
    rel_rms_threshold: Optional[float] = None,
) -> CaseResult:
    """Greedily shrink a failing config to a minimal reproducing case.

    A config "fails" when its analytic budget check fails, or -- if
    ``rel_rms_threshold`` is given (the golden-gate budget) -- when its
    relative RMS error exceeds that threshold.  Repeatedly tries the
    single-knob reductions from :func:`shrink_candidates`, keeping any
    that still fail, until no reduction reproduces the failure (or the
    step budget runs out).  Returns the failing :class:`CaseResult` of
    the minimal config.
    """

    def fails(result: CaseResult) -> bool:
        if not result.passed:
            return True
        return rel_rms_threshold is not None and result.rel_rms > rel_rms_threshold

    current = run_case(algorithm, config)
    if not fails(current):
        return current
    for _ in range(max_steps):
        for candidate in shrink_candidates(current.config):
            attempt = run_case(algorithm, candidate)
            if fails(attempt):
                current = attempt
                break
        else:
            break
    return current


def _fmt_pct(x: float) -> str:
    return "inf" if not np.isfinite(x) else f"{x:.4f}"


def format_report(report: ConformanceReport, per_key: bool = False) -> str:
    """Render the per-algorithm (and optionally per-key) error table."""
    lines = [
        "Differential conformance vs. direct FP32 oracle",
        f"{'algorithm':16s} {'cases':>5s} {'mean relRMS':>11s} {'max relRMS':>10s}  worst case",
        "-" * 96,
    ]
    for algorithm in ALL_ALGORITHMS:
        stats = report.algorithm_summary().get(algorithm)
        if stats is None:
            continue
        worst = stats.worst_config.describe() if stats.worst_config else "-"
        lines.append(
            f"{algorithm:16s} {stats.cases:5d} {_fmt_pct(stats.mean_rel_rms):>11s} "
            f"{_fmt_pct(stats.max_rel_rms):>10s}  {worst}"
        )
    if per_key:
        lines.append("")
        lines.append(f"{'key':40s} {'cases':>5s} {'mean relRMS':>11s} {'max relRMS':>10s}")
        for key in sorted(report.per_key):
            s = report.per_key[key]
            lines.append(
                f"{key:40s} {s.cases:5d} {_fmt_pct(s.mean_rel_rms):>11s} "
                f"{_fmt_pct(s.max_rel_rms):>10s}"
            )
    n_fail = len(report.failures)
    lines.append("")
    lines.append(
        f"{len(report.results)} cases, "
        + ("all within analytic budgets" if n_fail == 0 else f"{n_fail} BUDGET FAILURES")
    )
    return "\n".join(lines)
