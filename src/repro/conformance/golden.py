"""Golden error-statistics files and the regression gate.

One JSON file per algorithm under ``tests/golden/`` records, for each
(algorithm, shape-class) key, the error statistics of a known-good run
and the *budget* a future run must stay under:

    budget = max(observed max relRMS x (1 + slack), observed + floor)

The slack absorbs benign run-to-run jitter (there is none for a fixed
generator seed, but shape-class membership shifts as the space grows);
the floor keeps near-zero FP32 budgets from becoming impossibly tight.
``repro conformance --update-golden`` regenerates the files; the gate
(`repro conformance`, or the tier-1 pytest wrapper) fails when any key's
observed max relRMS exceeds its stored budget, and reports the minimal
shrunk reproducing config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .runner import ConformanceReport, shrink_failure
from .space import ALL_ALGORITHMS, config_from_dict, config_to_dict, ConvConfig

__all__ = [
    "GoldenViolation",
    "check_report_against_golden",
    "default_golden_dir",
    "load_golden",
    "write_golden",
]

FORMAT_VERSION = 1
#: Multiplicative headroom over the recorded max when gating.
DEFAULT_SLACK = 0.25
#: Absolute floor added to tiny (FP32-path) budgets.
BUDGET_FLOOR = 1e-10


def default_golden_dir() -> Path:
    """``tests/golden`` of the source checkout (falls back to CWD)."""
    here = Path(__file__).resolve()
    for base in (here.parents[3], Path.cwd()):
        candidate = base / "tests" / "golden"
        if candidate.is_dir():
            return candidate
    return Path.cwd() / "tests" / "golden"


def _golden_path(golden_dir: Path, algorithm: str) -> Path:
    return Path(golden_dir) / f"conformance_{algorithm}.json"


@dataclass(frozen=True)
class GoldenViolation:
    """One key whose observed error exceeded its stored budget."""

    key: str
    observed_max_rel_rms: float
    budget: float
    #: Minimal reproducing config (already shrunk), if one was found.
    repro: Optional[ConvConfig]
    detail: str = ""

    def describe(self) -> str:
        repro = f"  repro: {self.repro.describe()}" if self.repro else ""
        detail = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.key}: max relRMS {self.observed_max_rel_rms:.6g} "
            f"> budget {self.budget:.6g}{detail}{repro}"
        )


def write_golden(
    report: ConformanceReport,
    golden_dir: Path,
    generator_meta: Optional[dict] = None,
    slack: float = DEFAULT_SLACK,
) -> List[Path]:
    """Record a known-good run's statistics as the new golden baseline."""
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for algorithm in ALL_ALGORITHMS:
        entries: Dict[str, dict] = {}
        for key in sorted(report.per_key):
            if not key.startswith(algorithm + "/"):
                continue
            stats = report.per_key[key]
            budget = max(
                stats.max_rel_rms * (1.0 + slack), stats.max_rel_rms + BUDGET_FLOOR
            )
            entries[key] = {
                "cases": stats.cases,
                "max_rel_rms": stats.max_rel_rms,
                "mean_rel_rms": stats.mean_rel_rms,
                "max_rel_max": stats.max_rel_max,
                "budget": budget,
                "worst_config": (
                    config_to_dict(stats.worst_config) if stats.worst_config else None
                ),
            }
        if not entries:
            continue
        path = _golden_path(golden_dir, algorithm)
        payload = {
            "format_version": FORMAT_VERSION,
            "algorithm": algorithm,
            "generator": generator_meta or {},
            "entries": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def load_golden(golden_dir: Path, algorithms: Sequence[str] = ALL_ALGORITHMS) -> Dict[str, dict]:
    """Load every stored entry, keyed by the (algorithm, shape-class) key."""
    entries: Dict[str, dict] = {}
    for algorithm in algorithms:
        path = _golden_path(Path(golden_dir), algorithm)
        if not path.is_file():
            continue
        payload = json.loads(path.read_text())
        if payload.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported golden format {payload.get('format_version')!r}"
            )
        entries.update(payload.get("entries", {}))
    return entries


def check_report_against_golden(
    report: ConformanceReport,
    golden_dir: Path,
    shrink: bool = True,
) -> List[GoldenViolation]:
    """Gate a run against the stored budgets.

    Returns one violation per offending key (worst config shrunk to a
    minimal reproducer when ``shrink`` is set).  Keys absent from the
    golden files are *not* violations -- they gate only after
    ``--update-golden`` records them -- but analytic hard-budget
    failures always violate.
    """
    golden = load_golden(golden_dir)
    violations: List[GoldenViolation] = []
    for key in sorted(report.per_key):
        stats = report.per_key[key]
        entry = golden.get(key)
        budget = entry["budget"] if entry else None
        analytic_failures = [
            r for r in report.results if r.key == key and not r.passed
        ]
        over_golden = budget is not None and stats.max_rel_rms > budget
        if not over_golden and not analytic_failures:
            continue
        algorithm = key.split("/", 1)[0]
        if analytic_failures:
            worst = analytic_failures[0].config
            threshold = None
            detail = analytic_failures[0].error or "analytic hard budget exceeded"
        else:
            worst = stats.worst_config
            threshold = budget
            detail = "golden budget exceeded"
        repro = worst
        if shrink and worst is not None:
            repro = shrink_failure(
                algorithm, worst, rel_rms_threshold=threshold
            ).config
        violations.append(
            GoldenViolation(
                key=key,
                observed_max_rel_rms=stats.max_rel_rms,
                budget=budget if budget is not None else analytic_failures[0].budget,
                repro=repro,
                detail=detail,
            )
        )
    return violations
