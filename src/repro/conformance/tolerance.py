"""Per-algorithm error budgets for the conformance harness.

Two layers of gating:

* :func:`hard_budget` -- an *analytic ceiling* on the relative RMS error
  vs. the FP32 direct oracle, derived from the Winograd noise-gain model
  (:mod:`repro.winograd.error_analysis`).  Exceeding it means the
  implementation is broken, not merely noisier: the FP32 paths must match
  the oracle to accumulation order, the INT8 paths within a bounded
  multiple of the spatial-domain INT8 quantization noise floor.
* the golden files (:mod:`repro.conformance.golden`) -- *empirical*
  budgets recorded from a known-good run plus slack, which catch silent
  regressions long before the analytic ceiling trips.

The ceilings are intentionally generous (they hold across every
distribution the generator emits, including adversarial ones); the
golden gate is the tight check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..winograd import quant_error_model, winograd_algorithm
from .space import ConvConfig

__all__ = ["ToleranceModel", "tolerance_for", "hard_budget"]

#: Accumulation-order tolerance for the float64 pipelines.  The Winograd
#: FP32 path reassociates sums through the transforms, so it differs from
#: im2col+GEMM by (machine eps x amplification x accumulation length).
FP32_REL_BUDGET = 1e-9

#: Relative-RMS noise floor of spatial-domain per-tensor INT8
#: quantization with max-scaling on benign (Gaussian-ish) data, with
#: headroom for small tensors where nothing averages out.
INT8_BASE_REL = 0.15

#: Ceiling on any INT8 rel-RMS budget; also the flat budget of the
#: down-scaling baseline's level-collapse regime, where the output
#: carries too little signal for a linear error model to apply.
SATURATION_CAP = 4.0

#: Below this many output elements the rel-RMS statistic does not
#: concentrate: it degenerates to a quotient of individually-fluctuating
#: quantities whose tail is unbounded (a single output pixel near a zero
#: crossing makes ``err / |y|`` arbitrarily large at *any* quantization
#: fidelity).  No finite analytic ceiling exists for the inexact paths
#: there, so such geometries carry an infinite analytic budget and are
#: gated empirically by the golden edge-grid files instead.
MIN_GATED_ELEMENTS = 16

#: Extra stress multiplier per activation distribution: a planted
#: outlier eats most of the INT8 range (everything else collapses to a
#: few levels); sparse tensors shrink the error denominator.
DISTRIBUTION_STRESS = {
    "relu_gauss": 1.0,
    "gauss": 1.0,
    "uniform": 1.0,
    "constant": 1.0,
    "sparse": 4.0,
    "outlier": 8.0,
}


@dataclass(frozen=True)
class ToleranceModel:
    """The resolved budget for one (algorithm, config) pair."""

    algorithm: str
    #: Ceiling on ``rms(y - ref) / rms(ref)``.
    rel_rms_budget: float
    #: True for the FP32 paths whose error must be accumulation-order.
    exact: bool

    def admits(self, rel_rms: float) -> bool:
        return rel_rms <= self.rel_rms_budget


def _noise_gain_ratio(m: int, r: int) -> float:
    """Winograd-domain quantization noise gain relative to direct INT8.

    F(1, r) is numerically equivalent to direct convolution, so its gain
    normalizes the scale; ratios below 1 are clamped (per-position
    scaling can beat direct, but the ceiling need not chase that).
    """
    gain = quant_error_model(winograd_algorithm(m, r)).noise_gain
    gain_direct = quant_error_model(winograd_algorithm(1, r)).noise_gain
    return max(1.0, gain / gain_direct)


def _downscale_collapse(m: int, r: int) -> float:
    """Error blow-up of the down-scaling baseline.

    Down-scaling divides the transformed input by its worst-case
    amplification before rounding to INT8, leaving roughly
    ``255 / amplification`` useful levels (Section 2.3): 64 for F(2,3),
    2.5 for F(4,3).  Below ~3 bits of signal the output is essentially
    decorrelated from the reference: the rel-RMS ratio then concentrates
    near ``sqrt(2)`` only *in expectation*, and small/degenerate tensors
    (unit channels, sub-tile outputs) fluctuate to 2-3x, so the budget
    jumps straight to the saturation cap instead of scaling linearly
    through a regime the linear model does not describe.
    """
    amp = winograd_algorithm(m, r).input_amplification()
    levels = 255.0 / amp
    if levels < 8.0:
        return SATURATION_CAP / INT8_BASE_REL
    return max(1.0, 24.0 / levels)


def tolerance_for(algorithm: str, config: ConvConfig) -> ToleranceModel:
    """Resolve the analytic ceiling for one case."""
    if algorithm in ("fp32_direct", "fp32_winograd"):
        budget = 1e-12 if algorithm == "fp32_direct" else FP32_REL_BUDGET
        return ToleranceModel(algorithm=algorithm, rel_rms_budget=budget, exact=True)

    out_elements = config.batch * config.c_out * config.out_h * config.out_w
    if config.distribution == "constant":
        # A constant input makes every batch and spatial output position
        # carry the same value (up to padding edges), so only the output
        # channels contribute independent samples to the statistic.
        out_elements = config.c_out
    if out_elements < MIN_GATED_ELEMENTS:
        return ToleranceModel(
            algorithm=algorithm, rel_rms_budget=float("inf"), exact=False
        )

    stress = DISTRIBUTION_STRESS[config.distribution]
    if algorithm in ("int8_direct", "int8_upcast"):
        # Up-casting is numerically identical to direct INT8 (exact
        # integer transforms); F(4,3)+ adds a <=0.5/32767 filter-rounding
        # term, far below the base floor.
        factor = 1.0
    elif algorithm == "lowino":
        factor = _noise_gain_ratio(config.m, config.r)
    elif algorithm == "int8_downscale":
        factor = _downscale_collapse(config.m, config.r)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    budget = min(INT8_BASE_REL * factor * stress, SATURATION_CAP)
    return ToleranceModel(algorithm=algorithm, rel_rms_budget=budget, exact=False)


def hard_budget(algorithm: str, config: ConvConfig) -> float:
    """Shorthand: the relative-RMS ceiling for one case."""
    return tolerance_for(algorithm, config).rel_rms_budget
