"""Differential conformance harness (cross-algorithm numerics oracle).

Every implementation reachable through :data:`repro.conv.api.Algorithm` is
differentially tested against the FP32 direct (im2col) oracle over an
enumerated + randomly generated configuration space:

* :mod:`~repro.conformance.space` -- the shape/distribution space: an
  enumerator of edge geometries, a seeded random case generator, and
  deterministic input synthesis (``ConvConfig`` is the reproducer unit:
  seed + shape fully determine a case).
* :mod:`~repro.conformance.tolerance` -- per-algorithm analytic error
  budgets derived from :mod:`repro.winograd.error_analysis` (hard
  ceilings: exact for the FP32 paths, bounded relative error for the
  INT8 paths).
* :mod:`~repro.conformance.runner` -- runs cases, aggregates per
  (algorithm, shape-class) error statistics, and shrinks failures to a
  minimal reproducing configuration.
* :mod:`~repro.conformance.golden` -- records the statistics into
  ``tests/golden/*.json`` and gates changes against stored budgets.

Entry points: ``python -m repro conformance`` (CLI) and
``tests/conformance/`` (pytest tier-1 gate).
"""

from .golden import (
    GoldenViolation,
    check_report_against_golden,
    default_golden_dir,
    load_golden,
    write_golden,
)
from .runner import CaseResult, ConformanceReport, format_report, run_case, run_suite, shrink_failure
from .space import (
    ALL_ALGORITHMS,
    DEFAULT_GENERATED_CASES,
    DEFAULT_SEED,
    DISTRIBUTIONS,
    ConvConfig,
    default_suite,
    enumerate_edge_configs,
    generate_configs,
    make_inputs,
    shape_class,
)
from .tolerance import ToleranceModel, hard_budget, tolerance_for

__all__ = [
    "ALL_ALGORITHMS",
    "DEFAULT_GENERATED_CASES",
    "DEFAULT_SEED",
    "DISTRIBUTIONS",
    "ConvConfig",
    "default_suite",
    "enumerate_edge_configs",
    "generate_configs",
    "make_inputs",
    "shape_class",
    "ToleranceModel",
    "hard_budget",
    "tolerance_for",
    "CaseResult",
    "ConformanceReport",
    "run_case",
    "run_suite",
    "shrink_failure",
    "format_report",
    "GoldenViolation",
    "check_report_against_golden",
    "default_golden_dir",
    "load_golden",
    "write_golden",
]
