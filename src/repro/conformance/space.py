"""Configuration space for the differential conformance harness.

A :class:`ConvConfig` is the unit of reproducibility: it pins the layer
geometry (batch, channels, spatial size, padding), the Winograd tile size
``m``, the input data distribution, and the data seed.  Given a config,
:func:`make_inputs` deterministically synthesizes the activation and
filter tensors, so ``(algorithm, config)`` fully identifies a test case
-- the harness prints failing configs verbatim as minimal reproducers.

Two sources of configs:

* :func:`enumerate_edge_configs` -- a fixed grid of edge geometries
  (1x1 outputs, inputs smaller than one Winograd tile, odd sizes with
  padding, unit channel counts) that every run always covers;
* :func:`generate_configs` -- a seeded random sampler over the broader
  space, used for fuzzing volume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "ALL_ALGORITHMS",
    "DISTRIBUTIONS",
    "ConvConfig",
    "enumerate_edge_configs",
    "generate_configs",
    "make_inputs",
    "shape_class",
]

#: Every algorithm dispatchable through :func:`repro.conv.conv2d`.
ALL_ALGORITHMS: tuple[str, ...] = (
    "fp32_direct",
    "fp32_winograd",
    "int8_direct",
    "int8_upcast",
    "int8_downscale",
    "lowino",
)

#: Input data distributions the generator samples from.  ``relu_gauss``
#: models post-activation tensors (the paper's deployment regime);
#: ``outlier`` plants a single large value to stress saturation;
#: ``sparse`` zeroes most activations; ``constant`` collapses the
#: dynamic range to one level.
DISTRIBUTIONS: tuple[str, ...] = (
    "relu_gauss",
    "gauss",
    "uniform",
    "constant",
    "sparse",
    "outlier",
)

#: Winograd tile sizes exercised by the harness.  ``m=6`` is excluded:
#: the up-cast baseline's integerized F(6,3) input transform overflows
#: INT16 by design (amplification 10000x), which is a documented
#: limitation rather than a conformance failure.
TILE_SIZES: tuple[int, ...] = (2, 4)


@dataclass(frozen=True)
class ConvConfig:
    """One fully pinned convolution test case (minus the algorithm)."""

    batch: int
    c_in: int
    c_out: int
    h: int
    w: int
    r: int = 3
    padding: int = 0
    m: int = 2
    distribution: str = "relu_gauss"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.h + 2 * self.padding < self.r or self.w + 2 * self.padding < self.r:
            raise ValueError(f"padded input smaller than {self.r}x{self.r} filter: {self}")

    @property
    def out_h(self) -> int:
        return self.h + 2 * self.padding - self.r + 1

    @property
    def out_w(self) -> int:
        return self.w + 2 * self.padding - self.r + 1

    @property
    def alpha(self) -> int:
        """Winograd input-tile edge for this config's ``m``/``r``."""
        return self.m + self.r - 1

    def describe(self) -> str:
        """Human-oriented one-liner used in failure reports."""
        return (
            f"batch={self.batch} c_in={self.c_in} c_out={self.c_out} "
            f"hw={self.h}x{self.w} pad={self.padding} m={self.m} "
            f"dist={self.distribution} seed={self.seed}"
        )


def shape_class(config: ConvConfig) -> str:
    """Classify a config into the bucket its golden statistics live under.

    Classes are checked most-specific-first; each config lands in exactly
    one bucket so the golden files partition the space.
    """
    if config.out_h == 1 and config.out_w == 1:
        return "pointwise_out"
    if config.out_h < config.m or config.out_w < config.m:
        return "subtile"
    if config.c_in == 1 or config.c_out == 1:
        return "unit_channels"
    if config.padding > 0 and (config.h % 2 == 1 or config.w % 2 == 1):
        return "odd_padded"
    return "general"


def golden_key(algorithm: str, config: ConvConfig) -> str:
    """The per-(algorithm, shape-class) key used in ``tests/golden``."""
    return f"{algorithm}/m{config.m}/{shape_class(config)}"


def enumerate_edge_configs(seed: int = 0) -> List[ConvConfig]:
    """The fixed edge-geometry grid every conformance run covers.

    Covers, for each supported tile size: 1x1 spatial output, input
    smaller than one Winograd tile, padding with odd spatial sizes,
    unit channel counts, and a plain interior shape.
    """
    configs: List[ConvConfig] = []
    for i, m in enumerate(TILE_SIZES):
        base = seed + 1000 * i
        configs += [
            # VALID conv of an r x r input: single output pixel.
            ConvConfig(1, 2, 3, 3, 3, m=m, padding=0, seed=base + 1),
            # Output strictly smaller than one m x m tile (asymmetric so
            # it stays sub-tile without degenerating to a 1x1 output).
            ConvConfig(1, 3, 2, m + 2, m + 1, m=m, padding=0, seed=base + 2),
            # Odd spatial size with padding (SAME-style geometry).
            ConvConfig(2, 4, 3, 7, 7, m=m, padding=1, seed=base + 3),
            # Odd size, asymmetric h/w, larger padding.
            ConvConfig(1, 2, 2, 9, 5, m=m, padding=2, seed=base + 4),
            # Single input channel / single output channel.
            ConvConfig(1, 1, 4, 8, 8, m=m, padding=1, seed=base + 5),
            ConvConfig(1, 4, 1, 8, 8, m=m, padding=1, seed=base + 6),
            # Plain multi-tile interior shape.
            ConvConfig(2, 4, 4, 12, 12, m=m, padding=1, seed=base + 7),
        ]
    return configs


def generate_configs(n: int, seed: int = 2021) -> List[ConvConfig]:
    """Sample ``n`` random configs, reproducibly from ``seed``.

    Every config's own data seed is derived from the generator stream,
    so a (seed, index) pair pins the full case.
    """
    rng = np.random.default_rng(seed)
    configs: List[ConvConfig] = []
    while len(configs) < n:
        m = int(rng.choice(TILE_SIZES))
        padding = int(rng.integers(0, 3))
        h = int(rng.integers(3, 17))
        w = int(rng.integers(3, 17))
        if h + 2 * padding < 3 or w + 2 * padding < 3:
            continue
        configs.append(
            ConvConfig(
                batch=int(rng.integers(1, 3)),
                c_in=int(rng.choice([1, 2, 3, 4, 8])),
                c_out=int(rng.choice([1, 2, 3, 4, 8])),
                h=h,
                w=w,
                padding=padding,
                m=m,
                distribution=str(rng.choice(DISTRIBUTIONS)),
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return configs


#: Defaults shared by the CLI and the tier-1 pytest gate so both check
#: the exact configuration population the golden files were recorded on.
DEFAULT_SEED = 2021
DEFAULT_GENERATED_CASES = 50


def default_suite(
    cases: int = DEFAULT_GENERATED_CASES, seed: int = DEFAULT_SEED
) -> List[ConvConfig]:
    """The standard conformance population: edge grid + generated fuzz."""
    return enumerate_edge_configs(seed=seed) + generate_configs(cases, seed=seed)


def make_inputs(config: ConvConfig) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically synthesize ``(images, filters)`` for a config.

    Filters are always He-scaled Gaussian (the distribution knob applies
    to activations, matching how deployment data varies while weights
    stay fixed).
    """
    rng = np.random.default_rng(config.seed)
    shape = (config.batch, config.c_in, config.h, config.w)
    dist = config.distribution
    if dist == "relu_gauss":
        images = np.maximum(rng.standard_normal(shape), 0.0)
    elif dist == "gauss":
        images = rng.standard_normal(shape)
    elif dist == "uniform":
        images = rng.uniform(-1.0, 1.0, shape)
    elif dist == "constant":
        images = np.full(shape, float(rng.uniform(0.25, 2.0)))
    elif dist == "sparse":
        images = rng.standard_normal(shape)
        images *= rng.random(shape) < 0.1
    elif dist == "outlier":
        images = np.maximum(rng.standard_normal(shape), 0.0)
        flat = images.reshape(-1)
        flat[int(rng.integers(0, flat.size))] = 8.0
    else:  # pragma: no cover - guarded by __post_init__
        raise ValueError(f"unknown distribution {dist!r}")
    fan_in = config.c_in * config.r * config.r
    filters = rng.standard_normal(
        (config.c_out, config.c_in, config.r, config.r)
    ) * np.sqrt(2.0 / fan_in)
    return images, filters


def shrink_candidates(config: ConvConfig) -> Iterable[ConvConfig]:
    """Single-step reductions tried by the failure shrinker, simplest first.

    Each candidate changes one knob toward its minimum; the shrinker
    keeps a candidate only if the failure persists.
    """
    out: List[ConvConfig] = []

    def try_replace(**kw) -> None:
        cand = replace(config, **kw)
        if (
            cand.h + 2 * cand.padding >= cand.r
            and cand.w + 2 * cand.padding >= cand.r
            and cand != config
        ):
            out.append(cand)

    if config.batch > 1:
        try_replace(batch=1)
    for field, lo in (("c_in", 1), ("c_out", 1)):
        v = getattr(config, field)
        if v > lo:
            try_replace(**{field: max(lo, v // 2)})
            try_replace(**{field: lo})
    for field in ("h", "w"):
        v = getattr(config, field)
        if v > 3:
            try_replace(**{field: max(3, v // 2)})
            try_replace(**{field: v - 1})
    if config.padding > 0:
        try_replace(padding=0)
    if config.distribution != "gauss":
        try_replace(distribution="gauss")
    return out


def config_to_dict(config: ConvConfig) -> dict:
    """JSON-friendly form used in golden files and failure reports."""
    return {
        "batch": config.batch,
        "c_in": config.c_in,
        "c_out": config.c_out,
        "h": config.h,
        "w": config.w,
        "r": config.r,
        "padding": config.padding,
        "m": config.m,
        "distribution": config.distribution,
        "seed": config.seed,
    }


def config_from_dict(d: dict) -> ConvConfig:
    return ConvConfig(**d)
