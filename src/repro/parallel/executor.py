"""Fork-join execution of statically scheduled stages.

The paper executes each stage as one fork-join over pre-assigned task
ranges.  :func:`run_partitioned` reproduces that structure with a thread
pool: one task per thread, each covering its contiguous partition.
NumPy releases the GIL inside large array kernels, so the transform and
GEMM stages do get real concurrency; more importantly for the
reproduction, the execution order and data decomposition are exactly
those of the static schedule, so scheduling bugs (overlap, gaps,
imbalance) are observable.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, TypeVar

from .scheduler import StaticSchedule

__all__ = ["run_partitioned", "parallel_stage"]

T = TypeVar("T")


def run_partitioned(
    fn: Callable[[int, int], T], tasks: int, omega: int
) -> List[T]:
    """Run ``fn(start, stop)`` once per thread partition; fork-join.

    Returns the per-thread results in thread order.  Empty partitions
    still invoke ``fn`` with an empty range so result indices align with
    thread ids.
    """
    schedule = StaticSchedule.for_tasks(tasks, omega)
    schedule.validate()
    if omega == 1:
        p = schedule.partitions[0]
        return [fn(p.start, p.stop)]
    with ThreadPoolExecutor(max_workers=omega) as pool:
        futures = [
            pool.submit(fn, p.start, p.stop) for p in schedule.partitions
        ]
        return [f.result() for f in futures]


def parallel_stage(
    out, fn: Callable[[int, int], object], tasks: int, omega: int
):
    """Convenience wrapper: ``fn`` writes its slice of ``out`` in place.

    ``fn(start, stop)`` must only touch ``out[start:stop]`` (disjoint by
    construction of the static schedule).  Returns ``out``.
    """
    run_partitioned(fn, tasks, omega)
    return out
