"""Static multi-core scheduling and fork-join execution (Section 4.4)."""

from .executor import parallel_stage, run_partitioned
from .timeline import StageTimeline, simulate_stage
from .scheduler import Partition, StaticSchedule, partition_grid, partition_range

__all__ = [
    "StageTimeline",
    "simulate_stage",
    "parallel_stage",
    "run_partitioned",
    "Partition",
    "StaticSchedule",
    "partition_grid",
    "partition_range",
]
