"""Static scheduling for multi-core execution (Section 4.4).

Tasks are pre-assigned to threads at plan-construction time ("compile
time" in the paper): each thread receives a contiguous range of at most
``ceil(tasks / omega)`` tasks, which keeps per-thread memory access
patterns identical and makes the partition trivially reproducible.

Task grids: input/output transforms partition over the ``N`` tiles;
filter transforms over ``C * K / phi / sigma`` filter blocks; the GEMM
over the ``(N / N_blk) x (K / K_blk) x T`` sub-matrix grid.  The grid
is flattened in row-major order and split recursively so each thread's
tasks are contiguous (cache-friendly, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..layout import ceil_div

__all__ = ["Partition", "partition_range", "partition_grid", "StaticSchedule"]


@dataclass(frozen=True)
class Partition:
    """A contiguous half-open task range assigned to one thread."""

    thread: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def partition_range(tasks: int, omega: int) -> List[Partition]:
    """Split ``tasks`` into ``omega`` contiguous chunks of size
    ``ceil(tasks/omega)`` (the last chunks may be smaller or empty).

    Matches the paper's assignment rule: each thread operates up to
    ``ceil(N / omega)`` tasks.
    """
    if tasks < 0:
        raise ValueError(f"task count must be >= 0, got {tasks}")
    if omega < 1:
        raise ValueError(f"thread count must be >= 1, got {omega}")
    chunk = ceil_div(tasks, omega) if tasks else 0
    parts = []
    for w in range(omega):
        start = min(tasks, w * chunk)
        stop = min(tasks, (w + 1) * chunk)
        parts.append(Partition(thread=w, start=start, stop=stop))
    return parts


def partition_grid(dims: Sequence[int], omega: int) -> List[Partition]:
    """Partition a row-major flattened task grid (e.g. the GEMM's
    ``(N/N_blk, K/K_blk, T)`` grid) into contiguous per-thread ranges."""
    total = int(np.prod(dims)) if dims else 0
    return partition_range(total, omega)


@dataclass
class StaticSchedule:
    """A complete static schedule for one stage.

    Provides the load-balance metrics the evaluation uses: ``makespan``
    relative to the ideal equal split, and per-thread task counts.
    """

    partitions: List[Partition]

    @classmethod
    def for_tasks(cls, tasks: int, omega: int) -> "StaticSchedule":
        return cls(partitions=partition_range(tasks, omega))

    @property
    def omega(self) -> int:
        return len(self.partitions)

    @property
    def total_tasks(self) -> int:
        return sum(p.size for p in self.partitions)

    @property
    def max_tasks(self) -> int:
        return max((p.size for p in self.partitions), default=0)

    def imbalance(self) -> float:
        """makespan / ideal; 1.0 = perfectly balanced."""
        if self.total_tasks == 0:
            return 1.0
        ideal = self.total_tasks / self.omega
        return self.max_tasks / ideal

    def makespan(self, task_costs: np.ndarray | None = None) -> float:
        """Simulated stage time given per-task costs (uniform if None)."""
        if task_costs is None:
            return float(self.max_tasks)
        task_costs = np.asarray(task_costs, dtype=np.float64)
        if task_costs.size != self.total_tasks:
            raise ValueError(
                f"{task_costs.size} task costs for {self.total_tasks} tasks"
            )
        return max(
            (float(task_costs[p.start : p.stop].sum()) for p in self.partitions),
            default=0.0,
        )

    def validate(self) -> None:
        """Partitions must tile [0, total) disjointly and in order."""
        cursor = 0
        for p in self.partitions:
            if p.start != cursor or p.stop < p.start:
                raise AssertionError(f"partition {p} breaks contiguity at {cursor}")
            cursor = p.stop
