"""Simulated multi-thread execution timelines.

Given a static schedule and per-task costs, simulate the fork-join
execution: each thread runs its contiguous task range back to back, the
stage ends at the slowest thread (the fork-join barrier).  Produces the
load-balance evidence for Section 4.4's claim that static pre-
assignment yields "a balanced situation" on the power-of-two layer
configurations -- and quantifies what happens when it does not (e.g.
heterogeneous task costs from padding tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .scheduler import StaticSchedule

__all__ = ["StageTimeline", "simulate_stage"]


@dataclass(frozen=True)
class StageTimeline:
    """Outcome of one simulated fork-join stage."""

    busy: np.ndarray  # per-thread busy time
    makespan: float

    @property
    def omega(self) -> int:
        return int(self.busy.size)

    @property
    def total_work(self) -> float:
        return float(self.busy.sum())

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent working (1.0 = no barrier wait)."""
        if self.makespan == 0:
            return 1.0
        return self.total_work / (self.makespan * self.omega)

    @property
    def imbalance(self) -> float:
        """makespan / ideal equal split."""
        ideal = self.total_work / self.omega if self.omega else 0.0
        return self.makespan / ideal if ideal else 1.0

    def gantt(self, width: int = 50) -> str:
        """Text Gantt chart: one bar per thread, scaled to the makespan."""
        lines = []
        for w, busy in enumerate(self.busy):
            filled = int(round(width * busy / self.makespan)) if self.makespan else 0
            lines.append(f"t{w:02d} |{'#' * filled}{'.' * (width - filled)}| "
                         f"{busy:.3g}")
        lines.append(f"makespan {self.makespan:.3g}, "
                     f"utilization {self.utilization:.1%}")
        return "\n".join(lines)


def simulate_stage(
    schedule: StaticSchedule, task_costs: Optional[np.ndarray] = None
) -> StageTimeline:
    """Simulate one statically scheduled stage.

    ``task_costs`` gives each task's execution time (uniform cost 1.0 if
    omitted).  Tasks run in partition order on their assigned thread.
    """
    schedule.validate()
    if task_costs is None:
        task_costs = np.ones(schedule.total_tasks)
    task_costs = np.asarray(task_costs, dtype=np.float64)
    if task_costs.size != schedule.total_tasks:
        raise ValueError(
            f"{task_costs.size} costs for {schedule.total_tasks} tasks"
        )
    busy = np.array([
        float(task_costs[p.start : p.stop].sum()) for p in schedule.partitions
    ])
    return StageTimeline(busy=busy, makespan=float(busy.max(initial=0.0)))
