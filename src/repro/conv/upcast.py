"""Up-casting low-precision Winograd convolution (ncnn-style, Fig. 2a).

Quantization happens in the *spatial* domain; the Winograd transforms run
in integer arithmetic on the quantized data.  Because the transforms
amplify the value range (4x for F(2,3), 100x for F(4,3) in 2D), the
transformed operands no longer fit INT8 and are *up-cast* to INT16; the
elementwise multiplication then runs on the INT16 ``vpmaddwd`` path,
which has half the peak throughput of ``vpdpbusd`` and twice the operand
traffic -- the performance penalty the paper attributes to this approach.

Numerically the approach is *exact* given the spatial quantization: the
integer transforms introduce no additional error, so its accuracy matches
INT8 direct convolution.  To keep the transforms exact for fractional
``G`` matrices we scale ``G`` by the LCM of its denominators and fold the
constant back into the dequantization scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from math import lcm

import numpy as np

from ..isa import saturate_cast, vpmaddwd_array
from ..quant import QuantParams, quantize, spatial_params_from_tensor
from ..winograd import WinogradAlgorithm, assemble_output, output_transform, winograd_algorithm
from ._tileops import gemm_result_to_tiles, prepare_input_tiles, tiles_to_gemm_operand
from .direct import per_out_channel_weight_params
from .im2col import pad_images

__all__ = ["UpcastWinogradConv2d", "integer_transform_matrices"]


@lru_cache(maxsize=None)
def integer_transform_matrices(alg: WinogradAlgorithm) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Integerized ``B^T`` and ``G`` with their LCM scale factors.

    Returns ``(bt_int, g_int, bt_lcm, g_lcm)`` such that
    ``bt_int = bt * bt_lcm`` and ``g_int = g * g_lcm`` are exact integer
    matrices.  For the canonical point sets ``bt_lcm == 1``.  Memoized
    per algorithm (the LCM search over exact ``Fraction`` rows is pure);
    callers must not mutate the returned arrays.
    """
    def lcm_of(mat) -> int:
        return lcm(*(Fraction(v).denominator for row in mat for v in row)) or 1

    bt_l = lcm_of(alg.bt_exact)
    g_l = lcm_of(alg.g_exact)
    bt_int = np.array(
        [[int(v * bt_l) for v in row] for row in alg.bt_exact], dtype=np.int64
    )
    g_int = np.array(
        [[int(v * g_l) for v in row] for row in alg.g_exact], dtype=np.int64
    )
    return bt_int, g_int, bt_l, g_l


def _transform_int(mat_int: np.ndarray, tiles: np.ndarray) -> np.ndarray:
    """Exact integer 2D transform ``M t M^T`` over trailing axes (int64)."""
    half = np.einsum("...ij,oj->...io", tiles.astype(np.int64), mat_int)
    return np.einsum("pi,...io->...po", mat_int, half)


@dataclass
class UpcastWinogradConv2d:
    """INT8-in, INT16-multiply Winograd convolution."""

    filters_fp32: np.ndarray
    m: int = 2
    padding: int = 0
    input_threshold: float | None = None
    bits: int = 8

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        k, c, r, r2 = self.filters_fp32.shape
        if r != r2:
            raise ValueError("only square filters supported")
        self.alg = winograd_algorithm(self.m, r)
        self.bt_int, self.g_int, self.bt_lcm, self.g_lcm = integer_transform_matrices(self.alg)
        # Offline: spatial weight quantization + exact integer filter transform.
        self.weight_params = per_out_channel_weight_params(self.filters_fp32, bits=self.bits)
        gq = quantize(self.filters_fp32, self.weight_params)  # (K, C, r, r) int8
        u = _transform_int(self.g_int, gq)  # (K, C, a, a) int64, scaled by g_lcm^2
        max_u = int(np.abs(u).max()) if u.size else 0
        if max_u <= np.iinfo(np.int16).max:
            # Exact route: the LCM-scaled integer transform fits INT16.
            u16 = u.astype(np.int16)
            self.filter_scale = float(self.g_lcm**2)
        else:
            # F(4,3)-and-larger: the exact integerized transform exceeds
            # INT16, so store the transformed filter as a *rounded* INT16
            # with the largest scale that fits -- still "up-cast to a
            # wider type", with rounding error <= 0.5/32767 of full scale.
            u_fp = u.astype(np.float64) / (self.g_lcm**2)
            s = np.iinfo(np.int16).max / float(np.abs(u_fp).max() or 1.0)
            u16 = saturate_cast(u_fp * s, np.int16)
            self.filter_scale = s
        self.u_int16 = np.ascontiguousarray(
            u16.reshape(k, c, self.alg.tile_elements).transpose(2, 1, 0)
        )  # (T, C, K)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        k = self.filters_fp32.shape[0]
        if self.input_threshold is not None:
            in_params = QuantParams.from_threshold(self.input_threshold, bits=self.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=self.bits)
        xq = quantize(images, in_params)  # int8 NCHW
        x = pad_images(xq, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)  # int8 tiles
        v = _transform_int(self.bt_int, tiles)  # int64, scaled by bt_lcm^2
        max_v = int(np.abs(v).max()) if v.size else 0
        if max_v > np.iinfo(np.int16).max:
            raise OverflowError(
                f"transformed inputs overflow INT16 (max {max_v})"
            )
        v16 = tiles_to_gemm_operand(saturate_cast(v, np.int16))  # (T, N, C) int16
        # INT16 multiply path (vpmaddwd): contract channels to int32.
        z = np.einsum(
            "tnc,tck->tnk", v16.astype(np.int64), self.u_int16.astype(np.int64)
        ).astype(np.int32)
        # Dequantize: undo input scale, per-channel weight scale, LCM /
        # filter-upcast factors.
        denom = (
            in_params.scale
            * self.weight_params.scale.reshape(1, 1, k)
            * (self.bt_lcm**2)
            * self.filter_scale
        )
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, images.shape[0], grid, k)
        y = output_transform(self.alg, acc_tiles)
        return assemble_output(grid, y)

    def reference_forward(self, images: np.ndarray) -> np.ndarray:
        """Loop-based reference path for differential testing.

        Per-tile integer transforms in Python loops and a per-position
        GEMM loop over the ``T`` tile elements; exactly the arithmetic of
        :meth:`__call__` (all stages are integer-exact), kept as the
        baseline the vectorized runtime engine is tested against.
        """
        images = np.asarray(images, dtype=np.float64)
        k = self.filters_fp32.shape[0]
        if self.input_threshold is not None:
            in_params = QuantParams.from_threshold(self.input_threshold, bits=self.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=self.bits)
        xq = quantize(images, in_params)
        x = pad_images(xq, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)
        v = np.empty(tiles.shape, dtype=np.int64)
        for bi in range(tiles.shape[0]):
            for ti in range(grid.tiles_h):
                for tj in range(grid.tiles_w):
                    v[bi, :, ti, tj] = _transform_int(self.bt_int, tiles[bi, :, ti, tj])
        max_v = int(np.abs(v).max()) if v.size else 0
        if max_v > np.iinfo(np.int16).max:
            raise OverflowError(f"transformed inputs overflow INT16 (max {max_v})")
        v16 = tiles_to_gemm_operand(saturate_cast(v, np.int16))  # (T, N, C)
        t, n, _ = v16.shape
        z = np.empty((t, n, k), dtype=np.int32)
        for ti in range(t):  # per-position GEMM loop
            z[ti] = (
                v16[ti].astype(np.int64) @ self.u_int16[ti].astype(np.int64)
            ).astype(np.int32)
        denom = (
            in_params.scale
            * self.weight_params.scale.reshape(1, 1, k)
            * (self.bt_lcm**2)
            * self.filter_scale
        )
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, images.shape[0], grid, k)
        y = output_transform(self.alg, acc_tiles)
        return assemble_output(grid, y)

    def multiply_semantics_check(self, v16: np.ndarray, u16: np.ndarray) -> np.ndarray:
        """Expose the vpmaddwd contraction for the ISA-equivalence tests."""
        return vpmaddwd_array(v16, u16)
