"""Direct convolution: FP32 reference and INT8 (oneDNN-style) baseline.

The FP32 path is the numerical ground truth for the whole repository.
The INT8 path is the "INT8 Direct Convolution - oneDNN" baseline of
Figure 8: spatial-domain per-tensor quantization of activations,
per-output-channel quantization of weights, integer GEMM over the
im2col lowering, then dequantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant import QuantParams, dequantize, quantize, spatial_params_from_tensor
from .im2col import conv_output_shape, im2col, pad_images

__all__ = ["direct_conv2d_fp32", "Int8DirectConv2d", "per_out_channel_weight_params"]


def direct_conv2d_fp32(
    images: np.ndarray,
    filters: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """FP32 direct convolution, NCHW x (K, C, r, r) -> NCHW.

    Implemented as im2col + GEMM; exact up to float64 accumulation.
    """
    images = np.asarray(images, dtype=np.float64)
    filters = np.asarray(filters, dtype=np.float64)
    b, c, h, w = images.shape
    k, c2, r, r2 = filters.shape
    if c != c2 or r != r2:
        raise ValueError(f"shape mismatch: images {images.shape}, filters {filters.shape}")
    x = pad_images(images, padding)
    oh, ow = conv_output_shape(h, w, r, stride=stride, padding=padding)
    cols = im2col(x, r, stride=stride)  # (B*OH*OW, C*r*r)
    out = cols @ filters.reshape(k, -1).T  # (B*OH*OW, K)
    return out.reshape(b, oh, ow, k).transpose(0, 3, 1, 2)


def per_out_channel_weight_params(filters: np.ndarray, bits: int = 8) -> QuantParams:
    """Symmetric per-output-channel weight scales (standard PTQ practice)."""
    k = filters.shape[0]
    tau = np.abs(filters.reshape(k, -1)).max(axis=1)
    tau = np.where(tau > 0, tau, 1.0)
    from ..quant import scale_for_threshold

    return QuantParams(scale=scale_for_threshold(tau, bits=bits).reshape(k, 1, 1, 1), bits=bits)


@dataclass
class Int8DirectConv2d:
    """Spatially-quantized INT8 direct convolution.

    The layer is constructed offline from FP32 filters (weights quantized
    per output channel); the activation threshold comes either from a
    calibration pass (pass ``input_threshold``) or per-batch min/max.
    """

    filters_fp32: np.ndarray
    stride: int = 1
    padding: int = 0
    input_threshold: float | None = None
    bits: int = 8

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        self.weight_params = per_out_channel_weight_params(self.filters_fp32, bits=self.bits)
        self.filters_q = quantize(self.filters_fp32, self.weight_params)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        b, c, h, w = images.shape
        k, _, r, _ = self.filters_fp32.shape
        if self.input_threshold is not None:
            in_params = QuantParams.from_threshold(self.input_threshold, bits=self.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=self.bits)
        xq = quantize(images, in_params)
        x = pad_images(xq, self.padding)
        oh, ow = conv_output_shape(h, w, r, stride=self.stride, padding=self.padding)
        cols = im2col(x, r, stride=self.stride)  # int8 (B*OH*OW, C*r*r)
        wq = self.filters_q.reshape(k, -1)  # int8 (K, C*r*r)
        acc = cols.astype(np.int32) @ wq.astype(np.int32).T  # (B*OH*OW, K) int32
        # Dequantize: per output channel scale * input scale.
        w_scale = self.weight_params.scale.reshape(1, k)
        out = acc.astype(np.float64) / (in_params.scale * w_scale)
        return out.reshape(b, oh, ow, k).transpose(0, 3, 1, 2)
