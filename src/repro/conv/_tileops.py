"""Shared tile/GEMM reshape helpers for the Winograd convolution variants.

All low-precision Winograd implementations share the same dataflow
skeleton (Figure 3): tiles -> transforms -> batched GEMM operands ->
output tiles.  The reshapes live here so the LoWino core and the two
baseline implementations stay focused on their quantization logic.
"""

from __future__ import annotations

import numpy as np

from ..winograd import TileGrid, WinogradAlgorithm, extract_tiles, tile_grid

__all__ = ["tiles_to_gemm_operand", "gemm_result_to_tiles", "prepare_input_tiles"]


def prepare_input_tiles(
    alg: WinogradAlgorithm, images: np.ndarray, out: np.ndarray | None = None
) -> tuple[np.ndarray, TileGrid]:
    """Extract overlapping tiles; returns ``((B, C, th, tw, a, a), grid)``."""
    b, c, h, w = images.shape
    grid = tile_grid(alg, h, w)
    return extract_tiles(grid, images, out=out), grid


def tiles_to_gemm_operand(tiles: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``(B, C, th, tw, a, a)`` -> ``(T, N, C)`` with ``N = B*th*tw``.

    Preserves dtype; this is the scatter step (2. in Figure 3) that the
    real implementation performs with non-temporal stores.  ``out``, if
    given, receives the layout copy (a plan-cached scratch buffer in the
    runtime engine); the values are identical either way.
    """
    b, c, th, tw, a1, a2 = tiles.shape
    t = a1 * a2
    x = tiles.transpose(0, 2, 3, 1, 4, 5).reshape(b * th * tw, c, t)
    if out is None:
        return np.ascontiguousarray(x.transpose(2, 0, 1))
    np.copyto(out, x.transpose(2, 0, 1))
    return out


def gemm_result_to_tiles(
    z: np.ndarray, batch: int, grid: TileGrid, k: int, out: np.ndarray | None = None
) -> np.ndarray:
    """``(T, N, K)`` -> ``(B, K, th, tw, a, a)`` accumulator tiles."""
    t, n, k2 = z.shape
    if k2 != k:
        raise ValueError(f"channel mismatch: operand K={k2}, expected {k}")
    a = int(round(t**0.5))
    if a * a != t:
        raise ValueError(f"T={t} is not a square tile element count")
    x = z.transpose(1, 2, 0).reshape(batch, grid.tiles_h, grid.tiles_w, k, a, a)
    if out is None:
        return np.ascontiguousarray(x.transpose(0, 3, 1, 2, 4, 5))
    np.copyto(out, x.transpose(0, 3, 1, 2, 4, 5))
    return out
