"""Full-precision layer classes with offline-prepared state.

The seed built the ``fp32_winograd`` / ``fp32_direct`` branches of
:func:`repro.conv.make_layer` as ad-hoc closures that re-derived the
transform matrices and re-transformed the filters on *every call* --
exactly the per-call preparation cost the LoWino pipeline exists to
amortize (Section 4.2).  These classes hoist that work into
construction, mirroring the INT8 layer objects: the Winograd layer
precomputes the transformed-filter GEMM operand ``U`` once, the direct
layer the flattened filter matrix, and both participate in the runtime
plan cache through :func:`repro.conv.make_layer`.

Both forwards are bitwise identical to the corresponding one-shot
functions (:func:`repro.winograd.winograd_conv2d_fp32` /
:func:`repro.conv.direct_conv2d_fp32`): they issue the same NumPy
operations in the same order, only on precomputed operands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..winograd import assemble_output, output_transform, winograd_algorithm
from ..winograd.reference import _filter_gemm_operand, winograd_domain_matrices
from .im2col import conv_output_shape, im2col, pad_images

__all__ = ["Fp32WinogradConv2d", "Fp32DirectConv2d"]


@dataclass
class Fp32WinogradConv2d:
    """FP32 Winograd convolution with a precomputed filter transform."""

    filters_fp32: np.ndarray
    m: int = 2
    padding: int = 0

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        k, c, r, r2 = self.filters_fp32.shape
        if r != r2:
            raise ValueError("only square filters supported")
        self.alg = winograd_algorithm(self.m, r)
        # Offline: U = G g G^T reshaped to the (T, C, K) GEMM operand.
        self.u = _filter_gemm_operand(self.alg, self.filters_fp32)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.shape[1] != self.filters_fp32.shape[1]:
            raise ValueError(
                f"channel mismatch: images C={images.shape[1]}, "
                f"filters C={self.filters_fp32.shape[1]}"
            )
        b = images.shape[0]
        k = self.filters_fp32.shape[0]
        x = pad_images(images, self.padding)
        v, grid = winograd_domain_matrices(self.alg, x)  # (T, N, C)
        z = np.matmul(v, self.u)  # (T, N, K)
        a = self.alg.alpha
        z = z.transpose(1, 2, 0).reshape(b, grid.tiles_h, grid.tiles_w, k, a, a)
        y = output_transform(self.alg, z.transpose(0, 3, 1, 2, 4, 5))
        return assemble_output(grid, y)


@dataclass
class Fp32DirectConv2d:
    """FP32 direct convolution with a precomputed filter matrix."""

    filters_fp32: np.ndarray
    padding: int = 0
    stride: int = 1

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        k, c, r, r2 = self.filters_fp32.shape
        if r != r2:
            raise ValueError("only square filters supported")
        # Offline: the (K, C*r*r) im2col filter matrix.
        self.w_flat = np.ascontiguousarray(self.filters_fp32.reshape(k, -1))

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        b, c, h, w = images.shape
        k, c2, r, _ = self.filters_fp32.shape
        if c != c2:
            raise ValueError(f"channel mismatch: images C={c}, filters C={c2}")
        x = pad_images(images, self.padding)
        oh, ow = conv_output_shape(h, w, r, stride=self.stride, padding=self.padding)
        cols = im2col(x, r, stride=self.stride)  # (B*OH*OW, C*r*r)
        out = cols @ self.w_flat.T  # (B*OH*OW, K)
        return out.reshape(b, oh, ow, k).transpose(0, 3, 1, 2)
