"""Convolution implementations: FP32 references and INT8 baselines."""

from .api import Algorithm, conv2d, make_layer, select_algorithm
from .decompose import (
    kernel_chunks,
    polyphase_split,
    winograd_conv2d_large_kernel,
    winograd_conv2d_strided,
)
from .direct import Int8DirectConv2d, direct_conv2d_fp32, per_out_channel_weight_params
from .downscale import DownscaleWinogradConv2d
from .fp32 import Fp32DirectConv2d, Fp32WinogradConv2d
from .im2col import conv_output_shape, im2col, pad_images
from .upcast import UpcastWinogradConv2d, integer_transform_matrices

__all__ = [
    "Algorithm",
    "kernel_chunks",
    "polyphase_split",
    "winograd_conv2d_large_kernel",
    "winograd_conv2d_strided",
    "conv2d",
    "make_layer",
    "select_algorithm",
    "Int8DirectConv2d",
    "Fp32DirectConv2d",
    "Fp32WinogradConv2d",
    "direct_conv2d_fp32",
    "per_out_channel_weight_params",
    "DownscaleWinogradConv2d",
    "conv_output_shape",
    "im2col",
    "pad_images",
    "UpcastWinogradConv2d",
    "integer_transform_matrices",
]
