"""Down-scaling low-precision Winograd convolution (oneDNN-style, Fig. 2b).

Like the up-casting approach, quantization happens in the spatial domain
and the transforms run on integer data.  But instead of widening the
multiply to INT16, the transformed operands are scaled *back down* into
INT8 by the reciprocal of the transform's range amplification
(``alpha = 1/4`` for F(2,3), ``1/100`` for F(4,3)) and rounded.  The
multiply then enjoys full ``vpdpbusd`` throughput, at the price of the
round-off error the paper's Section 2.3 and Figure 9 dissect: for
F(4,3) the useful signal collapses into a handful of integer levels and
end-to-end accuracy drops to chance (Table 3's ``00.00`` row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa import saturate_cast
from ..quant import QuantParams, quantize, spatial_params_from_tensor
from ..winograd import assemble_output, filter_transform, output_transform, winograd_algorithm
from ._tileops import gemm_result_to_tiles, prepare_input_tiles, tiles_to_gemm_operand
from .direct import per_out_channel_weight_params
from .im2col import pad_images
from .upcast import _transform_int, integer_transform_matrices

__all__ = ["DownscaleWinogradConv2d"]


@dataclass
class DownscaleWinogradConv2d:
    """INT8 Winograd with transformed operands down-scaled back to INT8.

    ``input_downscale`` defaults to the transform's worst-case 2D
    amplification (4 / 100 / 10000 for m = 2 / 4 / 6 with r = 3), exactly
    the factors quoted in Section 2.3.
    """

    filters_fp32: np.ndarray
    m: int = 2
    padding: int = 0
    input_threshold: float | None = None
    input_downscale: float | None = None
    bits: int = 8

    def __post_init__(self) -> None:
        self.filters_fp32 = np.asarray(self.filters_fp32, dtype=np.float64)
        k, c, r, r2 = self.filters_fp32.shape
        if r != r2:
            raise ValueError("only square filters supported")
        self.alg = winograd_algorithm(self.m, r)
        self.bt_int, _, self.bt_lcm, _ = integer_transform_matrices(self.alg)
        if self.input_downscale is None:
            self.input_downscale = 1.0 / self.alg.input_amplification()
        # Offline filter path: spatial per-channel quantization, FP filter
        # transform of the quantized weights, then per-tensor down-scale of
        # the transformed filter into INT8 (the beta*U of Figure 2b).
        self.weight_params = per_out_channel_weight_params(self.filters_fp32, bits=self.bits)
        gq = quantize(self.filters_fp32, self.weight_params).astype(np.float64)
        u = filter_transform(self.alg, gq)  # (K, C, a, a) float (integer-valued * fractions of G)
        max_u = float(np.abs(u).max()) if u.size else 1.0
        self.filter_downscale = (127.0 / max_u) if max_u > 0 else 1.0
        u8 = saturate_cast(u * self.filter_downscale, np.int8)
        self.u_int8 = np.ascontiguousarray(
            u8.reshape(k, c, self.alg.tile_elements).transpose(2, 1, 0)
        )  # (T, C, K)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        k = self.filters_fp32.shape[0]
        if self.input_threshold is not None:
            in_params = QuantParams.from_threshold(self.input_threshold, bits=self.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=self.bits)
        xq = quantize(images, in_params)
        x = pad_images(xq, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)
        v = _transform_int(self.bt_int, tiles)  # exact int64, scale bt_lcm^2
        # Down-scale + round: the lossy step (marked 2 in Figure 2b).
        scale = self.input_downscale / (self.bt_lcm**2)
        v8 = saturate_cast(v.astype(np.float64) * scale, np.int8)
        v_op = tiles_to_gemm_operand(v8)  # (T, N, C) int8
        z = np.einsum(
            "tnc,tck->tnk", v_op.astype(np.int32), self.u_int8.astype(np.int32)
        ).astype(np.int32)
        denom = (
            in_params.scale
            * self.input_downscale
            * self.weight_params.scale.reshape(1, 1, k)
            * self.filter_downscale
        )
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, images.shape[0], grid, k)
        y = output_transform(self.alg, acc_tiles)
        return assemble_output(grid, y)

    def reference_forward(self, images: np.ndarray) -> np.ndarray:
        """Loop-based reference path for differential testing.

        Per-tile integer transforms in Python loops plus a per-position
        GEMM loop; numerically identical to :meth:`__call__` (the down-
        scale rounding sees the same exact integers either way).
        """
        images = np.asarray(images, dtype=np.float64)
        k = self.filters_fp32.shape[0]
        if self.input_threshold is not None:
            in_params = QuantParams.from_threshold(self.input_threshold, bits=self.bits)
        else:
            in_params = spatial_params_from_tensor(images, bits=self.bits)
        xq = quantize(images, in_params)
        x = pad_images(xq, self.padding)
        tiles, grid = prepare_input_tiles(self.alg, x)
        v = np.empty(tiles.shape, dtype=np.int64)
        for bi in range(tiles.shape[0]):
            for ti in range(grid.tiles_h):
                for tj in range(grid.tiles_w):
                    v[bi, :, ti, tj] = _transform_int(self.bt_int, tiles[bi, :, ti, tj])
        scale = self.input_downscale / (self.bt_lcm**2)
        v8 = saturate_cast(v.astype(np.float64) * scale, np.int8)
        v_op = tiles_to_gemm_operand(v8)  # (T, N, C)
        t, n, _ = v_op.shape
        z = np.empty((t, n, k), dtype=np.int32)
        for ti in range(t):  # per-position GEMM loop
            z[ti] = v_op[ti].astype(np.int32) @ self.u_int8[ti].astype(np.int32)
        denom = (
            in_params.scale
            * self.input_downscale
            * self.weight_params.scale.reshape(1, 1, k)
            * self.filter_downscale
        )
        z_fp = z.astype(np.float64) / denom
        acc_tiles = gemm_result_to_tiles(z_fp, images.shape[0], grid, k)
        y = output_transform(self.alg, acc_tiles)
        return assemble_output(grid, y)
