"""Decomposable Winograd method: strides and large kernels.

Vanilla Winograd convolution (and therefore LoWino) handles unit-stride
3x3 filters.  Huang et al.'s DWM (AAAI'20, reference [10] of the paper)
extends coverage by decomposing a hostile convolution into a sum of
Winograd-friendly ones -- the "support versatile problem sizes" goal the
paper's related-work section highlights:

* **stride s**: polyphase split.  ``y[i] = sum_j x[s i + j] g[j]``
  separates by ``j mod s`` into ``s`` unit-stride convolutions on the
  decimated inputs ``x_p[t] = x[s t + p]`` with the decimated kernels
  ``g_p[k] = g[s k + p]``; outputs add.  In 2D both axes split, giving
  ``s^2`` sub-convolutions with kernels of mixed (smaller) sizes.

* **large kernels**: tap-block split.  The kernel is cut into
  ``ceil(r/3)`` chunks of <= 3 taps per axis; each chunk convolves a
  shifted view of the input with a standard small kernel; outputs add.

Each sub-convolution runs through the ordinary F(m, r_sub) machinery
(``r_sub == 1`` degenerates to a scaled copy, handled directly).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..winograd import winograd_algorithm, winograd_conv2d_fp32
from .im2col import pad_images

__all__ = [
    "polyphase_split",
    "kernel_chunks",
    "winograd_conv2d_strided",
    "winograd_conv2d_large_kernel",
]


def polyphase_split(
    x: np.ndarray, w: np.ndarray, stride: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a stride-``s`` problem into ``s^2`` unit-stride problems.

    ``x`` is NCHW (already padded), ``w`` is ``(K, C, r, r)``.  Returns
    ``(x_sub, w_sub)`` pairs whose unit-stride VALID convolutions sum to
    the strided convolution (after cropping to the strided output size).
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if stride == 1:
        return [(x, w)]
    out = []
    for ph in range(stride):
        for pw in range(stride):
            w_sub = w[:, :, ph::stride, pw::stride]
            if w_sub.shape[2] == 0 or w_sub.shape[3] == 0:
                continue
            x_sub = x[:, :, ph::stride, pw::stride]
            out.append((x_sub, w_sub))
    return out


def kernel_chunks(r: int, chunk: int = 3) -> List[Tuple[int, int]]:
    """Cut ``r`` taps into ``(offset, size)`` chunks of <= ``chunk``."""
    if r < 1:
        raise ValueError(f"kernel size must be >= 1, got {r}")
    return [(lo, min(chunk, r - lo)) for lo in range(0, r, chunk)]


def _conv_unit_stride(x: np.ndarray, w: np.ndarray, m: int) -> np.ndarray:
    """Unit-stride VALID conv of a possibly rectangular small kernel.

    Square kernels >= 2 go through Winograd F(m, r); size-1 axes are
    handled by pointwise contraction (Winograd of r=1 is a copy), and
    rectangular kernels decompose as a 1-tap axis x a Winograd axis via
    two passes -- here implemented with the direct reference for clarity
    since these edge kernels carry a tiny fraction of the work.
    """
    kh, kw = w.shape[2], w.shape[3]
    if kh == kw and kh >= 2:
        alg = winograd_algorithm(min(m, 6), kh)
        return winograd_conv2d_fp32(x, w, alg)
    # Rectangular / 1-tap edge kernels: the N-d reference handles any
    # filter shape.
    from ..winograd.ndim import direct_convnd_fp32

    return direct_convnd_fp32(np.ascontiguousarray(x), w)


def winograd_conv2d_strided(
    images: np.ndarray,
    filters: np.ndarray,
    m: int = 2,
    stride: int = 2,
    padding: int = 0,
) -> np.ndarray:
    """Strided convolution via the DWM polyphase decomposition.

    Equivalent to ``direct_conv2d_fp32(images, filters, stride, padding)``
    but with the bulk of the arithmetic inside Winograd sub-convolutions.
    """
    images = np.asarray(images, dtype=np.float64)
    filters = np.asarray(filters, dtype=np.float64)
    x = pad_images(images, padding)
    b, _, h, w_sz = x.shape
    k = filters.shape[0]
    r = filters.shape[2]
    oh = (h - r) // stride + 1
    ow = (w_sz - r) // stride + 1
    out = np.zeros((b, k, oh, ow))
    for x_sub, w_sub in polyphase_split(x, filters, stride):
        y = _conv_unit_stride(x_sub, w_sub, m)
        out += y[:, :, :oh, :ow]
    return out


def winograd_conv2d_large_kernel(
    images: np.ndarray,
    filters: np.ndarray,
    m: int = 2,
    padding: int = 0,
) -> np.ndarray:
    """Large-kernel (r > 3) convolution via DWM tap-block splitting."""
    images = np.asarray(images, dtype=np.float64)
    filters = np.asarray(filters, dtype=np.float64)
    x = pad_images(images, padding)
    b, _, h, w_sz = x.shape
    k, _, rh, rw = filters.shape
    oh, ow = h - rh + 1, w_sz - rw + 1
    if oh < 1 or ow < 1:
        raise ValueError("kernel larger than (padded) input")
    out = np.zeros((b, k, oh, ow))
    for lo_h, sz_h in kernel_chunks(rh):
        for lo_w, sz_w in kernel_chunks(rw):
            w_sub = filters[:, :, lo_h : lo_h + sz_h, lo_w : lo_w + sz_w]
            x_sub = x[:, :, lo_h:, lo_w:]
            y = _conv_unit_stride(x_sub, w_sub, m)
            out += y[:, :, :oh, :ow]
    return out
