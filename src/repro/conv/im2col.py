"""im2col lowering for convolution.

Converts a sliding-window convolution into one dense matrix product --
the classic lowering the GEMM-based baselines (direct INT8 convolution,
the im2col FP32 reference) are built on.  Uses stride tricks for the
window view and a single contiguous copy, per the vectorized-NumPy idiom.
"""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "pad_images", "conv_output_shape"]


def conv_output_shape(h: int, w: int, r: int, stride: int = 1, padding: int = 0) -> tuple[int, int]:
    """Output spatial size of an ``r x r`` convolution."""
    oh = (h + 2 * padding - r) // stride + 1
    ow = (w + 2 * padding - r) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError(f"convolution output would be empty: input {h}x{w}, r={r}, "
                         f"stride={stride}, padding={padding}")
    return oh, ow


def pad_images(images: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad NCHW images symmetrically in the spatial dimensions."""
    if padding == 0:
        return images
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    return np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(
    images: np.ndarray, r: int, stride: int = 1, out: np.ndarray | None = None
) -> np.ndarray:
    """Lower NCHW images to the im2col matrix.

    Parameters
    ----------
    images:
        ``(B, C, H, W)``, already padded.
    r:
        Square filter size.
    stride:
        Convolution stride.
    out:
        Optional preallocated C-contiguous ``(B*OH*OW, C*r*r)``
        destination (the runtime engine passes a leased scratch buffer);
        the copy out of the strided window view lands there instead of a
        fresh allocation.  Values are identical either way.

    Returns
    -------
    ``(B * OH * OW, C * r * r)`` array: one row per output pixel, columns
    ordered ``(C, r, r)`` to match ``filters.reshape(K, C*r*r)``.
    """
    b, c, h, w = images.shape
    oh, ow = conv_output_shape(h, w, r, stride=stride, padding=0)
    sb, sc, sh, sw = images.strides
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=(b, oh, ow, c, r, r),
        strides=(sb, sh * stride, sw * stride, sc, sh, sw),
        writeable=False,
    )
    if out is None:
        return np.ascontiguousarray(view).reshape(b * oh * ow, c * r * r)
    np.copyto(out.reshape(b, oh, ow, c, r, r), view)
    return out
