"""Unified convolution front-end and automatic algorithm selection.

``conv2d`` dispatches one call to any implementation in the repository;
``make_layer`` builds a persistent (offline-prepared) layer object.
``select_algorithm`` implements the paper's future-work item 1 -- picking
the fastest algorithm among direct / Winograd variants for a layer
configuration -- by querying the performance model.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .direct import Int8DirectConv2d, direct_conv2d_fp32  # noqa: F401  (re-export)
from .downscale import DownscaleWinogradConv2d  # noqa: F401  (re-export)
from .fp32 import Fp32DirectConv2d, Fp32WinogradConv2d  # noqa: F401  (re-export)
from .upcast import UpcastWinogradConv2d  # noqa: F401  (re-export)

__all__ = ["Algorithm", "conv2d", "make_layer", "select_algorithm"]

Algorithm = Literal[
    "fp32_direct",
    "fp32_winograd",
    "int8_direct",
    "int8_upcast",
    "int8_downscale",
    "lowino",
]


def make_layer(
    filters_fp32: np.ndarray,
    algorithm: Algorithm,
    m: int = 2,
    padding: int = 0,
    cache: bool = True,
    **kwargs,
):
    """Build a reusable layer object for the given algorithm.

    ``m`` selects the Winograd tile size for the Winograd-family
    algorithms and is ignored by the direct ones.  Extra ``kwargs`` pass
    through to the implementation (e.g. ``input_threshold``,
    ``use_blocked_gemm``).

    Preparation (transform-matrix construction, filter transform +
    quantization, compensation terms) is amortized through the runtime
    plan cache: with ``cache=True`` (the default), repeated calls with
    the same configuration and filter *contents* return the same
    prepared layer object.  Pass ``cache=False`` for a private instance
    -- e.g. when the layer will be calibrated with data that should not
    leak into other users of the same filters.
    """
    from ..runtime.plan import build_plan, get_plan

    if not cache:
        return build_plan(algorithm, filters_fp32, m=m, padding=padding, **kwargs).layer
    return get_plan(algorithm, filters_fp32, m=m, padding=padding, **kwargs).layer


def conv2d(
    images: np.ndarray,
    filters_fp32: np.ndarray,
    algorithm: Algorithm = "lowino",
    m: int = 2,
    padding: int = 0,
    **kwargs,
) -> np.ndarray:
    """One-shot convolution through any implementation."""
    return make_layer(filters_fp32, algorithm, m=m, padding=padding, **kwargs)(images)


def select_algorithm(
    batch: int, c: int, k: int, hw: int, r: int = 3, cores: int = 8
) -> tuple[str, int]:
    """Pick the predicted-fastest INT8 algorithm for a layer shape.

    Returns ``(algorithm, m)`` where ``algorithm`` is one of
    ``'int8_direct'`` / ``'lowino'`` and ``m`` the chosen tile size
    (0 for direct).  Uses the roofline cost model -- the paper's
    future-work "automatic mechanism to select the optimal algorithm".
    """
    from ..perf import predict_layer_times
    from ..workloads import LayerConfig

    layer = LayerConfig(name="query", batch=batch, c=c, k=k, hw=hw, r=r)
    times = predict_layer_times(layer, cores=cores)
    candidates = {
        "int8_direct": (times["onednn_direct"], 0),
        "lowino_f2": (times["lowino_f2"], 2),
        "lowino_f4": (times["lowino_f4"], 4),
    }
    best = min(candidates, key=lambda name: candidates[name][0])
    algo = "int8_direct" if best == "int8_direct" else "lowino"
    return algo, candidates[best][1]
