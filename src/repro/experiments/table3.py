"""Table 3: end-to-end top-1 accuracy of quantized networks.

Evaluates the synthetic VGG-style and ResNet-style stand-ins (see
DESIGN.md for the ImageNet substitution) under every quantization
scheme the paper tabulates:

* non-Winograd INT8 direct convolution (the KLD/Jacob/... comparison
  rows collapse to this single implementation here),
* oneDNN-style F(2,3) (down-scaling),
* LoWino F(2,3),
* down-scaling F(4,3) (the row the paper reports as 00.00),
* LoWino F(4,3),
* the ncnn-style up-casting implementation as an extra reference.

Every row reports the shared FP32 baseline accuracy next to the INT8
accuracy, as the paper's table does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..nn import (
    Sequential,
    build_resnet_small,
    build_vgg_small,
    dequantize_model,
    evaluate_model,
    make_eval_set,
    quantize_model,
)

__all__ = ["Table3Row", "run_table3", "format_table3", "TABLE3_METHODS"]

#: (method label, algorithm, m) in the table's row order.
TABLE3_METHODS = [
    ("int8 direct (non-Winograd)", "int8_direct", 2),
    ("upcast F(2,3) [ncnn]", "int8_upcast", 2),
    ("down-scaling F(2,3) [oneDNN]", "int8_downscale", 2),
    ("LoWino F(2,3)", "lowino", 2),
    ("down-scaling F(4,3)", "int8_downscale", 4),
    ("LoWino F(4,3)", "lowino", 4),
]


@dataclass(frozen=True)
class Table3Row:
    model: str
    method: str
    fp32_accuracy: float
    int8_accuracy: float

    @property
    def drop(self) -> float:
        return self.fp32_accuracy - self.int8_accuracy


def run_table3(
    models: Dict[str, Callable[[], Sequential]] | None = None,
    eval_images: int = 256,
    calibration_batches: int = 4,
    calibration_batch_size: int = 32,
    noise_sigma: float = 0.2,
    margin_quantile: float = 0.5,
    methods: List[tuple] | None = None,
    compiled: bool = True,
) -> List[Table3Row]:
    """Run the full accuracy table.  Heavier than the other experiments
    (minutes); shrink ``eval_images`` for smoke runs.

    With ``compiled=True`` (default) every quantized evaluation runs
    through a compiled :class:`~repro.runtime.session.InferenceSession`
    -- bit-identical to the eager model (so the accuracies cannot
    change) but several times faster.  The FP32 baseline stays on the
    eager path, which remains the conformance reference.
    """
    if models is None:
        models = {
            "VGG16 (synthetic)": lambda: build_vgg_small(width=32),
            "ResNet-50 (synthetic)": lambda: build_resnet_small(width=32),
        }
    methods = TABLE3_METHODS if methods is None else methods
    rows: List[Table3Row] = []
    for model_name, builder in models.items():
        model = builder()
        ds = make_eval_set(model, n=eval_images, noise_sigma=noise_sigma,
                           margin_quantile=margin_quantile)
        noisy = ds.noisy()
        fp32 = evaluate_model(model, noisy, ds.labels, logit_center=ds.logit_center)
        for label, algorithm, m in methods:
            quantize_model(
                model, algorithm, m=m,
                calibration_batches=ds.calibration_batches(
                    calibration_batches, calibration_batch_size
                ),
            )
            net = model
            if compiled:
                from ..runtime.session import InferenceSession

                net = InferenceSession(model, noisy.shape, collect_timings=False)
            acc = evaluate_model(net, noisy, ds.labels, logit_center=ds.logit_center)
            dequantize_model(model)
            rows.append(Table3Row(model=model_name, method=label,
                                  fp32_accuracy=fp32, int8_accuracy=acc))
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    header = f"{'model':22s} {'method':30s} {'FP32 acc':>9s} {'INT8 acc':>9s} {'drop':>7s}"
    lines = ["Table 3: end-to-end top-1 accuracy (synthetic ImageNet stand-in)",
             header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.model:22s} {row.method:30s} {row.fp32_accuracy:9.3f} "
            f"{row.int8_accuracy:9.3f} {row.drop:+7.3f}"
        )
    lines.append(
        "expected shape: LoWino/direct/upcast near FP32; down-scaling F(2,3) "
        "visibly worse; down-scaling F(4,3) at chance level"
    )
    return "\n".join(lines)
