"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from .ablation import (
    ErrorAblationRow,
    TileSizeRow,
    blocking_ablation,
    numeric_error_ablation,
    point_set_ablation,
    tile_size_study,
)
from .figure8 import Figure8Result, Figure8Row, format_figure8, run_figure8
from .sensitivity import SensitivityRow, core_scaling_study, machine_sensitivity_study
from .figure9 import Figure9Result, format_figure9, run_figure9
from .figure10 import Figure10Row, format_figure10, run_figure10
from .table3 import TABLE3_METHODS, Table3Row, format_table3, run_table3

__all__ = [
    "ErrorAblationRow",
    "TileSizeRow",
    "blocking_ablation",
    "numeric_error_ablation",
    "point_set_ablation",
    "tile_size_study",
    "Figure8Result",
    "Figure8Row",
    "format_figure8",
    "run_figure8",
    "SensitivityRow",
    "core_scaling_study",
    "machine_sensitivity_study",
    "Figure9Result",
    "format_figure9",
    "run_figure9",
    "Figure10Row",
    "format_figure10",
    "run_figure10",
    "TABLE3_METHODS",
    "Table3Row",
    "format_table3",
    "run_table3",
]
