"""Figure 9: value distribution of the quantized transformed input.

Compares what reaches the INT8 multiplier under the two quantization
strategies for F(4,3):

* down-scaling (Fig. 9a): the input is quantized in the spatial domain,
  transformed in integer arithmetic (range grows ~100x), then scaled by
  ``1/100`` and rounded -- the surviving integers occupy a *narrow* band
  around zero;
* LoWino (Fig. 9b): the FP32 transformed input is quantized directly --
  the integers span the full [-128, 127] range.

The result is the pair of integer-value histograms (count per INT8
value, log-scale in the paper's plot) plus summary statistics: the
number of distinct levels used and the fraction of the INT8 range
covered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..conv.upcast import _transform_int, integer_transform_matrices
from ..conv._tileops import prepare_input_tiles, tiles_to_gemm_operand
from ..isa import saturate_cast
from ..quant import per_position_minmax_params, quantize, spatial_params_from_tensor
from ..winograd import input_transform, winograd_algorithm
from ..workloads import LayerConfig, layer_by_name

__all__ = ["Figure9Result", "run_figure9", "format_figure9"]


@dataclass(frozen=True)
class Figure9Result:
    """Histograms over the 256 INT8 values (index 0 -> -128)."""

    downscale_hist: np.ndarray
    lowino_hist: np.ndarray

    @staticmethod
    def _levels(hist: np.ndarray) -> int:
        return int(np.count_nonzero(hist))

    @property
    def downscale_levels(self) -> int:
        return self._levels(self.downscale_hist)

    @property
    def lowino_levels(self) -> int:
        return self._levels(self.lowino_hist)

    @staticmethod
    def _range_covered(hist: np.ndarray) -> float:
        nz = np.flatnonzero(hist)
        if nz.size == 0:
            return 0.0
        return (nz[-1] - nz[0] + 1) / 256.0

    @property
    def downscale_range(self) -> float:
        return self._range_covered(self.downscale_hist)

    @property
    def lowino_range(self) -> float:
        return self._range_covered(self.lowino_hist)


def run_figure9(
    layer: LayerConfig | str = "VGG16_a",
    m: int = 4,
    batch: int = 2,
    seed: int = 17,
) -> Figure9Result:
    """Compute both histograms on synthetic activations of ``layer``.

    The paper uses VGG16_a activations; we use the synthetic post-ReLU
    tensor of the same layer configuration (batch reduced: the
    distribution, not the count, is what the figure shows).
    """
    if isinstance(layer, str):
        layer = layer_by_name(layer)
    layer = LayerConfig(name=layer.name, batch=batch, c=layer.c, k=layer.k,
                        hw=layer.hw, r=layer.r, padding=layer.padding)
    rng = np.random.default_rng(seed)
    x = layer.input_tensor(rng).astype(np.float64)
    alg = winograd_algorithm(m, layer.r)
    tiles, _ = prepare_input_tiles(alg, x)

    # Down-scaling path: spatial INT8, integer transform, scale + round.
    sp = spatial_params_from_tensor(x)
    xq = quantize(x, sp)
    tiles_q, _ = prepare_input_tiles(alg, xq)
    bt_int, _, bt_lcm, _ = integer_transform_matrices(alg)
    v_int = _transform_int(bt_int, tiles_q)
    scale = (1.0 / alg.input_amplification()) / (bt_lcm**2)
    v_down = saturate_cast(v_int.astype(np.float64) * scale, np.int8)

    # LoWino path: FP32 transform, Winograd-domain quantization.
    v_fp = tiles_to_gemm_operand(input_transform(alg, tiles))
    params = per_position_minmax_params(v_fp, position_axis=0)
    v_lw = quantize(v_fp, params)

    bins = np.arange(-128, 129) - 0.5
    down_hist, _ = np.histogram(v_down.ravel(), bins=bins)
    lw_hist, _ = np.histogram(v_lw.ravel(), bins=bins)
    return Figure9Result(downscale_hist=down_hist, lowino_hist=lw_hist)


def format_figure9(result: Figure9Result) -> str:
    lines = [
        "Figure 9: INT8 levels occupied by the quantized transformed input (F(4,3))",
        f"  down-scaling: {result.downscale_levels:4d} distinct levels, "
        f"{result.downscale_range:5.1%} of the INT8 range",
        f"  LoWino:       {result.lowino_levels:4d} distinct levels, "
        f"{result.lowino_range:5.1%} of the INT8 range",
    ]
    return "\n".join(lines)
