"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`numeric_error_ablation` -- per-layer convolution error of every
  low-precision scheme against the FP32 reference (the single-layer view
  behind Table 3 / Section 2.3's analysis).
* :func:`point_set_ablation` -- F(4,3) accuracy as a function of the
  Cook-Toom interpolation points (Lavin's canonical [0,1,-1,2,-2] vs
  mixed-magnitude sets per Barabasz et al.'s error analysis, which the
  paper cites as [1]).
* :func:`blocking_ablation` -- predicted GEMM time of the tuned blocking
  vs the static default vs a deliberately cache-hostile choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence

import numpy as np

from ..conv import (
    DownscaleWinogradConv2d,
    Int8DirectConv2d,
    UpcastWinogradConv2d,
    direct_conv2d_fp32,
)
from ..core import LoWinoConv2d
from ..gemm import BlockingParams, default_blocking
from ..tuning import gemm_stage_cost, tune_gemm
from ..winograd import cook_toom
from ..workloads import LayerConfig

__all__ = [
    "ErrorAblationRow",
    "TileSizeRow",
    "numeric_error_ablation",
    "point_set_ablation",
    "blocking_ablation",
    "tile_size_study",
]


@dataclass(frozen=True)
class ErrorAblationRow:
    layer: str
    scheme: str
    rel_rms_error: float


def _rel_rms(y: np.ndarray, ref: np.ndarray) -> float:
    denom = float(ref.std()) or 1.0
    return float(np.sqrt(np.mean((y - ref) ** 2)) / denom)


def numeric_error_ablation(
    layer: LayerConfig, seed: int = 23, batch: int = 1
) -> List[ErrorAblationRow]:
    """Convolution output error of each INT8 scheme on one layer config."""
    rng = np.random.default_rng(seed)
    cfg = LayerConfig(name=layer.name, batch=batch, c=layer.c, k=layer.k,
                      hw=min(layer.hw, 32), r=layer.r, padding=layer.padding)
    x = cfg.input_tensor(rng).astype(np.float64)
    w = cfg.filter_tensor(rng).astype(np.float64)
    ref = direct_conv2d_fp32(x, w, padding=cfg.padding)
    schemes = {
        "int8_direct": Int8DirectConv2d(w, padding=cfg.padding),
        "upcast_f2": UpcastWinogradConv2d(w, m=2, padding=cfg.padding),
        "downscale_f2": DownscaleWinogradConv2d(w, m=2, padding=cfg.padding),
        "downscale_f4": DownscaleWinogradConv2d(w, m=4, padding=cfg.padding),
        "lowino_f2": LoWinoConv2d(w, m=2, padding=cfg.padding),
        "lowino_f4": LoWinoConv2d(w, m=4, padding=cfg.padding),
    }
    return [
        ErrorAblationRow(layer=cfg.name, scheme=name, rel_rms_error=_rel_rms(impl(x), ref))
        for name, impl in schemes.items()
    ]


#: Candidate F(4,3) point sets (all 5 finite points + infinity).
F43_POINT_SETS: Dict[str, Sequence] = {
    "lavin [0,1,-1,2,-2]": (0, 1, -1, 2, -2),
    "half [0,1,-1,1/2,-1/2]": (0, 1, -1, Fraction(1, 2), Fraction(-1, 2)),
    "mixed [0,1,-1,2,-1/2]": (0, 1, -1, 2, Fraction(-1, 2)),
}


def point_set_ablation(
    c: int = 64, k: int = 32, hw: int = 16, seed: int = 29
) -> Dict[str, float]:
    """LoWino F(4,3) output error per interpolation-point set."""
    import repro.core.lowino as lowino_module

    rng = np.random.default_rng(seed)
    from scipy.ndimage import uniform_filter

    x = np.maximum(uniform_filter(rng.standard_normal((2, c, hw, hw)),
                                  size=(1, 1, 3, 3)), 0)
    w = rng.standard_normal((k, c, 3, 3)) * np.sqrt(2 / (9 * c))
    ref = direct_conv2d_fp32(x, w, padding=1)
    out: Dict[str, float] = {}
    original = lowino_module.winograd_algorithm
    try:
        for name, points in F43_POINT_SETS.items():
            alg = cook_toom(4, 3, points)
            lowino_module.winograd_algorithm = lambda m, r, _alg=alg: _alg
            layer = LoWinoConv2d(w, m=4, padding=1)
            out[name] = _rel_rms(layer(x), ref)
    finally:
        lowino_module.winograd_algorithm = original
    return out


@dataclass(frozen=True)
class TileSizeRow:
    """One (layer, m) point of the accuracy/performance frontier."""

    layer: str
    m: int
    predicted_time: float
    rel_rms_error: float
    complexity_reduction: float


def tile_size_study(
    layer: LayerConfig, tile_sizes: Sequence[int] = (2, 4, 6), seed: int = 31
) -> List[TileSizeRow]:
    """Accuracy/performance frontier across Winograd tile sizes.

    The paper argues larger tiles save more arithmetic but cost more
    numerically; with Winograd-domain quantization F(4,3) becomes
    usable, and this study extends the question to F(6,3) (the m value
    Section 2.3 cites as needing a 1/10000 down-scaling factor).
    Predicted times come from the cost model; errors are measured on
    reduced-size synthetic tensors of the layer's channel configuration.
    """
    from ..perf import plan_lowino
    from ..winograd import winograd_algorithm

    rng = np.random.default_rng(seed)
    cfg = LayerConfig(name=layer.name, batch=1, c=layer.c, k=layer.k,
                      hw=min(layer.hw, 24), r=layer.r, padding=layer.padding)
    x = cfg.input_tensor(rng).astype(np.float64)
    w = cfg.filter_tensor(rng).astype(np.float64)
    ref = direct_conv2d_fp32(x, w, padding=cfg.padding)
    rows = []
    for m in tile_sizes:
        impl = LoWinoConv2d(w, m=m, padding=cfg.padding)
        err = _rel_rms(impl(x), ref)
        time = plan_lowino(layer, m).total_time()
        rows.append(TileSizeRow(
            layer=layer.name, m=m, predicted_time=time, rel_rms_error=err,
            complexity_reduction=winograd_algorithm(m, layer.r).complexity_reduction,
        ))
    return rows


def blocking_ablation(layer: LayerConfig, m: int = 4) -> Dict[str, float]:
    """Predicted GEMM time: tuned vs default vs pessimal blocking."""
    t, n, c, k = layer.gemm_dims(m)
    tuned = tune_gemm(t, n, c, k)
    default = default_blocking(n, c, k)
    pessimal = BlockingParams(n_blk=8, c_blk=16, k_blk=16, row_blk=2, col_blk=1)
    pessimal.validate()
    return {
        "tuned": tuned.predicted_time,
        "default": gemm_stage_cost(t, n, c, k, default),
        "pessimal": gemm_stage_cost(t, n, c, k, pessimal),
    }
