"""Figure 10: transformation vs multiplication breakdown, oneDNN vs LoWino.

For the four layers the paper selects (VGG16_b, ResNet-50_c, YOLOv3_c,
U-Net_b), compute the per-stage times of oneDNN's fused F(2,3) and
LoWino's streamed F(2,3), normalized to oneDNN's total -- the exact
presentation of the paper's stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..perf import CASCADE_LAKE_8C, MachineModel, figure10_breakdowns
from ..workloads import BREAKDOWN_LAYERS, layer_by_name

__all__ = ["Figure10Row", "run_figure10", "format_figure10"]


@dataclass(frozen=True)
class Figure10Row:
    layer: str
    onednn_transform: float
    onednn_mult: float
    lowino_transform: float
    lowino_mult: float

    @property
    def onednn_total(self) -> float:
        return self.onednn_transform + self.onednn_mult

    @property
    def lowino_total(self) -> float:
        return self.lowino_transform + self.lowino_mult

    def normalized(self) -> Dict[str, float]:
        base = self.onednn_total
        return {
            "onednn_transform": self.onednn_transform / base,
            "onednn_mult": self.onednn_mult / base,
            "lowino_transform": self.lowino_transform / base,
            "lowino_mult": self.lowino_mult / base,
        }


def run_figure10(
    layers: List[str] | None = None,
    machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> List[Figure10Row]:
    layers = BREAKDOWN_LAYERS if layers is None else layers
    rows = []
    for name in layers:
        bd = figure10_breakdowns(layer_by_name(name), 2, machine, cores)
        rows.append(
            Figure10Row(
                layer=name,
                onednn_transform=bd["onednn_wino"].transformation,
                onednn_mult=bd["onednn_wino"].multiplication,
                lowino_transform=bd["lowino"].transformation,
                lowino_mult=bd["lowino"].multiplication,
            )
        )
    return rows


def format_figure10(rows: List[Figure10Row]) -> str:
    header = (
        f"{'layer':12s} {'oneDNN tf':>10s} {'oneDNN mm':>10s} "
        f"{'LoWino tf':>10s} {'LoWino mm':>10s} {'LoWino total':>13s}"
    )
    lines = [
        "Figure 10: F(2,3) stage breakdown, normalized to oneDNN total",
        header,
        "-" * len(header),
    ]
    for row in rows:
        n = row.normalized()
        lines.append(
            f"{row.layer:12s} {n['onednn_transform']:10.3f} {n['onednn_mult']:10.3f} "
            f"{n['lowino_transform']:10.3f} {n['lowino_mult']:10.3f} "
            f"{n['lowino_transform'] + n['lowino_mult']:13.3f}"
        )
    lines.append(
        "expected shape: LoWino transformation > oneDNN's (FP32 reads 4x data);"
        " LoWino multiplication <= oneDNN's (VNNI + larger blocks)"
    )
    return "\n".join(lines)
