"""One-shot reproduction report.

``python -m repro reproduce [--out report.md] [--with-table3]`` runs
every fast experiment and writes a self-contained markdown record --
the programmatic counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional

from .ablation import numeric_error_ablation, point_set_ablation, tile_size_study
from .figure8 import format_figure8, run_figure8
from .figure9 import format_figure9, run_figure9
from .figure10 import format_figure10, run_figure10
from .sensitivity import machine_sensitivity_study

__all__ = ["reproduction_report"]


def reproduction_report(with_table3: bool = False,
                        table3_kwargs: Optional[dict] = None) -> str:
    """Run the evaluation suite and return a markdown report."""
    sections = ["# LoWino reproduction report", ""]

    fig8 = run_figure8()
    sections += ["## Figure 8 -- per-layer speedups (cost model)", "",
                 "```", format_figure8(fig8), "```", ""]

    sections += ["## Figure 9 -- quantized transformed-input range", "",
                 "```", format_figure9(run_figure9()), "```", ""]

    sections += ["## Figure 10 -- stage breakdown", "",
                 "```", format_figure10(run_figure10()), "```", ""]

    from ..workloads import layer_by_name

    sections += ["## Section 2.3 ablation -- per-layer numeric error", "", "```"]
    for row in numeric_error_ablation(layer_by_name("ResNet-50_b")):
        sections.append(f"{row.scheme:14s} rel RMS error {row.rel_rms_error:.4f}")
    sections += ["```", ""]

    sections += ["## Extension -- F(4,3) interpolation points", "", "```"]
    for name, err in point_set_ablation().items():
        sections.append(f"{name:28s} {err:.4f}")
    sections += ["```", ""]

    sections += ["## Extension -- tile-size frontier (VGG16_c)", "", "```"]
    for row in tile_size_study(layer_by_name("VGG16_c")):
        sections.append(
            f"F({row.m},3): predicted {row.predicted_time * 1e3:7.3f} ms, "
            f"rel err {row.rel_rms_error:.4f}"
        )
    sections += ["```", ""]

    sections += ["## Extension -- machine sensitivity", "", "```"]
    for row in machine_sensitivity_study():
        sections.append(f"{row.machine:28s} avg {row.avg_speedup:.2f}x, "
                        f"max {row.max_speedup:.2f}x")
    sections += ["```", ""]

    if with_table3:
        from .table3 import format_table3, run_table3

        sections += ["## Table 3 -- end-to-end accuracy", "", "```",
                     format_table3(run_table3(**(table3_kwargs or {}))),
                     "```", ""]

    return "\n".join(sections)
