"""Machine-sensitivity study: what the speedups depend on.

The paper's results are tied to Cascade Lake's VNNI.  This study re-runs
the Figure 8 aggregate on perturbed machine models to show *why* LoWino
wins and where the win would evaporate:

* ``no_vnni``: INT8 multiplies run on the vpmaddubsw/vpmaddwd path (2x
  FP32 instead of 4x) for everyone -- LoWino's edge over oneDNN's
  (already non-VNNI) Winograd shrinks accordingly;
* ``half_bandwidth`` / ``double_bandwidth``: DRAM-bound stages (the
  LoWino transforms, Figure 10) scale with memory bandwidth;
* ``core sweep``: the DRAM-bound fraction caps strong scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from ..perf import CASCADE_LAKE_8C, MachineModel
from ..perf.plans import plan_int8_direct, plan_lowino, plan_onednn_wino
from ..workloads import TABLE2_LAYERS, LayerConfig

__all__ = ["SensitivityRow", "machine_sensitivity_study", "core_scaling_study"]


@dataclass(frozen=True)
class SensitivityRow:
    machine: str
    avg_speedup: float  # LoWino F(4,3) vs best oneDNN
    max_speedup: float


def _aggregate(machine: MachineModel, vnni: bool,
               layers: List[LayerConfig]) -> tuple[float, float]:
    speedups = []
    for layer in layers:
        # Without VNNI the LoWino GEMM runs at the INT16-pair rate; the
        # plan helper exposes this through the upcast-style path: reuse
        # plan_lowino but double its GEMM cycles.
        lw = plan_lowino(layer, 4, machine)
        if not vnni:
            stages = []
            for stage in lw.stages:
                if stage.name == "gemm":
                    stage = replace(stage, cycles=stage.cycles * 2.0)
                stages.append(stage)
            lw.stages = stages
        direct = plan_int8_direct(layer, machine)
        if not vnni:
            stages = []
            for stage in direct.stages:
                stage = replace(stage, cycles=stage.cycles * 2.0)
                stages.append(stage)
            direct.stages = stages
        wino = plan_onednn_wino(layer, 2, machine)  # already non-VNNI
        best = min(direct.total_time(machine), wino.total_time(machine))
        speedups.append(best / lw.total_time(machine))
    arr = np.array(speedups)
    return float(arr.mean()), float(arr.max())


def machine_sensitivity_study(
    layers: List[LayerConfig] | None = None,
) -> List[SensitivityRow]:
    layers = TABLE2_LAYERS if layers is None else layers
    base = CASCADE_LAKE_8C
    variants = [
        ("baseline (VNNI, 100 GB/s)", base, True),
        ("no VNNI", base, False),
        ("half DRAM bandwidth", replace(base, dram_bw=base.dram_bw / 2), True),
        ("double DRAM bandwidth", replace(base, dram_bw=base.dram_bw * 2), True),
    ]
    rows = []
    for name, machine, vnni in variants:
        avg, mx = _aggregate(machine, vnni, layers)
        rows.append(SensitivityRow(machine=name, avg_speedup=avg, max_speedup=mx))
    return rows


def core_scaling_study(
    layer: LayerConfig, cores: List[int] = (1, 2, 4, 8, 16)
) -> Dict[int, float]:
    """LoWino F(4,3) predicted time per core count (fixed DRAM)."""
    out = {}
    for w in cores:
        machine = replace(CASCADE_LAKE_8C, cores=w)
        out[w] = plan_lowino(layer, 4, machine, cores=w).total_time(machine, w)
    return out
