"""Figure 8: normalized per-layer execution time and LoWino speedups.

Reproduces the two series of the paper's headline figure over the 20
Table 2 layers: normalized execution time (normalized to oneDNN INT8
direct convolution, as the paper's bars are) for the four INT8
implementations, and the speedup of LoWino F(4,3) over oneDNN's
Winograd, plus the aggregate statistics quoted in the abstract
(average / max speedup over the *best* oneDNN implementation and the
average speedup over the best FP32 implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..perf import CASCADE_LAKE_8C, MachineModel, predict_layer_times
from ..workloads import TABLE2_LAYERS, LayerConfig

__all__ = ["Figure8Row", "Figure8Result", "run_figure8", "format_figure8"]

#: The four bars of Figure 8, in the paper's legend order.
FIGURE8_IMPLS = ["onednn_direct", "onednn_wino", "lowino_f2", "lowino_f4"]


@dataclass(frozen=True)
class Figure8Row:
    layer: str
    times: Dict[str, float]  # seconds per implementation

    @property
    def normalized(self) -> Dict[str, float]:
        base = self.times["onednn_direct"]
        return {impl: t / base for impl, t in self.times.items()}

    @property
    def speedup_vs_onednn_wino(self) -> float:
        return self.times["onednn_wino"] / self.times["lowino_f4"]

    @property
    def speedup_vs_best_onednn(self) -> float:
        best = min(self.times["onednn_direct"], self.times["onednn_wino"])
        return best / self.times["lowino_f4"]


@dataclass(frozen=True)
class Figure8Result:
    rows: List[Figure8Row]

    def _speedups(self) -> np.ndarray:
        return np.array([r.speedup_vs_best_onednn for r in self.rows])

    @property
    def average_speedup(self) -> float:
        """Paper: 1.26x average over the best oneDNN implementation."""
        return float(self._speedups().mean())

    @property
    def max_speedup(self) -> float:
        """Paper: up to 2.04x."""
        return float(self._speedups().max())

    def fp32_speedups(self) -> Dict[str, float]:
        """Average speedups of LoWino F(2,3)/F(4,3) over the best FP32
        implementation (paper: 1.9x and 2.6x)."""
        f2, f4 = [], []
        for row in self.rows:
            base = min(row.times["fp32_direct"], row.times["fp32_wino"])
            f2.append(base / row.times["lowino_f2"])
            f4.append(base / row.times["lowino_f4"])
        return {"lowino_f2": float(np.mean(f2)), "lowino_f4": float(np.mean(f4))}


def run_figure8(
    layers: List[LayerConfig] | None = None,
    machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> Figure8Result:
    layers = TABLE2_LAYERS if layers is None else layers
    rows = []
    for layer in layers:
        times = predict_layer_times(layer, machine, cores)
        rows.append(Figure8Row(layer=layer.name, times=times))
    return Figure8Result(rows=rows)


def format_figure8(result: Figure8Result) -> str:
    """The figure's data as an aligned text table."""
    header = (
        f"{'layer':14s} " + " ".join(f"{impl:>14s}" for impl in FIGURE8_IMPLS)
        + f" {'speedup_f4':>11s}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        norm = row.normalized
        lines.append(
            f"{row.layer:14s} "
            + " ".join(f"{norm[impl]:14.3f}" for impl in FIGURE8_IMPLS)
            + f" {row.speedup_vs_onednn_wino:11.2f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"average speedup over best oneDNN: {result.average_speedup:.2f}x "
        f"(paper: 1.26x); max: {result.max_speedup:.2f}x (paper: 2.04x)"
    )
    fp32 = result.fp32_speedups()
    lines.append(
        f"average speedup over best FP32: F(2,3) {fp32['lowino_f2']:.2f}x "
        f"(paper: 1.9x), F(4,3) {fp32['lowino_f4']:.2f}x (paper: 2.6x)"
    )
    return "\n".join(lines)
