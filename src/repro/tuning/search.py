"""Auto-tuning of GEMM blocking parameters (Section 4.3.4).

The tuner enumerates the blocking space under the paper's constraints
(``row_blk * col_blk + col_blk < 31`` for the ZMM budget,
``C_blk * K_blk < 512^2`` for L2 residency, plus the layout
divisibility rules) and scores each candidate with the same cost model
the performance experiments use -- the stand-in for the paper's
measure-on-hardware tuning loop, run "ahead of time since the
convolutional layer's configuration is already known".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..gemm import BlockingParams, GemmWorkload, L2_ELEM_LIMIT, MAX_ACCUM_REGISTERS
from ..layout import SIGMA, ceil_div
from ..perf.machine import CASCADE_LAKE_8C, MachineModel, StageCost

__all__ = ["TuneResult", "candidate_space", "tune_gemm", "gemm_stage_cost"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one tuning run."""

    params: BlockingParams
    predicted_time: float
    candidates_evaluated: int


def candidate_space(n: int, c: int, k: int) -> Iterator[BlockingParams]:
    """Enumerate valid blocking candidates for a (N, C, K) GEMM."""
    for row_blk in (2, 4, 6, 8, 10, 14):
        for col_blk in (1, 2, 4):
            if row_blk * col_blk + col_blk >= MAX_ACCUM_REGISTERS:
                continue
            col_group = col_blk * SIGMA
            for k_mult in (1, 2, 4, 8):
                k_blk = col_group * k_mult
                if k_blk > max(col_group, 2 * k):
                    continue
                for c_blk in (4, 16, 32, 64, 128, 256, 512):
                    if c_blk > max(4, 2 * c) or c_blk % 4:
                        continue
                    if c_blk * k_blk >= L2_ELEM_LIMIT:
                        continue
                    for n_mult in (1, 2, 4, 8, 16):
                        n_blk = row_blk * n_mult
                        if n_blk > max(row_blk, 2 * n) or n_blk > 224:
                            continue
                        params = BlockingParams(
                            n_blk=n_blk, c_blk=c_blk, k_blk=k_blk,
                            row_blk=row_blk, col_blk=col_blk,
                        )
                        try:
                            params.validate()
                        except ValueError:
                            continue
                        yield params


def gemm_stage_cost(
    t: int, n: int, c: int, k: int, params: BlockingParams,
    machine: MachineModel = CASCADE_LAKE_8C, cores: Optional[int] = None,
) -> float:
    """Predicted GEMM stage time for one blocking candidate."""
    from ..perf.plans import _balance, _gemm_cycles, _gemm_l2_bytes

    cores = machine.cores if cores is None else cores
    work = GemmWorkload(t=t, n=n, c=c, k=k, params=params)
    stage = StageCost(
        name="gemm",
        cycles=_gemm_cycles(work, machine),
        dram_bytes=work.t * work.n_pad * work.c_pad + t * c * k + work.bytes_written,
        l2_bytes=_gemm_l2_bytes(work, 1, 1),
        balance=_balance(
            t * ceil_div(n, params.n_blk) * ceil_div(k, params.k_blk), cores
        ),
    )
    return stage.time(machine, cores)


def tune_gemm(
    t: int, n: int, c: int, k: int,
    machine: MachineModel = CASCADE_LAKE_8C, cores: Optional[int] = None,
) -> TuneResult:
    """Exhaustive search of the candidate space; returns the best point."""
    best: Optional[BlockingParams] = None
    best_time = float("inf")
    evaluated = 0
    for params in candidate_space(n, c, k):
        time = gemm_stage_cost(t, n, c, k, params, machine, cores)
        evaluated += 1
        if time < best_time:
            best, best_time = params, time
    if best is None:
        raise RuntimeError(f"no valid blocking candidate for GEMM ({n}, {c}, {k})")
    return TuneResult(params=best, predicted_time=best_time, candidates_evaluated=evaluated)
