"""Measured, persistent per-geometry algorithm selection.

The paper's auto-tuner measures instead of modelling; this module
applies that principle to the *algorithm choice itself*.  Where
:mod:`repro.tuning.model_planner` prices direct vs LoWino with an
analytic cost model at quantize time, :class:`AlgorithmSelector` runs a
short seeded measurement of every candidate the Winograd error budget
admits, picks the fastest, and records the choice in the shared
:class:`~repro.tuning.wisdom.WisdomFile` -- so the decision is made
once per (geometry, backend) on the deployment host and every later
session (and every worker sharing the wisdom file) reuses it.

Candidate admission is budget-gated, not guessed: an F(m, 3) tile is a
candidate only if ``quant_error_model(winograd_algorithm(m, 3))``
predicts at least ``min_snr_db`` of signal-to-noise at 8 bits.  With
the default 6 dB floor that admits F(2,3) (~24 dB) and F(4,3) (~8 dB)
and rejects F(6,3) (~2 dB) -- the paper's Section 2.3 amplification
argument as an executable gate.  Every admitted candidate is an engine
the conformance harness already bitwise-gates against its loop
reference, so switching between them is always numerically safe.

The static analytic choice is *always in the measured set*, which gives
the selector its no-regression property by construction: the selected
time can never exceed the static planner's measured time on the same
host.

Determinism: measurement inputs derive from ``(seed, geometry)`` via
``SeedSequence``, and a wisdom hit short-circuits measurement entirely
-- two workers sharing one wisdom file converge on the first persisted
choice (see :meth:`WisdomFile.store_algorithm`).  That convergence is
deliberately process-agnostic: the flock + disk-wins merge works the
same whether the "workers" are threads in one server or the spawned
worker *processes* of :class:`repro.serve.router.ProcServer`
(``tune_workers=True`` points every worker at one wisdom path and the
proc bench gates that their applied selections are identical).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..perf import CASCADE_LAKE_8C, predict_layer_times
from ..winograd import quant_error_model, winograd_algorithm
from ..workloads import LayerConfig
from .wisdom import DEFAULT_BACKEND, WisdomFile

__all__ = [
    "ConvGeometry",
    "SelectionResult",
    "AlgorithmSelector",
    "candidate_algorithms",
    "build_engine_for",
    "swap_preserves_calibration",
    "conv_family",
    "model_geometries",
    "DEFAULT_MIN_SNR_DB",
    "FAMILIES",
]

#: Error-budget floor (dB at 8 bits) for admitting an F(m, 3) tile.
#: Admits F(2,3) and F(4,3); rejects F(6,3) -- see module docstring.
DEFAULT_MIN_SNR_DB = 6.0

#: Default measurement seed (the paper's publication year, like the
#: bench suites).
DEFAULT_SEED = 2021

#: Winograd tile sizes the selector considers.
_TILE_SIZES = (2, 4)

#: Quantized Winograd variants measured per admitted tile size.
_WINOGRAD_ALGOS = ("lowino", "int8_upcast", "int8_downscale")

#: Selection families.  A conv is tuned within its own numerics family:
#: quantized convs choose among the INT8 pipelines, full-precision convs
#: (``engine is None`` or an fp32 engine) choose fp32_winograd@m vs
#: fp32_direct.  Families never mix -- a selection can change *speed*,
#: never a conv's numerics class.
FAMILIES = ("quantized", "fp32")

#: Algorithms belonging to the fp32 family.
_FP32_ALGOS = ("fp32_direct", "fp32_winograd")


def conv_family(conv) -> str:
    """Selection family of a :class:`~repro.nn.layers.Conv2d`.

    ``engine is None`` (the eager FP32-direct fallback) and the prepared
    fp32 engine objects are the ``"fp32"`` family; every quantized
    engine is ``"quantized"``.
    """
    from ..conv.fp32 import Fp32DirectConv2d, Fp32WinogradConv2d

    engine = getattr(conv, "engine", None)
    if engine is None or isinstance(engine, (Fp32DirectConv2d, Fp32WinogradConv2d)):
        return "fp32"
    return "quantized"


@dataclass(frozen=True)
class ConvGeometry:
    """Everything that determines a convolution's runtime cost."""

    batch: int
    c: int
    h: int
    w: int
    k: int
    r: int = 3
    stride: int = 1
    padding: int = 1

    def key(self, backend: str = DEFAULT_BACKEND, family: str = "quantized") -> str:
        """Wisdom key: backend-namespaced geometry signature.

        The fp32 family gets its own namespace segment so a geometry
        tuned in both families holds two independent entries; quantized
        keys are unchanged from wisdom v2 (no migration needed).
        """
        prefix = f"{backend}|" if family == "quantized" else f"{backend}|{family}|"
        return (
            f"{prefix}b{self.batch}c{self.c}h{self.h}w{self.w}"
            f"k{self.k}r{self.r}s{self.stride}p{self.padding}"
        )

    @property
    def winograd_eligible(self) -> bool:
        return self.stride == 1 and self.r == 3

    @classmethod
    def of_conv(cls, conv, in_shape: Tuple[int, ...]) -> "ConvGeometry":
        """Geometry of a :class:`~repro.nn.layers.Conv2d` fed ``in_shape``."""
        b, c, h, w = (int(s) for s in in_shape)
        return cls(
            batch=b, c=c, h=h, w=w,
            k=int(conv.filters.shape[0]),
            r=int(conv.filters.shape[2]),
            stride=int(conv.stride),
            padding=int(conv.padding),
        )

    def layer_config(self) -> LayerConfig:
        """Cost-model view of this geometry (square HxW assumed; the
        analytic planner prices ``hw = h`` which matches every model in
        the bench suite)."""
        return LayerConfig(
            name=self.key(), batch=self.batch, c=self.c, k=self.k,
            hw=self.h, r=self.r, padding=self.padding,
        )


def _label(algorithm: str, m: int) -> str:
    return f"{algorithm}@{m}"


def _parse_label(label: str) -> Tuple[str, int]:
    algorithm, _, m = label.partition("@")
    return algorithm, int(m)


def candidate_algorithms(
    geom: ConvGeometry,
    min_snr_db: float = DEFAULT_MIN_SNR_DB,
    family: str = "quantized",
) -> List[Tuple[str, int]]:
    """(algorithm, m) candidates the error budget admits for ``geom``.

    Quantized family: direct INT8 is always a candidate; Winograd
    variants require unit stride and r = 3, and each tile size must
    clear the analytic SNR floor -- the budget decides what may even be
    *measured*.

    FP32 family: fp32_direct is always a candidate and every tile size
    is admitted when Winograd applies -- full precision *is* the
    conformance oracle, so there is no quantization error budget to
    gate on.
    """
    if family == "fp32":
        candidates: List[Tuple[str, int]] = [("fp32_direct", 0)]
        if geom.winograd_eligible:
            candidates.extend(("fp32_winograd", m) for m in _TILE_SIZES)
        return candidates
    candidates = [("int8_direct", 0)]
    if not geom.winograd_eligible:
        return candidates
    for m in _TILE_SIZES:
        if quant_error_model(winograd_algorithm(m, geom.r)).snr_db(8) < min_snr_db:
            continue
        candidates.extend((algo, m) for algo in _WINOGRAD_ALGOS)
    return candidates


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of selecting an algorithm for one geometry."""

    geometry: ConvGeometry
    backend: str
    algorithm: str
    m: int
    #: Best-of measured seconds per candidate label (empty for a purely
    #: static result).
    measured: Dict[str, float] = field(default_factory=dict)
    #: The analytic planner's choice, as a label.
    static: str = ""
    #: "measured" | "wisdom" | "static"
    source: str = "measured"

    @property
    def label(self) -> str:
        return _label(self.algorithm, self.m)

    @property
    def static_ratio(self) -> float:
        """measured(static) / measured(selected); >= 1.0 when measured
        (the static candidate is always in the measured set)."""
        sel = self.measured.get(self.label)
        sta = self.measured.get(self.static)
        if not sel or not sta:
            return 1.0
        return sta / sel

    def entry(self) -> dict:
        """Wisdom-file representation."""
        return {
            "algorithm": self.algorithm,
            "m": self.m,
            "measured": dict(self.measured),
            "static": self.static,
        }


def swap_preserves_calibration(conv, algorithm: str, m: int) -> bool:
    """True iff rebuilding ``conv.engine`` as ``algorithm@m`` keeps
    *static* activation quantization.

    An engine without calibrated parameters falls back to per-batch
    dynamic quantization -- deterministic for a fixed batch, but
    dependent on batch *composition*, which breaks the serving layer's
    bit-identity under micro-batch coalescing.  So a swap is applicable
    only when the calibration can be carried over:

    * the spatial-threshold family (``int8_direct`` / ``int8_upcast`` /
      ``int8_downscale``) shares one m-independent ``input_threshold``
      -- swaps within it carry the calibrated value;
    * ``lowino`` needs per-tile-position Winograd-domain histograms
      tied to its ``m``, which cannot be rebuilt at swap time -- it is
      only ever "applied" as a no-op (the quantizer installed it).

    Apply sites (:func:`repro.runtime.compiler.apply_selection`,
    :meth:`repro.runtime.session.InferenceSession.refresh_selection`)
    skip inapplicable swaps, keeping the current engine -- selection
    never regresses a conv's numerics to reach a faster kernel.
    """
    from ..runtime.compiler import algorithm_of_engine

    old = conv.engine
    if algorithm in _FP32_ALGOS:
        # FP32 engines carry no activation quantization at all, so any
        # swap *within* the fp32 family is trivially calibration-safe;
        # swapping a quantized conv to fp32 (or vice versa) would change
        # its numerics class and is never a selection outcome.
        return conv_family(conv) == "fp32"
    if old is None:
        return False
    current = (algorithm_of_engine(old), int(getattr(old, "m", 0) or 0))
    if current == (algorithm, int(m)):
        return True
    if algorithm == "lowino":
        return False
    return getattr(old, "input_threshold", None) is not None


def build_engine_for(conv, algorithm: str, m: int):
    """A prepared engine running ``algorithm`` on ``conv``'s filters.

    Carries the calibrated activation threshold over from the current
    engine when both sides use one (the spatial engines).  Callers must
    gate on :func:`swap_preserves_calibration` first -- an engine built
    without transferable calibration would silently fall back to
    per-batch dynamic quantization.  Eager and compiled execution share
    the rebuilt object, so the bitwise eager == compiled contract is
    preserved across a swap.
    """
    from ..conv import DownscaleWinogradConv2d, Int8DirectConv2d, UpcastWinogradConv2d
    from ..core import LoWinoConv2d

    if algorithm == "int8_direct":
        engine = Int8DirectConv2d(conv.filters, stride=conv.stride,
                                  padding=conv.padding)
    elif algorithm == "lowino":
        engine = LoWinoConv2d(conv.filters, m=m, padding=conv.padding)
    elif algorithm == "int8_upcast":
        engine = UpcastWinogradConv2d(conv.filters, m=m, padding=conv.padding)
    elif algorithm == "int8_downscale":
        engine = DownscaleWinogradConv2d(conv.filters, m=m, padding=conv.padding)
    elif algorithm == "fp32_direct":
        from ..conv.fp32 import Fp32DirectConv2d

        engine = Fp32DirectConv2d(conv.filters, padding=conv.padding,
                                  stride=conv.stride)
    elif algorithm == "fp32_winograd":
        from ..conv.fp32 import Fp32WinogradConv2d

        engine = Fp32WinogradConv2d(conv.filters, m=m, padding=conv.padding)
    else:
        raise ValueError(f"cannot build an engine for algorithm {algorithm!r}")
    old = conv.engine
    threshold = getattr(old, "input_threshold", None)
    if threshold is not None and hasattr(engine, "input_threshold"):
        engine.input_threshold = threshold
    return engine


def model_geometries(model, input_shape):
    """``(path, conv, geometry)`` for every conv a traced model reaches."""
    from ..nn.graph import trace

    graph = trace(model, tuple(int(s) for s in input_shape))
    return [
        (node.path, node.layer, ConvGeometry.of_conv(node.layer, graph.in_shape(node)))
        for node in graph.conv_nodes()
    ]


class AlgorithmSelector:
    """Measure-once, reuse-everywhere algorithm selection.

    ``select`` answers from wisdom when it can (after a cheap
    :meth:`~repro.tuning.wisdom.WisdomFile.refresh`), measures when
    asked to (``measure=True``) and persists the result, and otherwise
    falls back to the analytic static choice without touching any
    engine state.
    """

    def __init__(
        self,
        wisdom: Optional[WisdomFile | str] = None,
        backend: Optional[object] = None,
        repeats: int = 3,
        seed: int = DEFAULT_SEED,
        min_snr_db: float = DEFAULT_MIN_SNR_DB,
    ) -> None:
        from ..runtime.backends import resolve_backend

        if wisdom is not None and not isinstance(wisdom, WisdomFile):
            wisdom = WisdomFile(wisdom)
        self.wisdom = wisdom
        self.backend = resolve_backend(backend)
        self.backend_name = getattr(self.backend, "name", DEFAULT_BACKEND)
        self.repeats = max(1, int(repeats))
        self.seed = int(seed)
        self.min_snr_db = float(min_snr_db)
        self._engine = None  # built lazily; measurement only

    def _measure_engine(self):
        if self._engine is None:
            from ..runtime.cache import PlanCache
            from ..runtime.engine import ExecutionEngine

            # Private cache: measurement plans must not evict or alias a
            # serving session's plans.
            self._engine = ExecutionEngine(
                cache=PlanCache(capacity=256), backend=self.backend
            )
        return self._engine

    def static_choice(self, geom: ConvGeometry, family: str = "quantized") -> Tuple[str, int]:
        """The analytic cost model's pick (the planner's behaviour).

        The fp32 family's static choice is ``fp32_direct`` -- the eager
        stack's FP32 fallback (``engine is None`` lowers to it), so the
        no-regression baseline is exactly what un-tuned code runs.
        """
        if family == "fp32":
            return ("fp32_direct", 0)
        if not geom.winograd_eligible:
            return ("int8_direct", 0)
        times = predict_layer_times(
            geom.layer_config(), CASCADE_LAKE_8C,
            impls=["onednn_direct", "lowino_f2", "lowino_f4"],
        )
        best = min(times, key=times.get)
        if best == "onednn_direct":
            return ("int8_direct", 0)
        return ("lowino", int(best[-1]))

    def measure(
        self,
        geom: ConvGeometry,
        abort: Optional[Callable[[], bool]] = None,
        family: str = "quantized",
    ) -> Optional[SelectionResult]:
        """Seeded best-of measurement of every admitted candidate.

        ``abort`` is polled between candidates (the background tuner
        passes a queue-idleness probe); returns None when aborted so
        nothing half-measured is ever persisted.
        """
        static = self.static_choice(geom, family=family)
        candidates = candidate_algorithms(geom, self.min_snr_db, family=family)
        if static not in candidates:
            candidates.append(static)
        rng = np.random.default_rng(
            [self.seed, geom.batch, geom.c, geom.h, geom.w,
             geom.k, geom.r, geom.stride, geom.padding]
        )
        x = np.abs(rng.standard_normal(
            (geom.batch, geom.c, geom.h, geom.w))).astype(np.float64)
        std = np.sqrt(2.0 / (geom.c * geom.r * geom.r))
        filters = (rng.standard_normal(
            (geom.k, geom.c, geom.r, geom.r)) * std).astype(np.float64)
        engine = self._measure_engine()
        measured: Dict[str, float] = {}
        for algorithm, m in candidates:
            if abort is not None and abort():
                return None
            kwargs = (
                {"stride": geom.stride}
                if algorithm in ("int8_direct", "fp32_direct")
                else {}
            )
            layer = engine.layer(filters, algorithm, m=max(m, 2),
                                 padding=geom.padding, **kwargs)
            layer(x)  # warm: plan build + scratch allocation
            best = min(
                _timed(layer, x) for _ in range(self.repeats)
            )
            measured[_label(algorithm, m)] = best
        best_label = min(measured, key=measured.get)
        algorithm, m = _parse_label(best_label)
        return SelectionResult(
            geometry=geom, backend=self.backend_name,
            algorithm=algorithm, m=m, measured=measured,
            static=_label(*static), source="measured",
        )

    def select(
        self,
        geom: ConvGeometry,
        measure: bool = True,
        abort: Optional[Callable[[], bool]] = None,
        family: str = "quantized",
    ) -> SelectionResult:
        """Wisdom hit > fresh measurement > static fallback.

        A persisted entry always wins (first writer decides for every
        worker); with ``measure=False`` and no entry the static choice
        is returned with ``source="static"`` so callers know not to
        disturb existing engine state.  ``family`` namespaces both the
        candidate set and the wisdom key (see :data:`FAMILIES`).
        """
        key = geom.key(self.backend_name, family=family)
        if self.wisdom is not None:
            self.wisdom.refresh()
            entry = self.wisdom.lookup_algorithm(key)
            if entry is not None:
                return self._from_entry(geom, entry)
        if not measure:
            algorithm, m = self.static_choice(geom, family=family)
            return SelectionResult(
                geometry=geom, backend=self.backend_name,
                algorithm=algorithm, m=m,
                static=_label(algorithm, m), source="static",
            )
        result = self.measure(geom, abort=abort, family=family)
        if result is None:
            return None
        if self.wisdom is not None:
            won = self.wisdom.store_algorithm(key, result.entry())
            if won.get("algorithm") != result.algorithm or won.get("m") != result.m:
                # Another worker persisted first; adopt its choice.
                return self._from_entry(geom, won)
        return result

    def _from_entry(self, geom: ConvGeometry, entry: dict) -> SelectionResult:
        return SelectionResult(
            geometry=geom, backend=self.backend_name,
            algorithm=str(entry["algorithm"]), m=int(entry["m"]),
            measured={k: float(v) for k, v in entry.get("measured", {}).items()},
            static=str(entry.get("static", "")), source="wisdom",
        )


def _timed(layer, x) -> float:
    t0 = time.perf_counter()
    layer(x)
    return time.perf_counter() - t0
