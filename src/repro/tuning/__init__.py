"""Auto-tuning of blocking parameters + wisdom-file persistence."""

from .model_planner import LayerChoice, ModelPlan, plan_model
from .search import TuneResult, candidate_space, gemm_stage_cost, tune_gemm
from .wisdom import WisdomFile, problem_key

__all__ = [
    "LayerChoice",
    "ModelPlan",
    "plan_model",
    "TuneResult",
    "candidate_space",
    "gemm_stage_cost",
    "tune_gemm",
    "WisdomFile",
    "problem_key",
]
