"""Auto-tuning: blocking parameters, algorithm selection, wisdom."""

from .model_planner import LayerChoice, ModelPlan, plan_model
from .search import TuneResult, candidate_space, gemm_stage_cost, tune_gemm
from .selector import (
    FAMILIES,
    AlgorithmSelector,
    ConvGeometry,
    SelectionResult,
    build_engine_for,
    candidate_algorithms,
    conv_family,
    model_geometries,
    swap_preserves_calibration,
)
from .wisdom import DEFAULT_BACKEND, SCHEMA_VERSION, WisdomFile, problem_key

__all__ = [
    "LayerChoice",
    "ModelPlan",
    "plan_model",
    "TuneResult",
    "candidate_space",
    "gemm_stage_cost",
    "tune_gemm",
    "AlgorithmSelector",
    "ConvGeometry",
    "SelectionResult",
    "build_engine_for",
    "candidate_algorithms",
    "conv_family",
    "FAMILIES",
    "model_geometries",
    "swap_preserves_calibration",
    "WisdomFile",
    "problem_key",
    "DEFAULT_BACKEND",
    "SCHEMA_VERSION",
]
