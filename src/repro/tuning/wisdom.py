"""Wisdom-file persistence for tuned blocking parameters.

The paper saves auto-tuning results "into a wisdom file and used in
inference".  The wisdom file here is JSON keyed by the GEMM problem
signature ``T x N x C x K``; entries round-trip exactly.

Durability: :meth:`WisdomFile.store` writes through a temporary file in
the same directory followed by ``os.replace``, so readers only ever see
a complete JSON document -- a crash mid-write can no longer truncate
accumulated wisdom.  A corrupt or unreadable existing file is warned
about and treated as empty (tuning regenerates it) instead of raising
at construction, and ``store`` re-merges the on-disk entries first so
concurrent tuners append rather than clobber each other.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from ..gemm import BlockingParams
from .search import TuneResult, tune_gemm

__all__ = ["WisdomFile", "problem_key"]


def problem_key(t: int, n: int, c: int, k: int) -> str:
    return f"{t}x{n}x{c}x{k}"


def _read_entries(path: Path) -> Dict[str, dict]:
    """Entries from ``path``; a missing, corrupt, or non-dict file is an
    empty wisdom file (with a warning for the corrupt cases -- losing
    tuning time silently would be worse than the noise)."""
    try:
        raw = path.read_text()
    except FileNotFoundError:
        return {}
    try:
        entries = json.loads(raw)
        if not isinstance(entries, dict):
            raise ValueError(f"expected a JSON object, got {type(entries).__name__}")
    except ValueError as exc:
        warnings.warn(
            f"wisdom file {path} is corrupt ({exc}); starting fresh",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    return entries


class WisdomFile:
    """Load/store tuned blocking parameters.

    >>> wf = WisdomFile(path)
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # tunes once
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # cached
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, dict] = _read_entries(self.path)

    def lookup(self, t: int, n: int, c: int, k: int) -> Optional[BlockingParams]:
        entry = self._entries.get(problem_key(t, n, c, k))
        if entry is None:
            return None
        params = BlockingParams(**entry["params"])
        params.validate()
        return params

    def store(self, t: int, n: int, c: int, k: int, result: TuneResult) -> None:
        self._entries[problem_key(t, n, c, k)] = {
            "params": asdict(result.params),
            "predicted_time": result.predicted_time,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Merge whatever is on disk now under our in-memory entries:
        # another process may have tuned different problems since we
        # loaded, and a plain overwrite would discard its work.
        on_disk = _read_entries(self.path)
        if on_disk:
            merged = dict(on_disk)
            merged.update(self._entries)
            self._entries = merged
        self._write_atomic(json.dumps(self._entries, indent=2, sort_keys=True))

    def _write_atomic(self, text: str) -> None:
        """Write via tempfile + ``os.replace`` so the wisdom file on
        disk is always a complete document, even across a crash."""
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def lookup_or_tune(self, t: int, n: int, c: int, k: int, **tune_kwargs) -> BlockingParams:
        cached = self.lookup(t, n, c, k)
        if cached is not None:
            return cached
        result = tune_gemm(t, n, c, k, **tune_kwargs)
        self.store(t, n, c, k, result)
        return result.params

    def __len__(self) -> int:
        return len(self._entries)
