"""Wisdom-file persistence for tuned blocking parameters.

The paper saves auto-tuning results "into a wisdom file and used in
inference".  The wisdom file here is JSON keyed by the GEMM problem
signature ``T x N x C x K``; entries round-trip exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from ..gemm import BlockingParams
from .search import TuneResult, tune_gemm

__all__ = ["WisdomFile", "problem_key"]


def problem_key(t: int, n: int, c: int, k: int) -> str:
    return f"{t}x{n}x{c}x{k}"


class WisdomFile:
    """Load/store tuned blocking parameters.

    >>> wf = WisdomFile(path)
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # tunes once
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # cached
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, dict] = {}
        if self.path.exists():
            self._entries = json.loads(self.path.read_text())

    def lookup(self, t: int, n: int, c: int, k: int) -> Optional[BlockingParams]:
        entry = self._entries.get(problem_key(t, n, c, k))
        if entry is None:
            return None
        params = BlockingParams(**entry["params"])
        params.validate()
        return params

    def store(self, t: int, n: int, c: int, k: int, result: TuneResult) -> None:
        self._entries[problem_key(t, n, c, k)] = {
            "params": asdict(result.params),
            "predicted_time": result.predicted_time,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._entries, indent=2, sort_keys=True))

    def lookup_or_tune(self, t: int, n: int, c: int, k: int, **tune_kwargs) -> BlockingParams:
        cached = self.lookup(t, n, c, k)
        if cached is not None:
            return cached
        result = tune_gemm(t, n, c, k, **tune_kwargs)
        self.store(t, n, c, k, result)
        return result.params

    def __len__(self) -> int:
        return len(self._entries)
