"""Wisdom-file persistence for tuned parameters and algorithm choices.

The paper saves auto-tuning results "into a wisdom file and used in
inference".  The wisdom file here is a versioned JSON document with two
namespaced sections:

* ``gemm`` -- tuned :class:`~repro.gemm.BlockingParams` keyed by
  ``<backend>|TxNxCxK`` (the GEMM problem signature); entries
  round-trip exactly.
* ``algorithms`` -- measured per-geometry algorithm selections written
  by :class:`~repro.tuning.selector.AlgorithmSelector`, keyed by
  ``<backend>|b{B}c{C}h{H}w{W}k{K}r{R}s{S}p{P}``.

The kernel backend is part of every key: threaded-BLAS and pure-NumPy
timings must never share (and poison) one entry.  Legacy flat files
(schema 1: an un-namespaced ``{"TxNxCxK": {...}}`` mapping with no
backend) are migrated transparently on load -- their keys land in the
``gemm`` section under the default backend.

Durability and sharing:

* Writes go through a temporary file in the same directory followed by
  ``os.replace``, so readers only ever see a complete JSON document.
* Flushes hold an exclusive ``flock`` on a ``<name>.lock`` sidecar and
  re-merge the on-disk document first, **disk entries winning** on key
  collisions.  First-writer-wins is what makes N workers sharing one
  file *converge*: whoever persists a geometry's choice first decides
  it for everyone (:meth:`store_algorithm` returns the winning entry so
  callers adopt it).
* :meth:`refresh` is a cheap ``os.stat`` check -- server workers poll
  it before lookups and only re-read the file when another process has
  replaced it.
* A corrupt or unreadable file is warned about and treated as empty
  (tuning regenerates it) instead of raising.

``store`` flushes immediately by default; wrap a sweep in
:meth:`batch` (or call :meth:`store_many` / :meth:`lookup_or_tune_many`)
to coalesce the whole sweep into a single read-merge-write instead of
O(n^2) I/O.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # POSIX; on platforms without flock we fall back to lock-free writes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..gemm import BlockingParams
from .search import TuneResult, tune_gemm

__all__ = ["WisdomFile", "problem_key", "SCHEMA_VERSION", "DEFAULT_BACKEND"]

#: Current on-disk schema.  Version 1 was the flat, backend-less GEMM
#: mapping; version 2 namespaces sections and folds the backend into
#: every key.
SCHEMA_VERSION = 2

#: Backend legacy (schema 1) entries are attributed to, and the default
#: when callers do not say otherwise -- the pure-NumPy kernel backend,
#: which is what produced all pre-schema-2 wisdom.
DEFAULT_BACKEND = "numpy"


def problem_key(t: int, n: int, c: int, k: int, backend: str = DEFAULT_BACKEND) -> str:
    """GEMM problem key, namespaced by kernel backend."""
    return f"{backend}|{t}x{n}x{c}x{k}"


def _qualify(key: str) -> str:
    """Schema-2 form of a possibly-legacy key."""
    return key if "|" in key else f"{DEFAULT_BACKEND}|{key}"


def _read_doc(path: Path) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """``(gemm, algorithms)`` sections from ``path``.

    A missing, corrupt, or non-dict file is an empty wisdom file (with
    a warning for the corrupt cases -- losing tuning time silently
    would be worse than the noise).  Legacy flat documents migrate into
    the ``gemm`` section under :data:`DEFAULT_BACKEND`.
    """
    try:
        raw = path.read_text()
    except FileNotFoundError:
        return {}, {}
    try:
        doc = json.loads(raw)
        if not isinstance(doc, dict):
            raise ValueError(f"expected a JSON object, got {type(doc).__name__}")
    except ValueError as exc:
        warnings.warn(
            f"wisdom file {path} is corrupt ({exc}); starting fresh",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}, {}
    if isinstance(doc.get("schema"), int):
        gemm = doc.get("gemm", {})
        algorithms = doc.get("algorithms", {})
        return (
            dict(gemm) if isinstance(gemm, dict) else {},
            dict(algorithms) if isinstance(algorithms, dict) else {},
        )
    # Legacy schema 1: flat {TxNxCxK: {...}} with no backend namespace.
    return {_qualify(key): entry for key, entry in doc.items()}, {}


class WisdomFile:
    """Load/store tuned blocking parameters and algorithm choices.

    >>> wf = WisdomFile(path)
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # tunes once
    >>> params = wf.lookup_or_tune(16, 14400, 512, 512)   # cached

    Instances are thread-safe (one file may back a Server's sessions
    *and* its background tuner thread); cross-process sharing is safe
    through the flock + disk-wins merge described in the module doc.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._mutex = threading.RLock()
        self._gemm, self._algorithms = _read_doc(self.path)
        self._disk_stat = self._stat()
        self._batch_depth = 0
        self._dirty = False

    # -- GEMM blocking section -------------------------------------------

    def lookup(
        self, t: int, n: int, c: int, k: int, backend: str = DEFAULT_BACKEND
    ) -> Optional[BlockingParams]:
        with self._mutex:
            entry = self._gemm.get(problem_key(t, n, c, k, backend))
        if entry is None:
            return None
        params = BlockingParams(**entry["params"])
        params.validate()
        return params

    def store(
        self,
        t: int,
        n: int,
        c: int,
        k: int,
        result: TuneResult,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        with self._mutex:
            self._gemm[problem_key(t, n, c, k, backend)] = {
                "params": asdict(result.params),
                "predicted_time": result.predicted_time,
            }
            self._dirty = True
            if self._batch_depth == 0:
                self._flush()

    def store_many(
        self,
        items: Iterable[Tuple[int, int, int, int, TuneResult]],
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        """Store a whole sweep with one read-merge-write."""
        with self.batch():
            for t, n, c, k, result in items:
                self.store(t, n, c, k, result, backend=backend)

    def lookup_or_tune(
        self,
        t: int,
        n: int,
        c: int,
        k: int,
        backend: str = DEFAULT_BACKEND,
        **tune_kwargs,
    ) -> BlockingParams:
        cached = self.lookup(t, n, c, k, backend=backend)
        if cached is not None:
            return cached
        result = tune_gemm(t, n, c, k, **tune_kwargs)
        self.store(t, n, c, k, result, backend=backend)
        return result.params

    def lookup_or_tune_many(
        self,
        problems: Sequence[Tuple[int, int, int, int]],
        backend: str = DEFAULT_BACKEND,
        **tune_kwargs,
    ) -> List[BlockingParams]:
        """Sweep :meth:`lookup_or_tune` over ``problems`` with a single
        batched flush at the end (instead of one full-file rewrite per
        newly tuned problem)."""
        with self.batch():
            return [
                self.lookup_or_tune(t, n, c, k, backend=backend, **tune_kwargs)
                for t, n, c, k in problems
            ]

    # -- Algorithm-choice section ----------------------------------------

    def lookup_algorithm(self, key: str) -> Optional[dict]:
        """The stored selection entry for a geometry key, if any."""
        with self._mutex:
            entry = self._algorithms.get(key)
        return dict(entry) if entry is not None else None

    def store_algorithm(self, key: str, entry: dict) -> dict:
        """Persist a selection; returns the entry that *won*.

        With a populated file on disk the first writer wins (disk-wins
        merge), so the returned entry may be another worker's earlier
        choice -- callers must adopt it to converge.  Inside a
        :meth:`batch` the merge is deferred to the final flush and the
        local entry is returned.
        """
        with self._mutex:
            self._algorithms[key] = dict(entry)
            self._dirty = True
            if self._batch_depth == 0:
                self._flush()
            return dict(self._algorithms.get(key, entry))

    def algorithm_entries(self) -> Dict[str, dict]:
        """Copy of the algorithm-choice section (telemetry / tests)."""
        with self._mutex:
            return {k: dict(v) for k, v in self._algorithms.items()}

    # -- Shared machinery -------------------------------------------------

    @contextmanager
    def batch(self):
        """Defer flushing: all stores inside the block coalesce into one
        read-merge-write on exit.  Reentrant; only the outermost block
        flushes."""
        with self._mutex:
            self._batch_depth += 1
        try:
            yield self
        finally:
            with self._mutex:
                self._batch_depth -= 1
                if self._batch_depth == 0 and self._dirty:
                    self._flush()

    def refresh(self) -> bool:
        """Adopt changes another process has flushed, if any.

        Cheap when nothing changed: a single ``os.stat`` compared
        against the signature of the last document this instance read
        or wrote.  Returns True when new entries were merged in.
        """
        with self._mutex:
            sig = self._stat()
            if sig is None or sig == self._disk_stat:
                return False
            disk_gemm, disk_algorithms = _read_doc(self.path)
            self._gemm.update(disk_gemm)
            self._algorithms.update(disk_algorithms)
            self._disk_stat = sig
            return True

    def _stat(self) -> Optional[Tuple[int, int, int]]:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_ino, st.st_size)

    @contextmanager
    def _file_lock(self):
        """Exclusive advisory lock on a ``.lock`` sidecar, making the
        read-merge-write in :meth:`_flush` atomic across processes.
        (The sidecar is deliberately never unlinked: removing a flock
        file while another process holds its own fd open reintroduces
        the race the lock exists to prevent.)"""
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(f"{self.path}.lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _flush(self) -> None:
        """Read-merge-write under the cross-process lock.

        Disk entries win on collision (first writer decides), so
        concurrent workers converge on one choice per key; entries only
        this instance holds are unioned in, so no work is ever lost.
        """
        with self._mutex:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._file_lock():
                disk_gemm, disk_algorithms = _read_doc(self.path)
                self._gemm.update(disk_gemm)
                self._algorithms.update(disk_algorithms)
                doc = {
                    "schema": SCHEMA_VERSION,
                    "gemm": self._gemm,
                    "algorithms": self._algorithms,
                }
                self._write_atomic(json.dumps(doc, indent=2, sort_keys=True))
                self._disk_stat = self._stat()
            self._dirty = False

    def _write_atomic(self, text: str) -> None:
        """Write via tempfile + ``os.replace`` so the wisdom file on
        disk is always a complete document, even across a crash."""
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        with self._mutex:
            return len(self._gemm) + len(self._algorithms)
