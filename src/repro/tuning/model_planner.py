"""Whole-model algorithm planning.

The paper's future work item 1: "explore an automatic mechanism to
select the optimal algorithm for a convolutional layer among direct,
Winograd, and others".  :func:`plan_model` applies that mechanism to an
entire network: it traces one forward pass to learn every convolution's
input geometry, prices direct / LoWino F(2,3) / LoWino F(4,3) with the
cost model, and returns a per-layer choice.  ``quantize_model(...,
algorithm='auto')`` consumes the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..nn.model import Sequential, named_convs
from ..perf import CASCADE_LAKE_8C, MachineModel, predict_layer_times
from ..workloads import LayerConfig

__all__ = ["LayerChoice", "ModelPlan", "plan_model"]

#: Candidate implementations priced per layer.
_CANDIDATES = ("onednn_direct", "lowino_f2", "lowino_f4")


@dataclass(frozen=True)
class LayerChoice:
    """Selected implementation for one convolution."""

    layer_name: str
    algorithm: str  # 'int8_direct' or 'lowino'
    m: int  # 0 for direct
    predicted_time: float
    alternatives: Dict[str, float]

    @property
    def speedup_vs_direct(self) -> float:
        return self.alternatives["onednn_direct"] / self.predicted_time


@dataclass
class ModelPlan:
    """Per-layer choices plus whole-model aggregates."""

    choices: Dict[str, LayerChoice]

    @property
    def total_time(self) -> float:
        return sum(c.predicted_time for c in self.choices.values())

    @property
    def total_direct_time(self) -> float:
        return sum(c.alternatives["onednn_direct"] for c in self.choices.values())

    @property
    def speedup_vs_direct(self) -> float:
        return self.total_direct_time / self.total_time

    def summary(self) -> str:
        lines = [f"{'layer':20s} {'choice':14s} {'time':>10s} {'vs direct':>10s}"]
        for name, c in self.choices.items():
            label = "direct" if c.algorithm == "int8_direct" else f"lowino F({c.m},3)"
            lines.append(
                f"{name:20s} {label:14s} {c.predicted_time * 1e3:9.3f}m "
                f"{c.speedup_vs_direct:9.2f}x"
            )
        lines.append(
            f"model total: {self.total_time * 1e3:.3f} ms, "
            f"{self.speedup_vs_direct:.2f}x vs always-direct"
        )
        return "\n".join(lines)


def _trace_conv_inputs(
    model: Sequential, input_shape: Tuple[int, ...]
) -> Dict[int, Tuple[int, ...]]:
    """Each conv's input shape, from the graph trace.

    Uses :func:`repro.nn.graph.trace` -- pure shape inference, no dummy
    forward pass -- and covers every convolution the graph reaches,
    including projection convs inside ``Residual.shortcut`` (which the
    old ``forward_capture``-based trace silently skipped for composite
    shortcuts, leaving them unplanned under ``algorithm='auto'``).
    """
    from ..nn.graph import trace

    graph = trace(model, input_shape)
    return {id(node.layer): graph.in_shape(node) for node in graph.conv_nodes()}


def plan_model(
    model: Sequential,
    input_shape: Tuple[int, ...],
    machine: MachineModel = CASCADE_LAKE_8C,
    cores: int | None = None,
) -> ModelPlan:
    """Choose the predicted-fastest INT8 implementation per convolution.

    ``input_shape`` is the NCHW shape the model will be run with (the
    batch dimension matters: batch-1 inference favours direct on small
    layers, exactly the Table 2 YOLO/U-Net pattern).
    """
    shapes = _trace_conv_inputs(model, input_shape)
    choices: Dict[str, LayerChoice] = {}
    for name, conv in named_convs(model):
        if id(conv) not in shapes:
            raise RuntimeError(f"conv {name} not reached by the trace")
        b, c, h, w = shapes[id(conv)]
        k = conv.filters.shape[0]
        r = conv.filters.shape[2]
        layer = LayerConfig(name=name, batch=b, c=c, k=k, hw=h, r=r,
                            padding=conv.padding)
        times = predict_layer_times(layer, machine, cores, impls=list(_CANDIDATES))
        if not conv.winograd_eligible:
            # Strided layers run direct regardless of pricing (Winograd
            # requires unit stride; the DWM decomposition is FP32-only
            # here).  The stride-1 price is kept as an upper bound.
            best = "onednn_direct"
        else:
            best = min(times, key=times.get)
        if best == "onednn_direct":
            algorithm, m = "int8_direct", 0
        else:
            algorithm, m = "lowino", int(best[-1])
        choices[name] = LayerChoice(
            layer_name=name, algorithm=algorithm, m=m,
            predicted_time=times[best], alternatives=times,
        )
    return ModelPlan(choices=choices)
