"""``repro tune``: sweep a model's conv geometries through the
:class:`~repro.tuning.selector.AlgorithmSelector` into a wisdom file,
and emit the ``benchmarks/BENCH_tuning.json`` document.

The document's headline metric is the **selected-vs-static ratio** per
geometry: measured seconds of the analytic planner's choice divided by
measured seconds of the selector's choice, on the same host, same
seeded inputs.  Because the static candidate is always in the measured
set, this ratio is >= 1.0 by construction -- selection never regresses
a shape -- and the gate enforces exactly that (plus a generous
baseline-relative tolerance on the geomean, in the bench-smoke style:
ratios only, never absolute wall-clock).

Determinism is part of the document: after the sweep every geometry is
re-selected out of the wisdom file (``measure=False``) and must
reproduce the same choice; ``doc["deterministic"]`` gates it.  Running
``repro tune`` twice against the same wisdom file therefore yields
identical selections -- the second run never measures at all.
"""

from __future__ import annotations

import platform
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from .selector import AlgorithmSelector, model_geometries
from .wisdom import WisdomFile

__all__ = [
    "TuneBenchConfig",
    "run_tune_bench",
    "check_tuning_gate",
    "format_tune_bench",
    "DEFAULT_BENCH_PATH",
]

SCHEMA_VERSION = 1
DEFAULT_BENCH_PATH = "benchmarks/BENCH_tuning.json"


@dataclass(frozen=True)
class TuneBenchConfig:
    """One ``repro tune`` sweep configuration.

    ``family`` selects the candidate set per geometry
    (:data:`~repro.tuning.selector.FAMILIES`): ``"quantized"`` sweeps
    the INT8 pipelines, ``"fp32"`` sweeps fp32_winograd@m vs
    fp32_direct under the family-qualified wisdom keys.
    """

    model: str = "resnet"
    width: int = 8
    hw: int = 8
    batch: int = 2
    repeats: int = 2
    seed: int = 2021
    backend: str = "numpy"
    family: str = "quantized"


def run_tune_bench(
    cfg: TuneBenchConfig = TuneBenchConfig(),
    wisdom: Optional[WisdomFile | str | Path] = None,
) -> dict:
    """Sweep the model's unique conv geometries into wisdom.

    With ``wisdom=None`` the sweep runs against a throwaway file (pure
    benchmark mode); pass a path to accumulate reusable wisdom.  The
    sweep batches all stores into one read-merge-write
    (:meth:`WisdomFile.batch`), fixing the O(n^2) I/O a per-geometry
    flush would cost.
    """
    from ..runtime.bench import ModelCase, _geomean, build_case_model

    model = build_case_model(
        ModelCase(cfg.model, "auto", batch=cfg.batch, hw=cfg.hw, width=cfg.width)
    )
    input_shape = (cfg.batch, 3, cfg.hw, cfg.hw)

    tmpdir = None
    if wisdom is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-tune-")
        wisdom = Path(tmpdir.name) / "wisdom.json"
    if not isinstance(wisdom, WisdomFile):
        wisdom = WisdomFile(wisdom)
    selector = AlgorithmSelector(
        wisdom=wisdom, backend=cfg.backend, repeats=cfg.repeats, seed=cfg.seed
    )

    # Unique geometries, first-seen order, with every conv path using each.
    unique: Dict[str, dict] = {}
    for path, _conv, geom in model_geometries(model, input_shape):
        key = geom.key(selector.backend_name, family=cfg.family)
        slot = unique.setdefault(key, {"geometry": geom, "paths": []})
        slot["paths"].append(path)

    rows: List[dict] = []
    with wisdom.batch():
        for key, slot in unique.items():
            geom = slot["geometry"]
            res = selector.select(geom, family=cfg.family)
            rows.append(
                {
                    "key": key,
                    "paths": slot["paths"],
                    "batch": geom.batch, "c": geom.c, "h": geom.h, "w": geom.w,
                    "k": geom.k, "r": geom.r, "stride": geom.stride,
                    "padding": geom.padding,
                    "selected": res.label,
                    "static": res.static,
                    "source": res.source,
                    "measured": dict(res.measured),
                    "selected_vs_static": res.static_ratio,
                }
            )

    # Determinism: out of the (now flushed) wisdom, every geometry must
    # re-select to the same choice without measuring.
    deterministic = True
    for row in rows:
        res = selector.select(
            unique[row["key"]]["geometry"], measure=False, family=cfg.family
        )
        if res.source != "wisdom" or res.label != row["selected"]:
            deterministic = False

    ratios = [r["selected_vs_static"] for r in rows]
    doc = {
        "schema": SCHEMA_VERSION,
        "config": asdict(cfg),
        "backend": selector.backend_name,
        "numpy": np.__version__,
        "machine": platform.machine(),
        "geometries": rows,
        "deterministic": deterministic,
        "summary": {
            "geometries": len(rows),
            "selected_vs_static_geomean": _geomean(ratios),
            "min": min(ratios) if ratios else None,
            "max": max(ratios) if ratios else None,
            "from_wisdom": sum(1 for r in rows if r["source"] == "wisdom"),
            "measured": sum(1 for r in rows if r["source"] == "measured"),
            "switched": sum(1 for r in rows if r["selected"] != r["static"]),
        },
    }
    if tmpdir is not None:
        tmpdir.cleanup()
    return doc


#: Config fields that must match for a baseline comparison to be valid.
_COMPAT_KEYS = (
    "model", "width", "hw", "batch", "repeats", "seed", "backend", "family",
)


def check_tuning_gate(
    current: dict,
    baseline: Optional[dict] = None,
    gate: float = 0.25,
    min_ratio: float = 0.999,
) -> List[str]:
    """Gate the tuning document; empty list means PASS.

    Hard, host-independent gates: determinism out of wisdom, and the
    per-geometry selected-vs-static ratio floor (selection never
    regresses a shape -- by construction ~1.0 even on a noisy host,
    ``min_ratio`` only absorbs float round-trip).  The baseline gate is
    the generous bench-smoke style: the geomean ratio must not drop
    more than ``gate`` below the committed value.
    """
    violations: List[str] = []
    if not current.get("deterministic", False):
        violations.append(
            "selection is not deterministic given identical wisdom "
            "(re-select out of the wisdom file changed a choice)"
        )
    for row in current.get("geometries", []):
        ratio = row.get("selected_vs_static")
        if ratio is not None and ratio < min_ratio:
            violations.append(
                f"{row['key']}: selected {row['selected']} is slower than "
                f"static {row['static']} (ratio {ratio:.3f} < {min_ratio})"
            )
    geomean = current.get("summary", {}).get("selected_vs_static_geomean")
    if geomean is not None and geomean < min_ratio:
        violations.append(
            f"selected-vs-static geomean {geomean:.3f} < {min_ratio}"
        )
    if baseline is None:
        return violations
    cur_cfg, base_cfg = current.get("config", {}), baseline.get("config", {})
    mismatched = [k for k in _COMPAT_KEYS if cur_cfg.get(k) != base_cfg.get(k)]
    if mismatched:
        violations.append(
            "baseline incompatible with this run (config fields differ: "
            + ", ".join(
                f"{k}: {base_cfg.get(k)!r} -> {cur_cfg.get(k)!r}" for k in mismatched
            )
            + "); regenerate it with --update-baseline"
        )
        return violations
    base_geomean = baseline.get("summary", {}).get("selected_vs_static_geomean")
    if geomean is not None and base_geomean:
        floor = base_geomean * (1.0 - gate)
        if geomean < floor:
            violations.append(
                f"selected-vs-static geomean {geomean:.3f} < "
                f"{1.0 - gate:.2f} * baseline {base_geomean:.3f}"
            )
    return violations


def format_tune_bench(doc: dict) -> str:
    """Human-readable table for one tuning document."""
    cfg = doc["config"]
    lines = [
        f"Algorithm selection sweep -- model={cfg['model']} "
        f"batch={cfg['batch']} hw={cfg['hw']} width={cfg['width']} "
        f"backend={doc['backend']} repeats={cfg['repeats']} seed={cfg['seed']} "
        f"family={cfg.get('family', 'quantized')}",
        f"{'geometry':34s} {'convs':>5s} {'static':>16s} {'selected':>16s} "
        f"{'ratio':>6s} {'source':>8s}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in doc["geometries"]:
        geo = (
            f"b{row['batch']} c{row['c']} {row['h']}x{row['w']} k{row['k']} "
            f"s{row['stride']}"
        )
        lines.append(
            f"{geo:34s} {len(row['paths']):5d} {row['static']:>16s} "
            f"{row['selected']:>16s} {row['selected_vs_static']:6.2f} "
            f"{row['source']:>8s}"
        )
    s = doc["summary"]
    lines.append("")
    lines.append(
        f"selected vs static: geomean {s['selected_vs_static_geomean']:.3f}x "
        f"(min {s['min']:.3f}x, max {s['max']:.3f}x), "
        f"{s['switched']}/{s['geometries']} switched, "
        f"{s['from_wisdom']} from wisdom, "
        f"deterministic={'yes' if doc['deterministic'] else 'NO'}"
    )
    return "\n".join(lines)
