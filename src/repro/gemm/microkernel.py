"""Register-blocked GEMM microkernel (paper Figure 7).

Two implementations of the same kernel:

* :func:`microkernel_simulated` -- instruction-level simulation: walks the
  exact loop nest of Figure 7, allocating accumulators through the
  :class:`~repro.isa.registers.RegisterFile` (so register-budget
  violations fail loudly), issuing one :func:`~repro.isa.vnni.vpdpbusd`
  per inner step, and recording an :class:`InstructionTrace`.  Exact but
  slow; used by tests and by the op-count accounting.

* :func:`microkernel_vectorized` -- the NumPy hot path, one int32 matmul
  per block.  Bit-identical to the simulation (the test suite proves it).

Operand formats match the Table 1 layouts: ``v`` is a ``(n_blk, c_blk)``
uint8 row-major block; ``u`` is the reordered ``(c_blk/4, k_blk*4)`` int8
block where element ``[cq, 4*k + p]`` holds channel ``4*cq + p`` of
output channel ``k`` -- a 64-byte row slice is exactly one ``vpdpbusd``
second operand.
"""

from __future__ import annotations

import numpy as np

from ..isa.registers import InstructionTrace, RegisterFile
from ..isa.vnni import VNNI_LANES, VNNI_PAIRS, vpdpbusd
from ..layout import PHI, SIGMA
from .blocking import BlockingParams

__all__ = ["microkernel_simulated", "microkernel_vectorized", "pack_u_block", "unpack_u_block"]


def pack_u_block(u: np.ndarray, phi: int = PHI) -> np.ndarray:
    """``(C_blk, K_blk)`` -> vpdpbusd-ordered ``(C_blk/phi, K_blk*phi)``."""
    c_blk, k_blk = u.shape
    if c_blk % phi:
        raise ValueError(f"C_blk={c_blk} not a multiple of phi={phi}")
    # [cq, k*phi + p] = u[cq*phi + p, k]
    return np.ascontiguousarray(
        u.reshape(c_blk // phi, phi, k_blk).transpose(0, 2, 1).reshape(c_blk // phi, k_blk * phi)
    )


def unpack_u_block(u_packed: np.ndarray, phi: int = PHI) -> np.ndarray:
    """Inverse of :func:`pack_u_block`."""
    cq, kp = u_packed.shape
    k_blk = kp // phi
    return np.ascontiguousarray(
        u_packed.reshape(cq, k_blk, phi).transpose(0, 2, 1).reshape(cq * phi, k_blk)
    )


def microkernel_vectorized(
    v_block: np.ndarray, u_packed: np.ndarray, z_init: np.ndarray | None = None
) -> np.ndarray:
    """Compute ``z = v @ u (+ z_init)`` on the packed operands, int32.

    ``v_block``: ``(n_blk, c_blk)`` uint8; ``u_packed``:
    ``(c_blk/4, k_blk*4)`` int8; returns ``(n_blk, k_blk)`` int32.
    """
    if v_block.dtype != np.uint8 or u_packed.dtype != np.int8:
        raise ValueError(
            f"expected uint8 v and int8 u, got {v_block.dtype} / {u_packed.dtype}"
        )
    u = unpack_u_block(u_packed)
    z = v_block.astype(np.int32) @ u.astype(np.int32)
    if z_init is not None:
        z = z + z_init.astype(np.int32)
    return z


def microkernel_simulated(
    v_block: np.ndarray,
    u_packed: np.ndarray,
    params: BlockingParams,
    z_init: np.ndarray | None = None,
    trace: InstructionTrace | None = None,
) -> np.ndarray:
    """Instruction-level walk of the Figure 7 loop nest.

    Requires ``v_block`` shaped ``(params.n_blk, params.c_blk)`` and
    ``u_packed`` shaped ``(params.c_blk/4, params.k_blk*4)``.  Returns the
    int32 ``(n_blk, k_blk)`` result and (if ``trace`` given) records the
    instruction stream.
    """
    params.validate()
    n_blk, c_blk, k_blk = params.n_blk, params.c_blk, params.k_blk
    row_blk, col_blk = params.row_blk, params.col_blk
    if v_block.shape != (n_blk, c_blk):
        raise ValueError(f"v block shape {v_block.shape} != ({n_blk}, {c_blk})")
    if u_packed.shape != (c_blk // PHI, k_blk * PHI):
        raise ValueError(
            f"u block shape {u_packed.shape} != ({c_blk // PHI}, {k_blk * PHI})"
        )
    if k_blk % (col_blk * SIGMA):
        raise ValueError(f"K_blk={k_blk} not a multiple of col_blk*sigma")
    trace = trace if trace is not None else InstructionTrace()
    out = np.zeros((n_blk, k_blk), dtype=np.int32)

    regs = RegisterFile()
    v_reg = regs.alloc()  # the reserved broadcast register
    for r0 in range(n_blk // row_blk):
        for c0 in range(k_blk // (col_blk * SIGMA)):
            z_regs = [[regs.alloc() for _ in range(col_blk)] for _ in range(row_blk)]
            u_regs = [regs.alloc() for _ in range(col_blk)]
            for r1 in range(row_blk):
                for c1 in range(col_blk):
                    if z_init is None:
                        z_regs[r1][c1].write(np.zeros(VNNI_LANES, dtype=np.int32))
                    else:
                        row = r0 * row_blk + r1
                        col = (c0 * col_blk + c1) * SIGMA
                        z_regs[r1][c1].write(
                            z_init[row, col : col + SIGMA].astype(np.int32)
                        )
                        trace.emit("load")
            for t in range(c_blk // PHI):  # one 32-bit quad-channel word per step
                for r1 in range(row_blk):
                    row = r0 * row_blk + r1
                    quad = v_block[row, t * PHI : (t + 1) * PHI]
                    v_reg.write(np.broadcast_to(quad, (VNNI_LANES, VNNI_PAIRS)))
                    trace.emit("broadcast")
                    trace.emit("prefetch")
                    for c1 in range(col_blk):
                        col = (c0 * col_blk + c1) * SIGMA
                        u_bytes = u_packed[t, col * PHI : (col + SIGMA) * PHI]
                        u_regs[c1].write(u_bytes.reshape(VNNI_LANES, VNNI_PAIRS))
                        trace.emit("load")
                        z_regs[r1][c1].write(
                            vpdpbusd(v_reg.read(), u_regs[c1].read(), z_regs[r1][c1].read())
                        )
                        trace.emit("vpdpbusd")
            for r1 in range(row_blk):
                for c1 in range(col_blk):
                    row = r0 * row_blk + r1
                    col = (c0 * col_blk + c1) * SIGMA
                    out[row, col : col + SIGMA] = z_regs[r1][c1].read()
                    trace.emit("store_nt")
                    regs.free(z_regs[r1][c1])
            for reg in u_regs:
                regs.free(reg)
    regs.free(v_reg)
    return out
