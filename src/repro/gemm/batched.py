"""Batched tall-and-skinny INT8 GEMM with compensation (Section 4.3).

The Winograd channel reduction becomes ``T = alpha^2`` independent
GEMMs ``Z_t = V_t @ U_t`` with ``V_t (N x C)`` tall and skinny
(``N`` = tiles, usually >> ``C, K``).  This module executes all ``T``
products over the blocked Table 1 layouts with the Eq. 9 compensation:

    Z = Vbar @ U + Zbar,   Vbar = V + 128,   Zbar = -128 * colsum_C(U)

so the unsigned-operand requirement of ``vpdpbusd`` never changes the
result.  ``Zbar`` is computed offline with the filter transform.

The execution path loops over cache blocks (N_blk, C_blk, K_blk) exactly
as the real kernel would, accumulating each ``(N_blk, K_blk)`` buffer
across the C dimension before it is "non-temporally stored" to the
output; arithmetic inside a block is a single int32 matmul, which the
tests prove bit-identical to the instruction-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout import PHI, SIGMA, ceil_div
from .blocking import BlockingParams
from .microkernel import unpack_u_block

__all__ = [
    "compensation_term",
    "batched_gemm_blocked",
    "batched_gemm_reference",
    "GemmWorkload",
    "gemm_workload",
]


def compensation_term(u: np.ndarray) -> np.ndarray:
    """``Zbar = -128 * sum_C U`` for a ``(T, C, K)`` int8 operand -> (T, K) int32.

    Performed in the (offline) filter-transformation stage in the real
    system (Section 4.3.3).
    """
    if u.dtype != np.int8:
        raise ValueError(f"compensation expects int8 U, got {u.dtype}")
    return (-128 * u.astype(np.int64).sum(axis=1)).astype(np.int32)


def _run_task_range(
    v_packed: np.ndarray,
    u_packed: np.ndarray,
    out: np.ndarray,
    params: BlockingParams,
    start: int,
    stop: int,
) -> None:
    """The per-task loop: tasks ``[start, stop)`` of the row-major
    ``(T, kb, nb)`` grid, each producing one disjoint (N_blk, K_blk)
    output block.  This is the loop-based execution the vectorized
    runtime engine replaces; it stays as the differential reference."""
    nb, cb, _, n_blk, _ = v_packed.shape
    _, kb, _, _, _ = u_packed.shape
    k_blk = params.k_blk
    u_cache_key = None
    u_cols = None
    for task in range(start, stop):
        ti, rem = divmod(task, kb * nb)
        kbi, nbi = divmod(rem, nb)
        if u_cache_key != (ti, kbi):
            # Pre-unpack this (t, kb) column panel once; consecutive
            # tasks share it (contiguous assignment = cache reuse,
            # the property Section 4.4 calls out).
            u_cols = [
                unpack_u_block(u_packed[cbi, kbi, ti]).astype(np.int32)
                for cbi in range(cb)
            ]
            u_cache_key = (ti, kbi)
        acc = np.zeros((n_blk, k_blk), dtype=np.int32)  # the L2 z-buffer
        for cbi in range(cb):
            acc += v_packed[nbi, cbi, ti].astype(np.int32) @ u_cols[cbi]
        out[ti, nbi * n_blk : (nbi + 1) * n_blk,
            kbi * k_blk : (kbi + 1) * k_blk] = acc


def _check_operands(
    v_packed: np.ndarray, u_packed: np.ndarray, params: BlockingParams
) -> None:
    params.validate()
    nb, cb, t, n_blk, c_blk = v_packed.shape
    cb2, kb, t2, c_sub, k_phi = u_packed.shape
    if (cb, t) != (cb2, t2):
        raise ValueError(
            f"operand mismatch: V blocks {(nb, cb, t)} vs U blocks {(cb2, kb, t2)}"
        )
    if (n_blk, c_blk) != (params.n_blk, params.c_blk) or (
        c_sub,
        k_phi,
    ) != (params.c_blk // PHI, params.k_blk * PHI):
        raise ValueError("packed shapes do not match blocking parameters")
    if v_packed.dtype != np.uint8 or u_packed.dtype != np.int8:
        raise ValueError(
            f"expected uint8 V / int8 U, got {v_packed.dtype} / {u_packed.dtype}"
        )


def batched_gemm_reference(
    v_packed: np.ndarray,
    u_packed: np.ndarray,
    zbar: np.ndarray,
    params: BlockingParams,
    n: int,
    c: int,
    k: int,
) -> np.ndarray:
    """Serial per-task loop over the blocked layouts (the reference).

    Same contract as :func:`batched_gemm_blocked`; kept as the loop-based
    execution for differential testing and as the baseline the runtime
    benchmark measures the vectorized engine against.
    """
    _check_operands(v_packed, u_packed, params)
    nb, cb, t, n_blk, _ = v_packed.shape
    kb = u_packed.shape[1]
    out = np.empty((t, nb * n_blk, kb * params.k_blk), dtype=np.int32)
    _run_task_range(v_packed, u_packed, out, params, 0, t * kb * nb)
    out = out[:, :n, :k]
    return out + zbar[:, None, :k]


def batched_gemm_blocked(
    v_packed: np.ndarray,
    u_packed: np.ndarray,
    zbar: np.ndarray,
    params: BlockingParams,
    n: int,
    c: int,
    k: int,
    omega: int = 1,
) -> np.ndarray:
    """Execute all ``T`` blocked GEMMs.

    Parameters
    ----------
    v_packed:
        ``(nb, cb, T, N_blk, C_blk)`` uint8 (Table 1 transformed-inputs
        layout; +128 bias already applied by the input transform).
    u_packed:
        ``(cb, kb, T, C_blk/phi, K_blk*phi)`` int8 (Table 1
        transformed-filters layout).
    zbar:
        ``(T, K)`` int32 compensation term from :func:`compensation_term`
        (padded K entries may be absent; they are treated as zero).
    params:
        Blocking parameters; must match the packed shapes.
    n, c, k:
        Logical (unpadded) GEMM dimensions.
    omega:
        Thread count for the execution over the ``(T, kb, nb)``
        sub-matrix grid (Section 4.4's static schedule; each thread gets
        a contiguous range).  1 = serial.  Parallel execution runs on
        the persistent :mod:`repro.runtime.pool` worker pool -- the
        threads survive across calls instead of being forked and joined
        per GEMM.

    Returns
    -------
    ``(T, N, K)`` int32, compensation applied (i.e. the signed product
    ``V @ U``), padding cropped.
    """
    _check_operands(v_packed, u_packed, params)
    nb, cb, t, n_blk, _ = v_packed.shape
    kb = u_packed.shape[1]
    out = np.empty((t, nb * n_blk, kb * params.k_blk), dtype=np.int32)

    # Task grid flattened row-major as (T, kb, nb); each task computes
    # one disjoint (N_blk, K_blk) output block, so concurrent workers
    # never write overlapping memory.
    def run_range(start: int, stop: int) -> None:
        _run_task_range(v_packed, u_packed, out, params, start, stop)

    tasks = t * kb * nb
    if omega <= 1:
        run_range(0, tasks)
    else:
        from ..runtime.pool import get_pool

        get_pool(omega).run_partitioned(run_range, tasks, omega)
    out = out[:, :n, :k]
    # Compensation: remove the +128 bias contribution (broadcast over N).
    out = out + zbar[:, None, :k]
    return out


@dataclass(frozen=True)
class GemmWorkload:
    """Static operation/traffic accounting for one batched GEMM.

    All counts follow the Figure 7 loop nest literally so the performance
    model charges exactly what the kernel does.  Byte counts assume the
    Table 1 layouts (1-byte operands, 4-byte accumulators).
    """

    t: int
    n: int
    c: int
    k: int
    params: BlockingParams

    @property
    def n_pad(self) -> int:
        return ceil_div(self.n, self.params.n_blk) * self.params.n_blk

    @property
    def c_pad(self) -> int:
        return ceil_div(self.c, self.params.c_blk) * self.params.c_blk

    @property
    def k_pad(self) -> int:
        return ceil_div(self.k, self.params.k_blk) * self.params.k_blk

    @property
    def macs(self) -> int:
        """8-bit multiply-accumulates across all T GEMMs (padded sizes)."""
        return self.t * self.n_pad * self.c_pad * self.k_pad

    @property
    def vpdpbusd_count(self) -> int:
        """One instruction covers 16 lanes x 4 pairs = 64 MACs."""
        return self.macs // (SIGMA * PHI)

    @property
    def broadcast_count(self) -> int:
        """One v broadcast per (row, quad-channel word, column group)."""
        col_group = self.params.col_blk * SIGMA
        return self.t * self.n_pad * (self.c_pad // PHI) * (self.k_pad // col_group)

    @property
    def u_load_count(self) -> int:
        """u vector loads as written in Figure 7 (inside the r1 loop)."""
        return self.vpdpbusd_count

    @property
    def nt_store_count(self) -> int:
        """Final 64-byte non-temporal stores of the result."""
        return self.t * self.n_pad * self.k_pad // SIGMA

    @property
    def bytes_read(self) -> int:
        """Unique bytes of V and U read from memory (per C-block pass the
        V panel is re-read for each K block; U is re-read for each N
        block but is expected to stay L2-resident, so only its first
        touch counts as DRAM traffic)."""
        k_passes = self.k_pad // self.params.k_blk
        v_bytes = self.t * self.n_pad * self.c_pad * k_passes
        u_bytes = self.t * self.c_pad * self.k_pad
        return v_bytes + u_bytes

    @property
    def bytes_written(self) -> int:
        """int32 result written once via non-temporal stores."""
        return self.t * self.n_pad * self.k_pad * 4


def gemm_workload(t: int, n: int, c: int, k: int, params: BlockingParams) -> GemmWorkload:
    params.validate()
    return GemmWorkload(t=t, n=n, c=c, k=k, params=params)
