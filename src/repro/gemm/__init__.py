"""Batched tall-and-skinny INT8 GEMM substrate (Section 4.3)."""

from .batched import (
    GemmWorkload,
    batched_gemm_blocked,
    batched_gemm_reference,
    compensation_term,
    gemm_workload,
)
from .blocking import L2_ELEM_LIMIT, MAX_ACCUM_REGISTERS, BlockingParams, default_blocking
from .microkernel import (
    microkernel_simulated,
    microkernel_vectorized,
    pack_u_block,
    unpack_u_block,
)
from .reference import gemm_s8s8_reference, gemm_s16_reference, gemm_u8s8_reference

__all__ = [
    "GemmWorkload",
    "batched_gemm_blocked",
    "batched_gemm_reference",
    "compensation_term",
    "gemm_workload",
    "L2_ELEM_LIMIT",
    "MAX_ACCUM_REGISTERS",
    "BlockingParams",
    "default_blocking",
    "microkernel_simulated",
    "microkernel_vectorized",
    "pack_u_block",
    "unpack_u_block",
    "gemm_s8s8_reference",
    "gemm_s16_reference",
    "gemm_u8s8_reference",
]
