"""Cache- and register-blocking parameters (Sections 4.3.1-4.3.4).

The batched GEMM divides ``V (N x C)`` and ``U (C x K)`` into
``N_blk x C_blk`` and ``C_blk x K_blk`` sub-matrices; each sub-matrix
product runs a register-blocked microkernel over ``row_blk x col_blk``
accumulator tiles (``col_blk`` counted in 16-lane ZMM registers).

Tuning constraints from the paper (Section 4.3.4):

* ``row_blk * col_blk + col_blk < 31`` -- 32 ZMM registers, one reserved
  for the broadcast operand;
* ``C_blk * K_blk < 512**2`` -- the ``u`` sub-matrix (plus the ``z``
  accumulator buffer) must fit in L2.

Structural divisibility constraints from the data layout:

* ``C_blk`` is a multiple of ``phi`` (=4, vpdpbusd quad-channel words);
* ``K_blk`` is a multiple of ``col_blk * sigma`` (each microkernel column
  covers ``col_blk`` ZMM vectors of 16 int32 lanes);
* ``N_blk`` is a multiple of ``row_blk``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layout import PHI, SIGMA, ceil_div

__all__ = ["BlockingParams", "default_blocking", "MAX_ACCUM_REGISTERS", "L2_ELEM_LIMIT"]

#: row_blk * col_blk + col_blk must be strictly below this (Section 4.3.4).
MAX_ACCUM_REGISTERS = 31
#: C_blk * K_blk upper bound (Section 4.3.4).
L2_ELEM_LIMIT = 512 * 512


@dataclass(frozen=True)
class BlockingParams:
    """One point in the GEMM tuning space."""

    n_blk: int
    c_blk: int
    k_blk: int
    row_blk: int
    col_blk: int

    def validate(self) -> None:
        if min(self.n_blk, self.c_blk, self.k_blk, self.row_blk, self.col_blk) < 1:
            raise ValueError(f"all blocking parameters must be positive: {self}")
        if self.row_blk * self.col_blk + self.col_blk >= MAX_ACCUM_REGISTERS:
            raise ValueError(
                f"register budget violated: row_blk*col_blk + col_blk = "
                f"{self.row_blk * self.col_blk + self.col_blk} >= {MAX_ACCUM_REGISTERS}"
            )
        if self.c_blk * self.k_blk >= L2_ELEM_LIMIT:
            raise ValueError(
                f"L2 constraint violated: C_blk*K_blk = {self.c_blk * self.k_blk} "
                f">= {L2_ELEM_LIMIT}"
            )
        if self.c_blk % PHI:
            raise ValueError(f"C_blk={self.c_blk} must be a multiple of phi={PHI}")
        if self.k_blk % (self.col_blk * SIGMA):
            raise ValueError(
                f"K_blk={self.k_blk} must be a multiple of col_blk*sigma="
                f"{self.col_blk * SIGMA}"
            )
        if self.n_blk % self.row_blk:
            raise ValueError(
                f"N_blk={self.n_blk} must be a multiple of row_blk={self.row_blk}"
            )

    @property
    def accumulator_registers(self) -> int:
        """ZMM registers held live by the microkernel (incl. u operands)."""
        return self.row_blk * self.col_blk + self.col_blk

    @property
    def microkernel_macs(self) -> int:
        """8-bit MACs per full microkernel invocation over one C_blk depth."""
        return self.row_blk * self.col_blk * SIGMA * PHI * (self.c_blk // PHI)


def default_blocking(n: int, c: int, k: int) -> BlockingParams:
    """A safe, reasonable default for a given GEMM problem (pre-tuning).

    Mirrors the paper's design point: ``row_blk x col_blk`` near the
    register budget (6 x 4 -> 28 registers), ``K_blk`` one column group,
    ``C_blk`` the whole reduction when it fits.
    """
    row_blk, col_blk = 6, 4
    col_group = col_blk * SIGMA  # 64 output channels per microkernel pass
    # K_blk: cover K in as few passes as possible, up to 256.
    k_blk = min(256, max(col_group, ceil_div(k, col_group) * col_group))
    k_blk = max(col_group, (k_blk // col_group) * col_group)
    # C_blk: whole reduction when it fits the L2 constraint.
    c_blk = min(c, 256)
    c_blk = max(PHI, ceil_div(c_blk, PHI) * PHI)
    while c_blk * k_blk >= L2_ELEM_LIMIT:
        c_blk //= 2
    # N_blk: large for reuse, but never padding far past the true N.
    n_blk = min(96, max(row_blk, ceil_div(n, row_blk) * row_blk))
    params = BlockingParams(n_blk=n_blk, c_blk=c_blk, k_blk=k_blk,
                            row_blk=row_blk, col_blk=col_blk)
    params.validate()
    return params
