"""Reference integer GEMM kernels.

Ground truth for the blocked/batched implementations: plain contractions
with explicit int32 accumulation, no blocking, no compensation tricks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm_u8s8_reference", "gemm_s8s8_reference", "gemm_s16_reference"]


def gemm_u8s8_reference(a_u8: np.ndarray, b_s8: np.ndarray) -> np.ndarray:
    """``(N, C) uint8 @ (C, K) int8 -> (N, K) int32`` exact."""
    if a_u8.dtype != np.uint8 or b_s8.dtype != np.int8:
        raise ValueError(f"expected uint8 @ int8, got {a_u8.dtype} @ {b_s8.dtype}")
    return a_u8.astype(np.int32) @ b_s8.astype(np.int32)


def gemm_s8s8_reference(a_s8: np.ndarray, b_s8: np.ndarray) -> np.ndarray:
    """``(N, C) int8 @ (C, K) int8 -> (N, K) int32`` exact (the signed
    product the compensation scheme emulates on unsigned hardware)."""
    if a_s8.dtype != np.int8 or b_s8.dtype != np.int8:
        raise ValueError(f"expected int8 @ int8, got {a_s8.dtype} @ {b_s8.dtype}")
    return a_s8.astype(np.int32) @ b_s8.astype(np.int32)


def gemm_s16_reference(a_s16: np.ndarray, b_s16: np.ndarray) -> np.ndarray:
    """``(N, C) int16 @ (C, K) int16 -> (N, K) int32`` exact (up-cast path)."""
    if a_s16.dtype != np.int16 or b_s16.dtype != np.int16:
        raise ValueError(f"expected int16 @ int16, got {a_s16.dtype} @ {b_s16.dtype}")
    return a_s16.astype(np.int32) @ b_s16.astype(np.int32)
