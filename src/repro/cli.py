"""Command-line interface: regenerate any paper experiment.

    python -m repro figure8
    python -m repro figure9 [--layer VGG16_a] [--m 4]
    python -m repro figure10
    python -m repro table3 [--eval-images 128] [--width 16]
    python -m repro ablation [--layer ResNet-50_b]
    python -m repro selftest
    python -m repro conformance [--cases 50] [--update-golden]
    python -m repro bench [--quick] [--out BENCH_runtime.json]
    python -m repro serve-bench [--threads 1,2,8] [--gate 1.5]
    python -m repro load-bench [--mode virtual] [--baseline BENCH_serve_quick.json]
    python -m repro tune [--wisdom wisdom.json] [--baseline BENCH_tuning.json]

Each subcommand prints the same rows the corresponding benchmark
emits; ``selftest`` runs a fast numerics sanity sweep (the exactness
and ordering properties the test suite checks in depth);
``conformance`` differentially tests every algorithm against the FP32
direct oracle and gates the error statistics against ``tests/golden``;
``bench`` times the vectorized runtime on the (scaled) Table 2
workloads and can gate speedup ratios against a checked-in baseline;
``serve-bench`` measures the micro-batching server's throughput vs
concurrent client count, with every served result gated bit-identical
to serial eager execution; ``load-bench`` replays seeded open-loop
traces (Poisson / bursty multi-model / overload) and reports SLO-style
p50/p95/p99, goodput, and shed rate, gateable against a checked-in
baseline.  Both persist their JSON documents under ``benchmarks/`` by
default so the serve perf trajectory is first-class; ``tune`` measures
the admissible algorithms per conv geometry, persists the winners to a
shared wisdom file (``--wisdom``), and gates determinism plus the
selected-vs-static ratio -- ``bench`` / ``serve-bench`` / ``load-bench``
consume the same file via their own ``--wisdom`` flag.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_figure8(args: argparse.Namespace) -> int:
    from .experiments import format_figure8, run_figure8

    print(format_figure8(run_figure8(cores=args.cores)))
    return 0


def _cmd_figure9(args: argparse.Namespace) -> int:
    from .experiments import format_figure9, run_figure9

    print(format_figure9(run_figure9(layer=args.layer, m=args.m)))
    return 0


def _cmd_figure10(args: argparse.Namespace) -> int:
    from .experiments import format_figure10, run_figure10

    print(format_figure10(run_figure10(cores=args.cores)))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .experiments import format_table3, run_table3
    from .nn import build_resnet_small, build_vgg_small

    width = args.width
    rows = run_table3(
        models={
            "VGG16 (synthetic)": lambda: build_vgg_small(width=width),
            "ResNet-50 (synthetic)": lambda: build_resnet_small(width=width),
        },
        eval_images=args.eval_images,
    )
    print(format_table3(rows))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments import numeric_error_ablation, point_set_ablation
    from .workloads import layer_by_name

    print(f"Numeric-error ablation on {args.layer} shapes (rel RMS vs FP32):")
    for row in numeric_error_ablation(layer_by_name(args.layer)):
        print(f"  {row.scheme:14s} {row.rel_rms_error:.4f}")
    print("\nF(4,3) interpolation-point extension:")
    for name, err in point_set_ablation().items():
        print(f"  {name:28s} {err:.4f}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.report import reproduction_report

    text = reproduction_report(with_table3=args.with_table3)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .perf import layer_report
    from .workloads import layer_by_name

    print(layer_report(layer_by_name(args.layer), cores=args.cores))
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .conv import direct_conv2d_fp32
    from .core import LoWinoConv2d, signed_via_unsigned
    from .gemm import gemm_s8s8_reference
    from .winograd import winograd_algorithm, winograd_conv2d_fp32

    rng = np.random.default_rng(0)
    failures = 0

    x = rng.standard_normal((1, 4, 10, 10))
    w = rng.standard_normal((4, 4, 3, 3)) * 0.2
    ref = direct_conv2d_fp32(x, w)
    ok = np.allclose(winograd_conv2d_fp32(x, w, winograd_algorithm(4, 3)), ref, atol=1e-9)
    print(f"[{'ok' if ok else 'FAIL'}] FP32 Winograd F(4,3) == direct")
    failures += not ok

    v = rng.integers(-128, 128, (6, 8)).astype(np.int8)
    u = rng.integers(-128, 128, (8, 4)).astype(np.int8)
    ok = np.array_equal(signed_via_unsigned(v, u), gemm_s8s8_reference(v, u))
    print(f"[{'ok' if ok else 'FAIL'}] Eq. 9 compensation identity")
    failures += not ok

    xr = np.maximum(x, 0)
    layer = LoWinoConv2d(w, m=4, padding=0)
    refv = direct_conv2d_fp32(xr, w)
    rel = float(np.sqrt(np.mean((layer(xr) - refv) ** 2)) / refv.std())
    ok = rel < 0.25
    print(f"[{'ok' if ok else 'FAIL'}] LoWino F(4,3) error envelope ({rel:.3f})")
    failures += not ok

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 1 if failures else 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .conformance import (
        ALL_ALGORITHMS,
        check_report_against_golden,
        default_golden_dir,
        default_suite,
        format_report,
        run_suite,
        write_golden,
    )

    if args.algorithms:
        algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
        unknown = [a for a in algorithms if a not in ALL_ALGORITHMS]
        if unknown:
            print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    else:
        algorithms = ALL_ALGORITHMS
    configs = default_suite(cases=args.cases, seed=args.seed)
    report = run_suite(configs, algorithms)
    print(format_report(report, per_key=args.per_key))

    golden_dir = Path(args.golden_dir) if args.golden_dir else default_golden_dir()
    if args.update_golden:
        written = write_golden(
            report,
            golden_dir,
            generator_meta={"seed": args.seed, "generated_cases": args.cases},
        )
        print(f"\nwrote {len(written)} golden files under {golden_dir}")
        return 0
    violations = check_report_against_golden(report, golden_dir, shrink=not args.no_shrink)
    if violations:
        print(f"\nconformance gate: {len(violations)} VIOLATION(S)")
        for v in violations:
            print(f"  {v.describe()}")
        return 1
    print(f"\nconformance gate: PASS ({len(report.results)} cases, golden: {golden_dir})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .runtime import ALGORITHMS
    from .runtime import bench as rbench

    profile = rbench.PROFILES["quick" if args.quick else "full"]
    if args.layers:
        from .workloads import layer_by_name

        names = tuple(s.strip() for s in args.layers.split(",") if s.strip())
        try:
            for name in names:
                layer_by_name(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        profile = replace(profile, layers=names)
    if args.repeats is not None:
        profile = replace(profile, repeats=args.repeats)
    if args.m is not None:
        profile = replace(profile, m=args.m)
    if args.no_reference:
        profile = replace(profile, reference=False)
    if args.algorithms:
        algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
        unknown = [a for a in algorithms if a not in ALGORITHMS]
        if unknown:
            print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    else:
        algorithms = ALGORITHMS

    doc = rbench.run_bench(
        profile,
        algorithms=algorithms,
        seed=args.seed,
        models=not args.no_models,
        backend=args.backend,
        wisdom=args.wisdom,
    )
    print(rbench.format_bench(doc))
    if args.cache_stats:
        stats = doc["cache_stats"]
        print(
            "plan cache: "
            + "  ".join(f"{key}={stats[key]}" for key in sorted(stats))
        )
        for entry in doc.get("models", []):
            stats = entry["cache_stats"]
            print(
                f"model cache [{entry['name']}]: "
                + "  ".join(f"{key}={stats[key]}" for key in sorted(stats))
            )
    if args.out:
        rbench.write_json(doc, args.out)
        print(f"wrote {args.out}")
    if args.baseline:
        if args.update_baseline:
            rbench.write_json(doc, args.baseline)
            print(f"wrote baseline {args.baseline}")
            return 0
        try:
            baseline = rbench.load_json(args.baseline)
        except FileNotFoundError:
            print(f"baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        violations = rbench.check_regression(doc, baseline, gate=args.gate)
        if violations:
            print(f"\nbench gate: {len(violations)} VIOLATION(S)")
            for v in violations:
                print(f"  {v}")
            return 1
        print(f"\nbench gate: PASS (gate {args.gate:.0%}, baseline {args.baseline})")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs import profile as oprof

    cfg = oprof.ProfileConfig(
        model=args.model,
        algorithm=args.algorithm,
        batch=args.batch,
        hw=args.hw,
        width=args.width,
        m=args.m,
        runs=args.runs,
        backend=args.backend,
        seed=args.seed,
    )
    try:
        doc = oprof.run_profile(cfg)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(oprof.format_profile(doc))
    if args.stage_baseline:
        from pathlib import Path

        if args.update_stage_baseline:
            baseline_doc = oprof.stage_baseline_doc(doc)
            path = Path(args.stage_baseline)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(baseline_doc, indent=1, sort_keys=True) + "\n"
            )
            print(f"wrote stage baseline {args.stage_baseline}")
        else:
            try:
                baseline = json.loads(Path(args.stage_baseline).read_text())
            except FileNotFoundError:
                print(f"stage baseline not found: {args.stage_baseline}",
                      file=sys.stderr)
                return 2
            print()
            print(oprof.format_stage_gate(doc, baseline))
            violations = oprof.check_stage_gate(
                doc, baseline, tolerance=args.stage_tolerance
            )
            if violations:
                print(f"\nstage gate: {len(violations)} VIOLATION(S)")
                for v in violations:
                    print(f"  {v}")
                return 1
            print(f"\nstage gate: PASS (tolerance "
                  f"{args.stage_tolerance * 100:.0f}pp, "
                  f"baseline {args.stage_baseline})")
    overhead_doc = None
    if args.overhead:
        overhead_doc = oprof.measure_overhead(cfg, repeats=args.overhead_repeats)
        print()
        print(oprof.format_overhead(overhead_doc))
        violations = oprof.check_overhead_gate(overhead_doc, limit=args.gate)
        if violations:
            print(f"\noverhead gate: {len(violations)} VIOLATION(S)")
            for v in violations:
                print(f"  {v}")
            return 1
        print(f"\noverhead gate: PASS (enabled instrumentation <= {args.gate:.0%})")
    if args.out:
        out_doc = dict(doc)
        if overhead_doc is not None:
            out_doc["overhead"] = overhead_doc
        from pathlib import Path

        Path(args.out).write_text(json.dumps(out_doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


def _parse_count_list(raw: str, flag: str) -> Optional[tuple]:
    try:
        counts = tuple(int(s.strip()) for s in raw.split(",") if s.strip())
    except ValueError:
        print(f"invalid {flag} list: {raw!r}", file=sys.stderr)
        return None
    if not counts or any(c < 1 for c in counts):
        print(f"{flag} must be positive integers, got {raw!r}", file=sys.stderr)
        return None
    return counts


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve import bench as sbench

    if args.procs is not None:
        return _run_proc_bench(args, sbench)
    threads = _parse_count_list(args.threads, "--threads")
    if threads is None:
        return 2
    cfg = sbench.ServeBenchConfig(
        model=args.model,
        algorithm=args.algorithm if args.algorithm is not None else "lowino",
        width=args.width,
        hw=args.hw,
        m=args.m,
        request_batch=args.request_batch,
        requests_per_thread=args.requests,
        threads=threads,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        workers=args.workers,
        backend=args.backend,
        seed=args.seed,
        wisdom=args.wisdom,
    )
    try:
        doc = sbench.run_serve_bench(cfg)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(sbench.format_serve_bench(doc))
    out = None if args.no_out else (args.out or sbench.DEFAULT_BENCH_PATH)
    if out:
        sbench.write_json(doc, out)
        print(f"wrote {out}")
    violations = sbench.check_serve_gate(doc, min_speedup=args.gate)
    if violations:
        print(f"\nserve gate: {len(violations)} VIOLATION(S)")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"\nserve gate: PASS (bit-identity + >= {args.gate:.2f}x throughput)")
    return 0


def _run_proc_bench(args: argparse.Namespace, sbench) -> int:
    """``serve-bench --procs``: the multi-process worker-count sweep."""
    procs = _parse_count_list(args.procs, "--procs")
    if procs is None:
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = sbench.load_json(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read --baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
    cfg = sbench.ProcBenchConfig(
        model=args.model,
        algorithm=args.algorithm if args.algorithm is not None else "int8_upcast",
        width=args.width,
        hw=args.hw,
        m=args.m,
        request_batch=args.request_batch,
        requests_per_thread=args.requests,
        client_threads=args.clients,
        procs=procs,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        backend=args.backend,
        transport=args.transport,
        wisdom=not args.no_proc_wisdom,
        seed=args.seed,
    )
    try:
        doc = sbench.run_proc_bench(cfg)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(sbench.format_proc_bench(doc))
    # Unlike the thread sweep, the default run does NOT overwrite the
    # committed baseline it is usually gated against; ``--update-baseline``
    # regenerates it explicitly.
    out = None
    if not args.no_out:
        out = args.out or (
            sbench.DEFAULT_PROC_BENCH_PATH if args.update_baseline else None
        )
    if out:
        sbench.write_json(doc, out)
        print(f"wrote {out}")
    violations = sbench.check_proc_gate(
        doc, baseline=baseline, min_speedup=args.gate,
        speedup_tolerance=args.speedup_tolerance,
    )
    if violations:
        print(f"\nproc gate: {len(violations)} VIOLATION(S)")
        for v in violations:
            print(f"  {v}")
        return 1
    parts = ["bit-identity"]
    if cfg.wisdom:
        parts.append("selection convergence")
    if args.gate > 0:
        parts.append(f">= {args.gate:.2f}x throughput")
    if baseline is not None:
        parts.append("baseline ratio")
    print(f"\nproc gate: PASS ({' + '.join(parts)})")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .tuning import bench as tbench

    cfg = tbench.TuneBenchConfig(
        model=args.model,
        width=args.width,
        hw=args.hw,
        batch=args.batch,
        repeats=args.repeats,
        seed=args.seed,
        backend=args.backend,
        family=args.family,
    )
    try:
        doc = tbench.run_tune_bench(cfg, wisdom=args.wisdom)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(tbench.format_tune_bench(doc))
    if args.wisdom:
        print(f"wisdom: {args.wisdom}")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    baseline = None
    if args.baseline:
        if args.update_baseline:
            path = Path(args.baseline)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
            print(f"wrote baseline {args.baseline}")
            return 0
        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except FileNotFoundError:
            print(f"baseline not found: {args.baseline}", file=sys.stderr)
            return 2
    violations = tbench.check_tuning_gate(doc, baseline=baseline, gate=args.gate)
    if violations:
        print(f"\ntune gate: {len(violations)} VIOLATION(S)")
        for v in violations:
            print(f"  {v}")
        return 1
    against = f", baseline {args.baseline}" if baseline is not None else ""
    print(f"\ntune gate: PASS (deterministic + never-regress{against})")
    return 0


def _cmd_load_bench(args: argparse.Namespace) -> int:
    from .serve import loadgen

    tenants = (("vgg", "vgg", "lowino"), ("resnet", "resnet", "int8_upcast"))
    if args.single_tenant:
        tenants = tenants[:1]
    cfg = loadgen.LoadBenchConfig(
        tenants=tenants,
        width=args.width,
        hw=args.hw,
        m=args.m,
        horizon_s=args.horizon,
        base_rate=args.rate,
        overload_rate=args.overload_rate,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        queue_size=args.queue_size,
        workers=args.workers,
        mode=args.mode,
        speed=args.speed,
        seed=args.seed,
    )
    try:
        doc = loadgen.run_load_bench(cfg, wisdom=args.wisdom)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(loadgen.format_load_bench(doc))
    out = None if args.no_out else (args.out or loadgen.DEFAULT_BENCH_PATH)
    if out:
        loadgen.write_json(doc, out)
        print(f"wrote {out}")
    baseline = None
    if args.baseline:
        if args.update_baseline:
            loadgen.write_json(doc, args.baseline)
            print(f"wrote baseline {args.baseline}")
            return 0
        try:
            baseline = loadgen.load_json(args.baseline)
        except FileNotFoundError:
            print(f"baseline not found: {args.baseline}", file=sys.stderr)
            return 2
    violations = loadgen.check_load_gate(
        doc,
        baseline=baseline,
        p95_factor=args.gate_p95,
        shed_tolerance=args.gate_shed,
    )
    if violations:
        print(f"\nload gate: {len(violations)} VIOLATION(S)")
        for v in violations:
            print(f"  {v}")
        return 1
    against = f", baseline {args.baseline}" if baseline is not None else ""
    print(f"\nload gate: PASS (bit-identity + backpressure{against})")
    return 0


def _backend_choices() -> tuple:
    from .runtime.backends import available_backends

    return tuple(available_backends())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LoWino reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p8 = sub.add_parser("figure8", help="per-layer speedups (cost model)")
    p8.add_argument("--cores", type=int, default=None)
    p8.set_defaults(fn=_cmd_figure8)

    p9 = sub.add_parser("figure9", help="quantized transformed-input histograms")
    p9.add_argument("--layer", default="VGG16_a")
    p9.add_argument("--m", type=int, default=4)
    p9.set_defaults(fn=_cmd_figure9)

    p10 = sub.add_parser("figure10", help="stage breakdown (cost model)")
    p10.add_argument("--cores", type=int, default=None)
    p10.set_defaults(fn=_cmd_figure10)

    pt3 = sub.add_parser("table3", help="end-to-end accuracy (slow)")
    pt3.add_argument("--eval-images", type=int, default=128)
    pt3.add_argument("--width", type=int, default=16)
    pt3.set_defaults(fn=_cmd_table3)

    pab = sub.add_parser("ablation", help="numeric-error + point-set ablations")
    pab.add_argument("--layer", default="ResNet-50_b")
    pab.set_defaults(fn=_cmd_ablation)

    prr = sub.add_parser("reproduce", help="run the evaluation suite, write a report")
    prr.add_argument("--out", default=None, help="write markdown here (default stdout)")
    prr.add_argument("--with-table3", action="store_true",
                     help="include the (slow) accuracy table")
    prr.set_defaults(fn=_cmd_reproduce)

    ppl = sub.add_parser("plan", help="execution-plan report for one layer")
    ppl.add_argument("layer", help="Table 2 layer name, e.g. VGG16_b")
    ppl.add_argument("--cores", type=int, default=None)
    ppl.set_defaults(fn=_cmd_plan)

    pst = sub.add_parser("selftest", help="fast numerics sanity sweep")
    pst.set_defaults(fn=_cmd_selftest)

    pcf = sub.add_parser(
        "conformance",
        help="differential conformance of every algorithm vs the FP32 oracle",
    )
    pcf.add_argument("--cases", type=int, default=50,
                     help="randomly generated configs on top of the edge grid")
    pcf.add_argument("--seed", type=int, default=2021, help="generator seed")
    pcf.add_argument("--algorithms", default=None,
                     help="comma-separated subset (default: all six)")
    pcf.add_argument("--golden-dir", default=None,
                     help="golden-file directory (default: tests/golden)")
    pcf.add_argument("--update-golden", action="store_true",
                     help="record this run's statistics as the new baseline")
    pcf.add_argument("--per-key", action="store_true",
                     help="also print per-(algorithm, shape-class) statistics")
    pcf.add_argument("--no-shrink", action="store_true",
                     help="skip shrinking failing configs to minimal reproducers")
    pcf.set_defaults(fn=_cmd_conformance)

    pbn = sub.add_parser(
        "bench",
        help="wall-clock benchmark of the vectorized runtime (scaled Table 2)",
    )
    pbn.add_argument("--quick", action="store_true",
                     help="small profile (breakdown layers, tighter caps) for CI")
    pbn.add_argument("--layers", default=None,
                     help="comma-separated Table 2 layer names (default: profile set)")
    pbn.add_argument("--algorithms", default=None,
                     help="comma-separated subset (default: all six)")
    pbn.add_argument("--repeats", type=int, default=None,
                     help="timed repeats per measurement (best-of)")
    pbn.add_argument("--m", type=int, default=None,
                     help="Winograd output tile size (default 4)")
    pbn.add_argument("--seed", type=int, default=2021, help="tensor generator seed")
    pbn.add_argument("--out", default=None,
                     help="write the BENCH_runtime.json document here")
    pbn.add_argument("--baseline", default=None,
                     help="baseline JSON to gate speedup ratios against")
    pbn.add_argument("--gate", type=float, default=0.25,
                     help="allowed fractional regression vs baseline (default 0.25)")
    pbn.add_argument("--update-baseline", action="store_true",
                     help="record this run as the new baseline (with --baseline)")
    pbn.add_argument("--backend", default=None, choices=_backend_choices(),
                     help="fused-stage kernel backend (default: process default)")
    pbn.add_argument("--no-reference", action="store_true",
                     help="skip the (slow) loop-reference timings")
    pbn.add_argument("--no-models", action="store_true",
                     help="skip the whole-model compiled-vs-eager cases")
    pbn.add_argument("--cache-stats", action="store_true",
                     help="print plan-cache hit/miss/eviction/bytes counters "
                          "(per session for the model cases)")
    pbn.add_argument("--wisdom", default=None,
                     help="wisdom file (repro tune) applying tuned algorithm "
                          "choices to the model cases")
    pbn.set_defaults(fn=_cmd_bench)

    ppr = sub.add_parser(
        "profile",
        help="per-layer x per-stage wall-clock breakdown (traced session)",
    )
    ppr.add_argument("--model", default="resnet",
                     help="model family: vgg/resnet/alexnet/unet (default resnet)")
    ppr.add_argument("--algorithm", default="auto",
                     help="quantize_model algorithm or 'fp32' (default auto)")
    ppr.add_argument("--batch", type=int, default=2, help="batch size (default 2)")
    ppr.add_argument("--hw", type=int, default=32,
                     help="input spatial size (default 32)")
    ppr.add_argument("--width", type=int, default=32,
                     help="model width (default 32)")
    ppr.add_argument("--m", type=int, default=4,
                     help="Winograd output tile size (default 4)")
    ppr.add_argument("--runs", type=int, default=3,
                     help="timed runs after warmup (default 3)")
    ppr.add_argument("--seed", type=int, default=2021, help="tensor generator seed")
    ppr.add_argument("--overhead", action="store_true",
                     help="also measure instrumentation overhead (none vs "
                          "disabled vs enabled tracer) and gate it")
    ppr.add_argument("--overhead-repeats", type=int, default=5,
                     help="interleaved best-of repeats for --overhead (default 5)")
    ppr.add_argument("--gate", type=float, default=0.05,
                     help="allowed enabled-tracer overhead fraction (default 0.05)")
    ppr.add_argument("--backend", default="numpy", choices=_backend_choices(),
                     help="fused-stage kernel backend (default numpy)")
    ppr.add_argument("--stage-baseline", default=None,
                     help="stage-share baseline JSON to gate against "
                          "(e.g. benchmarks/BENCH_stages.json)")
    ppr.add_argument("--update-stage-baseline", action="store_true",
                     help="record this run's stage shares as the new baseline "
                          "(with --stage-baseline)")
    ppr.add_argument("--stage-tolerance", type=float, default=0.10,
                     help="allowed absolute growth of any stage's share of "
                          "stage time, as a fraction (default 0.10 = 10pp)")
    ppr.add_argument("--out", default=None,
                     help="write the profile JSON document here")
    ppr.set_defaults(fn=_cmd_profile)

    psv = sub.add_parser(
        "serve-bench",
        help="micro-batching server throughput vs client threads "
             "(bit-identity gated)",
    )
    psv.add_argument("--model", default="vgg",
                     help="model family: vgg/resnet/alexnet/unet (default vgg)")
    psv.add_argument("--algorithm", default=None,
                     help="quantize_model algorithm or 'fp32' (default lowino; "
                          "int8_upcast with --procs so wisdom swaps apply)")
    psv.add_argument("--threads", default="1,2,8",
                     help="comma-separated client thread counts (default 1,2,8)")
    psv.add_argument("--procs", default=None,
                     help="comma-separated worker-process counts; switches the "
                          "sweep to the multi-process tier (ProcServer), e.g. "
                          "--procs 1,2,4")
    psv.add_argument("--clients", type=int, default=8,
                     help="closed-loop client threads for the --procs sweep "
                          "(default 8)")
    psv.add_argument("--transport", default="auto",
                     choices=("auto", "shm", "pipe"),
                     help="--procs tensor transport (default auto: shared-"
                          "memory slabs when available)")
    psv.add_argument("--no-proc-wisdom", action="store_true",
                     help="disable in-worker tuning + the cross-process "
                          "selection-convergence gate in the --procs sweep")
    psv.add_argument("--baseline", default=None,
                     help="committed proc-bench JSON to ratio-gate the "
                          "measured speedup against (--procs only)")
    psv.add_argument("--speedup-tolerance", type=float, default=0.5,
                     help="--baseline ratio floor: measured speedup may not "
                          "fall below this fraction of the baseline's "
                          "(default 0.5)")
    psv.add_argument("--update-baseline", action="store_true",
                     help="with --procs: also write the document to "
                          "benchmarks/BENCH_serve_procs.json")
    psv.add_argument("--requests", type=int, default=8,
                     help="requests per client thread (default 8)")
    psv.add_argument("--request-batch", type=int, default=2,
                     help="images per request (default 2)")
    psv.add_argument("--max-batch", type=int, default=16,
                     help="micro-batcher image bound (default 16)")
    psv.add_argument("--max-delay-ms", type=float, default=5.0,
                     help="micro-batcher coalescing window (default 5ms)")
    psv.add_argument("--workers", type=int, default=1,
                     help="server worker threads per model (default 1)")
    psv.add_argument("--backend", default="numpy", choices=_backend_choices(),
                     help="fused-stage kernel backend (default numpy)")
    psv.add_argument("--width", type=int, default=16,
                     help="model width (default 16)")
    psv.add_argument("--hw", type=int, default=16,
                     help="input spatial size (default 16)")
    psv.add_argument("--m", type=int, default=4,
                     help="Winograd output tile size (default 4)")
    psv.add_argument("--seed", type=int, default=2021, help="tensor generator seed")
    psv.add_argument("--gate", type=float, default=1.5,
                     help="required throughput speedup at max threads vs 1 "
                          "(default 1.5)")
    psv.add_argument("--out", default=None,
                     help="write the serve-bench JSON document here "
                          "(default: benchmarks/BENCH_serve_threads.json)")
    psv.add_argument("--no-out", action="store_true",
                     help="do not persist the JSON document")
    psv.add_argument("--wisdom", default=None,
                     help="wisdom file (repro tune) applying tuned algorithm "
                          "choices to the served session")
    psv.set_defaults(fn=_cmd_serve_bench)

    plb = sub.add_parser(
        "load-bench",
        help="open-loop trace-driven load harness: SLO latency/goodput/"
             "shed-rate sweep (bit-identity gated)",
    )
    plb.add_argument("--mode", choices=("virtual", "realtime"), default="virtual",
                     help="virtual = wall-clock-free replay (default); "
                          "realtime = submit at scheduled instants")
    plb.add_argument("--speed", type=float, default=1.0,
                     help="realtime schedule compression factor (default 1)")
    plb.add_argument("--horizon", type=float, default=2.0,
                     help="trace horizon in (virtual) seconds (default 2)")
    plb.add_argument("--rate", type=float, default=30.0,
                     help="base Poisson rate per tenant, req/s (default 30)")
    plb.add_argument("--overload-rate", type=float, default=600.0,
                     help="offered rate for the overload scenario (default 600)")
    plb.add_argument("--single-tenant", action="store_true",
                     help="drop the multi-model tenancy scenario")
    plb.add_argument("--width", type=int, default=8,
                     help="tenant model width (default 8)")
    plb.add_argument("--hw", type=int, default=8,
                     help="input spatial size (default 8)")
    plb.add_argument("--m", type=int, default=2,
                     help="Winograd output tile size (default 2)")
    plb.add_argument("--max-batch", type=int, default=16,
                     help="micro-batcher image bound (default 16)")
    plb.add_argument("--max-delay-ms", type=float, default=2.0,
                     help="micro-batcher coalescing window (default 2ms)")
    plb.add_argument("--queue-size", type=int, default=256,
                     help="request queue bound for paced scenarios (default 256)")
    plb.add_argument("--workers", type=int, default=1,
                     help="server worker threads per model (default 1)")
    plb.add_argument("--seed", type=int, default=2021,
                     help="trace + tensor generator seed")
    plb.add_argument("--gate-p95", type=float, default=4.0,
                     help="allowed p95 factor vs baseline; <= 0 disables "
                          "(default 4.0)")
    plb.add_argument("--gate-shed", type=float, default=0.2,
                     help="allowed absolute overload shed-rate drift vs "
                          "baseline (default 0.2)")
    plb.add_argument("--out", default=None,
                     help="write the load-bench JSON document here "
                          "(default: benchmarks/BENCH_serve_quick.json)")
    plb.add_argument("--no-out", action="store_true",
                     help="do not persist the JSON document")
    plb.add_argument("--baseline", default=None,
                     help="baseline JSON to gate schedule digests, shed rate, "
                          "and p95 against")
    plb.add_argument("--update-baseline", action="store_true",
                     help="record this run as the new baseline (with --baseline)")
    plb.add_argument("--wisdom", default=None,
                     help="wisdom file (repro tune) applying tuned algorithm "
                          "choices to every tenant session (baseline-compatible: "
                          "selection never changes outputs or schedules)")
    plb.set_defaults(fn=_cmd_load_bench)

    ptn = sub.add_parser(
        "tune",
        help="measure + select the fastest admissible algorithm per conv "
             "geometry, persisting choices to a shared wisdom file",
    )
    ptn.add_argument("--model", default="resnet",
                     help="model family: vgg/resnet/alexnet/unet (default resnet)")
    ptn.add_argument("--width", type=int, default=8,
                     help="model width (default 8)")
    ptn.add_argument("--hw", type=int, default=8,
                     help="input spatial size (default 8)")
    ptn.add_argument("--batch", type=int, default=2, help="batch size (default 2)")
    ptn.add_argument("--repeats", type=int, default=2,
                     help="timed repeats per candidate (best-of, default 2)")
    ptn.add_argument("--seed", type=int, default=2021,
                     help="measurement tensor seed (default 2021)")
    ptn.add_argument("--backend", default="numpy", choices=_backend_choices(),
                     help="fused-stage kernel backend (default numpy)")
    ptn.add_argument("--family", default="quantized",
                     choices=("quantized", "fp32"),
                     help="candidate family per geometry: the INT8 pipelines "
                          "or fp32_winograd@m vs fp32_direct (default "
                          "quantized)")
    ptn.add_argument("--wisdom", default=None,
                     help="wisdom file to read + extend (default: throwaway "
                          "-- pure benchmark mode)")
    ptn.add_argument("--out", default=None,
                     help="write the BENCH_tuning.json document here")
    ptn.add_argument("--baseline", default=None,
                     help="baseline JSON to gate the selected-vs-static "
                          "geomean against")
    ptn.add_argument("--gate", type=float, default=0.25,
                     help="allowed fractional geomean regression vs baseline "
                          "(default 0.25)")
    ptn.add_argument("--update-baseline", action="store_true",
                     help="record this run as the new baseline (with --baseline)")
    ptn.set_defaults(fn=_cmd_tune)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
