"""Setuptools shim.

The primary metadata lives in pyproject.toml; this file exists so the
package installs in fully offline environments where the ``wheel``
package (required by PEP 660 editable installs) is unavailable:

    python setup.py develop        # offline editable install
"""

from setuptools import setup

setup()
