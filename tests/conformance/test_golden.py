"""Golden-file mechanics and the tier-1 conformance gate."""

import json

import pytest

from repro.conformance import (
    ConvConfig,
    check_report_against_golden,
    default_golden_dir,
    default_suite,
    load_golden,
    run_suite,
    write_golden,
)
from repro.conformance.golden import FORMAT_VERSION


def _small_report():
    return run_suite(
        [ConvConfig(1, 2, 2, 8, 8, m=2, padding=1, seed=21)],
        algorithms=("fp32_direct", "lowino"),
    )


class TestGoldenRoundTrip:
    def test_write_then_load(self, tmp_path):
        report = _small_report()
        written = write_golden(report, tmp_path, generator_meta={"seed": 21})
        assert len(written) == 2
        entries = load_golden(tmp_path)
        assert set(entries) == {"fp32_direct/m2/general", "lowino/m2/general"}
        for key, entry in entries.items():
            assert entry["budget"] > entry["max_rel_rms"]
            assert entry["cases"] == 1

    def test_format_version_checked(self, tmp_path):
        report = _small_report()
        (path,) = [
            p for p in write_golden(report, tmp_path) if "lowino" in p.name
        ]
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_golden(tmp_path)

    def test_missing_files_load_empty(self, tmp_path):
        assert load_golden(tmp_path) == {}


class TestGateMechanics:
    def test_fresh_golden_admits_same_run(self, tmp_path):
        report = _small_report()
        write_golden(report, tmp_path)
        assert check_report_against_golden(report, tmp_path) == []

    def test_unknown_keys_do_not_gate(self, tmp_path):
        """Keys never recorded must not fail the gate (they gate only
        after --update-golden records them)."""
        report = _small_report()
        assert check_report_against_golden(report, tmp_path) == []

    def test_tightened_budget_violates_with_minimal_repro(self, tmp_path):
        report = _small_report()
        (path,) = [
            p for p in write_golden(report, tmp_path) if "lowino" in p.name
        ]
        payload = json.loads(path.read_text())
        payload["entries"]["lowino/m2/general"]["budget"] = 1e-9
        path.write_text(json.dumps(payload))
        violations = check_report_against_golden(report, tmp_path)
        assert len(violations) == 1
        v = violations[0]
        assert v.key == "lowino/m2/general"
        assert v.observed_max_rel_rms > v.budget
        assert v.repro is not None
        # The reproducer is shrunk at least down to a single image.
        assert v.repro.batch == 1
        assert "seed=" in v.describe()


class TestTier1Gate:
    """The real gate: the default population against the stored golden."""

    @pytest.mark.conformance
    def test_default_population_within_budgets(self):
        report = run_suite(default_suite())
        assert report.failures == [], [
            (r.key, r.config.describe(), r.error) for r in report.failures
        ]
        violations = check_report_against_golden(report, default_golden_dir())
        assert violations == [], "\n".join(v.describe() for v in violations)

    @pytest.mark.conformance
    def test_golden_files_cover_every_algorithm(self):
        entries = load_golden(default_golden_dir())
        algos = {key.split("/", 1)[0] for key in entries}
        from repro.conformance import ALL_ALGORITHMS

        assert algos == set(ALL_ALGORITHMS)

    @pytest.mark.conformance
    def test_gate_population_is_large_enough(self):
        """The acceptance bar: >= 50 generated configs, all six algorithms."""
        configs = default_suite()
        report = run_suite(configs[:1])  # cheap: population size is static
        assert len(configs) >= 50 + 14
        assert len({r.algorithm for r in report.results}) == 6
