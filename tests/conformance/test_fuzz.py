"""Property-based fuzzing: every algorithm holds its analytic budget on
arbitrary valid configurations (hypothesis drives the shape space; data
synthesis stays seed-pinned through ConvConfig, so every failure hypothesis
reports is a complete reproducer)."""

import pytest
from hypothesis import given, strategies as st

from repro.conformance import ALL_ALGORITHMS, ConvConfig, run_case
from repro.conformance.space import DISTRIBUTIONS, TILE_SIZES


@st.composite
def conv_configs(draw):
    m = draw(st.sampled_from(TILE_SIZES))
    padding = draw(st.integers(0, 2))
    min_hw = max(3 - 2 * padding, 1)
    return ConvConfig(
        batch=draw(st.integers(1, 2)),
        c_in=draw(st.integers(1, 4)),
        c_out=draw(st.integers(1, 4)),
        h=draw(st.integers(min_hw, 12)),
        w=draw(st.integers(min_hw, 12)),
        padding=padding,
        m=m,
        distribution=draw(st.sampled_from(DISTRIBUTIONS)),
        seed=draw(st.integers(0, 2**31 - 1)),
    )


@pytest.mark.conformance
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@given(config=conv_configs())
def test_algorithm_within_analytic_budget(algorithm, config):
    result = run_case(algorithm, config)
    assert result.passed, (
        f"{algorithm} rel_rms={result.rel_rms:.6g} budget={result.budget:.6g} "
        f"error={result.error} repro: {config.describe()}"
    )


@given(config=conv_configs())
def test_oracle_shape_contract(config):
    """The oracle's output geometry matches the closed-form conv shape."""
    result = run_case("fp32_direct", config)
    assert result.passed
    assert config.out_h >= 1 and config.out_w >= 1
