"""Case execution, aggregation, crash capture, and failure shrinking."""

import numpy as np
import pytest

from repro.conformance import ConvConfig, run_case, run_suite, shrink_failure
from repro.conformance.runner import format_report


class TestRunCase:
    def test_oracle_vs_itself_is_zero(self):
        cfg = ConvConfig(1, 2, 2, 8, 8, m=2, padding=1, seed=1)
        result = run_case("fp32_direct", cfg)
        assert result.passed
        assert result.rel_rms == 0.0

    def test_fp32_winograd_accumulation_order_only(self):
        cfg = ConvConfig(1, 4, 4, 12, 12, m=4, padding=1, seed=2)
        result = run_case("fp32_winograd", cfg)
        assert result.passed
        assert result.rel_rms < 1e-9

    def test_int8_within_budget_with_nonzero_error(self):
        cfg = ConvConfig(1, 4, 4, 12, 12, m=2, padding=1, seed=3)
        result = run_case("lowino", cfg)
        assert result.passed
        assert 0.0 < result.rel_rms <= result.budget

    def test_crash_is_captured_as_failure(self):
        """F(6,3) up-cast overflows INT16 by design: captured, not raised."""
        cfg = ConvConfig(1, 2, 2, 10, 10, m=6, seed=4, distribution="gauss")
        result = run_case("int8_upcast", cfg)
        assert not result.passed
        assert result.error is not None and "Overflow" in result.error
        assert not np.isfinite(result.rel_rms)


class TestRunSuite:
    def test_aggregates_per_key(self):
        configs = [
            ConvConfig(1, 2, 2, 8, 8, m=2, padding=1, seed=5),
            ConvConfig(1, 2, 2, 8, 8, m=2, padding=1, seed=6),
        ]
        report = run_suite(configs, algorithms=("lowino",))
        assert len(report.results) == 2
        (key,) = report.per_key
        assert key == "lowino/m2/general"
        assert report.per_key[key].cases == 2
        assert report.per_key[key].worst_config in configs

    def test_report_formatting(self):
        report = run_suite(
            [ConvConfig(1, 2, 2, 8, 8, m=2, padding=1, seed=7)],
            algorithms=("fp32_direct", "lowino"),
        )
        text = format_report(report, per_key=True)
        assert "lowino" in text and "fp32_direct" in text
        assert "all within analytic budgets" in text


class TestShrinking:
    def test_passing_case_not_shrunk(self):
        cfg = ConvConfig(2, 4, 4, 12, 12, m=2, padding=1, seed=8)
        result = shrink_failure("lowino", cfg)
        assert result.passed
        assert result.config == cfg

    def test_shrinks_to_minimal_failing_config(self):
        """With a zero threshold every INT8 case 'fails', so the shrinker
        must walk all the way down to the smallest config that still
        exhibits nonzero quantization error."""
        cfg = ConvConfig(2, 8, 8, 14, 14, m=4, padding=2,
                         distribution="outlier", seed=9)
        result = shrink_failure("lowino", cfg, rel_rms_threshold=0.0)
        small = result.config
        assert result.rel_rms > 0.0
        assert small.batch == 1
        assert small.c_in <= cfg.c_in and small.c_out <= cfg.c_out
        assert small.h <= cfg.h and small.w <= cfg.w

    def test_shrunk_config_still_reproduces(self):
        cfg = ConvConfig(2, 8, 8, 14, 14, m=4, padding=1,
                         distribution="outlier", seed=10)
        first = run_case("int8_downscale", cfg)
        result = shrink_failure(
            "int8_downscale", cfg, rel_rms_threshold=first.rel_rms * 0.5
        )
        again = run_case("int8_downscale", result.config)
        assert again.rel_rms > first.rel_rms * 0.5
