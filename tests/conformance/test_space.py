"""The configuration space: determinism, classification, shrinking."""

import dataclasses

import numpy as np
import pytest

from repro.conformance import (
    ALL_ALGORITHMS,
    DISTRIBUTIONS,
    ConvConfig,
    enumerate_edge_configs,
    generate_configs,
    make_inputs,
    shape_class,
)
from repro.conformance.space import (
    TILE_SIZES,
    config_from_dict,
    config_to_dict,
    shrink_candidates,
)


class TestGeneratorDeterminism:
    def test_same_seed_same_configs(self):
        assert generate_configs(30, seed=7) == generate_configs(30, seed=7)

    def test_different_seed_different_configs(self):
        assert generate_configs(30, seed=7) != generate_configs(30, seed=8)

    def test_requested_count(self):
        assert len(generate_configs(50, seed=0)) == 50

    def test_inputs_deterministic(self):
        cfg = generate_configs(1, seed=3)[0]
        x1, w1 = make_inputs(cfg)
        x2, w2 = make_inputs(cfg)
        assert np.array_equal(x1, x2) and np.array_equal(w1, w2)

    def test_inputs_track_seed(self):
        cfg = generate_configs(1, seed=3)[0]
        x1, _ = make_inputs(cfg)
        x2, _ = make_inputs(dataclasses.replace(cfg, seed=cfg.seed ^ 1))
        assert not np.array_equal(x1, x2)

    def test_all_configs_valid_geometry(self):
        for cfg in generate_configs(100, seed=11):
            assert cfg.out_h >= 1 and cfg.out_w >= 1
            assert cfg.m in TILE_SIZES
            assert cfg.distribution in DISTRIBUTIONS


class TestDistributions:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS)
    def test_every_distribution_synthesizes(self, dist):
        cfg = ConvConfig(1, 2, 2, 8, 8, m=2, distribution=dist, seed=5)
        x, w = make_inputs(cfg)
        assert x.shape == (1, 2, 8, 8)
        assert w.shape == (2, 2, 3, 3)
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(w))

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            ConvConfig(1, 2, 2, 8, 8, distribution="bogus")

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            ConvConfig(1, 2, 2, 2, 2, padding=0)


class TestShapeClasses:
    def test_pointwise(self):
        assert shape_class(ConvConfig(1, 2, 2, 3, 3, m=2)) == "pointwise_out"

    def test_subtile(self):
        assert shape_class(ConvConfig(1, 2, 2, 5, 5, m=4)) == "subtile"

    def test_unit_channels(self):
        assert shape_class(ConvConfig(1, 1, 4, 8, 8, m=2)) == "unit_channels"

    def test_odd_padded(self):
        assert shape_class(ConvConfig(1, 2, 2, 7, 7, m=2, padding=1)) == "odd_padded"

    def test_general(self):
        assert shape_class(ConvConfig(1, 2, 2, 8, 8, m=2, padding=1)) == "general"


class TestEdgeEnumeration:
    def test_covers_every_class_per_tile_size(self):
        configs = enumerate_edge_configs()
        for m in TILE_SIZES:
            classes = {shape_class(c) for c in configs if c.m == m}
            assert {"pointwise_out", "subtile", "odd_padded",
                    "unit_channels", "general"} <= classes

    def test_algorithm_list_is_complete(self):
        from repro.conv.api import Algorithm
        from typing import get_args

        assert set(ALL_ALGORITHMS) == set(get_args(Algorithm))


class TestShrinkCandidates:
    def test_candidates_are_valid_and_smaller(self):
        cfg = ConvConfig(2, 8, 8, 14, 14, m=4, padding=2,
                         distribution="outlier", seed=9)
        cands = list(shrink_candidates(cfg))
        assert cands, "a large config must have reductions"
        for cand in cands:
            assert cand != cfg
            assert cand.out_h >= 1 and cand.out_w >= 1

    def test_minimal_config_has_no_candidates(self):
        cfg = ConvConfig(1, 1, 1, 3, 3, m=2, padding=0,
                         distribution="gauss", seed=0)
        assert list(shrink_candidates(cfg)) == []


class TestSerialization:
    def test_round_trip(self):
        for cfg in generate_configs(10, seed=13):
            assert config_from_dict(config_to_dict(cfg)) == cfg
