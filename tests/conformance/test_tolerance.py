"""The analytic tolerance model: exactness flags, ordering, stress."""

import pytest

from repro.conformance import ConvConfig, hard_budget, tolerance_for


def _cfg(m=2, dist="relu_gauss"):
    return ConvConfig(1, 4, 4, 12, 12, m=m, padding=1, distribution=dist)


class TestFp32Paths:
    @pytest.mark.parametrize("algo", ["fp32_direct", "fp32_winograd"])
    def test_exact(self, algo):
        tol = tolerance_for(algo, _cfg())
        assert tol.exact
        assert tol.rel_rms_budget <= 1e-9

    def test_oracle_budget_tightest(self):
        assert hard_budget("fp32_direct", _cfg()) < hard_budget("fp32_winograd", _cfg())


class TestInt8Ordering:
    def test_upcast_matches_direct(self):
        """Up-cast transforms are exact integer arithmetic: same budget."""
        assert hard_budget("int8_upcast", _cfg()) == hard_budget("int8_direct", _cfg())

    @pytest.mark.parametrize("m", [2, 4])
    def test_downscale_worst(self, m):
        cfg = _cfg(m=m)
        assert hard_budget("int8_downscale", cfg) >= hard_budget("lowino", cfg)
        assert hard_budget("int8_downscale", cfg) >= hard_budget("int8_direct", cfg)

    def test_downscale_collapses_with_tile_size(self):
        """F(4,3) down-scaling leaves ~2.5 quantization levels (Fig. 9)."""
        assert hard_budget("int8_downscale", _cfg(m=4)) > 4 * hard_budget(
            "int8_downscale", _cfg(m=2)
        )

    def test_lowino_budget_far_below_downscale_f43(self):
        """The paper's core claim, as a machine-checked inequality."""
        assert hard_budget("lowino", _cfg(m=4)) < 0.5 * hard_budget(
            "int8_downscale", _cfg(m=4)
        )


class TestDistributionStress:
    @pytest.mark.parametrize("dist", ["sparse", "outlier"])
    def test_stressed_distributions_widen_budget(self, dist):
        assert hard_budget("lowino", _cfg(dist=dist)) > hard_budget("lowino", _cfg())

    def test_fp32_budgets_ignore_distribution(self):
        assert hard_budget("fp32_winograd", _cfg(dist="outlier")) == hard_budget(
            "fp32_winograd", _cfg()
        )


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        tolerance_for("magic", _cfg())
