"""Figure 10 breakdown structure."""

import pytest

from repro.perf import breakdown, figure10_breakdowns, plan_lowino
from repro.workloads import BREAKDOWN_LAYERS, layer_by_name


class TestBreakdown:
    def test_split_sums_to_total(self):
        layer = layer_by_name("VGG16_b")
        plan = plan_lowino(layer, 2)
        bd = breakdown(plan)
        assert bd.total == pytest.approx(plan.total_time())

    @pytest.mark.parametrize("name", BREAKDOWN_LAYERS)
    def test_lowino_transform_larger_gemm_smaller(self, name):
        """The paper's Figure 10 analysis: LoWino reads FP32 inputs (4x
        transform traffic) but wins the multiplication stage."""
        bd = figure10_breakdowns(layer_by_name(name))
        assert bd["lowino"].transformation > bd["onednn_wino"].transformation
        assert bd["lowino"].multiplication < bd["onednn_wino"].multiplication

    def test_transform_share_reasonable(self):
        """Transforms are a minority share on compute-heavy layers."""
        bd = figure10_breakdowns(layer_by_name("VGG16_b"))["lowino"]
        assert bd.transformation < bd.multiplication
