"""Execution plans: structure and the Figure 8 shape criteria.

These tests encode DESIGN.md's acceptance criteria for the performance
reproduction: aggregate speedup bands and the specific per-layer
crossovers Section 5.1 calls out.
"""

import numpy as np
import pytest

from repro.experiments import run_figure8
from repro.perf import ALL_PLANS, CASCADE_LAKE_8C, plan_lowino, predict_layer_times
from repro.workloads import TABLE2_LAYERS, layer_by_name


@pytest.fixture(scope="module")
def figure8():
    return run_figure8()


class TestPlanStructure:
    def test_all_plans_produce_positive_times(self):
        layer = layer_by_name("ResNet-50_b")
        times = predict_layer_times(layer)
        assert set(times) == set(ALL_PLANS)
        assert all(t > 0 for t in times.values())

    def test_lowino_stage_names(self):
        plan = plan_lowino(layer_by_name("VGG16_c"), 4)
        assert [s.name for s in plan.stages] == [
            "input_transform", "gemm", "output_transform",
        ]

    def test_more_cores_faster(self):
        layer = layer_by_name("VGG16_b")
        t1 = predict_layer_times(layer, cores=1)["lowino_f4"]
        t8 = predict_layer_times(layer, cores=8)["lowino_f4"]
        assert t8 < t1
        assert t1 / t8 > 3  # decent scaling on a big layer

    def test_blocking_recorded_in_meta(self):
        plan = plan_lowino(layer_by_name("VGG16_b"), 4)
        assert "blocking" in plan.meta

    def test_f4_fewer_gemm_cycles_than_f2_on_big_layer(self):
        layer = layer_by_name("VGG16_b")
        f2 = plan_lowino(layer, 2).stage_times()["gemm"]
        f4 = plan_lowino(layer, 4).stage_times()["gemm"]
        assert f4 < f2


class TestFigure8Shape:
    def test_average_speedup_band(self, figure8):
        """Paper: 1.26x average over the best oneDNN implementation."""
        assert 1.1 <= figure8.average_speedup <= 1.7

    def test_max_speedup_band(self, figure8):
        """Paper: up to 2.04x."""
        assert 1.8 <= figure8.max_speedup <= 2.6

    def test_lowino_f2_competitive_with_onednn_wino(self, figure8):
        """Section 5.1 observation 1: F(2,3) LoWino is competitive."""
        ratios = [row.times["onednn_wino"] / row.times["lowino_f2"]
                  for row in figure8.rows]
        assert 0.85 <= float(np.mean(ratios)) <= 1.4

    def test_lowino_f4_usually_best(self, figure8):
        """Section 5.1 observation 2: F(4,3) is usually the best
        performer."""
        wins = sum(
            row.times["lowino_f4"] <= min(row.times["onednn_direct"],
                                          row.times["onednn_wino"],
                                          row.times["lowino_f2"]) * 1.001
            for row in figure8.rows
        )
        assert wins >= len(figure8.rows) // 2

    def test_resnet50a_crossover(self):
        """Section 5.1: on ResNet-50_a, F(2,3) Winograd (ours included)
        is slower than direct convolution, and our F(4,3) fixes it."""
        times = predict_layer_times(layer_by_name("ResNet-50_a"))
        assert times["onednn_direct"] < times["lowino_f2"]
        assert times["lowino_f4"] < times["onednn_direct"]

    def test_yolov3a_direct_wins(self):
        """Section 5.1: on YOLOv3_a direct convolution outperforms
        F(4,3) (transform overhead exceeds the compute savings)."""
        times = predict_layer_times(layer_by_name("YOLOv3_a"))
        assert times["onednn_direct"] < times["lowino_f4"]

    def test_winograd_not_always_better_than_direct(self, figure8):
        """Section 5.1 observation 3."""
        direct_wins = sum(
            row.times["onednn_direct"] < row.times["onednn_wino"]
            for row in figure8.rows
        )
        assert 1 <= direct_wins < len(figure8.rows)

    def test_fp32_speedups_band(self, figure8):
        """Paper: 1.9x / 2.6x average over the best FP32 implementation."""
        fp32 = figure8.fp32_speedups()
        assert 1.3 <= fp32["lowino_f2"] <= 2.3
        assert 1.9 <= fp32["lowino_f4"] <= 3.2
        assert fp32["lowino_f4"] > fp32["lowino_f2"]
