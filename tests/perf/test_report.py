"""Execution-plan reports."""

from repro.perf import format_plan, layer_report, plan_lowino
from repro.workloads import layer_by_name


class TestReport:
    def test_format_plan_contents(self):
        plan = plan_lowino(layer_by_name("VGG16_c"), 4)
        text = format_plan(plan)
        assert "lowino_f4 on VGG16_c" in text
        assert "batched GEMM: T=36" in text
        assert "blocking:" in text
        assert "gemm" in text
        assert "total" in text

    def test_layer_report_all_impls(self):
        text = layer_report(layer_by_name("YOLOv3_c"))
        for impl in ("onednn_direct", "onednn_wino", "lowino_f2", "lowino_f4"):
            assert impl in text
        assert "static schedule" in text

    def test_report_cores_parameter(self):
        a = layer_report(layer_by_name("YOLOv3_c"), cores=1, impls=["lowino_f2"])
        b = layer_report(layer_by_name("YOLOv3_c"), cores=8, impls=["lowino_f2"])
        assert "1 cores" in a and "8 cores" in b

    def test_bound_labels_match_paper_story(self):
        """Transforms memory-bound, GEMM compute-bound on big layers
        (Section 4's framing)."""
        plan = plan_lowino(layer_by_name("VGG16_b"), 2)
        text = format_plan(plan)
        gemm_line = next(l for l in text.splitlines() if l.strip().startswith("gemm"))
        assert "compute-bound" in gemm_line
