"""Runtime engine vs reference layers: bit-for-bit over the edge grid.

The vectorized engine replaces per-tile / per-task Python loops with
whole-tensor BLAS calls; its contract is *exact* agreement with the
reference implementations (transform batching and the float-GEMM trick
are bitwise-stable, see DESIGN.md).  This suite pins that contract over
the same edge-geometry grid the PR 1 conformance harness sweeps: 1x1
outputs, sub-tile outputs, odd padded shapes, unit channels, and plain
interior shapes, for every algorithm and both tile sizes.
"""

import numpy as np
import pytest

from repro.conformance.space import enumerate_edge_configs, make_inputs
from repro.runtime import ExecutionEngine, PlanCache
from repro.runtime.bench import REFERENCE_ALGORITHMS
from repro.runtime.plan import ALGORITHMS

pytestmark = pytest.mark.perf

EDGE_CONFIGS = enumerate_edge_configs()


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine(cache=PlanCache(capacity=512))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("config", EDGE_CONFIGS, ids=lambda c: c.describe())
def test_engine_matches_reference_layer(engine, algorithm, config):
    """Engine output is bitwise identical to the reference layer call."""
    x, w = make_inputs(config)
    layer = engine.layer(w, algorithm, m=config.m, padding=config.padding)
    np.testing.assert_array_equal(layer(x), layer.reference(x))


@pytest.mark.parametrize("algorithm", REFERENCE_ALGORITHMS)
@pytest.mark.parametrize("config", EDGE_CONFIGS, ids=lambda c: c.describe())
def test_engine_matches_loop_reference(engine, algorithm, config):
    """Engine output is bitwise identical to the per-tile loop path."""
    x, w = make_inputs(config)
    layer = engine.layer(w, algorithm, m=config.m, padding=config.padding)
    np.testing.assert_array_equal(layer(x), layer.reference.reference_forward(x))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_scratch_reuse_is_bitwise_stable(engine, algorithm):
    """Repeat calls through cached scratch reproduce the first result,
    and match an engine that allocates fresh buffers every call."""
    config = EDGE_CONFIGS[-1]  # multi-tile interior shape
    x, w = make_inputs(config)
    layer = engine.layer(w, algorithm, m=config.m, padding=config.padding)
    first = layer(x).copy()
    np.testing.assert_array_equal(layer(x), first)
    fresh = ExecutionEngine(cache=PlanCache(capacity=8), use_scratch=False)
    np.testing.assert_array_equal(
        fresh.layer(w, algorithm, m=config.m, padding=config.padding)(x), first
    )


def test_lowino_f64_fallback_matches_reference(engine):
    """Layers wider than the f32 exactness bound use the f64 GEMM and
    still agree bitwise with the loop reference."""
    from repro.runtime.plan import LOWINO_F32_MAX_C

    c = LOWINO_F32_MAX_C + 2
    rng = np.random.default_rng(7)
    x = np.maximum(rng.standard_normal((1, c, 6, 6)), 0.0)
    w = rng.standard_normal((3, c, 3, 3)) * np.sqrt(2.0 / (9 * c))
    layer = engine.layer(w, "lowino", m=2, padding=1)
    assert "u_f64" in layer.plan.operands and "u_f32" not in layer.plan.operands
    np.testing.assert_array_equal(layer(x), layer.reference.reference_forward(x))
