"""Machine model: peak ratios and roofline stage timing."""

import pytest

from repro.perf import CASCADE_LAKE_8C, MachineModel, StageCost


class TestPeaks:
    def test_int8_is_4x_fp32(self):
        """Figure 1: vpdpbusd delivers 4x peak over FP32."""
        m = CASCADE_LAKE_8C
        assert m.int8_macs_per_cycle == 4 * m.fp32_macs_per_cycle

    def test_int16_is_2x_fp32(self):
        m = CASCADE_LAKE_8C
        assert m.int16_macs_per_cycle == 2 * m.fp32_macs_per_cycle

    def test_seconds(self):
        m = CASCADE_LAKE_8C
        assert m.seconds(3e9, cores=1) == pytest.approx(1.0)
        assert m.seconds(3e9, cores=8) == pytest.approx(1 / 8)

    def test_dram_seconds(self):
        assert CASCADE_LAKE_8C.dram_seconds(100e9) == pytest.approx(1.0)


class TestStageCost:
    def test_compute_bound(self):
        m = CASCADE_LAKE_8C
        stage = StageCost(name="x", cycles=24e9, dram_bytes=1.0)
        assert stage.bound(m) == "compute"
        assert stage.time(m) == pytest.approx(1.0 + m.stage_overhead_s)

    def test_memory_bound(self):
        m = CASCADE_LAKE_8C
        stage = StageCost(name="x", cycles=1.0, dram_bytes=100e9)
        assert stage.bound(m) == "memory"
        assert stage.time(m) == pytest.approx(1.0 + m.stage_overhead_s)

    def test_l2_bound(self):
        m = CASCADE_LAKE_8C
        l2_bw = m.cores * m.l2_bytes_per_cycle * m.freq_ghz * 1e9
        stage = StageCost(name="x", cycles=1.0, dram_bytes=1.0, l2_bytes=l2_bw)
        assert stage.bound(m) == "l2"
        assert stage.time(m) == pytest.approx(1.0 + m.stage_overhead_s)

    def test_balance_factor_scales_compute(self):
        m = CASCADE_LAKE_8C
        a = StageCost(name="x", cycles=24e9, dram_bytes=0.0, balance=1.0)
        b = StageCost(name="x", cycles=24e9, dram_bytes=0.0, balance=1.5)
        assert b.time(m) / a.time(m) == pytest.approx(1.5, rel=1e-3)

    def test_fewer_cores_slower(self):
        stage = StageCost(name="x", cycles=24e9, dram_bytes=0.0)
        assert stage.time(CASCADE_LAKE_8C, cores=1) > stage.time(CASCADE_LAKE_8C, cores=8)

    def test_custom_machine(self):
        slow = MachineModel(name="slow", cores=1, freq_ghz=1.0, dram_bw=1e9)
        stage = StageCost(name="x", cycles=1e9, dram_bytes=0.0)
        assert stage.time(slow) == pytest.approx(1.0 + slow.stage_overhead_s)
