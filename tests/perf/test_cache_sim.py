"""Cache simulation: validating the Section 4.3 blocking claims."""

import numpy as np
import pytest

from repro.gemm import BlockingParams
from repro.layout import CACHE_LINE_BYTES
from repro.perf.cache_sim import (
    CacheStats,
    SetAssociativeCache,
    gemm_access_trace,
    simulate_gemm_cache,
)


class TestCacheModel:
    def test_compulsory_miss_then_hit(self):
        cache = SetAssociativeCache(8 * 1024, ways=8)
        assert cache.access_line(5) is False
        assert cache.access_line(5) is True

    def test_lru_eviction(self):
        # Direct construction: 2 sets x 2 ways, 64B lines -> 256 B.
        cache = SetAssociativeCache(256, ways=2)
        assert cache.sets == 2
        # Lines 0, 2, 4 all map to set 0; capacity 2.
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)  # refresh 0; LRU is now 2
        cache.access_line(4)  # evicts 2
        assert cache.access_line(0) is True
        assert cache.access_line(2) is False  # was evicted

    def test_access_range_counts_lines(self):
        cache = SetAssociativeCache(8 * 1024, ways=8)
        stats = CacheStats()
        cache.access_range(0, 3 * CACHE_LINE_BYTES, stats)
        assert stats.accesses == 3
        cache.access_range(0, 3 * CACHE_LINE_BYTES, stats)
        assert stats.hits == 3

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, ways=8)


class TestTrace:
    def test_trace_covers_all_operands(self):
        params = BlockingParams(n_blk=12, c_blk=8, k_blk=64, row_blk=6, col_blk=4)
        ops = {op for op, _, _ in gemm_access_trace(params, 1, 12, 8, 64)}
        assert ops == {"v", "u", "z"}

    def test_trace_volume_scales_with_reuse(self):
        """More K blocks -> the V panel is traversed more times."""
        base = BlockingParams(n_blk=12, c_blk=8, k_blk=128, row_blk=6, col_blk=4)
        split = BlockingParams(n_blk=12, c_blk=8, k_blk=64, row_blk=6, col_blk=4)
        v_base = sum(nb for op, _, nb in gemm_access_trace(base, 1, 24, 8, 128)
                     if op == "v")
        v_split = sum(nb for op, _, nb in gemm_access_trace(split, 1, 24, 8, 128)
                      if op == "v")
        assert v_split == 2 * v_base


class TestPaperClaims:
    def test_resident_u_panel_has_compulsory_misses_only(self):
        """Section 4.3.1: 'the matrix u ... can be held in L2 cache
        during the multiplication process'.  When C_blk * K_blk fits,
        the only u misses are first-touch misses."""
        params = BlockingParams(n_blk=12, c_blk=32, k_blk=64, row_blk=6, col_blk=4)
        cache = SetAssociativeCache(64 * 1024, ways=16)  # u panel: 2 KiB
        stats = simulate_gemm_cache(params, t=1, n=96, c=32, k=64, cache=cache)
        unique_u_lines = 32 * 64 // CACHE_LINE_BYTES
        assert stats["u"].misses == unique_u_lines

    def test_oversized_u_panel_thrashes(self):
        """With the L2 constraint violated, u is re-fetched per N pass."""
        params = BlockingParams(n_blk=12, c_blk=256, k_blk=256, row_blk=6, col_blk=4)
        cache = SetAssociativeCache(32 * 1024, ways=16)  # u panel: 64 KiB >> cache
        stats = simulate_gemm_cache(params, t=1, n=96, c=256, k=256, cache=cache)
        unique_u_lines = 256 * 256 // CACHE_LINE_BYTES
        n_passes = 96 // params.n_blk
        assert stats["u"].misses > 0.9 * unique_u_lines * n_passes

    def test_z_buffer_resident_across_c_passes(self):
        """Section 4.3.1: the accumulation buffer 'stays in L2 cache
        until all the computations ... are completed'."""
        params = BlockingParams(n_blk=12, c_blk=8, k_blk=64, row_blk=6, col_blk=4)
        cache = SetAssociativeCache(256 * 1024, ways=16)
        stats = simulate_gemm_cache(params, t=1, n=12, c=32, k=64, cache=cache)
        z_lines = 12 * 64 * 4 // CACHE_LINE_BYTES
        # 4 C passes touch z; only the first misses.
        assert stats["z"].misses == z_lines
        assert stats["z"].hits == 3 * z_lines

    def test_good_blocking_fewer_misses_than_hostile(self):
        """Aggregate DRAM traffic (misses) of sane vs pessimal blocking
        on a problem larger than the cache."""
        good = BlockingParams(n_blk=48, c_blk=64, k_blk=128, row_blk=6, col_blk=4)
        bad = BlockingParams(n_blk=6, c_blk=4, k_blk=16, row_blk=6, col_blk=1)
        t, n, c, k = 2, 192, 128, 256

        def misses(params):
            # 32 KiB: smaller than the per-t working set, so capacity
            # effects (not just compulsory misses) are visible.
            cache = SetAssociativeCache(32 * 1024, ways=16)
            stats = simulate_gemm_cache(params, t, n, c, k, cache=cache)
            return sum(s.misses for s in stats.values())

        assert misses(bad) > 1.5 * misses(good)
