"""Wall-clock measurement harness."""

import time

import pytest

from repro.perf import Measurement, compare, measure


class TestMeasure:
    def test_basic_statistics(self):
        m = measure(lambda: sum(range(1000)), name="sum", warmup=1, runs=10)
        assert isinstance(m, Measurement)
        assert m.runs == 10
        assert m.min_s <= m.mean_s
        assert m.std_s >= 0

    def test_warmup_runs_before_timing(self):
        calls = []
        measure(lambda: calls.append(1), warmup=3, runs=5)
        assert len(calls) == 8

    def test_time_budget_caps_runs(self):
        m = measure(lambda: time.sleep(0.02), warmup=0, runs=1000,
                    max_seconds=0.1)
        assert 3 <= m.runs < 1000

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            measure(lambda: None, runs=0)


class TestCompare:
    def test_speedups_relative_to_baseline(self):
        def slow():
            time.sleep(0.003)

        def fast():
            time.sleep(0.001)

        out = compare({"slow": slow, "fast": fast}, baseline="slow",
                      warmup=0, runs=5)
        assert out["slow"] == pytest.approx(1.0)
        assert out["fast"] > 1.5

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            compare({"a": lambda: None}, baseline="b")
