"""Command-line interface: every subcommand's --help plus a happy path."""

import json

import pytest

from repro.cli import build_parser, main

SUBCOMMANDS = [
    "figure8",
    "figure9",
    "figure10",
    "table3",
    "ablation",
    "reproduce",
    "plan",
    "selftest",
    "conformance",
    "bench",
    "profile",
    "serve-bench",
    "load-bench",
    "tune",
]


class TestHelp:
    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for cmd in SUBCOMMANDS:
            assert cmd in out

    @pytest.mark.parametrize("cmd", SUBCOMMANDS)
    def test_subcommand_help(self, cmd, capsys):
        with pytest.raises(SystemExit) as exc:
            main([cmd, "--help"])
        assert exc.value.code == 0
        assert f"repro {cmd}" in capsys.readouterr().out


class TestHappyPaths:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_figure8(self, capsys):
        assert main(["figure8", "--cores", "4"]) == 0
        assert "VGG16" in capsys.readouterr().out

    def test_figure9(self, capsys):
        assert main(["figure9", "--layer", "GoogLeNet_c", "--m", "4"]) == 0
        assert "distinct levels" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        assert "VGG16_b" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--layer", "GoogLeNet_c"]) == 0
        out = capsys.readouterr().out
        assert "lowino_f4" in out
        assert "mixed" in out

    def test_plan(self, capsys):
        assert main(["plan", "VGG16_b", "--cores", "4"]) == 0
        assert "VGG16_b" in capsys.readouterr().out

    @pytest.mark.slow
    def test_reproduce_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["reproduce", "--out", str(out_file)]) == 0
        assert out_file.is_file()
        assert "Figure 8" in out_file.read_text()

    @pytest.mark.slow
    def test_table3_tiny(self, capsys):
        assert main(["table3", "--eval-images", "8", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "LoWino" in out

    @pytest.mark.conformance
    def test_conformance_gate_small_population(self, capsys):
        """A subset of the golden population must stay within budgets."""
        assert main(["conformance", "--cases", "5"]) == 0
        out = capsys.readouterr().out
        assert "conformance gate: PASS" in out
        for algo in ("lowino", "int8_downscale", "fp32_winograd"):
            assert algo in out

    @pytest.mark.conformance
    def test_conformance_update_golden_round_trip(self, tmp_path, capsys):
        assert main([
            "conformance", "--cases", "3", "--golden-dir", str(tmp_path),
            "--update-golden",
        ]) == 0
        files = sorted(tmp_path.glob("conformance_*.json"))
        assert len(files) == 6
        payload = json.loads(files[0].read_text())
        assert payload["format_version"] == 1
        capsys.readouterr()
        # Gating the identical run against the fresh golden passes.
        assert main(["conformance", "--cases", "3",
                     "--golden-dir", str(tmp_path)]) == 0
        assert "conformance gate: PASS" in capsys.readouterr().out

    def test_conformance_rejects_unknown_algorithm(self, capsys):
        assert main(["conformance", "--cases", "1",
                     "--algorithms", "magic"]) == 2

    def test_bench_tiny_run(self, capsys):
        assert main(["bench", "--quick", "--layers", "ResNet-50_c",
                     "--repeats", "1", "--algorithms", "fp32_direct,lowino",
                     "--no-reference", "--no-models", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-50_c" in out
        assert "geomean speedup vs fp32_direct" in out
        assert "plan cache:" in out and "hits=" in out

    def test_bench_model_cases(self, capsys):
        assert main(["bench", "--quick", "--layers", "ResNet-50_c",
                     "--repeats", "1", "--algorithms", "fp32_direct",
                     "--no-reference", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "model compiled vs eager" in out
        assert "vgg/lowino" in out
        assert "model cache [" in out

    def test_bench_no_models_skips_table(self, capsys):
        assert main(["bench", "--quick", "--layers", "ResNet-50_c",
                     "--repeats", "1", "--algorithms", "fp32_direct",
                     "--no-reference", "--no-models"]) == 0
        assert "model compiled vs eager" not in capsys.readouterr().out

    def test_bench_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # A wide gate: this exercises the baseline round trip, not timing
        # stability (a 1-repeat run on a tiny layer is all noise).
        common = ["bench", "--quick", "--layers", "ResNet-50_c",
                  "--repeats", "1", "--algorithms", "fp32_direct,lowino",
                  "--no-reference", "--no-models", "--gate", "0.95",
                  "--baseline", str(baseline)]
        assert main(common + ["--update-baseline"]) == 0
        assert baseline.is_file()
        capsys.readouterr()
        # Gating a re-run against the fresh baseline passes.
        assert main(common) == 0
        assert "bench gate: PASS" in capsys.readouterr().out

    def test_bench_missing_baseline(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--layers", "ResNet-50_c",
                     "--repeats", "1", "--algorithms", "fp32_direct",
                     "--no-reference", "--no-models",
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_bench_rejects_unknown_algorithm(self, capsys):
        assert main(["bench", "--quick", "--algorithms", "magic"]) == 2

    def test_bench_rejects_unknown_layer(self, capsys):
        assert main(["bench", "--quick", "--layers", "NoSuchNet_z"]) == 2

    def test_serve_bench_tiny_run(self, tmp_path, capsys):
        out_file = tmp_path / "serve.json"
        # Gate 0: a tiny 2-thread CI run only checks bit-identity and
        # plumbing; the real >=1.5x throughput gate runs on the default
        # sweep.
        assert main(["serve-bench", "--threads", "1,2", "--requests", "2",
                     "--width", "8", "--hw", "8", "--m", "2",
                     "--gate", "0", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "bit-identity vs serial eager: yes" in out
        assert "serve gate: PASS" in out
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == 1
        assert doc["summary"]["exact"] is True

    def test_profile_tiny_run(self, tmp_path, capsys):
        out_file = tmp_path / "profile.json"
        assert main(["profile", "--model", "vgg", "--algorithm", "lowino",
                     "--hw", "8", "--width", "8", "--m", "2",
                     "--runs", "1", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "input_transform" in out and "gemm" in out
        assert "vs step timings" in out  # tracer/step agreement line
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == 1
        assert doc["stage_totals"]["gemm"] > 0
        assert set(doc["breakdown"]) == set(doc["layer_timings"])

    def test_serve_bench_rejects_bad_threads(self, capsys):
        assert main(["serve-bench", "--threads", "1,zero"]) == 2
        assert main(["serve-bench", "--threads", "0"]) == 2

    def test_serve_bench_persists_json_by_default(self, tmp_path, capsys,
                                                  monkeypatch):
        """Without --out the document lands under benchmarks/ (the serve
        perf trajectory is on by default, not opt-in)."""
        monkeypatch.chdir(tmp_path)
        assert main(["serve-bench", "--threads", "1,2", "--requests", "2",
                     "--width", "8", "--hw", "8", "--m", "2",
                     "--gate", "0"]) == 0
        out = capsys.readouterr().out
        default = tmp_path / "benchmarks" / "BENCH_serve_threads.json"
        assert f"wrote {default.relative_to(tmp_path)}" in out
        assert json.loads(default.read_text())["schema"] == 1

    def test_serve_bench_no_out_skips_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["serve-bench", "--threads", "1", "--requests", "2",
                     "--width", "8", "--hw", "8", "--m", "2",
                     "--gate", "0", "--no-out"]) == 0
        assert not (tmp_path / "benchmarks").exists()

    def test_serve_bench_procs_tiny_run(self, tmp_path, capsys):
        """--procs switches to the multi-process sweep: worker processes,
        bit-identity on every count, selection convergence."""
        out_file = tmp_path / "procs.json"
        assert main(["serve-bench", "--procs", "1,2", "--clients", "2",
                     "--requests", "2", "--width", "8", "--hw", "8",
                     "--m", "2", "--gate", "0", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Multi-process serving benchmark" in out
        assert "bit-identity vs serial eager: yes" in out
        assert "cross-process selection convergence: yes" in out
        assert "proc gate: PASS" in out
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == 1
        assert [e["procs"] for e in doc["results"]] == [1, 2]
        assert doc["summary"]["exact"] is True
        assert doc["summary"]["selection_converged"] is True

    def test_serve_bench_procs_baseline_round_trip(self, tmp_path, capsys,
                                                   monkeypatch):
        """--update-baseline regenerates the committed document and a
        second run ratio-gates against it."""
        monkeypatch.chdir(tmp_path)
        args = ["serve-bench", "--procs", "1,2", "--clients", "2",
                "--requests", "2", "--width", "8", "--hw", "8", "--m", "2",
                "--gate", "0", "--no-proc-wisdom",
                # Tiny single-host runs are noisy; this test checks the
                # plumbing, not the ratio itself.
                "--speedup-tolerance", "0.05"]
        assert main(args + ["--update-baseline"]) == 0
        capsys.readouterr()
        baseline = tmp_path / "benchmarks" / "BENCH_serve_procs.json"
        assert json.loads(baseline.read_text())["schema"] == 1
        # A plain run does NOT clobber the committed baseline...
        assert main(args + ["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baseline ratio" in out
        assert json.loads(baseline.read_text())["schema"] == 1

    def test_serve_bench_procs_rejects_bad_lists_and_baseline(self, tmp_path,
                                                              capsys):
        assert main(["serve-bench", "--procs", "1,zero"]) == 2
        assert main(["serve-bench", "--procs", "0"]) == 2
        assert main(["serve-bench", "--procs", "1",
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_load_bench_run_and_baseline_round_trip(self, tmp_path, capsys,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "serve_baseline.json"
        args = ["load-bench", "--single-tenant", "--horizon", "0.4",
                "--rate", "20", "--overload-rate", "250"]
        # First run: default persistence + record the baseline.
        assert main(args + ["--baseline", str(baseline),
                            "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "load-bench" not in out  # table, not argparse usage
        default = tmp_path / "benchmarks" / "BENCH_serve_quick.json"
        doc = json.loads(default.read_text())
        assert doc["schema"] == 1
        assert doc["summary"]["exact"] is True
        assert doc["summary"]["deterministic_outputs"] is True
        assert baseline.is_file()
        # Second run, same seed: schedule digests match the baseline and
        # every gate (identity, sheds, p95 factor) passes.
        assert main(args + ["--no-out", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "bit-identity vs serial eager: yes" in out
        assert "load gate: PASS" in out

    def test_load_bench_missing_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["load-bench", "--single-tenant", "--horizon", "0.2",
                     "--rate", "15", "--overload-rate", "200", "--no-out",
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_tune_wisdom_round_trip(self, tmp_path, capsys):
        wisdom = tmp_path / "wisdom.json"
        out_file = tmp_path / "tune.json"
        baseline = tmp_path / "BENCH_tuning.json"
        args = ["tune", "--width", "8", "--hw", "8", "--batch", "1",
                "--repeats", "1", "--wisdom", str(wisdom),
                "--out", str(out_file)]
        # First run measures every geometry and records the baseline.
        assert main(args + ["--baseline", str(baseline),
                            "--update-baseline"]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == 1
        assert doc["deterministic"] is True
        assert doc["summary"]["measured"] == doc["summary"]["geometries"]
        assert all(r["selected_vs_static"] >= 1.0 for r in doc["geometries"])
        capsys.readouterr()
        # Second run answers everything from the shared wisdom file and
        # passes the gate against the recorded baseline.
        assert main(args + ["--baseline", str(baseline)]) == 0
        assert "tune gate: PASS" in capsys.readouterr().out
        doc2 = json.loads(out_file.read_text())
        assert doc2["summary"]["measured"] == 0
        assert doc2["summary"]["from_wisdom"] == doc2["summary"]["geometries"]
        assert [r["selected"] for r in doc2["geometries"]] == \
            [r["selected"] for r in doc["geometries"]]

    def test_tune_missing_baseline(self, tmp_path, capsys):
        assert main(["tune", "--width", "8", "--hw", "8", "--batch", "1",
                     "--repeats", "1",
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_bench_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--layers", "ResNet-50_c",
                     "--repeats", "1", "--algorithms", "fp32_direct,lowino",
                     "--no-reference", "--no-models", "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == 1
        assert doc["layers"][0]["name"] == "ResNet-50_c"


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
