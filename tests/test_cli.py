"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_figure9(self, capsys):
        assert main(["figure9", "--layer", "GoogLeNet_c", "--m", "4"]) == 0
        assert "distinct levels" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        assert "VGG16_b" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--layer", "GoogLeNet_c"]) == 0
        out = capsys.readouterr().out
        assert "lowino_f4" in out
        assert "mixed" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
