"""Edge cases and failure injection across the whole pipeline."""

import numpy as np
import pytest

from repro.conv import (
    DownscaleWinogradConv2d,
    Int8DirectConv2d,
    UpcastWinogradConv2d,
    direct_conv2d_fp32,
)
from repro.core import LoWinoConv2d
from repro.quant import QuantParams, WinogradDomainCalibrator
from repro.winograd import winograd_algorithm, winograd_conv2d_fp32


ALL_LAYER_CLASSES = [
    lambda w: Int8DirectConv2d(w, padding=1),
    lambda w: UpcastWinogradConv2d(w, m=2, padding=1),
    lambda w: DownscaleWinogradConv2d(w, m=2, padding=1),
    lambda w: LoWinoConv2d(w, m=2, padding=1),
]


class TestDegenerateShapes:
    @pytest.mark.parametrize("make", ALL_LAYER_CLASSES)
    def test_single_channel_single_filter(self, make, rng):
        w = rng.standard_normal((1, 1, 3, 3)) * 0.5
        x = np.maximum(rng.standard_normal((1, 1, 6, 6)), 0)
        y = make(w)(x)
        ref = direct_conv2d_fp32(x, w, padding=1)
        assert y.shape == ref.shape
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("make", ALL_LAYER_CLASSES)
    def test_minimal_spatial_size(self, make, rng):
        """3x3 input with padding 1: exactly one Winograd tile row."""
        w = rng.standard_normal((2, 2, 3, 3)) * 0.5
        x = np.maximum(rng.standard_normal((1, 2, 3, 3)), 0)
        y = make(w)(x)
        assert y.shape == (1, 2, 3, 3)

    def test_batch_of_one_pixel_outputs(self, rng):
        """Input exactly the filter size (VALID output is 1x1)."""
        w = rng.standard_normal((2, 2, 3, 3))
        x = rng.standard_normal((2, 2, 3, 3))
        y = LoWinoConv2d(w, m=2, padding=0)(x)
        ref = direct_conv2d_fp32(x, w)
        assert y.shape == (2, 2, 1, 1)
        assert np.allclose(y, ref, atol=0.25 * np.abs(ref).max() + 1e-6)


class TestDegenerateValues:
    @pytest.mark.parametrize("make", ALL_LAYER_CLASSES)
    def test_all_zero_input(self, make, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        x = np.zeros((1, 2, 8, 8))
        y = make(w)(x)
        assert np.allclose(y, 0.0)

    @pytest.mark.parametrize("make", ALL_LAYER_CLASSES)
    def test_all_zero_filters(self, make, rng):
        w = np.zeros((2, 2, 3, 3))
        x = rng.standard_normal((1, 2, 8, 8))
        y = make(w)(x)
        assert np.allclose(y, 0.0)

    def test_constant_input(self, rng):
        """Constant activations: one quantization level suffices."""
        w = rng.standard_normal((2, 2, 3, 3)) * 0.5
        x = np.full((1, 2, 8, 8), 1.5)
        y = LoWinoConv2d(w, m=4, padding=0)(x)
        ref = direct_conv2d_fp32(x, w)
        # Interior outputs (away from tile padding) are constant.
        assert np.allclose(y, ref, rtol=0.05, atol=0.05 * np.abs(ref).max())

    def test_huge_dynamic_range(self, rng):
        """A 1e6 outlier saturates but does not corrupt the rest."""
        w = rng.standard_normal((2, 2, 3, 3)) * 0.1
        x = np.maximum(rng.standard_normal((1, 2, 12, 12)), 0)
        x[0, 0, 6, 6] = 1e6
        y = LoWinoConv2d(w, m=2, padding=1)(x)
        assert np.all(np.isfinite(y))
        # Far-away outputs unaffected by the outlier's quantization.
        ref = direct_conv2d_fp32(x, w, padding=1)
        far = np.s_[0, :, :2, :2]
        scale = np.abs(ref[far]).max() + 1e-9
        assert np.abs(y[far] - ref[far]).max() / scale < 10.0

    def test_calibration_with_constant_batches(self):
        cal = WinogradDomainCalibrator(positions=16)
        cal.collect(np.full((16, 10, 4), 2.0))
        params = cal.params("kl")
        assert np.all(np.isfinite(params.scale))


class TestApiMisuse:
    def test_wrong_channel_count_at_inference(self, rng):
        layer = LoWinoConv2d(rng.standard_normal((2, 4, 3, 3)), m=2, padding=1)
        with pytest.raises(Exception):
            layer(rng.standard_normal((1, 3, 8, 8)))

    def test_image_smaller_than_filter(self, rng):
        layer = LoWinoConv2d(rng.standard_normal((2, 2, 3, 3)), m=2, padding=0)
        with pytest.raises(ValueError):
            layer(rng.standard_normal((1, 2, 2, 2)))

    def test_m1_degenerates_to_direct(self, rng):
        """F(1,3) is a valid (trivial) Winograd algorithm."""
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        y = winograd_conv2d_fp32(x, w, winograd_algorithm(1, 3))
        assert np.allclose(y, direct_conv2d_fp32(x, w), atol=1e-10)
