"""Cross-module integration: the full LoWino pipeline against ground
truth, implementation orderings, and the blocked execution path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DownscaleWinogradConv2d,
    Int8DirectConv2d,
    LoWinoConv2d,
    UpcastWinogradConv2d,
    direct_conv2d_fp32,
    winograd_algorithm,
    winograd_conv2d_fp32,
)

from tests.rngutil import derive_rng


def _rel_rms(y, ref):
    return float(np.sqrt(np.mean((y - ref) ** 2)) / (ref.std() or 1.0))


class TestFullPipeline:
    @given(
        st.sampled_from([2, 4]),
        st.integers(1, 2),
        st.sampled_from([4, 8, 12]),
        st.sampled_from([8, 11, 16]),
    )
    @settings(max_examples=10)
    def test_lowino_error_envelope_property(self, m, b, c, hw):
        rng = derive_rng(m, b, c, hw)
        x = np.maximum(rng.standard_normal((b, c, hw, hw)), 0)
        w = rng.standard_normal((8, c, 3, 3)) * np.sqrt(2 / (9 * c))
        ref = direct_conv2d_fp32(x, w, padding=1)
        layer = LoWinoConv2d(w, m=m, padding=1)
        assert _rel_rms(layer(x), ref) < (0.06 if m == 2 else 0.25)

    def test_scheme_error_ordering(self, rng):
        """The Section 2.3 story, end to end on one layer:
        upcast == direct-quantization floor, LoWino close behind,
        down-scaling F(4,3) catastrophic."""
        x = np.maximum(rng.standard_normal((2, 16, 16, 16)), 0)
        w = rng.standard_normal((16, 16, 3, 3)) * 0.08
        ref = direct_conv2d_fp32(x, w, padding=1)
        errs = {
            "direct": _rel_rms(Int8DirectConv2d(w, padding=1)(x), ref),
            "upcast2": _rel_rms(UpcastWinogradConv2d(w, m=2, padding=1)(x), ref),
            "lowino2": _rel_rms(LoWinoConv2d(w, m=2, padding=1)(x), ref),
            "lowino4": _rel_rms(LoWinoConv2d(w, m=4, padding=1)(x), ref),
            "down2": _rel_rms(DownscaleWinogradConv2d(w, m=2, padding=1)(x), ref),
            "down4": _rel_rms(DownscaleWinogradConv2d(w, m=4, padding=1)(x), ref),
        }
        assert errs["upcast2"] == pytest.approx(errs["direct"], abs=1e-6)
        assert errs["lowino2"] < errs["down2"]
        assert errs["lowino4"] < errs["down4"] / 3
        assert errs["down4"] > 0.5

    def test_calibrated_lowino_full_flow(self, rng):
        """Calibrate on one distribution, infer on a fresh draw."""
        w = rng.standard_normal((8, 8, 3, 3)) * 0.1
        layer = LoWinoConv2d(w, m=4, padding=1)
        calib = [np.maximum(rng.standard_normal((2, 8, 12, 12)), 0)
                 for _ in range(4)]
        layer.calibrate(calib)
        x = np.maximum(rng.standard_normal((2, 8, 12, 12)), 0)
        ref = direct_conv2d_fp32(x, w, padding=1)
        assert _rel_rms(layer(x), ref) < 0.25

    def test_blocked_and_fast_paths_identical_after_calibration(self, rng):
        w = rng.standard_normal((8, 8, 3, 3)) * 0.1
        calib = [np.maximum(rng.standard_normal((1, 8, 10, 10)), 0)]
        a = LoWinoConv2d(w, m=2, padding=1, use_blocked_gemm=False).calibrate(calib)
        b = LoWinoConv2d(w, m=2, padding=1, use_blocked_gemm=True).calibrate(calib)
        x = np.maximum(rng.standard_normal((1, 8, 10, 10)), 0)
        assert np.array_equal(a(x), b(x))

    def test_fp32_winograd_is_exact_baseline(self, rng):
        """Sanity anchor: every INT8 comparison uses a correct FP32
        reference (Winograd and direct agree)."""
        x = rng.standard_normal((1, 4, 10, 10))
        w = rng.standard_normal((4, 4, 3, 3))
        assert np.allclose(
            winograd_conv2d_fp32(x, w, winograd_algorithm(4, 3)),
            direct_conv2d_fp32(x, w),
            atol=1e-9,
        )

    def test_int32_accumulator_never_overflows_realistic_channels(self, rng):
        """Worst case |vbar|=255, |u|=128: C up to 512 stays within int32
        (the claim made in repro.isa.vnni's docstring)."""
        c = 512
        v = np.full((1, c), 255, dtype=np.uint8)
        u = np.full((c, 1), -128, dtype=np.int8)
        acc = v.astype(np.int64) @ u.astype(np.int64)
        assert np.abs(acc).max() < 2**31
