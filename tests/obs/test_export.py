"""Prometheus text exposition: render, then parse every line back."""

import pytest

from repro.obs.export import parse_prometheus_text, prometheus_text
from repro.obs.metrics import MetricsRegistry, Sample


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", help="requests", model="vgg").inc(5)
    reg.counter("repro_requests_total", help="requests", model="resnet").inc(2)
    reg.gauge("repro_queue_depth", model="vgg").set(3)
    hist = reg.histogram("repro_latency_seconds", help="latency", model="vgg")
    for v in (0.001, 0.002, 0.003, 0.010):
        hist.observe(v)
    reg.register_collector(
        lambda: [
            Sample(
                "repro_stage_seconds_total",
                0.25,
                {"layer": "conv0", "stage": "gemm"},
                "counter",
                "stage seconds",
            )
        ]
    )
    return reg


class TestRoundTrip:
    def test_every_line_parses_and_values_round_trip(self):
        reg = _populated_registry()
        text = prometheus_text(reg)
        doc = parse_prometheus_text(text)  # raises on ANY malformed line

        assert doc.value("repro_requests_total", model="vgg") == 5
        assert doc.value("repro_requests_total", model="resnet") == 2
        assert doc.value("repro_queue_depth", model="vgg") == 3
        assert doc.value("repro_latency_seconds_count", model="vgg") == 4
        assert doc.value("repro_latency_seconds_sum", model="vgg") == pytest.approx(
            0.016
        )
        snap = reg.histogram("repro_latency_seconds", model="vgg").snapshot()
        for q_label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            assert doc.value(
                "repro_latency_seconds", model="vgg", quantile=q_label
            ) == pytest.approx(snap[key])
        assert doc.value(
            "repro_stage_seconds_total", layer="conv0", stage="gemm"
        ) == 0.25

    def test_type_and_help_headers(self):
        text = prometheus_text(_populated_registry())
        doc = parse_prometheus_text(text)
        assert doc.types["repro_requests_total"] == "counter"
        assert doc.types["repro_queue_depth"] == "gauge"
        # histograms export as Prometheus summaries (pre-computed quantiles)
        assert doc.types["repro_latency_seconds"] == "summary"
        assert doc.types["repro_stage_seconds_total"] == "counter"
        assert doc.helps["repro_requests_total"] == "requests"
        # one TYPE line per family, even with _count/_sum rows present
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(doc.types)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'he said "hi"\\path\nnewline'
        reg.counter("c_total", layer=tricky).inc(1)
        doc = parse_prometheus_text(prometheus_text(reg))
        assert doc.value("c_total", layer=tricky) == 1

    def test_integer_values_render_without_decimal(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(7)
        assert "c_total 7\n" in prometheus_text(reg)


class TestParserStrictness:
    def test_malformed_sample_line_rejected(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is not a metric line at all!{\n")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("good_name notanumber\n")

    def test_malformed_label_block_rejected(self):
        with pytest.raises(ValueError, match="label"):
            parse_prometheus_text('m{key=unquoted} 1\n')

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE m nonsense\n")

    def test_other_comments_ignored(self):
        doc = parse_prometheus_text("# just a comment\nm 1\n")
        assert doc.value("m") == 1
