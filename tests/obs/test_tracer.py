"""Stage tracer: attribution, laps, thread-local paths, registry export."""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import STAGES, StageTracer


class TestRecording:
    def test_record_attributes_to_current_step(self):
        tr = StageTracer()
        with tr.step("conv0"):
            tr.record("gemm", 0.5)
            tr.record("gemm", 0.25)
        with tr.step("conv1"):
            tr.record("quantize", 0.1)
        bd = tr.breakdown()
        assert bd["conv0"]["gemm"] == 0.75
        assert bd["conv1"]["quantize"] == 0.1
        assert tr.call_counts()["conv0"]["gemm"] == 2

    def test_nested_steps_restore_previous_path(self):
        tr = StageTracer()
        with tr.step("outer"):
            with tr.step("inner"):
                tr.record("op", 1.0)
            tr.record("op", 2.0)
        bd = tr.breakdown()
        assert bd["inner"]["op"] == 1.0
        assert bd["outer"]["op"] == 2.0

    def test_lap_tiles_time_and_returns_new_origin(self):
        tr = StageTracer()
        with tr.step("l"):
            t0 = time.perf_counter()
            time.sleep(0.01)
            t1 = tr.lap("a", t0)
            assert t1 > t0
            time.sleep(0.01)
            tr.lap("b", t1)
        bd = tr.breakdown()["l"]
        assert bd["a"] >= 0.005
        assert bd["b"] >= 0.005

    def test_span_records_block_duration(self):
        tr = StageTracer()
        with tr.step("l"), tr.span("op"):
            time.sleep(0.01)
        assert tr.breakdown()["l"]["op"] >= 0.005

    def test_disabled_tracer_records_nothing(self):
        tr = StageTracer(enabled=False)
        with tr.step("l"):
            tr.record("gemm", 1.0)
            with tr.span("op"):
                pass
        assert tr.breakdown() == {}
        tr.enable()
        tr.record("gemm", 1.0, path="l")
        assert tr.breakdown() == {"l": {"gemm": 1.0}}

    def test_totals_and_reset(self):
        tr = StageTracer()
        tr.record("gemm", 1.0, path="a")
        tr.record("quantize", 2.0, path="a")
        tr.record("gemm", 3.0, path="b")
        assert tr.stage_totals() == {"gemm": 4.0, "quantize": 2.0}
        assert tr.layer_totals() == {"a": 3.0, "b": 3.0}
        assert tr.total_seconds() == 6.0
        tr.reset()
        assert tr.total_seconds() == 0.0


class TestThreadSafety:
    def test_paths_are_thread_local(self):
        tr = StageTracer()
        ready = threading.Barrier(2)
        errors = []

        def worker(name):
            try:
                with tr.step(name):
                    ready.wait(timeout=10.0)
                    # both threads are inside their step now; each must
                    # see its OWN path
                    assert tr.current_path == name
                    for _ in range(1000):
                        tr.record("gemm", 0.001)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        bd = tr.breakdown()
        for name in ("t0", "t1"):
            assert bd[name]["gemm"] == pytest.approx(1.0)
            assert tr.call_counts()[name]["gemm"] == 1000


class TestRegistryExport:
    def test_collect_yields_labeled_counters(self):
        reg = MetricsRegistry()
        tr = StageTracer(registry=reg)
        tr.record("gemm", 0.5, path="conv0")
        samples = {s.full_name: s for s in reg.collect()}
        key = 'repro_stage_seconds_total{layer="conv0",stage="gemm"}'
        assert samples[key].value == 0.5
        assert samples[key].kind == "counter"
        calls = 'repro_stage_calls_total{layer="conv0",stage="gemm"}'
        assert samples[calls].value == 1

    def test_canonical_stage_names(self):
        assert STAGES == (
            "input_transform",
            "quantize",
            "gemm",
            "output_transform",
            "epilogue",
            "op",
        )
