"""Metrics primitives: counters, gauges, reservoir histograms, registry."""

import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    format_metric_name,
    nearest_rank,
)


class TestCounter:
    def test_exact_under_8_threads(self):
        counter = Counter("hits")
        n_threads, per_thread = 8, 10_000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert counter.value == n_threads * per_thread

    def test_negative_increment_rejected(self):
        counter = Counter("hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("hits")
        counter.inc(5)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_and_set_max(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set_max(2.0)
        assert gauge.value == 3.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_callback_backed(self):
        state = {"v": 1.0}
        gauge = Gauge("depth", fn=lambda: state["v"])
        assert gauge.value == 1.0
        state["v"] = 9.0
        assert gauge.value == 9.0
        # reset leaves callback gauges alone (they are live views)
        gauge.reset()
        assert gauge.value == 9.0


class TestNearestRank:
    def test_matches_numpy_inverted_cdf_on_random_streams(self):
        rng = np.random.default_rng(7)
        for trial in range(20):
            n = int(rng.integers(1, 400))
            values = rng.normal(size=n) * float(rng.uniform(0.1, 50))
            ordered = sorted(values.tolist())
            for q in (0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0):
                expected = float(
                    np.percentile(values, q, method="inverted_cdf")
                )
                assert nearest_rank(ordered, q) == pytest.approx(expected), (
                    f"trial {trial} n={n} q={q}"
                )

    def test_p100_is_max_and_empty_is_zero(self):
        assert nearest_rank([3.0, 1.0, 2.0][:0], 95) == 0.0
        assert nearest_rank(sorted([5.0, 1.0, 9.0]), 100) == 9.0


class TestHistogram:
    def test_exact_aggregates_with_bounded_reservoir(self):
        hist = Histogram("lat", max_samples=64)
        values = [float(i) for i in range(1000)]
        for v in values:
            hist.observe(v)
        assert hist.count == 1000
        assert hist.total == sum(values)
        assert hist.min == 0.0
        assert hist.max == 999.0
        assert len(hist.samples()) == 64

    def test_reservoir_is_seeded_deterministic(self):
        a, b = Histogram("x", seed=5), Histogram("x", seed=5)
        for i in range(5000):
            a.observe(i)
            b.observe(i)
        assert a.samples() == b.samples()

    def test_reservoir_tracks_distribution_shift(self):
        # Algorithm R keeps a uniform sample of the WHOLE stream: after
        # 4x more high-mode samples arrive than the reservoir holds, the
        # percentiles must move off the warmup mode.  (The bug this
        # guards against: first-N retention pins p95 to warmup forever.)
        hist = Histogram("lat", max_samples=256, seed=3)
        for _ in range(1024):
            hist.observe(1.0)
        assert hist.percentile(95) == 1.0
        for _ in range(4096):
            hist.observe(10.0)
        assert hist.percentile(95) == 10.0
        assert hist.percentile(50) == 10.0

    def test_quantiles_match_individual_percentiles(self):
        hist = Histogram("lat", max_samples=512, seed=7)
        rng = np.random.default_rng(12)
        for v in rng.lognormal(0.0, 1.0, size=2000):
            hist.observe(float(v))
        qs = (50.0, 90.0, 95.0, 99.0)
        doc = hist.quantiles(qs)
        assert set(doc) == {"p50", "p90", "p95", "p99"}
        for q in qs:
            assert doc[f"p{q:g}"] == hist.percentile(q)

    def test_quantiles_empty_reservoir_is_zero(self):
        assert Histogram("lat").quantiles((50.0, 99.0)) == {"p50": 0.0, "p99": 0.0}

    def test_snapshot_consistent_under_concurrent_observes(self):
        hist = Histogram("lat", max_samples=128)
        stop = threading.Event()
        errors = []

        def writer(offset):
            i = 0
            while not stop.is_set():
                hist.observe(float(offset + (i % 100)))
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    snap = hist.snapshot()
                    assert snap["count"] >= 0
                    if snap["count"]:
                        assert snap["min"] <= snap["p50"] <= snap["max"]
                        assert snap["p50"] <= snap["p95"] <= snap["p99"]
                        assert snap["sum"] >= snap["count"] * snap["min"]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        snap = hist.snapshot()
        assert snap["count"] == hist.count
        assert len(hist.samples()) <= 128


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", model="m1")
        b = reg.counter("hits", model="m1")
        c = reg.counter("hits", model="m2")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("hits")

    def test_find_looks_up_without_creating(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", model="m1")
        assert reg.find("lat", model="m1") is hist
        # A miss returns None and must NOT mint an empty metric.
        assert reg.find("lat", model="m2") is None
        assert reg.find("nope") is None
        assert len(reg.metrics()) == 1

    def test_snapshot_shape_and_collectors(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(1.0)
        reg.register_collector(
            lambda: [Sample("ext", 7.0, {"k": "v"}, "counter")]
        )
        snap = reg.snapshot()
        assert snap["counters"]["c_total"] == 3
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["collected"]['ext{k="v"}'] == 7.0

    def test_failing_collector_is_skipped(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        reg.register_collector(broken)
        reg.register_collector(lambda: [Sample("ok", 1.0)])
        assert "ok" in [s.name for s in reg.collect()]

    def test_failing_collector_is_counted_and_logged_once(self, caplog):
        # Regression: collect() used to drop a raising collector with no
        # trace at all -- a broken collector could quietly blank a
        # dashboard.  Failures must count into a registry counter (so
        # they appear in the very snapshot whose rows went missing) and
        # log exactly one traceback.
        import logging

        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("collector exploded")

        reg.register_collector(broken)
        reg.register_collector(lambda: [Sample("ok", 1.0)])
        with caplog.at_level(logging.WARNING, logger="repro.obs.metrics"):
            for _ in range(3):
                reg.collect()
        # snapshot() reads owned metrics before its own collect pass, so
        # it reports the 3 prior failures (its own pass is the 4th).
        snap = reg.snapshot()
        assert snap["counters"]["repro_collector_errors_total"] == 3
        assert reg.counter("repro_collector_errors_total").value == 4
        assert snap["collected"]["ok"] == 1.0  # healthy rows survive
        warned = [
            r for r in caplog.records
            if "repro_collector_errors_total" in r.getMessage()
        ]
        assert len(warned) == 1, "traceback must be logged exactly once"
        assert "collector exploded" in warned[0].getMessage()

    def test_healthy_registry_has_no_error_counter(self):
        # The counter is minted lazily: a registry whose collectors all
        # succeed keeps its historical snapshot shape.
        reg = MetricsRegistry()
        reg.register_collector(lambda: [Sample("ok", 1.0)])
        snap = reg.snapshot()
        assert "repro_collector_errors_total" not in snap["counters"]

    def test_reset_zeroes_owned_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(4.0)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0


class TestFormatMetricName:
    def test_sorted_labels_and_escaping(self):
        assert format_metric_name("m", {}) == "m"
        assert (
            format_metric_name("m", {"b": "2", "a": 'x"y\\z'})
            == 'm{a="x\\"y\\\\z",b="2"}'
        )
