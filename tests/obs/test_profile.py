"""``repro profile``: stage coverage, timing agreement, overhead gate."""

import numpy as np
import pytest

from repro.obs.profile import (
    ProfileConfig,
    check_overhead_gate,
    format_overhead,
    format_profile,
    measure_overhead,
    run_profile,
)

#: Small-but-real quantized workload for structure checks (fast).
SMALL = ProfileConfig(model="vgg", algorithm="lowino", hw=8, width=8, m=2, runs=2)


class TestRunProfile:
    def test_conv_layers_get_the_paper_stages(self):
        doc = run_profile(SMALL)
        conv_layers = {
            path: stages
            for path, stages in doc["breakdown"].items()
            if "conv" in path
        }
        assert conv_layers, "no conv layers traced"
        for path, stages in conv_layers.items():
            for stage in ("input_transform", "quantize", "gemm", "output_transform"):
                assert stage in stages, f"{path} missing {stage}"
            assert all(v > 0 for v in stages.values())

    def test_breakdown_covers_every_timed_step(self):
        doc = run_profile(SMALL)
        assert set(doc["breakdown"]) == set(doc["layer_timings"])

    def test_stage_sums_agree_with_step_timings_within_2pct(self):
        # The tracer's laps tile each step body, so the summed stage
        # seconds must reproduce the session's independent per-step
        # timing total.  Default (non-tiny) workload; one retry damps
        # shared-host scheduling noise.
        gaps = []
        for _ in range(2):
            doc = run_profile(ProfileConfig())
            gaps.append(doc["agreement_gap"])
            if gaps[-1] < 0.02:
                break
        assert min(gaps) < 0.02, f"agreement gaps {gaps} all exceed 2%"

    def test_call_counts_scale_with_runs(self):
        doc = run_profile(SMALL)
        counts = doc["call_counts"]
        conv = next(path for path in counts if "conv" in path)
        assert counts[conv]["gemm"] == SMALL.runs

    def test_format_profile_renders_table(self):
        doc = run_profile(SMALL)
        text = format_profile(doc)
        assert "gemm" in text
        assert "%" in text
        for path in doc["breakdown"]:
            assert path in text


class TestOverhead:
    def test_outputs_bit_identical_across_modes(self):
        doc = measure_overhead(SMALL, repeats=1)
        assert doc["outputs_identical"] is True
        assert set(doc["wall_s"]) == {"none", "disabled", "enabled"}
        assert "no tracer" in format_overhead(doc)

    def test_gate_passes_within_budget(self):
        doc = {
            "overhead": {"disabled": 0.001, "enabled": 0.03},
            "outputs_identical": True,
        }
        assert check_overhead_gate(doc, limit=0.05) == []

    def test_gate_fails_over_budget_or_nonidentical(self):
        doc = {
            "overhead": {"disabled": 0.001, "enabled": 0.08},
            "outputs_identical": True,
        }
        violations = check_overhead_gate(doc, limit=0.05)
        assert len(violations) == 1
        assert "enabled" in violations[0]
        doc = {
            "overhead": {"disabled": 0.0, "enabled": 0.0},
            "outputs_identical": False,
        }
        assert any(
            "bit-identical" in v for v in check_overhead_gate(doc, limit=0.05)
        )

    def test_negative_overhead_is_not_a_violation(self):
        doc = {
            "overhead": {"disabled": -0.01, "enabled": -0.005},
            "outputs_identical": True,
        }
        assert check_overhead_gate(doc, limit=0.05) == []


class TestTracingDoesNotChangeResults:
    @pytest.mark.parametrize("algorithm", ["lowino", "int8_direct", "fp32"])
    def test_traced_session_bitwise_equals_untraced(self, algorithm):
        from repro.obs.tracer import StageTracer
        from repro.runtime.session import InferenceSession

        cfg = ProfileConfig(model="vgg", algorithm=algorithm, hw=8, width=8, m=2)
        from repro.obs.profile import _build_session

        plain, x, model = _build_session(cfg, tracer=None)
        traced, _, _ = _build_session(cfg, StageTracer(), model=model)
        assert np.array_equal(plain.run(x), traced.run(x))
