"""Static scheduling (Section 4.4): partition invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import StaticSchedule, partition_grid, partition_range


class TestPartitionRange:
    def test_even_split(self):
        parts = partition_range(8, 4)
        assert [p.size for p in parts] == [2, 2, 2, 2]

    def test_ceil_rule(self):
        """Each thread gets up to ceil(N/omega) tasks (the paper's rule)."""
        parts = partition_range(10, 4)
        assert [p.size for p in parts] == [3, 3, 3, 1]

    def test_more_threads_than_tasks(self):
        parts = partition_range(2, 4)
        assert [p.size for p in parts] == [1, 1, 0, 0]

    def test_zero_tasks(self):
        parts = partition_range(0, 4)
        assert all(p.size == 0 for p in parts)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_range(-1, 2)
        with pytest.raises(ValueError):
            partition_range(5, 0)

    @given(st.integers(0, 10000), st.integers(1, 64))
    def test_partition_invariants(self, tasks, omega):
        """Disjoint, complete, contiguous, ceil-bounded."""
        schedule = StaticSchedule.for_tasks(tasks, omega)
        schedule.validate()
        assert schedule.total_tasks == tasks
        ceil = -(-tasks // omega) if tasks else 0
        assert schedule.max_tasks <= ceil
        assert len(schedule.partitions) == omega


class TestGrid:
    def test_grid_flattening(self):
        parts = partition_grid((3, 4, 2), 5)
        assert sum(p.size for p in parts) == 24

    def test_empty_dims(self):
        parts = partition_grid((), 3)
        assert all(p.size == 0 for p in parts)


class TestMetrics:
    def test_imbalance_perfect(self):
        assert StaticSchedule.for_tasks(16, 4).imbalance() == 1.0

    def test_imbalance_worst_case(self):
        # 5 tasks, 4 threads: ceil=2, ideal=1.25 -> 1.6.
        assert StaticSchedule.for_tasks(5, 4).imbalance() == pytest.approx(1.6)

    def test_power_of_two_balanced(self):
        """The paper's note: C, K, omega are powers of two, so the
        assignment is perfectly balanced."""
        for tasks in (256, 1024, 4096):
            for omega in (2, 4, 8):
                assert StaticSchedule.for_tasks(tasks, omega).imbalance() == 1.0

    def test_makespan_uniform(self):
        s = StaticSchedule.for_tasks(10, 4)
        assert s.makespan() == 3.0

    def test_makespan_with_costs(self):
        s = StaticSchedule.for_tasks(4, 2)
        costs = np.array([1.0, 1.0, 5.0, 1.0])
        assert s.makespan(costs) == 6.0

    def test_makespan_cost_length_check(self):
        s = StaticSchedule.for_tasks(4, 2)
        with pytest.raises(ValueError):
            s.makespan(np.ones(3))
