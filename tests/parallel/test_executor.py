"""Fork-join execution over static partitions."""

import numpy as np
import pytest

from repro.parallel import parallel_stage, run_partitioned


class TestRunPartitioned:
    def test_results_in_thread_order(self):
        results = run_partitioned(lambda lo, hi: (lo, hi), 10, 4)
        assert results == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_thread_path(self):
        assert run_partitioned(lambda lo, hi: hi - lo, 7, 1) == [7]

    def test_parallel_equals_serial(self, rng):
        data = rng.standard_normal(1000)

        def work(lo, hi):
            return float(np.sum(data[lo:hi] ** 2))

        serial = work(0, 1000)
        parallel = sum(run_partitioned(work, 1000, 8))
        assert parallel == pytest.approx(serial)

    def test_exception_propagates(self):
        def boom(lo, hi):
            if lo >= 4:
                raise ValueError("boom")
            return 0

        with pytest.raises(ValueError, match="boom"):
            run_partitioned(boom, 8, 2)


class TestParallelStage:
    def test_disjoint_in_place_writes(self, rng):
        src = rng.standard_normal(100)
        out = np.zeros(100)

        def stage(lo, hi):
            out[lo:hi] = src[lo:hi] * 2

        result = parallel_stage(out, stage, 100, 4)
        assert result is out
        assert np.allclose(out, src * 2)

    def test_empty_partitions_ok(self, rng):
        out = np.zeros(2)
        src = rng.standard_normal(2)

        def stage(lo, hi):
            out[lo:hi] = src[lo:hi]

        parallel_stage(out, stage, 2, 8)
        assert np.allclose(out, src)
