"""Simulated fork-join timelines."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import StaticSchedule, simulate_stage

from tests.rngutil import derive_rng



class TestSimulateStage:
    def test_uniform_costs(self):
        tl = simulate_stage(StaticSchedule.for_tasks(8, 4))
        assert tl.makespan == 2.0
        assert tl.utilization == 1.0
        assert tl.imbalance == 1.0

    def test_heterogeneous_costs(self):
        schedule = StaticSchedule.for_tasks(4, 2)
        costs = np.array([1.0, 1.0, 10.0, 1.0])
        tl = simulate_stage(schedule, costs)
        assert tl.makespan == 11.0
        assert tl.busy.tolist() == [2.0, 11.0]
        assert tl.utilization == pytest.approx(13.0 / 22.0)

    def test_cost_length_validation(self):
        with pytest.raises(ValueError):
            simulate_stage(StaticSchedule.for_tasks(4, 2), np.ones(3))

    def test_gantt_renders(self):
        tl = simulate_stage(StaticSchedule.for_tasks(10, 4))
        text = tl.gantt(width=20)
        assert text.count("|") == 8  # two bars delimiters per thread
        assert "utilization" in text

    def test_empty_stage(self):
        tl = simulate_stage(StaticSchedule.for_tasks(0, 4))
        assert tl.makespan == 0.0
        assert tl.utilization == 1.0

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_conservation(self, tasks, omega):
        """Simulated work equals the sum of task costs; makespan at least
        the ideal split."""
        rng = derive_rng(tasks, omega)
        costs = rng.uniform(0.1, 2.0, tasks)
        tl = simulate_stage(StaticSchedule.for_tasks(tasks, omega), costs)
        assert tl.total_work == pytest.approx(costs.sum())
        assert tl.makespan >= costs.sum() / omega - 1e-9
        assert tl.makespan <= costs.sum() + 1e-9

    def test_padding_tiles_cause_imbalance(self):
        """Realistic heterogeneity: the last tiles of each image row are
        padding-lighter; contiguous assignment concentrates them."""
        costs = np.ones(64)
        costs[48:] = 0.2  # the final quarter is cheap
        tl = simulate_stage(StaticSchedule.for_tasks(64, 4), costs)
        assert tl.imbalance > 1.15
