"""Edge-geometry bitwise regressions for the FP32 layer classes.

The fused backend path (PR 10) replays ``Fp32WinogradConv2d`` /
``Fp32DirectConv2d`` op for op, so these tests pin the layers' exact
contracts *before* that path inherits them:

- both layers are bitwise identical to the one-shot reference functions
  (``winograd_conv2d_fp32`` / ``direct_conv2d_fp32``) on the awkward
  geometries -- stride 2 under padding, a single input channel,
  non-square images;
- the direct layer's output shape comes from ``conv_output_shape`` on
  the *unpadded* dims (with the padding argument) while ``im2col`` runs
  over the *padded* input -- double-counting the padding on either side
  shifts the output grid, which these shapes are chosen to expose.
"""

import numpy as np
import pytest

from repro.conv.direct import direct_conv2d_fp32
from repro.conv.fp32 import Fp32DirectConv2d, Fp32WinogradConv2d
from repro.conv.im2col import conv_output_shape, pad_images
from repro.winograd import winograd_algorithm
from repro.winograd.reference import winograd_conv2d_fp32

from tests.rngutil import derive_rng

# (name, batch, c_in, c_out, h, w, padding, stride)
DIRECT_GEOMETRIES = [
    ("stride2_padded", 1, 3, 4, 8, 8, 1, 2),
    ("stride2_padded_nonsquare", 2, 2, 3, 9, 5, 1, 2),
    ("stride2_pad2_odd", 1, 2, 2, 7, 7, 2, 2),
    ("single_channel", 1, 1, 4, 8, 8, 1, 1),
    ("single_channel_strided", 2, 1, 1, 7, 5, 1, 2),
    ("nonsquare", 1, 3, 2, 6, 11, 0, 1),
]

# (name, batch, c_in, c_out, h, w, padding, m)
WINOGRAD_GEOMETRIES = [
    ("single_channel", 1, 1, 4, 8, 8, 1, 2),
    ("single_channel_f4", 1, 1, 2, 8, 8, 1, 4),
    ("nonsquare", 2, 3, 2, 6, 11, 0, 2),
    ("nonsquare_padded_f4", 1, 2, 3, 9, 5, 1, 4),
]


def _inputs(name, batch, c_in, c_out, h, w):
    rng = derive_rng("fp32-geometry", name)
    x = rng.standard_normal((batch, c_in, h, w))
    wts = rng.standard_normal((c_out, c_in, 3, 3)) * np.sqrt(2.0 / (c_in * 9))
    return x, wts


@pytest.mark.parametrize(
    "geom", DIRECT_GEOMETRIES, ids=[g[0] for g in DIRECT_GEOMETRIES]
)
def test_direct_layer_bitwise_vs_reference(geom):
    name, batch, c_in, c_out, h, w, padding, stride = geom
    x, wts = _inputs(name, batch, c_in, c_out, h, w)
    layer = Fp32DirectConv2d(wts, padding=padding, stride=stride)
    ref = direct_conv2d_fp32(x, wts, stride=stride, padding=padding)
    np.testing.assert_array_equal(layer(x), ref)


@pytest.mark.parametrize(
    "geom", WINOGRAD_GEOMETRIES, ids=[g[0] for g in WINOGRAD_GEOMETRIES]
)
def test_winograd_layer_bitwise_vs_reference(geom):
    name, batch, c_in, c_out, h, w, padding, m = geom
    x, wts = _inputs(name, batch, c_in, c_out, h, w)
    layer = Fp32WinogradConv2d(wts, m=m, padding=padding)
    # The one-shot reference is VALID-mode: the caller pads.
    ref = winograd_conv2d_fp32(
        pad_images(np.asarray(x, dtype=np.float64), padding),
        wts,
        winograd_algorithm(m, 3),
    )
    np.testing.assert_array_equal(layer(x), ref)


def test_output_shape_contract_unpadded_dims():
    """``conv_output_shape(h, w, ...)`` is called on the UNPADDED dims
    with the padding argument, while ``im2col`` consumes the padded
    input.  Feeding it padded dims *and* the padding argument would
    double-count: for h=7, p=1, s=2 the correct oh is (7+2-3)//2+1 = 4,
    the double-counted value (9+2-3)//2+1 = 5."""
    x, wts = _inputs("contract", 1, 2, 3, 7, 5)
    layer = Fp32DirectConv2d(wts, padding=1, stride=2)
    y = layer(x)
    assert y.shape == (1, 3, 4, 3)
    assert conv_output_shape(7, 5, 3, stride=2, padding=1) == (4, 3)
    # And the double-counted shape differs, so a regression cannot hide.
    assert conv_output_shape(9, 7, 3, stride=2, padding=1) != (4, 3)


def test_direct_layer_output_is_nhwc_backed():
    """The layer returns a transposed view of a fresh NHWC array; the
    memory order is part of the bitwise contract (downstream pooling
    reductions sum in layout order)."""
    x, wts = _inputs("layout", 1, 2, 3, 6, 6)
    y = Fp32DirectConv2d(wts, padding=1)(x)
    b, k, oh, ow = y.shape
    assert y.strides == (oh * ow * k * 8, 8, ow * k * 8, k * 8)


@pytest.mark.parametrize("backend", ["numpy", "threaded"])
def test_fused_engine_matches_layer_stride2(backend):
    """The fused fp32_direct kernels honour the same shape contract on
    the engine path, bitwise, including stride 2 under padding."""
    from repro.runtime.cache import PlanCache
    from repro.runtime.engine import ExecutionEngine

    x, wts = _inputs("fused-stride2", 2, 2, 3, 9, 5)
    engine = ExecutionEngine(cache=PlanCache(capacity=64), backend=backend)
    layer = engine.layer(wts, "fp32_direct", padding=1, stride=2)
    np.testing.assert_array_equal(layer(x), layer.reference(x))
