"""im2col lowering against a naive sliding-window loop."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.conv import conv_output_shape, im2col, pad_images

from tests.rngutil import derive_rng



class TestOutputShape:
    def test_basic(self):
        assert conv_output_shape(8, 8, 3) == (6, 6)
        assert conv_output_shape(8, 8, 3, padding=1) == (8, 8)
        assert conv_output_shape(9, 9, 3, stride=2) == (4, 4)

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 3)


class TestPadImages:
    def test_zero_padding(self, rng):
        x = rng.standard_normal((1, 2, 3, 3))
        p = pad_images(x, 2)
        assert p.shape == (1, 2, 7, 7)
        assert np.array_equal(p[:, :, 2:5, 2:5], x)
        assert p[0, 0, 0, 0] == 0

    def test_no_padding_is_identity(self, rng):
        x = rng.standard_normal((1, 1, 3, 3))
        assert pad_images(x, 0) is x

    def test_negative_padding(self, rng):
        with pytest.raises(ValueError):
            pad_images(rng.standard_normal((1, 1, 3, 3)), -1)


class TestIm2col:
    def _naive(self, x, r, stride):
        b, c, h, w = x.shape
        oh = (h - r) // stride + 1
        ow = (w - r) // stride + 1
        rows = []
        for bi in range(b):
            for i in range(oh):
                for j in range(ow):
                    patch = x[bi, :, i * stride : i * stride + r,
                              j * stride : j * stride + r]
                    rows.append(patch.ravel())
        return np.array(rows)

    def test_matches_naive(self, rng):
        x = rng.standard_normal((2, 3, 7, 6))
        assert np.allclose(im2col(x, 3), self._naive(x, 3, 1))

    def test_strided(self, rng):
        x = rng.standard_normal((1, 2, 9, 9))
        assert np.allclose(im2col(x, 3, stride=2), self._naive(x, 3, 2))

    @given(st.integers(1, 2), st.integers(1, 3), st.integers(4, 9),
           st.sampled_from([1, 2]), st.sampled_from([1, 3]))
    def test_matches_naive_property(self, b, c, hw, stride, r):
        rng = derive_rng(b, c, hw, stride, r)
        x = rng.standard_normal((b, c, hw, hw))
        assert np.allclose(im2col(x, r, stride=stride), self._naive(x, r, stride))

    def test_preserves_integer_dtype(self, rng):
        x = rng.integers(-128, 128, (1, 2, 5, 5)).astype(np.int8)
        out = im2col(x, 3)
        assert out.dtype == np.int8
