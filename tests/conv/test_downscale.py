"""Down-scaling (oneDNN-style) Winograd: the lossy baseline."""

import numpy as np
import pytest

from repro.conv import DownscaleWinogradConv2d, Int8DirectConv2d, direct_conv2d_fp32


class TestDownscale:
    def test_default_scale_factors_match_paper(self, filters_3x3):
        """Section 2.3: alpha = 1/4 for m=2, 1/100 for m=4."""
        d2 = DownscaleWinogradConv2d(filters_3x3, m=2, padding=1)
        d4 = DownscaleWinogradConv2d(filters_3x3, m=4, padding=1)
        assert d2.input_downscale == pytest.approx(1 / 4)
        assert d4.input_downscale == pytest.approx(1 / 100)

    def test_f2_reasonable_f4_catastrophic(self, relu_images, filters_3x3):
        """The paper's core negative result: F(2,3) down-scaling loses a
        little accuracy; F(4,3) down-scaling destroys the result."""
        ref = direct_conv2d_fp32(relu_images, filters_3x3, padding=1)
        rel = {}
        for m in (2, 4):
            layer = DownscaleWinogradConv2d(filters_3x3, m=m, padding=1)
            rel[m] = np.sqrt(np.mean((layer(relu_images) - ref) ** 2)) / ref.std()
        assert rel[2] < 0.15
        assert rel[4] > 0.5
        assert rel[4] > 5 * rel[2]

    def test_worse_than_direct(self, relu_images, filters_3x3):
        """Down-scaling adds round-off on top of spatial quantization."""
        ref = direct_conv2d_fp32(relu_images, filters_3x3, padding=1)
        direct = Int8DirectConv2d(filters_3x3, padding=1)
        down = DownscaleWinogradConv2d(filters_3x3, m=2, padding=1)
        err_direct = np.abs(direct(relu_images) - ref).mean()
        err_down = np.abs(down(relu_images) - ref).mean()
        assert err_down > err_direct

    def test_narrow_integer_range_f4(self, relu_images, filters_3x3):
        """Figure 9a: after down-scaling, the transformed input uses only
        a narrow band of the INT8 range."""
        from repro.conv.upcast import _transform_int
        from repro.conv._tileops import prepare_input_tiles
        from repro.conv.im2col import pad_images
        from repro.isa import saturate_cast
        from repro.quant import quantize, spatial_params_from_tensor

        layer = DownscaleWinogradConv2d(filters_3x3, m=4, padding=1)
        sp = spatial_params_from_tensor(relu_images)
        xq = quantize(relu_images, sp)
        tiles, _ = prepare_input_tiles(layer.alg, pad_images(xq, 1))
        v = _transform_int(layer.bt_int, tiles)
        v8 = saturate_cast(v.astype(np.float64) * layer.input_downscale, np.int8)
        occupancy = np.abs(v8).max()
        assert occupancy < 64  # uses less than half the int8 range

    def test_explicit_downscale_override(self, relu_images, filters_3x3):
        layer = DownscaleWinogradConv2d(filters_3x3, m=2, padding=1,
                                        input_downscale=1 / 8)
        y = layer(relu_images)
        assert np.all(np.isfinite(y))

    def test_rejects_rectangular_filters(self, rng):
        with pytest.raises(ValueError):
            DownscaleWinogradConv2d(rng.standard_normal((2, 2, 5, 3)))
