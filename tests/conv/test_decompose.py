"""DWM decompositions: strided and large-kernel Winograd."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conv import (
    direct_conv2d_fp32,
    kernel_chunks,
    polyphase_split,
    winograd_conv2d_large_kernel,
    winograd_conv2d_strided,
)

from tests.rngutil import derive_rng


class TestPolyphase:
    def test_stride1_identity(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        parts = polyphase_split(x, w, 1)
        assert len(parts) == 1
        assert parts[0][0] is x

    def test_stride2_r3_structure(self, rng):
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((2, 2, 3, 3))
        parts = polyphase_split(x, w, 2)
        assert len(parts) == 4
        sizes = sorted(p[1].shape[2:] for p in parts)
        assert sizes == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_invalid_stride(self, rng):
        with pytest.raises(ValueError):
            polyphase_split(rng.standard_normal((1, 1, 4, 4)),
                            rng.standard_normal((1, 1, 3, 3)), 0)


class TestKernelChunks:
    def test_r5(self):
        assert kernel_chunks(5) == [(0, 3), (3, 2)]

    def test_r7(self):
        assert kernel_chunks(7) == [(0, 3), (3, 3), (6, 1)]

    def test_r3_single(self):
        assert kernel_chunks(3) == [(0, 3)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            kernel_chunks(0)


class TestStridedConv:
    @pytest.mark.parametrize("stride,r", [(2, 3), (3, 3), (2, 5)])
    def test_matches_direct(self, stride, r, rng):
        x = rng.standard_normal((2, 4, 15, 15))
        w = rng.standard_normal((3, 4, r, r))
        y = winograd_conv2d_strided(x, w, m=2, stride=stride, padding=1)
        ref = direct_conv2d_fp32(x, w, stride=stride, padding=1)
        assert y.shape == ref.shape
        assert np.allclose(y, ref, atol=1e-9)

    @given(st.sampled_from([2, 3]), st.integers(9, 16))
    @settings(max_examples=8)
    def test_strided_property(self, stride, hw):
        rng = derive_rng(stride, hw)
        x = rng.standard_normal((1, 2, hw, hw))
        w = rng.standard_normal((2, 2, 3, 3))
        y = winograd_conv2d_strided(x, w, m=2, stride=stride, padding=1)
        ref = direct_conv2d_fp32(x, w, stride=stride, padding=1)
        assert np.allclose(y, ref, atol=1e-9)


class TestLargeKernel:
    @pytest.mark.parametrize("r", [5, 7])
    def test_matches_direct(self, r, rng):
        x = rng.standard_normal((1, 3, 14, 14))
        w = rng.standard_normal((2, 3, r, r))
        y = winograd_conv2d_large_kernel(x, w, m=2, padding=r // 2)
        ref = direct_conv2d_fp32(x, w, padding=r // 2)
        assert y.shape == ref.shape
        assert np.allclose(y, ref, atol=1e-9)

    def test_r3_passthrough(self, rng):
        """r = 3 decomposes to a single ordinary Winograd conv."""
        x = rng.standard_normal((1, 2, 10, 10))
        w = rng.standard_normal((2, 2, 3, 3))
        y = winograd_conv2d_large_kernel(x, w, m=2)
        assert np.allclose(y, direct_conv2d_fp32(x, w), atol=1e-10)

    def test_kernel_larger_than_input(self, rng):
        with pytest.raises(ValueError):
            winograd_conv2d_large_kernel(
                rng.standard_normal((1, 1, 4, 4)),
                rng.standard_normal((1, 1, 7, 7)),
            )
