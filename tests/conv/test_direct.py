"""Direct convolution: FP32 ground truth and the INT8 baseline."""

import numpy as np
import pytest

from repro.conv import Int8DirectConv2d, direct_conv2d_fp32, per_out_channel_weight_params


class TestFp32Direct:
    def test_known_small_case(self):
        x = np.zeros((1, 1, 3, 3))
        x[0, 0] = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 2.0  # pure center tap
        y = direct_conv2d_fp32(x, w)
        assert y.shape == (1, 1, 1, 1)
        assert y[0, 0, 0, 0] == 10.0

    def test_identity_kernel_with_padding(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        w = np.zeros((3, 3, 3, 3))
        for k in range(3):
            w[k, k, 1, 1] = 1.0
        y = direct_conv2d_fp32(x, w, padding=1)
        assert np.allclose(y, x)

    def test_stride(self, rng):
        x = rng.standard_normal((1, 2, 9, 9))
        w = rng.standard_normal((4, 2, 3, 3))
        y = direct_conv2d_fp32(x, w, stride=2)
        full = direct_conv2d_fp32(x, w)
        assert np.allclose(y, full[:, :, ::2, ::2])

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            direct_conv2d_fp32(
                rng.standard_normal((1, 3, 6, 6)), rng.standard_normal((2, 4, 3, 3))
            )

    def test_cross_channel_accumulation(self, rng):
        x = rng.standard_normal((1, 4, 5, 5))
        w = rng.standard_normal((1, 4, 3, 3))
        y = direct_conv2d_fp32(x, w)
        per_ch = sum(
            direct_conv2d_fp32(x[:, c : c + 1], w[:, c : c + 1]) for c in range(4)
        )
        assert np.allclose(y, per_ch)


class TestWeightParams:
    def test_per_channel_thresholds(self, rng):
        w = rng.standard_normal((4, 2, 3, 3))
        w[2] *= 10
        p = per_out_channel_weight_params(w)
        assert p.scale.shape == (4, 1, 1, 1)
        assert p.threshold[2, 0, 0, 0] == pytest.approx(np.abs(w[2]).max())

    def test_zero_channel_safe(self):
        w = np.zeros((2, 1, 3, 3))
        w[0, 0, 0, 0] = 1.0
        p = per_out_channel_weight_params(w)
        assert np.all(np.isfinite(p.scale))


class TestInt8Direct:
    def test_error_bound(self, relu_images, filters_3x3):
        layer = Int8DirectConv2d(filters_3x3, padding=1)
        y = layer(relu_images)
        ref = direct_conv2d_fp32(relu_images, filters_3x3, padding=1)
        rel = np.abs(y - ref).max() / np.abs(ref).max()
        assert rel < 0.05

    def test_static_threshold_used(self, relu_images, filters_3x3):
        tau = float(np.abs(relu_images).max())
        layer = Int8DirectConv2d(filters_3x3, padding=1, input_threshold=tau)
        dynamic = Int8DirectConv2d(filters_3x3, padding=1)
        assert np.allclose(layer(relu_images), dynamic(relu_images))

    def test_saturating_threshold(self, relu_images, filters_3x3):
        """A too-small calibrated threshold saturates instead of wrapping."""
        layer = Int8DirectConv2d(filters_3x3, padding=1,
                                 input_threshold=float(relu_images.max()) / 10)
        y = layer(relu_images)
        assert np.all(np.isfinite(y))

    def test_stride_and_padding(self, rng):
        x = np.maximum(rng.standard_normal((1, 4, 9, 9)), 0)
        w = rng.standard_normal((2, 4, 3, 3)) * 0.1
        layer = Int8DirectConv2d(w, stride=2, padding=1)
        ref = direct_conv2d_fp32(x, w, stride=2, padding=1)
        y = layer(x)
        assert y.shape == ref.shape
        assert np.abs(y - ref).max() / np.abs(ref).max() < 0.05
