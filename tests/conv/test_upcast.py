"""Up-casting (ncnn-style) Winograd: exactness given spatial quantization."""

import numpy as np
import pytest

from repro.conv import (
    Int8DirectConv2d,
    UpcastWinogradConv2d,
    direct_conv2d_fp32,
    integer_transform_matrices,
)
from repro.winograd import winograd_algorithm


class TestIntegerMatrices:
    def test_f23_bt_is_integer_with_unit_lcm(self):
        bt_int, g_int, bt_lcm, g_lcm = integer_transform_matrices(winograd_algorithm(2, 3))
        assert bt_lcm == 1
        assert g_lcm == 2  # G(2,3) has halves
        assert bt_int.dtype == np.int64

    def test_f43_lcms(self):
        bt_int, g_int, bt_lcm, g_lcm = integer_transform_matrices(winograd_algorithm(4, 3))
        assert bt_lcm == 1  # Eq. 2's B^T is already integer
        assert g_lcm == 24  # denominators {4, 6, 12, 24}

    def test_scaled_matrices_exact(self):
        alg = winograd_algorithm(4, 3)
        bt_int, g_int, bt_lcm, g_lcm = integer_transform_matrices(alg)
        assert np.allclose(bt_int, alg.bt * bt_lcm)
        assert np.allclose(g_int, alg.g * g_lcm)


class TestUpcast:
    def test_f2_matches_int8_direct_exactly(self, relu_images, filters_3x3):
        """F(2,3) up-cast transforms are exact integer arithmetic, so the
        only error is spatial quantization -- identical to INT8 direct."""
        tau = float(np.abs(relu_images).max())
        up = UpcastWinogradConv2d(filters_3x3, m=2, padding=1, input_threshold=tau)
        direct = Int8DirectConv2d(filters_3x3, padding=1, input_threshold=tau)
        assert np.allclose(up(relu_images), direct(relu_images), atol=1e-9)

    def test_f4_error_small(self, relu_images, filters_3x3):
        """F(4,3) needs the rounded INT16 filter fallback; error stays at
        the spatial-quantization level."""
        up = UpcastWinogradConv2d(filters_3x3, m=4, padding=1)
        ref = direct_conv2d_fp32(relu_images, filters_3x3, padding=1)
        rel = np.abs(up(relu_images) - ref).max() / np.abs(ref).max()
        assert rel < 0.05

    def test_f4_uses_rounded_filter_scale(self, filters_3x3):
        up = UpcastWinogradConv2d(filters_3x3, m=4, padding=1)
        assert up.filter_scale != float(up.g_lcm**2)
        up2 = UpcastWinogradConv2d(filters_3x3, m=2, padding=1)
        assert up2.filter_scale == float(up2.g_lcm**2)

    def test_transformed_operands_fit_int16(self, filters_3x3):
        for m in (2, 4):
            up = UpcastWinogradConv2d(filters_3x3, m=m, padding=1)
            assert up.u_int16.dtype == np.int16

    def test_rejects_rectangular_filters(self, rng):
        with pytest.raises(ValueError):
            UpcastWinogradConv2d(rng.standard_normal((2, 2, 3, 5)))
