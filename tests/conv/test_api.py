"""Unified conv2d front-end and algorithm selection."""

import numpy as np
import pytest

from repro.conv import conv2d, direct_conv2d_fp32, make_layer, select_algorithm


ALGOS = ["fp32_direct", "fp32_winograd", "int8_direct", "int8_upcast",
         "int8_downscale", "lowino"]


class TestDispatch:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_algorithms_run(self, algo, relu_images, filters_3x3):
        y = conv2d(relu_images, filters_3x3, algorithm=algo, m=2, padding=1)
        ref = direct_conv2d_fp32(relu_images, filters_3x3, padding=1)
        assert y.shape == ref.shape
        if algo.startswith("fp32"):
            assert np.allclose(y, ref, atol=1e-9)
        else:
            assert np.abs(y - ref).mean() / np.abs(ref).mean() < 0.25

    def test_unknown_algorithm(self, relu_images, filters_3x3):
        with pytest.raises(ValueError):
            conv2d(relu_images, filters_3x3, algorithm="magic")

    def test_make_layer_reusable(self, relu_images, filters_3x3):
        layer = make_layer(filters_3x3, "lowino", m=2, padding=1)
        y1 = layer(relu_images)
        y2 = layer(relu_images)
        assert np.array_equal(y1, y2)

    def test_kwargs_passthrough(self, relu_images, filters_3x3):
        layer = make_layer(filters_3x3, "int8_direct", padding=1,
                           input_threshold=1.0)
        assert layer.input_threshold == 1.0


class TestSelector:
    def test_small_layer_prefers_direct(self):
        """YOLOv3_a-like shapes: direct convolution wins (Section 5.1)."""
        algo, m = select_algorithm(batch=1, c=64, k=128, hw=64)
        assert algo == "int8_direct"
        assert m == 0

    def test_large_layer_prefers_lowino_f4(self):
        """VGG16_c-like shapes: LoWino F(4,3) wins."""
        algo, m = select_algorithm(batch=64, c=512, k=512, hw=16)
        assert algo == "lowino"
        assert m == 4

    def test_returns_valid_choice(self):
        for batch, c, k, hw in [(1, 128, 256, 32), (64, 128, 128, 28)]:
            algo, m = select_algorithm(batch=batch, c=c, k=k, hw=hw)
            assert algo in ("int8_direct", "lowino")
            assert m in (0, 2, 4)
