"""Edge geometries through every algorithm in the conv front-end.

Each case pins a geometry the tiling logic can get wrong -- 1x1 outputs,
inputs smaller than one Winograd tile, odd spatial sizes under padding,
unit channel counts -- and checks every algorithm against the FP32
direct oracle within its conformance budget."""

import numpy as np
import pytest

from repro.conformance import ConvConfig, hard_budget
from repro.conv import conv2d, direct_conv2d_fp32

from tests.rngutil import derive_rng

ALGOS = ["fp32_direct", "fp32_winograd", "int8_direct", "int8_upcast",
         "int8_downscale", "lowino"]

# (name, batch, c_in, c_out, h, w, padding, m)
GEOMETRIES = [
    ("pointwise_out", 1, 2, 3, 3, 3, 0, 2),
    ("pointwise_out_padded", 1, 2, 2, 1, 1, 1, 2),
    ("input_smaller_than_tile_f4", 1, 3, 2, 4, 4, 0, 4),
    ("subtile_asymmetric", 1, 2, 2, 6, 5, 0, 4),
    ("odd_sizes_pad1", 2, 3, 2, 7, 5, 1, 2),
    ("odd_sizes_pad2", 1, 2, 2, 9, 7, 2, 4),
    ("single_input_channel", 1, 1, 4, 8, 8, 1, 2),
    ("single_output_channel", 1, 4, 1, 8, 8, 1, 4),
    ("single_in_and_out", 2, 1, 1, 5, 5, 1, 2),
]


def _case(name, batch, c_in, c_out, h, w, padding, m):
    rng = derive_rng(name)
    x = np.maximum(rng.standard_normal((batch, c_in, h, w)), 0.0)
    wts = rng.standard_normal((c_out, c_in, 3, 3)) * np.sqrt(2.0 / (c_in * 9))
    return x, wts


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize(
    "geom", GEOMETRIES, ids=[g[0] for g in GEOMETRIES]
)
def test_edge_geometry_matches_oracle(algo, geom):
    name, batch, c_in, c_out, h, w, padding, m = geom
    x, wts = _case(*geom)
    y = conv2d(x, wts, algorithm=algo, m=m, padding=padding)
    ref = direct_conv2d_fp32(x, wts, padding=padding)

    out_h = h + 2 * padding - 2
    assert y.shape == (batch, c_out, out_h, w + 2 * padding - 2)
    assert np.all(np.isfinite(y))

    if algo.startswith("fp32"):
        assert np.allclose(y, ref, atol=1e-9 * max(1.0, np.abs(ref).max()))
        return
    cfg = ConvConfig(batch, c_in, c_out, h, w, padding=padding, m=m)
    err = y - ref
    rel_rms = float(np.sqrt(np.mean(err**2)) / (np.sqrt(np.mean(ref**2)) + 1e-30))
    assert rel_rms <= hard_budget(algo, cfg), (
        f"{algo} on {name}: relRMS {rel_rms:.4f}"
    )


@pytest.mark.parametrize("algo", ALGOS)
def test_pointwise_output_value(algo):
    """The 1x1-output case reduces to a single dot product -- check the
    value itself, not just the error norm."""
    x, wts = _case("pointwise_value", 1, 2, 3, 3, 3, 0, 2)
    y = conv2d(x, wts, algorithm=algo, m=2, padding=0)
    expected = np.einsum("bchw,kchw->bk", x, wts)[..., None, None]
    tol = 1e-9 if algo.startswith("fp32") else 0.2 * np.abs(expected).max() + 1e-6
    assert np.allclose(y, expected, atol=tol)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("m", [2, 4])
def test_zero_padding_border_consistency(algo, m):
    """With padding, border outputs mix in zero-padding; the tile grid
    must agree with the oracle there, not just in the interior."""
    x, wts = _case(f"border_{m}", 1, 2, 2, 7, 7, 1, m)
    y = conv2d(x, wts, algorithm=algo, m=m, padding=1)
    ref = direct_conv2d_fp32(x, wts, padding=1)
    border = np.s_[..., [0, -1], :]
    if algo.startswith("fp32"):
        assert np.allclose(y[border], ref[border], atol=1e-9)
    else:
        scale = np.abs(ref).max() + 1e-30
        cfg = ConvConfig(1, 2, 2, 7, 7, padding=1, m=m)
        assert np.abs(y[border] - ref[border]).max() / scale <= max(
            4 * hard_budget(algo, cfg), 0.5
        )
