"""Table 1 blocked layouts: round trips, shapes, vpdpbusd ordering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout import (
    PHI,
    SIGMA,
    ceil_div,
    pack_blocked_filters,
    pack_blocked_images,
    pack_transformed_filters,
    pack_transformed_inputs,
    pack_transformed_outputs,
    pad_axis,
    unpack_blocked_filters,
    unpack_blocked_images,
    unpack_transformed_filters,
    unpack_transformed_inputs,
    unpack_transformed_outputs,
)

from tests.rngutil import derive_rng


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4

    def test_pad_axis(self, rng):
        x = rng.standard_normal((3, 5))
        p = pad_axis(x, 1, 4)
        assert p.shape == (3, 8)
        assert np.array_equal(p[:, :5], x)
        assert np.all(p[:, 5:] == 0)
        assert pad_axis(x, 0, 3) is x  # already a multiple


class TestImageLayout:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 130, 5, 6))
        p = pack_blocked_images(x)
        assert p.shape == (2, ceil_div(130, 64), 5, 6, PHI, SIGMA)

    def test_roundtrip(self, rng):
        x = rng.standard_normal((2, 130, 5, 6))
        assert np.array_equal(unpack_blocked_images(pack_blocked_images(x), 130), x)

    def test_channel_order(self, rng):
        x = rng.standard_normal((1, 64, 2, 2))
        p = pack_blocked_images(x)
        # channel c -> (block, phi_idx, sigma_idx) = (c//64, (c%64)//16, c%16)
        assert p[0, 0, 1, 1, 2, 5] == x[0, 2 * 16 + 5, 1, 1]

    def test_unpack_validates_phi_sigma(self, rng):
        bad = rng.standard_normal((1, 1, 2, 2, 2, 16))
        with pytest.raises(ValueError):
            unpack_blocked_images(bad, 32)

    @given(st.integers(1, 3), st.integers(1, 80), st.integers(1, 4))
    def test_roundtrip_property(self, b, c, hw):
        rng = derive_rng(b, c, hw)
        x = rng.integers(-128, 128, (b, c, hw, hw)).astype(np.int8)
        out = unpack_blocked_images(pack_blocked_images(x), c)
        assert out.dtype == x.dtype
        assert np.array_equal(out, x)


class TestTransformedInputs:
    @given(st.integers(1, 40), st.integers(1, 20), st.integers(1, 3))
    def test_roundtrip_property(self, n, c, t):
        rng = derive_rng(n, c, t)
        v = rng.integers(0, 256, (t, n, c)).astype(np.uint8)
        packed = pack_transformed_inputs(v, n_blk=12, c_blk=8)
        assert packed.shape[2] == t
        assert np.array_equal(unpack_transformed_inputs(packed, n, c), v)

    def test_padding_is_zero(self, rng):
        v = rng.integers(1, 256, (2, 5, 5)).astype(np.uint8)
        packed = pack_transformed_inputs(v, n_blk=8, c_blk=8)
        # Padded rows/cols must be zero (the GEMM relies on it).
        assert packed[0, 0, 0, 5:, :].sum() == 0
        assert packed[0, 0, 0, :, 5:].sum() == 0


class TestFilterLayouts:
    def test_blocked_filters_roundtrip(self, rng):
        w = rng.standard_normal((70, 3, 3, 3))
        packed = pack_blocked_filters(w)
        assert packed.shape == (3, 2, 3, 3, PHI, SIGMA)
        assert np.array_equal(unpack_blocked_filters(packed, 70), w)

    def test_transformed_filters_vpdpbusd_order(self, rng):
        """Trailing axis interleaves 4 channels per output channel."""
        u = rng.integers(-128, 128, (1, 8, 4)).astype(np.int8)
        packed = pack_transformed_filters(u, c_blk=8, k_blk=4)
        # packed[cb, kb, t, cq, k*4 + p] == u[t, cq*4 + p, k]
        for cq in range(2):
            for k in range(4):
                for p in range(4):
                    assert packed[0, 0, 0, cq, k * 4 + p] == u[0, cq * 4 + p, k]

    def test_transformed_filters_requires_phi_multiple(self, rng):
        u = rng.integers(-128, 128, (1, 8, 4)).astype(np.int8)
        with pytest.raises(ValueError):
            pack_transformed_filters(u, c_blk=6, k_blk=4)

    @given(st.integers(1, 20), st.integers(1, 40), st.integers(1, 3))
    def test_transformed_filters_roundtrip(self, c, k, t):
        rng = derive_rng(c, k, t)
        u = rng.integers(-128, 128, (t, c, k)).astype(np.int8)
        packed = pack_transformed_filters(u, c_blk=8, k_blk=16)
        assert np.array_equal(unpack_transformed_filters(packed, c, k), u)


class TestTransformedOutputs:
    @given(st.integers(1, 3), st.integers(1, 6), st.integers(1, 70))
    def test_roundtrip(self, b, tiles, k):
        rng = derive_rng(b, tiles, k)
        z = rng.integers(-(2**20), 2**20, (4, b * tiles, k)).astype(np.int32)
        packed = pack_transformed_outputs(z, batch=b)
        assert packed.shape[:2] == (b, ceil_div(k, 64))
        assert np.array_equal(unpack_transformed_outputs(packed, k), z)

    def test_batch_divisibility(self, rng):
        z = rng.integers(0, 10, (4, 7, 8)).astype(np.int32)
        with pytest.raises(ValueError):
            pack_transformed_outputs(z, batch=2)
