"""Benchmark harness: document schema, regression gate, formatting."""

import copy

import pytest

from repro.runtime.bench import (
    FULL_PROFILE,
    QUICK_PROFILE,
    BenchProfile,
    check_regression,
    format_bench,
    load_json,
    run_bench,
    scale_layer,
    write_json,
)
from repro.workloads import layer_by_name

TINY_PROFILE = BenchProfile(
    "quick",  # same compat identity as the quick profile
    ("VGG16_b",),
    hw_cap=8,
    chan_cap=8,
    repeats=1,
    reference_repeats=1,
)


@pytest.fixture(scope="module")
def doc():
    return run_bench(TINY_PROFILE, algorithms=("fp32_direct", "lowino"))


class TestScaleLayer:
    def test_caps_apply(self):
        layer = scale_layer(layer_by_name("VGG16_b"), FULL_PROFILE)
        assert layer.batch == 1
        assert layer.hw <= FULL_PROFILE.hw_cap
        assert layer.c <= FULL_PROFILE.chan_cap and layer.k <= FULL_PROFILE.chan_cap

    def test_small_layers_untouched(self):
        # 7x7 layers stay 7x7 under the 32-pixel cap.
        layer = scale_layer(layer_by_name("ResNet-50_c"), FULL_PROFILE)
        assert layer.hw == 7

    def test_quick_profile_is_breakdown_subset(self):
        assert set(QUICK_PROFILE.layers) <= set(FULL_PROFILE.layers)


class TestRunBench:
    def test_document_schema(self, doc):
        assert doc["schema"] == 1
        assert doc["profile"]["name"] == "quick"
        (entry,) = doc["layers"]
        assert entry["name"] == "VGG16_b"
        assert entry["batch"] == 1 and entry["c"] == 8 and entry["hw"] == 8
        for algo in ("fp32_direct", "lowino"):
            cell = entry["algorithms"][algo]
            assert cell["wall_s"] > 0
        assert entry["algorithms"]["fp32_direct"]["speedup_vs_fp32_direct"] == 1.0

    def test_reference_ratio_present(self, doc):
        ref = doc["layers"][0]["reference"]["lowino"]
        assert ref["wall_s"] > 0 and ref["vectorized_speedup"] > 0
        assert doc["summary"]["reference_speedup"]["lowino"]["geomean"] > 0

    def test_cache_stats_recorded(self, doc):
        stats = doc["cache_stats"]
        # Plan misses on first use; the timed calls after the warm call
        # hit the cached geometry scratch.
        assert stats["misses"] >= 2
        assert stats["hits"] >= 1
        assert stats["bytes"] > 0

    def test_no_reference_profile(self):
        profile = BenchProfile("quick", ("VGG16_b",), hw_cap=8, chan_cap=8,
                               repeats=1, reference=False)
        doc = run_bench(profile, algorithms=("fp32_direct", "lowino"))
        assert doc["layers"][0]["reference"] == {}
        assert doc["summary"]["reference_speedup"] == {}


class TestCheckRegression:
    def test_identical_run_passes(self, doc):
        assert check_regression(doc, doc) == []

    def test_small_drift_within_gate(self, doc):
        drifted = copy.deepcopy(doc)
        ref = drifted["summary"]["reference_speedup"]["lowino"]
        ref["geomean"] *= 0.9  # -10% is inside the 25% gate
        assert check_regression(drifted, doc) == []

    def test_summary_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["reference_speedup"]["lowino"]["geomean"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("reference_speedup[lowino]" in v for v in violations)

    def test_per_layer_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["layers"][0]["reference"]["lowino"]["vectorized_speedup"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("VGG16_b" in v for v in violations)

    def test_speedup_summary_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["speedup_vs_fp32_direct"]["lowino"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("speedup_vs_fp32_direct[lowino]" in v for v in violations)

    def test_incompatible_profile_refused(self, doc):
        other = copy.deepcopy(doc)
        other["profile"]["hw_cap"] = 99
        violations = check_regression(doc, other)
        assert len(violations) == 1 and "incompatible" in violations[0]

    def test_gate_width_configurable(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["reference_speedup"]["lowino"]["geomean"] *= 0.9
        assert check_regression(regressed, doc, gate=0.25) == []
        assert check_regression(regressed, doc, gate=0.05) != []


class TestJsonRoundTrip:
    def test_write_load_and_gate(self, doc, tmp_path):
        path = tmp_path / "bench.json"
        write_json(doc, path)
        loaded = load_json(path)
        # Tuples become lists in JSON; the gate must still accept it.
        assert check_regression(doc, loaded) == []
        assert loaded["summary"] == doc["summary"]

    def test_format_bench_readable(self, doc):
        text = format_bench(doc)
        assert "VGG16_b" in text
        assert "geomean speedup vs fp32_direct" in text
        assert "loop reference" in text
