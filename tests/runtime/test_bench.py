"""Benchmark harness: document schema, regression gate, formatting."""

import copy

import pytest

from repro.runtime.bench import (
    FULL_PROFILE,
    QUICK_PROFILE,
    BenchProfile,
    ModelCase,
    check_regression,
    format_bench,
    load_json,
    run_bench,
    scale_layer,
    write_json,
)
from repro.workloads import layer_by_name

TINY_PROFILE = BenchProfile(
    "quick",  # same compat identity as the quick profile
    ("VGG16_b",),
    hw_cap=8,
    chan_cap=8,
    repeats=1,
    reference_repeats=1,
)


@pytest.fixture(scope="module")
def doc():
    return run_bench(TINY_PROFILE, algorithms=("fp32_direct", "lowino"))


class TestScaleLayer:
    def test_caps_apply(self):
        layer = scale_layer(layer_by_name("VGG16_b"), FULL_PROFILE)
        assert layer.batch == 1
        assert layer.hw <= FULL_PROFILE.hw_cap
        assert layer.c <= FULL_PROFILE.chan_cap and layer.k <= FULL_PROFILE.chan_cap

    def test_small_layers_untouched(self):
        # 7x7 layers stay 7x7 under the 32-pixel cap.
        layer = scale_layer(layer_by_name("ResNet-50_c"), FULL_PROFILE)
        assert layer.hw == 7

    def test_quick_profile_is_breakdown_subset(self):
        assert set(QUICK_PROFILE.layers) <= set(FULL_PROFILE.layers)


class TestRunBench:
    def test_document_schema(self, doc):
        assert doc["schema"] == 1
        assert doc["profile"]["name"] == "quick"
        (entry,) = doc["layers"]
        assert entry["name"] == "VGG16_b"
        assert entry["batch"] == 1 and entry["c"] == 8 and entry["hw"] == 8
        for algo in ("fp32_direct", "lowino"):
            cell = entry["algorithms"][algo]
            assert cell["wall_s"] > 0
        assert entry["algorithms"]["fp32_direct"]["speedup_vs_fp32_direct"] == 1.0

    def test_reference_ratio_present(self, doc):
        ref = doc["layers"][0]["reference"]["lowino"]
        assert ref["wall_s"] > 0 and ref["vectorized_speedup"] > 0
        assert doc["summary"]["reference_speedup"]["lowino"]["geomean"] > 0

    def test_cache_stats_recorded(self, doc):
        stats = doc["cache_stats"]
        # Plan misses on first use; the timed calls after the warm call
        # hit the cached geometry scratch.
        assert stats["misses"] >= 2
        assert stats["hits"] >= 1
        assert stats["bytes"] > 0

    def test_no_reference_profile(self):
        profile = BenchProfile("quick", ("VGG16_b",), hw_cap=8, chan_cap=8,
                               repeats=1, reference=False)
        doc = run_bench(profile, algorithms=("fp32_direct", "lowino"))
        assert doc["layers"][0]["reference"] == {}
        assert doc["summary"]["reference_speedup"] == {}


class TestCheckRegression:
    def test_identical_run_passes(self, doc):
        assert check_regression(doc, doc) == []

    def test_small_drift_within_gate(self, doc):
        drifted = copy.deepcopy(doc)
        ref = drifted["summary"]["reference_speedup"]["lowino"]
        ref["geomean"] *= 0.9  # -10% is inside the 25% gate
        assert check_regression(drifted, doc) == []

    def test_summary_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["reference_speedup"]["lowino"]["geomean"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("reference_speedup[lowino]" in v for v in violations)

    def test_per_layer_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["layers"][0]["reference"]["lowino"]["vectorized_speedup"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("VGG16_b" in v for v in violations)

    def test_speedup_summary_regression_detected(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["speedup_vs_fp32_direct"]["lowino"] *= 0.5
        violations = check_regression(regressed, doc)
        assert any("speedup_vs_fp32_direct[lowino]" in v for v in violations)

    def test_incompatible_profile_refused(self, doc):
        other = copy.deepcopy(doc)
        other["profile"]["hw_cap"] = 99
        violations = check_regression(doc, other)
        assert len(violations) == 1 and "incompatible" in violations[0]

    def test_gate_width_configurable(self, doc):
        regressed = copy.deepcopy(doc)
        regressed["summary"]["reference_speedup"]["lowino"]["geomean"] *= 0.9
        assert check_regression(regressed, doc, gate=0.25) == []
        assert check_regression(regressed, doc, gate=0.05) != []


class TestJsonRoundTrip:
    def test_write_load_and_gate(self, doc, tmp_path):
        path = tmp_path / "bench.json"
        write_json(doc, path)
        loaded = load_json(path)
        # Tuples become lists in JSON; the gate must still accept it.
        assert check_regression(doc, loaded) == []
        assert loaded["summary"] == doc["summary"]

    def test_format_bench_readable(self, doc):
        text = format_bench(doc)
        assert "VGG16_b" in text
        assert "geomean speedup vs fp32_direct" in text
        assert "loop reference" in text


MODEL_PROFILE = BenchProfile(
    "quick",
    ("VGG16_b",),
    hw_cap=8,
    chan_cap=8,
    repeats=1,
    reference=False,
    model_cases=(ModelCase("vgg", "lowino", batch=1, hw=8, width=8, m=2),),
    model_repeats=1,
)


@pytest.fixture(scope="module")
def model_doc():
    return run_bench(MODEL_PROFILE, algorithms=("fp32_direct", "lowino"))


class TestModelBench:
    def test_entry_schema(self, model_doc):
        (entry,) = model_doc["models"]
        assert entry["name"] == "vgg/lowino"
        assert entry["eager_s"] > 0 and entry["compiled_s"] > 0
        assert entry["compiled_speedup"] > 0
        assert entry["exact"] is True  # hard gate: bit-identical outputs
        assert entry["cache_stats"]["entries"] > 0

    def test_summary_geomean(self, model_doc):
        summary = model_doc["summary"]["model_compiled_vs_eager"]
        assert summary["min"] <= summary["geomean"] <= summary["max"]

    def test_models_disabled(self):
        doc = run_bench(MODEL_PROFILE, algorithms=("fp32_direct",),
                        models=False)
        assert doc["models"] == []
        assert "model_compiled_vs_eager" not in doc["summary"]

    def test_exactness_violation_detected(self, model_doc):
        broken = copy.deepcopy(model_doc)
        broken["models"][0]["exact"] = False
        violations = check_regression(broken, model_doc)
        assert any("bit-identical" in v for v in violations)

    def test_model_speedup_regression_detected(self, model_doc):
        regressed = copy.deepcopy(model_doc)
        regressed["models"][0]["compiled_speedup"] *= 0.5
        regressed["summary"]["model_compiled_vs_eager"]["geomean"] *= 0.5
        violations = check_regression(regressed, model_doc)
        assert any("model_compiled_vs_eager" in v for v in violations)
        assert any("vgg/lowino" in v for v in violations)

    def test_model_cases_are_compat_keys(self, model_doc):
        other = copy.deepcopy(model_doc)
        other["profile"]["model_cases"] = []
        violations = check_regression(model_doc, other)
        assert len(violations) == 1 and "incompatible" in violations[0]

    def test_format_includes_model_table(self, model_doc):
        text = format_bench(model_doc)
        assert "vgg/lowino" in text
        assert "model compiled vs eager" in text
