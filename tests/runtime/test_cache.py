"""Plan cache: LRU semantics, byte bounds, counters, plan integration."""

import numpy as np
import pytest

from repro.runtime import PlanCache, cache_stats, clear_cache, default_cache, get_plan
from repro.runtime.plan import GeometryPlan, plan_key


class TestLru:
    def test_capacity_evicts_least_recent(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_reput_updates_value_without_growth(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1 and cache.get("a") == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestLfu:
    def test_eviction_policy_validation(self):
        with pytest.raises(ValueError):
            PlanCache(eviction="mru")
        assert PlanCache().eviction == "lru"  # default is unchanged

    def test_hot_key_survives_pressure_where_lru_evicts_it(self):
        # A hot plan touched early, then a burst of one-off shapes: LRU
        # churns the hot key out, LFU keeps it resident.
        def burst(cache):
            cache.put("hot", "plan")
            for _ in range(5):
                cache.get("hot")
            for i in range(4):
                cache.put(f"oneoff{i}", i)

        lru = PlanCache(capacity=3, eviction="lru")
        burst(lru)
        assert "hot" not in lru

        lfu = PlanCache(capacity=3, eviction="lfu")
        burst(lfu)
        assert "hot" in lfu
        assert lfu.get("hot") == "plan"

    def test_lfu_ties_break_by_recency(self):
        cache = PlanCache(capacity=2, eviction="lfu")
        cache.put("a", 1)
        cache.put("b", 2)  # both cold (0 hits); "a" is least recent
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_counts_exported_and_pruned(self):
        cache = PlanCache(capacity=2, eviction="lfu")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.hit_counts() == {"a": 2, "b": 1}
        cache.put("c", 3)  # evicts "b" (fewest hits)
        assert set(cache.hit_counts()) == {"a", "c"}

    def test_get_or_build_feeds_counters(self):
        cache = PlanCache(capacity=4, eviction="lfu")
        cache.get_or_build("k", lambda: "v")
        assert cache.hit_counts() == {"k": 0}  # build is a miss
        cache.get_or_build("k", lambda: "w")
        assert cache.hit_counts() == {"k": 1}

    def test_clear_drops_counters(self):
        cache = PlanCache(capacity=4, eviction="lfu")
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.hit_counts() == {}


class TestByteBound:
    def test_bytes_tracked_and_bounded(self):
        one_kb = np.zeros(1024, dtype=np.uint8)
        cache = PlanCache(capacity=100, max_bytes=3 * one_kb.nbytes)
        for i in range(5):
            cache.put(i, one_kb.copy())
        assert cache.stats.bytes <= 3 * one_kb.nbytes
        assert cache.stats.evictions == 2
        assert len(cache) == 3

    def test_oversized_entry_keeps_at_least_one(self):
        cache = PlanCache(capacity=8, max_bytes=16)
        cache.put("big", np.zeros(1024, dtype=np.uint8))
        assert len(cache) == 1  # never evicts down to empty

    def test_post_insert_scratch_growth_visible_and_evictable(self):
        """A GeometryPlan is inserted with an empty scratch pool; its
        arenas allocate afterwards.  Byte accounting must re-measure the
        live entries -- insert-time charging left the growth invisible
        to ``max_bytes`` and drove ``bytes`` negative at eviction."""
        cache = PlanCache(capacity=8, max_bytes=10_000)
        grown = GeometryPlan(grid=None)
        cache.put("grown", grown)
        assert cache.stats_dict()["bytes"] == 0
        with grown.scratch.lease() as arena:
            arena.buf("x", (2048,), np.float64)  # 16 KiB, over the bound
        assert cache.stats_dict()["bytes"] == 16384  # growth is visible
        cache.put("small", GeometryPlan(grid=None))  # eviction re-measures
        assert "grown" not in cache and "small" in cache
        assert cache.stats.evictions == 1
        assert cache.stats.bytes == 0  # never negative after eviction

    def test_bytes_never_negative(self):
        cache = PlanCache(capacity=8, max_bytes=100)
        for i in range(4):
            plan = GeometryPlan(grid=None)
            cache.put(i, plan)
            with plan.scratch.lease() as arena:
                arena.buf("x", (64,), np.float64)  # grows after insert
        assert cache.stats.evictions >= 1
        assert cache.stats.bytes >= 0
        assert cache.stats_dict()["bytes"] >= 0

    def test_clear_resets_residency(self):
        cache = PlanCache(capacity=8)
        cache.put("a", np.zeros(64, dtype=np.uint8))
        cache.clear()
        assert len(cache) == 0 and cache.stats.bytes == 0
        assert cache.stats.misses == 0  # counters other than bytes kept


class TestStats:
    def test_counters_and_hit_rate(self):
        cache = PlanCache(capacity=4)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        d = stats.as_dict()
        assert set(d) == {"hits", "misses", "evictions", "bytes", "entries", "hit_rate"}

    def test_get_or_build_builds_once(self):
        cache = PlanCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or "built")
        assert value == "built"
        assert len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_reset_stats_keeps_entries_and_remeasures_bytes(self):
        cache = PlanCache(capacity=4)
        cache.put("a", np.zeros(16, dtype=np.float64))
        cache.get("a")
        cache.get("missing")
        cache.reset_stats()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
        assert stats.entries == 1
        assert stats.bytes == 128  # re-measured from the live value
        assert cache.get("a") is not None  # entry survived the reset

    def test_entries_snapshot_is_a_copy(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        snap = cache.entries_snapshot()
        assert sorted(snap) == [1, 2]
        snap.append(3)
        assert len(cache) == 2


class TestPlanIntegration:
    def test_same_layer_hits(self, rng):
        cache = PlanCache(capacity=16)
        w = rng.standard_normal((4, 4, 3, 3))
        p1 = get_plan("lowino", w, m=2, padding=1, cache=cache)
        p2 = get_plan("lowino", w, m=2, padding=1, cache=cache)
        assert p1 is p2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_separates_configurations(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        keys = {
            plan_key("lowino", w, 2, 1, {}),
            plan_key("lowino", w, 4, 1, {}),
            plan_key("lowino", w, 2, 0, {}),
            plan_key("int8_upcast", w, 2, 1, {}),
            plan_key("lowino", w + 1.0, 2, 1, {}),
        }
        assert len(keys) == 5

    def test_ndarray_kwarg_bypasses_cache(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        assert plan_key("lowino", w, 2, 1, {"thr": np.ones(4)}) is None
        cache = PlanCache(capacity=16)
        p1 = get_plan("lowino", w, m=2, padding=1, cache=cache,
                      calibration_method="minmax")
        assert p1 is not None  # scalar kwargs still cacheable
        assert len(cache) == 1

    def test_plan_reports_footprint(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        plan = get_plan("lowino", w, m=2, padding=1, cache=PlanCache(capacity=4))
        assert plan.nbytes > w.nbytes  # layer arrays + engine operands

    def test_numpy_integer_nbytes_counted(self):
        """``nbytes`` built by summing ndarray footprints is a NumPy
        integer, which is *not* an ``int`` subclass; the byte accounting
        used to report 0 for such entries and the bound never fired."""

        class PlanLike:
            nbytes = np.int64(512)

        cache = PlanCache(capacity=8, max_bytes=1024)
        cache.put("a", PlanLike())
        assert cache.stats.bytes == 512
        cache.put("b", PlanLike())
        cache.put("c", PlanLike())
        assert cache.stats.evictions == 1
        assert cache.stats.bytes <= 1024

    def test_byte_bound_evicts_real_plans(self, rng):
        """End-to-end: ConvPlan entries must be visible to the byte
        bound, so a small ``max_bytes`` actually evicts plans."""
        probe = get_plan(
            "lowino",
            rng.standard_normal((4, 4, 3, 3)),
            m=2,
            padding=1,
            cache=PlanCache(capacity=4),
        )
        cache = PlanCache(capacity=100, max_bytes=2 * int(probe.nbytes))
        for _ in range(5):
            w = rng.standard_normal((4, 4, 3, 3))
            get_plan("lowino", w, m=2, padding=1, cache=cache)
        assert cache.stats.evictions >= 2
        assert cache.stats.bytes <= cache.max_bytes
        assert len(cache) <= 2


class TestDefaultCache:
    def test_module_level_helpers(self, rng):
        clear_cache()
        before = cache_stats()
        w = rng.standard_normal((2, 2, 3, 3))
        get_plan("fp32_direct", w, padding=0)
        after = cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert default_cache().stats.entries >= 1
        clear_cache()
        assert cache_stats()["entries"] == 0
