"""Lowering: plan mapping, epilogue fusion, shared cache, execution."""

import numpy as np
import pytest

from repro.conv.fp32 import Fp32WinogradConv2d
from repro.core import LoWinoConv2d
from repro.nn import Conv2d, ReLU, Residual, Sequential, build_resnet_small, trace
from repro.nn.quantize import quantize_model
from repro.runtime import PlanCache
from repro.runtime.compiler import (
    algorithm_of_engine,
    compile_model,
    lower,
    plan_for_conv,
)


def _conv(rng, c_in, c_out, name, stride=1):
    return Conv2d(rng.standard_normal((c_out, c_in, 3, 3)) * 0.1, padding=1,
                  stride=stride, name=name)


class TestPlanForConv:
    def test_fp32_conv_lowers_to_fp32_direct(self, rng):
        conv = _conv(rng, 3, 4, "a")
        cache = PlanCache()
        plan = plan_for_conv(conv, cache)
        assert plan.algorithm == "fp32_direct"

    def test_quantized_conv_wraps_existing_engine(self, rng):
        conv = _conv(rng, 3, 4, "a")
        conv.engine = LoWinoConv2d(conv.filters, m=2, padding=1)
        cache = PlanCache()
        plan = plan_for_conv(conv, cache)
        assert plan.algorithm == "lowino"
        assert plan.layer is conv.engine  # reused, not rebuilt

    def test_plan_cached_per_engine(self, rng):
        conv = _conv(rng, 3, 4, "a")
        conv.engine = LoWinoConv2d(conv.filters, m=2, padding=1)
        cache = PlanCache()
        assert plan_for_conv(conv, cache) is plan_for_conv(conv, cache)

    def test_algorithm_of_engine_rejects_unknown(self):
        with pytest.raises(TypeError):
            algorithm_of_engine(object())


class TestFusion:
    def test_conv_relu_fused(self, rng):
        model = Sequential([_conv(rng, 3, 4, "a"), ReLU()])
        program = compile_model(model, (1, 3, 8, 8))
        (step,) = program.steps
        assert step.kind == "conv" and step.relu

    def test_trailing_conv_not_fused(self, rng):
        model = Sequential([_conv(rng, 3, 4, "a")])
        program = compile_model(model, (1, 3, 8, 8))
        (step,) = program.steps
        assert not step.relu

    def test_residual_add_relu_fused(self, rng):
        body = Sequential([_conv(rng, 4, 4, "a")])
        model = Sequential([Residual(body)])
        program = compile_model(model, (1, 4, 6, 6))
        kinds = [(s.kind, s.relu) for s in program.steps]
        # Body conv feeds the add unfused; the residual ReLU fuses into add.
        assert kinds == [("conv", False), ("add", True)]

    def test_multi_consumer_relu_not_fused_away_from_reader(self, rng):
        # In the U-Net, enc1's output feeds both pool and concat; fusion
        # must keep a single stored value that both consumers read.
        from repro.nn import build_unet_small

        model = build_unet_small(width=8)
        x = rng.standard_normal((1, 3, 16, 16))
        program = compile_model(model, (1, 3, 16, 16))
        assert np.array_equal(program.run(x), model(x))


class TestExecution:
    def test_shared_cache_across_layers(self, rng):
        model = Sequential([_conv(rng, 3, 4, "a"), ReLU(), _conv(rng, 4, 4, "b")])
        cache = PlanCache()
        program = compile_model(model, (1, 3, 8, 8), cache=cache)
        assert program.cache is cache
        program.run(rng.standard_normal((1, 3, 8, 8)))
        assert cache.stats.entries > 0

    def test_batch_size_flexible(self, rng):
        # The traced batch extent is metadata; other batch sizes run.
        model = Sequential([_conv(rng, 3, 4, "a"), ReLU()])
        program = compile_model(model, (2, 3, 8, 8))
        for b in (1, 3):
            x = rng.standard_normal((b, 3, 8, 8))
            assert np.array_equal(program.run(x), model(x))

    def test_timings_accumulate(self, rng):
        model = Sequential([_conv(rng, 3, 4, "a"), ReLU()])
        program = compile_model(model, (1, 3, 8, 8))
        timings = {}
        program.run(rng.standard_normal((1, 3, 8, 8)), timings=timings)
        assert set(timings) == {"a0"}
        assert timings["a0"] > 0

    def test_fp32_winograd_engine_lowered(self, rng):
        conv = _conv(rng, 3, 4, "a")
        conv.engine = Fp32WinogradConv2d(conv.filters, m=2, padding=1)
        model = Sequential([conv, ReLU()])
        program = compile_model(model, (1, 3, 8, 8))
        assert program.steps[0].plan.algorithm == "fp32_winograd"
        x = rng.standard_normal((1, 3, 8, 8))
        assert np.array_equal(program.run(x), model(x))

    def test_quantized_resnet_runs(self, rng):
        model = build_resnet_small(width=8)
        x = rng.standard_normal((2, 3, 16, 16))
        quantize_model(model, "lowino", m=2, calibration_batches=[x])
        program = compile_model(model, x.shape)
        assert np.array_equal(program.run(x), model(x))

    def test_lower_accepts_pretraced_graph(self, rng):
        model = Sequential([_conv(rng, 3, 4, "a")])
        graph = trace(model, (1, 3, 8, 8))
        program = lower(graph)
        x = rng.standard_normal((1, 3, 8, 8))
        assert np.array_equal(program.run(x), model(x))
