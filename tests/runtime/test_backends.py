"""Fused-stage kernel backends: the bitwise contract, on every backend.

The backend layer (``repro.runtime.backends``) collapses the quantized
algorithms' per-stage hot path into three fused entry points.  Its
contract is that *every* registered backend -- the pure-NumPy default
and the worker-pool threaded-BLAS variant -- produces bit-for-bit the
output of the reference layers, for every fused algorithm, on every
edge geometry, under concurrency, with or without the plan-time bound
shortcuts (`v16_ok` / `z_wrap_free`) engaged.
"""

import threading

import numpy as np
import pytest

from repro.conformance.space import enumerate_edge_configs, make_inputs
from repro.nn import Conv2d, ReLU, Sequential
from repro.nn.quantize import dequantize_model, quantize_model
from repro.runtime import ExecutionEngine, InferenceSession, PlanCache
from repro.runtime.backends import (
    FUSED_ALGORITHMS,
    KernelBackend,
    NumpyKernelBackend,
    ThreadedBlasBackend,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.runtime.bench import ModelCase, build_case_model

BACKENDS = sorted(available_backends())
EDGE_CONFIGS = enumerate_edge_configs()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _engine(backend):
    return ExecutionEngine(cache=PlanCache(capacity=512), backend=backend)


class TestRegistry:
    def test_available_backends(self):
        assert "numpy" in BACKENDS and "threaded" in BACKENDS

    def test_resolve_by_name_and_instance(self):
        numpy_backend = resolve_backend("numpy")
        assert isinstance(numpy_backend, NumpyKernelBackend)
        assert isinstance(resolve_backend("threaded"), ThreadedBlasBackend)
        assert resolve_backend(numpy_backend) is numpy_backend
        assert resolve_backend(None) is default_backend()

    def test_resolve_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("simd")

    def test_backends_satisfy_protocol(self):
        assert isinstance(NumpyKernelBackend(), KernelBackend)
        assert isinstance(ThreadedBlasBackend(), KernelBackend)

    def test_session_backend_knob(self, rng):
        model = Sequential([Conv2d(rng.standard_normal((4, 3, 3, 3)) * 0.1,
                                   padding=1, name="c")])
        quantize_model(model, "lowino", m=2,
                       calibration_batches=[np.abs(rng.standard_normal((2, 3, 8, 8)))])
        session = InferenceSession(model, (2, 3, 8, 8), backend="threaded")
        assert session.engine.backend.name == "threaded"


class TestEdgeGridBitIdentity:
    """Both backends x all fused algorithms x the conformance edge grid."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", FUSED_ALGORITHMS)
    @pytest.mark.parametrize("config", EDGE_CONFIGS, ids=lambda c: c.describe())
    def test_matches_reference_layer(self, backend, algorithm, config):
        x, w = make_inputs(config)
        layer = _engine(backend).layer(w, algorithm, m=config.m,
                                       padding=config.padding)
        np.testing.assert_array_equal(layer(x), layer.reference(x))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", FUSED_ALGORITHMS)
    def test_fused_epilogue_is_bitwise(self, backend, algorithm, rng):
        """engine.execute(bias=..., relu=True) == max(y + bias, 0)."""
        config = EDGE_CONFIGS[-1]
        x, w = make_inputs(config)
        bias = rng.standard_normal(w.shape[0])
        engine = _engine(backend)
        layer = engine.layer(w, algorithm, m=config.m, padding=config.padding)
        fused = engine.execute(layer.plan, x, bias=bias, relu=True)
        plain = np.maximum(layer(x) + bias[None, :, None, None], 0.0)
        np.testing.assert_array_equal(fused, plain)


class TestModelBitIdentity:
    """Compiled-vs-eager, whole networks, both backends.

    ``resnet`` covers stride-2 downsampling convs; the local strided
    model pins a stride-2 stem straight through ``int8_direct``.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("case", [
        ModelCase("vgg", "auto", batch=2, hw=16, width=8, m=2),
        ModelCase("resnet", "auto", batch=2, hw=16, width=8, m=2),
        ModelCase("vgg", "lowino", batch=2, hw=16, width=8, m=2),
        ModelCase("resnet", "int8_direct", batch=2, hw=16, width=8, m=2),
        ModelCase("vgg", "int8_upcast", batch=2, hw=16, width=8, m=2),
        ModelCase("vgg", "int8_downscale", batch=2, hw=16, width=8, m=2),
    ], ids=lambda c: c.case_name)
    def test_compiled_equals_eager(self, backend, case, rng):
        model = build_case_model(case)
        calib = np.maximum(rng.standard_normal((2, 3, case.hw, case.hw)), 0)
        quantize_model(model, case.algorithm, m=case.m,
                       calibration_batches=[calib])
        x = rng.standard_normal((case.batch, 3, case.hw, case.hw))
        session = InferenceSession(model, x.shape, backend=backend)
        np.testing.assert_array_equal(session.run(x), model(x))
        dequantize_model(model)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", FUSED_ALGORITHMS)
    def test_strided_conv(self, backend, algorithm, rng):
        if algorithm != "int8_direct":
            pytest.skip("stride > 1 lowers onto the direct path only")
        model = Sequential([
            Conv2d(rng.standard_normal((8, 3, 3, 3)) * 0.1, padding=1,
                   stride=2, name="down"),
            ReLU(),
            Conv2d(rng.standard_normal((8, 8, 3, 3)) * 0.1, padding=1,
                   name="body"),
        ])
        calib = np.maximum(rng.standard_normal((2, 3, 16, 16)), 0)
        quantize_model(model, algorithm, m=2, calibration_batches=[calib])
        x = rng.standard_normal((2, 3, 16, 16))
        session = InferenceSession(model, x.shape, backend=backend)
        np.testing.assert_array_equal(session.run(x), model(x))


class TestPlanMetaBounds:
    """The analytic plan-time bounds, and the fallback paths they gate."""

    def _upcast_layer(self, engine, rng, c=4, k=3):
        w = rng.standard_normal((k, c, 3, 3)) * 0.1
        return engine.layer(w, "int8_upcast", m=2, padding=1)

    def test_upcast_meta_present(self, rng):
        layer = self._upcast_layer(_engine("numpy"), rng)
        meta = layer.plan.meta
        assert meta["v16_ok"] is True  # m=2: |B^T d B| <= 128 * 4^2 = 2048
        assert meta["v_bound"] >= 1
        assert meta["z_wrap_free"] is True

    def test_v_bound_is_sound(self, rng):
        """The analytic bound dominates the runtime reduction it replaces."""
        engine = _engine("numpy")
        layer = self._upcast_layer(engine, rng)
        ref = layer.reference
        x = np.maximum(rng.standard_normal((2, 4, 12, 12)), 0)
        from repro.conv.im2col import pad_images
        from repro.quant import spatial_params_from_tensor
        from repro.quant.linear import quantize
        from repro.winograd import tile_grid
        from repro.winograd.tiling import extract_tiles

        params = spatial_params_from_tensor(x, bits=ref.bits)
        q = quantize(pad_images(x, ref.padding), params).astype(np.int64)
        tiles = extract_tiles(tile_grid(ref.alg, q.shape[2], q.shape[3]), q)
        v = np.einsum("ij,bcxyjk,kl->bcxyil", ref.bt_int, tiles, ref.bt_int.T)
        assert int(np.abs(v).max()) <= layer.plan.meta["v_bound"]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("flag", ["v16_ok", "z_wrap_free"])
    def test_disabled_shortcuts_stay_bitwise(self, backend, flag, rng):
        """Forcing the runtime fallback (abs-max check / int32 wrap cast)
        must not change a single bit when no overflow actually occurs."""
        engine = _engine(backend)
        layer = self._upcast_layer(engine, rng)
        x = np.maximum(rng.standard_normal((2, 4, 12, 12)), 0)
        fast = layer(x).copy()
        layer.plan.meta[flag] = False
        np.testing.assert_array_equal(layer(x), fast)
        np.testing.assert_array_equal(layer(x), layer.reference(x))

    def test_upcast_overflow_still_raises(self, rng):
        """The INT16 overflow guard survives the fusion: inputs whose
        transformed magnitude exceeds the bound raise like the reference."""
        engine = _engine("numpy")
        w = rng.standard_normal((3, 4, 3, 3)) * 0.1
        # F(6,3): the analytic bound (128 * row^2 = 460800) exceeds
        # INT16, so the fused path must re-arm the runtime reduction.
        layer = engine.layer(w, "int8_upcast", m=6, padding=1)
        assert not layer.plan.meta["v16_ok"]
        x = np.maximum(rng.standard_normal((1, 4, 12, 12)), 0) * 100.0
        try:
            expected = layer.reference(x)
        except OverflowError:
            with pytest.raises(OverflowError):
                layer(x)
        else:
            np.testing.assert_array_equal(layer(x), expected)

    def test_direct_meta(self, rng):
        engine = _engine("numpy")
        layer = engine.layer(rng.standard_normal((3, 4, 3, 3)) * 0.1,
                             "int8_direct", m=0, padding=1)
        meta = layer.plan.meta
        assert meta["z_wrap_free"] is True and meta["z_bound"] >= 1

    def test_fp32_meta_partition_safety(self, rng):
        """Only the batched winograd contraction may be split across
        threads (per-T dgemms are unchanged by the split); the direct
        2D float GEMM must stay serial (row-splitting could change BLAS
        blocking and therefore bits)."""
        engine = _engine("numpy")
        w = rng.standard_normal((3, 4, 3, 3)) * 0.1
        wino = engine.layer(w, "fp32_winograd", m=2, padding=1).plan.meta
        assert wino["float_gemm"] is True
        assert wino["gemm_partition_safe"] is True
        direct = engine.layer(w, "fp32_direct", m=0, padding=1).plan.meta
        assert direct["float_gemm"] is True
        assert direct["gemm_partition_safe"] is False

    def test_fp32_winograd_forced_serial_stays_bitwise(self, rng):
        """Forcing gemm_partition_safe off must route the threaded
        backend onto the serial fallback without changing a bit."""
        engine = _engine("threaded")
        w = rng.standard_normal((3, 4, 3, 3)) * 0.1
        layer = engine.layer(w, "fp32_winograd", m=2, padding=1)
        x = rng.standard_normal((2, 4, 12, 12))
        fast = layer(x).copy()
        layer.plan.meta["gemm_partition_safe"] = False
        np.testing.assert_array_equal(layer(x), fast)
        np.testing.assert_array_equal(layer(x), layer.reference(x))


class TestScratchRouting:
    def test_direct_path_uses_scratch(self, rng):
        """Satellite: the im2col/cast/reshape path leases scratch now."""
        model = Sequential([Conv2d(rng.standard_normal((4, 3, 3, 3)) * 0.1,
                                   padding=1, name="c")])
        calib = np.maximum(rng.standard_normal((2, 3, 8, 8)), 0)
        quantize_model(model, "int8_direct", m=2, calibration_batches=[calib])
        session = InferenceSession(model, (2, 3, 8, 8))
        session.run(rng.standard_normal((2, 3, 8, 8)))
        stats = session.scratch_stats()
        assert stats["acquires"] > 0
        assert stats["acquires"] == stats["releases"]  # leases never leak
        assert stats["nbytes"] > 0

    @pytest.mark.parametrize("algorithm", FUSED_ALGORITHMS)
    def test_no_scratch_engine_matches(self, algorithm, rng):
        """use_scratch=False falls back to fresh buffers, bit-identical."""
        config = EDGE_CONFIGS[-1]
        x, w = make_inputs(config)
        leased = _engine("numpy")
        fresh = ExecutionEngine(cache=PlanCache(capacity=8), use_scratch=False)
        a = leased.layer(w, algorithm, m=config.m, padding=config.padding)(x)
        b = fresh.layer(w, algorithm, m=config.m, padding=config.padding)(x)
        np.testing.assert_array_equal(a, b)


@pytest.mark.concurrency
class TestThreadedBackendConcurrency:
    """8 threads hammer one shared session on the threaded backend; the
    worker pool is simultaneously the GEMM partitioner and the target of
    nested submissions, and every output must stay bitwise serial."""

    THREADS = 8

    def _run_threads(self, n, fn):
        barrier = threading.Barrier(n)
        errors = []

        def body(tid):
            barrier.wait()
            try:
                fn(tid)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=body, args=(tid,), daemon=True)
                   for tid in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "worker thread wedged"
        if errors:
            raise errors[0]

    def test_shared_session_bitwise_under_stress(self, rng):
        case = ModelCase("resnet", "auto", batch=2, hw=16, width=8, m=2)
        model = build_case_model(case)
        calib = np.maximum(rng.standard_normal((2, 3, 16, 16)), 0)
        quantize_model(model, "auto", m=2, calibration_batches=[calib])
        inputs = [rng.standard_normal((2, 3, 16, 16))
                  for _ in range(self.THREADS)]
        session = InferenceSession(model, (2, 3, 16, 16), backend="threaded")
        expected = [session.run(x) for x in inputs]  # serial warm reference
        results = [[None] * 4 for _ in range(self.THREADS)]

        def body(tid):
            for i in range(4):
                results[tid][i] = session.run(inputs[tid])

        self._run_threads(self.THREADS, body)
        for tid in range(self.THREADS):
            for got in results[tid]:
                np.testing.assert_array_equal(got, expected[tid])

    def test_threaded_layer_repeat_calls_stable(self, rng):
        config = EDGE_CONFIGS[-1]
        x, w = make_inputs(config)
        layer = _engine("threaded").layer(w, "lowino", m=config.m,
                                          padding=config.padding)
        first = layer(x).copy()
        def body(tid):
            for _ in range(8):
                np.testing.assert_array_equal(layer(x), first)
        self._run_threads(self.THREADS, body)
