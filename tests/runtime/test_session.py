"""InferenceSession: bitwise equivalence with eager execution, stats.

Satellite (c) of the model-compilation PR: the compiled session must be
*bit-identical* to ``Sequential.forward`` for FP32 and every quantized
engine, on every reference network, including ``Residual`` shortcuts
and strided convs.
"""

import numpy as np
import pytest

from repro.conv.fp32 import Fp32WinogradConv2d
from repro.nn import (
    Conv2d,
    ReLU,
    Residual,
    Sequential,
    build_resnet_small,
    build_unet_small,
    build_vgg_small,
    dequantize_model,
    named_convs,
    quantize_model,
)
from repro.runtime import InferenceSession

BUILDERS = {
    "vgg": lambda: build_vgg_small(width=8),
    "resnet": lambda: build_resnet_small(width=8),
    "unet": lambda: build_unet_small(width=8),
}

QUANT_ALGORITHMS = ["int8_direct", "int8_upcast", "int8_downscale",
                    "lowino", "auto"]


def _conv(rng, c_in, c_out, name, stride=1):
    return Conv2d(rng.standard_normal((c_out, c_in, 3, 3)) * 0.1, padding=1,
                  stride=stride, name=name)


def _strided_model(rng):
    return Sequential([
        _conv(rng, 3, 8, "down", stride=2),
        ReLU(),
        _conv(rng, 8, 8, "body"),
        ReLU(),
    ])


def _composite_shortcut_model(rng):
    body = Sequential([_conv(rng, 3, 8, "b1"), ReLU(), _conv(rng, 8, 8, "b2")])
    shortcut = Sequential([_conv(rng, 3, 8, "proj")], name="sc")
    return Sequential([Residual(body, shortcut)])


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_fp32(self, name, rng):
        model = BUILDERS[name]()
        x = rng.standard_normal((2, 3, 16, 16))
        session = InferenceSession(model, x.shape)
        assert np.array_equal(session.run(x), model(x))

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize("algorithm", QUANT_ALGORITHMS)
    def test_quantized(self, name, algorithm, rng):
        model = BUILDERS[name]()
        calib = np.maximum(rng.standard_normal((2, 3, 16, 16)), 0)
        quantize_model(model, algorithm, m=2, calibration_batches=[calib])
        x = rng.standard_normal((2, 3, 16, 16))
        session = InferenceSession(model, x.shape)
        assert np.array_equal(session.run(x), model(x))
        dequantize_model(model)

    def test_fp32_winograd_engines(self, rng):
        # fp32_winograd is not a quantize_model algorithm; attach the
        # engine by hand to every eligible conv.
        model = build_vgg_small(width=8)
        for _, conv in named_convs(model):
            if conv.winograd_eligible:
                conv.engine = Fp32WinogradConv2d(conv.filters, m=2,
                                                 padding=conv.padding)
        x = rng.standard_normal((2, 3, 16, 16))
        session = InferenceSession(model, x.shape)
        assert np.array_equal(session.run(x), model(x))
        dequantize_model(model)

    @pytest.mark.parametrize("algorithm", ["lowino", "int8_direct"])
    def test_strided(self, algorithm, rng):
        model = _strided_model(rng)
        calib = np.maximum(rng.standard_normal((2, 3, 16, 16)), 0)
        quantize_model(model, algorithm, m=2, calibration_batches=[calib])
        x = rng.standard_normal((2, 3, 16, 16))
        session = InferenceSession(model, x.shape)
        assert np.array_equal(session.run(x), model(x))

    @pytest.mark.parametrize("algorithm", ["lowino", "int8_upcast"])
    def test_composite_shortcut(self, algorithm, rng):
        model = _composite_shortcut_model(rng)
        calib = np.maximum(rng.standard_normal((2, 3, 12, 12)), 0)
        quantize_model(model, algorithm, m=2, calibration_batches=[calib])
        x = rng.standard_normal((2, 3, 12, 12))
        session = InferenceSession(model, x.shape)
        assert np.array_equal(session.run(x), model(x))

    def test_other_batch_sizes(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (4, 3, 16, 16))
        for b in (1, 3):
            x = rng.standard_normal((b, 3, 16, 16))
            assert np.array_equal(session.run(x), model(x))


class TestSessionStats:
    def test_timings_and_counters(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (2, 3, 16, 16))
        x = rng.standard_normal((2, 3, 16, 16))
        session.run(x)
        session.run(x)
        assert session.runs == 2
        assert session.images_seen == 4
        timings = session.layer_timings()
        assert timings and all(t > 0 for t in timings.values())
        # slowest-first ordering
        values = list(timings.values())
        assert values == sorted(values, reverse=True)

    def test_cache_stats_dict(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (1, 3, 16, 16))
        session.run(rng.standard_normal((1, 3, 16, 16)))
        stats = session.cache_stats()
        assert stats["entries"] > 0

    def test_reset_stats(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (1, 3, 16, 16))
        session.run(rng.standard_normal((1, 3, 16, 16)))
        session.reset_stats()
        assert session.runs == 0 and not session.timings

    def test_reset_stats_resets_cache_counters_keeps_entries(self, rng):
        # reset_stats starts a statistics EPOCH: the plan-cache
        # hit/miss/eviction counters must restart with it (a post-reset
        # cache_stats() mixing epochs made hit rates meaningless), while
        # the live plans and their footprint stay resident.
        model = build_vgg_small(width=8)
        x = rng.standard_normal((1, 3, 16, 16))
        # Quantized layers look up per-geometry scratch in the cache on
        # every run, so hits accumulate (fp32 plans are resolved at
        # compile time and would leave the run-time counters at zero).
        quantize_model(model, "lowino", m=2, calibration_batches=[np.maximum(x, 0)])
        session = InferenceSession(model, (1, 3, 16, 16))
        session.run(x)
        session.run(x)
        before = session.cache_stats()
        assert before["hits"] > 0 and before["entries"] > 0
        session.reset_stats()
        after = session.cache_stats()
        assert after["hits"] == 0 and after["misses"] == 0
        assert after["evictions"] == 0
        assert after["entries"] == before["entries"]
        assert after["bytes"] == before["bytes"]
        session.run(x)  # plans still resident: pure hits, no rebuild
        assert session.cache_stats()["misses"] == 0
        assert session.cache_stats()["hits"] > 0

    def test_stats_snapshot_and_scratch(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (1, 3, 16, 16))
        session.run(rng.standard_normal((1, 3, 16, 16)))
        doc = session.stats()
        assert doc["runs"] == 1 and doc["images_seen"] == 1
        assert doc["cache"]["entries"] > 0
        assert doc["timings"]
        scratch = doc["scratch"]
        assert scratch["acquires"] == scratch["releases"]
        assert scratch["in_use"] == 0

    def test_collect_timings_off(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (1, 3, 16, 16),
                                   collect_timings=False)
        session.run(rng.standard_normal((1, 3, 16, 16)))
        assert not session.timings

    def test_callable_and_batches(self, rng):
        model = build_vgg_small(width=8)
        session = InferenceSession(model, (1, 3, 16, 16))
        batches = [rng.standard_normal((1, 3, 16, 16)) for _ in range(2)]
        outs = list(session.run_batches(batches))
        assert len(outs) == 2
        assert np.array_equal(session(batches[0]), outs[0])

    def test_describe_mentions_fusion(self, rng):
        model = build_resnet_small(width=8)
        calib = np.maximum(rng.standard_normal((1, 3, 16, 16)), 0)
        quantize_model(model, "lowino", m=2, calibration_batches=[calib])
        text = InferenceSession(model, (1, 3, 16, 16)).describe()
        assert "lowino" in text and "relu" in text
