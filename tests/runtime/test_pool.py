"""Persistent worker pool: partition semantics, reuse, error paths."""

import threading

import numpy as np
import pytest

from repro.gemm import BlockingParams, batched_gemm_blocked, compensation_term
from repro.layout import pack_transformed_filters, pack_transformed_inputs
from repro.parallel.scheduler import StaticSchedule
from repro.runtime.pool import WorkerPool, get_pool, shutdown_pool

from tests.rngutil import derive_rng


@pytest.fixture
def pool():
    p = WorkerPool(4)
    yield p
    p.shutdown()


class TestRunPartitioned:
    @pytest.mark.parametrize("tasks,omega", [(16, 4), (7, 3), (1, 4), (0, 2), (5, 8)])
    def test_covers_every_task_once(self, pool, tasks, omega):
        hits = np.zeros(tasks, dtype=np.int64)
        lock = threading.Lock()

        def fn(start, stop):
            with lock:
                hits[start:stop] += 1

        pool.run_partitioned(fn, tasks, omega)
        assert np.all(hits == 1)

    def test_matches_static_schedule_partitions(self, pool):
        """The pool dispatches exactly the fork-join path's ranges."""
        seen = []
        lock = threading.Lock()

        def fn(start, stop):
            with lock:
                seen.append((start, stop))

        pool.run_partitioned(fn, 13, 4)
        expected = [
            (p.start, p.stop)
            for p in StaticSchedule.for_tasks(13, 4).partitions
            if p.size > 0
        ]
        assert sorted(seen) == sorted(expected)

    def test_serial_omega_runs_inline(self, pool):
        thread_ids = []
        pool.run_partitioned(lambda s, e: thread_ids.append(threading.get_ident()), 8, 1)
        assert thread_ids == [threading.get_ident()]
        assert pool.stages_run == 0  # inline work is not dispatched

    def test_exception_propagates(self, pool):
        def fn(start, stop):
            if start == 0:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            pool.run_partitioned(fn, 8, 4)
        # The pool survives a failed stage.
        pool.run_partitioned(lambda s, e: None, 8, 4)

    def test_reuse_across_stages(self, pool):
        for _ in range(5):
            pool.run_partitioned(lambda s, e: None, 8, 4)
        assert pool.stages_run == 5
        assert pool.dispatched_ranges == 20
        assert pool.workers == 4  # same threads, no respawn

    def test_closed_pool_falls_back_to_inline(self):
        p = WorkerPool(2)
        p.shutdown()
        hits = []
        p.run_partitioned(lambda s, e: hits.append((s, e)), 4, 2)
        assert len(hits) == 2  # still correct, just serial

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestDefaultPool:
    def test_lazy_creation_and_growth(self):
        shutdown_pool()
        p1 = get_pool(2)
        assert p1.workers >= 2
        p2 = get_pool(2)
        assert p2 is p1  # same pool reused
        p3 = get_pool(p1.workers + 2)  # grows, never shrinks
        assert p3.workers == p1.workers + 2
        assert get_pool(1) is p3
        shutdown_pool()

    def test_shutdown_then_recreate(self):
        shutdown_pool()
        p = get_pool(2)
        shutdown_pool()
        assert get_pool(2) is not p
        shutdown_pool()


class TestBlockedGemmOnPool:
    def test_parallel_gemm_exact_and_pool_reused(self):
        """The blocked GEMM's omega > 1 path runs on the persistent pool
        and stays bit-identical to the serial result."""
        shutdown_pool()
        rng = derive_rng(99)
        t, n, c, k = 4, 40, 24, 128
        v = rng.integers(-128, 128, (t, n, c)).astype(np.int8)
        u = rng.integers(-128, 128, (t, c, k)).astype(np.int8)
        params = BlockingParams(n_blk=12, c_blk=8, k_blk=64, row_blk=6, col_blk=4)
        vbar = (v.astype(np.int16) + 128).astype(np.uint8)
        vp = pack_transformed_inputs(vbar, params.n_blk, params.c_blk)
        up = pack_transformed_filters(u, params.c_blk, params.k_blk)
        zbar = compensation_term(u)
        serial = batched_gemm_blocked(vp, up, zbar, params, n, c, k, omega=1)
        parallel = batched_gemm_blocked(vp, up, zbar, params, n, c, k, omega=4)
        assert np.array_equal(serial, parallel)
        pool = get_pool()
        assert pool.stages_run >= 1
        before = pool.stages_run
        batched_gemm_blocked(vp, up, zbar, params, n, c, k, omega=4)
        assert get_pool() is pool and pool.stages_run == before + 1
        shutdown_pool()
